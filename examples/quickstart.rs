//! Quickstart: assemble the Navier–Stokes momentum RHS on a box mesh with
//! each of the paper's kernel variants and verify they agree.
//!
//! Run with: `cargo run --release --example quickstart`

use alya_core::{assemble_serial, AssemblyInput, Variant};
use alya_fem::{ConstantProperties, ScalarField, VectorField};
use alya_mesh::{BoxMeshBuilder, MeshStats};

fn main() {
    // 1. A mesh: 16x16x16 boxes, six tets each.
    let mesh = BoxMeshBuilder::new(16, 16, 16).build();
    println!("{}", MeshStats::gather(&mesh));

    // 2. Fields: a sheared velocity, a linear pressure, constant properties.
    let velocity = VectorField::from_fn(&mesh, |p| [p[2] * p[2], 0.1 * p[0], 0.0]);
    let pressure = ScalarField::from_fn(&mesh, |p| 1.0 - 0.2 * p[0]);
    let temperature = ScalarField::zeros(mesh.num_nodes());

    let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR)
        .body_force([0.0, 0.0, -9.81 * 1.2]);

    // 3. Assemble with every variant; same physics, different code shape.
    println!("\nvariant  description                                          |rhs|");
    let reference = assemble_serial(Variant::Rspr, &input);
    for variant in Variant::ALL {
        let rhs = assemble_serial(variant, &input);
        let dev = rhs.max_abs_diff(&reference);
        println!(
            "{:7}  {:51}  {:.6e}  (max dev vs RSPR: {:.1e})",
            variant.name(),
            variant.description(),
            rhs.norm(),
            dev
        );
        assert!(dev < 1e-9, "variants must agree");
    }
    println!("\nAll five variants produced the same RHS — the paper's invariant.");
}
