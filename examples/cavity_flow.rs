//! Lid-driven cavity: the classic incompressible benchmark — a unit box,
//! no-slip walls, lid moving at constant velocity — run with the paper's
//! RSP assembly variant inside the fractional-step loop.
//!
//! Run with: `cargo run --release --example cavity_flow [n] [steps]`

use alya_core::Variant;
use alya_fem::bc::DirichletBc;
use alya_fem::material::ConstantProperties;
use alya_mesh::BoxMeshBuilder;
use alya_solver::step::{FractionalStep, StepConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);

    let mesh = BoxMeshBuilder::new(n, n, n).build();
    println!(
        "lid-driven cavity: {}^3 boxes, {} tets",
        n,
        mesh.num_elements()
    );

    let mut config = StepConfig::default();
    config.dt = 1e-2 / n as f64;
    config.props = ConstantProperties {
        density: 1.0,
        viscosity: 1e-2, // Re = 100 cavity
    };
    let mut solver = FractionalStep::new(&mesh, config);

    // Walls: no-slip on five faces; the lid (z = 1) slides in +x.
    let mut bc = DirichletBc::new();
    let eps = 1e-9;
    bc.fix_where(
        &mesh,
        move |p| p[2] >= 1.0 - eps,
        |_| [1.0, 0.0, 0.0], // lid
    );
    bc.fix_where(
        &mesh,
        move |p| {
            p[2] <= eps || p[0] <= eps || p[0] >= 1.0 - eps || p[1] <= eps || p[1] >= 1.0 - eps
        },
        |_| [0.0; 3],
    );
    solver.set_bc(bc);
    solver.set_velocity(|_| [0.0; 3]);

    println!("\nstep    KE          |div u|     CG");
    let mut ke_prev = 0.0;
    for step in 1..=steps {
        let s = solver.step(Variant::Rsp);
        if step % (steps / 8).max(1) == 0 {
            println!(
                "{:4}  {:.4e}  {:.3e}  {:4}",
                step, s.kinetic_energy, s.divergence_after, s.cg.iterations
            );
        }
        assert!(s.kinetic_energy.is_finite(), "diverged");
        ke_prev = s.kinetic_energy;
    }

    // The lid drags fluid: interior velocity below the lid must be nonzero
    // and roughly aligned with +x near the top, recirculating below.
    let probe_top = nearest_node(&mesh, [0.5, 0.5, 0.9]);
    let probe_bot = nearest_node(&mesh, [0.5, 0.5, 0.2]);
    let v_top = solver.velocity().get(probe_top);
    let v_bot = solver.velocity().get(probe_bot);
    println!("\nprobe near lid    (0.5,0.5,0.9): u = {v_top:?}");
    println!("probe near bottom (0.5,0.5,0.2): u = {v_bot:?}");
    println!("final kinetic energy: {ke_prev:.4e}");
    assert!(v_top[0] > 0.0, "flow should follow the lid near the top");
}

fn nearest_node(mesh: &alya_mesh::TetMesh, p: [f64; 3]) -> usize {
    let mut best = 0;
    let mut dist = f64::INFINITY;
    for (i, q) in mesh.coords().iter().enumerate() {
        let d = (q[0] - p[0]).powi(2) + (q[1] - p[1]).powi(2) + (q[2] - p[2]).powi(2);
        if d < dist {
            dist = d;
            best = i;
        }
    }
    best
}
