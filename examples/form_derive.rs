//! Derives every kernel variant from the one symbolic base description and
//! prints the RSPR contract that falls out — the paper's headline variant,
//! whose register story (51 f64 values, no spills at the 128-register
//! budget) is *computed* here from the derived program's event trace, not
//! copied from a table.
//!
//! ```text
//! cargo run -p alya-bench --example form_derive
//! ```

use alya_core::Variant;
use alya_form::{derive, derive_contract};

fn main() {
    println!("deriving all variants from the symbolic base form:");
    for v in Variant::ALL {
        let prog = derive(v);
        println!(
            "  {:5} <- {:12}  {} block(s), {} buffer(s), {} workspace value(s)",
            v.name(),
            format!("\"{}\"", prog.name),
            prog.blocks.len(),
            prog.buffers.len(),
            prog.nvalues(),
        );
    }

    let prog = derive(Variant::Rspr);
    let c = derive_contract(&prog);
    println!("\nderived RSPR contract (from the generated kernel's trace):");
    println!("  flops per element          {}", c.flops);
    println!("  global input loads         {}", c.input_loads);
    println!(
        "  RHS loads / stores         {} / {}",
        c.rhs_loads, c.rhs_stores
    );
    println!("  workspace loads            {:?}", c.workspace_loads);
    println!("  workspace stores           {:?}", c.workspace_stores);
    println!("  uses private scalars       {}", c.uses_private_scalars);
    println!("  peak register pressure     {:?}", c.max_pressure);
    println!(
        "  spills at 51-f64 budget    {:?}",
        c.spills_at_contract_budget
    );

    let hand = Variant::Rspr.contract();
    if c == hand {
        println!("\nderived contract matches the hand-maintained table field-for-field");
    } else {
        println!("\nWARNING: derived contract drifted from the hand-maintained table");
        println!("  hand-maintained: {hand:#?}");
        std::process::exit(1);
    }
}
