//! Mixed-element meshes through the tetrahedral pipeline.
//!
//! The paper restricts its specialized kernels to linear tetrahedra,
//! arguing that "mixed meshes can easily be partitioned to contain only
//! tetrahedral elements with commercially available meshing tools". This
//! example *is* that workflow: build a genuinely mixed mesh (hexahedral
//! lower half, prismatic upper half), decompose it to tets, and run the
//! specialized RSPR assembly on the result — checking the physics
//! invariants hold across the conversion.
//!
//! Run with: `cargo run --release --example mixed_mesh`

use alya_core::{assemble_serial, AssemblyInput, Variant};
use alya_fem::{ConstantProperties, ScalarField, VectorField};
use alya_mesh::mixed::{mixed_box, CellKind};
use alya_mesh::MeshStats;

fn main() {
    // 1. A mixed mesh: hex bricks below, prisms above, conforming interface.
    let mixed = mixed_box(8, 8, 4, [1.0, 1.0, 1.0]);
    let hexes = mixed.blocks()[0].len();
    let prisms = mixed.blocks()[1].len();
    println!(
        "mixed mesh: {hexes} hexahedra + {prisms} prisms over {} nodes, volume {:.6}",
        mixed.num_nodes(),
        mixed.total_volume()
    );

    // 2. Partition to tetrahedra (the paper's premise).
    let tets = mixed.to_tets();
    println!(
        "decomposed: {} tets (expected {} = 6/hex + 3/prism)",
        tets.num_elements(),
        hexes * CellKind::Hex8.tets_per_cell() + prisms * CellKind::Prism6.tets_per_cell()
    );
    assert!(tets.validate().is_ok());
    assert!((tets.total_volume() - mixed.total_volume()).abs() < 1e-12);
    println!("{}", MeshStats::gather(&tets));

    // 3. Specialized assembly on the decomposition.
    let velocity = VectorField::from_fn(&tets, |p| [p[2] * p[2], 0.3 * p[0], 0.0]);
    let pressure = ScalarField::from_fn(&tets, |p| p[0] + 0.5 * p[1]);
    let temperature = ScalarField::zeros(tets.num_nodes());
    let input = AssemblyInput::new(&tets, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR);
    let rhs = assemble_serial(Variant::Rspr, &input);
    println!(
        "\nassembled RHS on the decomposed mesh: |rhs| = {:.6e}",
        rhs.norm()
    );
    assert!(rhs.norm() > 0.0 && rhs.as_slice().iter().all(|v| v.is_finite()));

    // 4. Invariant: rigid translation still produces zero RHS.
    let rigid = VectorField::from_fn(&tets, |_| [1.0, -2.0, 0.5]);
    let zero_p = ScalarField::zeros(tets.num_nodes());
    let input0 = AssemblyInput::new(&tets, &rigid, &zero_p, &temperature);
    let rhs0 = assemble_serial(Variant::Rspr, &input0);
    assert!(
        rhs0.max_abs() < 1e-11,
        "rigid translation produced forces on the mixed-derived mesh"
    );
    println!("rigid-translation invariant holds on the decomposition: PASS");
}
