//! Mini-LES of flow over the synthetic Bolund-like cliff: the full
//! fractional-step loop (explicit momentum with the RSPR assembly,
//! pressure projection, correction) on the terrain mesh with no-slip
//! ground and a logarithmic inflow.
//!
//! Run with: `cargo run --release --example bolund_les [elems] [steps]`

use alya_core::Variant;
use alya_fem::bc::DirichletBc;
use alya_fem::material::ConstantProperties;
use alya_mesh::{MeshStats, TerrainMeshBuilder};
use alya_solver::step::{FractionalStep, StepConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);

    let mesh = TerrainMeshBuilder::with_approx_elements(elems).build();
    println!("{}", MeshStats::gather(&mesh));

    let mut config = StepConfig::default();
    config.dt = 2e-3;
    config.props = ConstantProperties::AIR;
    config.cg_tol = 1e-6;
    config.cg_max_iters = 400;

    let mut solver = FractionalStep::new(&mesh, config);

    // No-slip at the terrain surface, log-law inflow everywhere else low.
    let mut bc = DirichletBc::new();
    // Ground: nodes on the terrain surface (z below the local terrain + eps
    // is hard without the heightmap; use the bottom mesh layer instead).
    bc.fix_where(
        &mesh,
        |p| p[2] < 0.02 + 0.2 * (-((p[0] - 1.0).powi(2) + (p[1] - 1.0).powi(2)) / 0.125).exp(),
        |_| [0.0; 3],
    );
    solver.set_bc(bc);

    let (u_star, z0, kappa) = (0.4, 3e-4, 0.4);
    solver.set_velocity(move |p| {
        let z = p[2].max(z0 * 1.01);
        [u_star / kappa * (z / z0).ln() * 0.2, 0.0, 0.0]
    });

    println!("\nstep     time    CFL    KE          |div u|    CG iters  nu_t-active",);
    for step in 1..=steps {
        let stats = solver.step(Variant::Rspr);
        if step % (steps / 10).max(1) == 0 || step == 1 {
            let input = alya_core::AssemblyInput::new(
                &mesh,
                solver.velocity(),
                solver.pressure(),
                solver.pressure(), // placeholder temperature; unused
            );
            let nut = alya_core::nut::compute_nu_t(&input);
            let active = nut.iter().filter(|&&n| n > 0.0).count();
            println!(
                "{:4}  {:7.4}  {:5.2}  {:.4e}  {:.3e}  {:8}  {:6}/{}",
                step,
                solver.time(),
                solver.cfl(),
                stats.kinetic_energy,
                stats.divergence_after,
                stats.cg.iterations,
                active,
                mesh.num_elements()
            );
            assert!(stats.kinetic_energy.is_finite(), "simulation diverged");
        }
    }
    println!("\ndone: LES advanced to t = {:.4}", solver.time());

    // Drop a ParaView-readable snapshot next to the binary.
    let out = std::env::temp_dir().join("bolund_les.vtk");
    alya_solver::VtkWriter::new(&mesh)
        .vector("velocity", solver.velocity())
        .scalar("pressure", solver.pressure())
        .write_file(&out)
        .expect("VTK write failed");
    println!("snapshot written to {}", out.display());
}
