//! The paper's optimization story in one run: for each variant B → RSPR,
//! real host wall-clock, modelled GPU and CPU counters, and the roofline
//! position — the "waterfall" the paper builds across its sections.
//!
//! Run with: `cargo run --release --example performance_study [elems]`

use std::time::Instant;

use alya_bench::case::Case;
use alya_bench::profile::{cpu_report, gpu_report};
use alya_bench::{CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::{assemble_serial, Variant};
use alya_machine::cpu::CpuModel;
use alya_machine::gpu::GpuModel;
use alya_machine::roofline::{Roofline, RooflineClass};
use alya_machine::spec::{CpuSpec, GpuSpec};

fn main() {
    let elems: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);

    println!("building the Bolund-like case (~{elems} tets)...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);
    let ne = case.mesh.num_elements() as f64;

    let gpu_model = GpuModel::new(GpuSpec::a100_40gb());
    let mut cpu_model = CpuModel::new(CpuSpec::icelake_8360y());
    cpu_model.sample_packs = 64;
    let chart = Roofline::a100(&gpu_model.spec);

    println!("\n=== the optimization waterfall ===\n");
    let mut base_wall = 0.0;
    for variant in Variant::ALL {
        // Real execution on this host.
        let t0 = Instant::now();
        let rhs = assemble_serial(variant, &input);
        let wall = t0.elapsed().as_secs_f64();
        if variant == Variant::B {
            base_wall = wall;
        }
        // Modelled execution on the paper's machines.
        let g = gpu_report(variant, &input, &gpu_model, PAPER_ELEMS);
        let c = cpu_report(variant, &input, &cpu_model, PAPER_ELEMS);
        let class = match chart.classify(g.flops / g.dram_volume.max(1e-30)) {
            RooflineClass::MemoryBound => "memory-bound",
            RooflineClass::ComputeBound => "compute-bound",
        };

        println!("{} — {}", variant.name(), variant.description());
        println!(
            "  host wall-clock : {:8.1} ms  ({:.2} Melem/s, {:.2}x vs B)  |rhs| = {:.4e}",
            wall * 1e3,
            ne / wall / 1e6,
            base_wall / wall,
            rhs.norm()
        );
        println!(
            "  modelled A100   : {:8.1} ms  ({:5.0} GF/s, {} regs, {:.0}% occupancy, {})",
            g.runtime * CALLS_PER_RUNTIME * 1e3,
            g.gflops / 1e9,
            g.registers,
            g.occupancy * 100.0,
            class
        );
        println!(
            "  modelled Icelake: {:8.1} ms single-core, {:6.1} ms at 71 workers",
            c.runtime_1c * CALLS_PER_RUNTIME * 1e3,
            cpu_model.scale(&c, PAPER_ELEMS, 71) * CALLS_PER_RUNTIME * 1e3
        );
        println!();
    }
    println!("(modelled runtimes are for the paper's 32M-element mesh, 3 RHS sweeps)");
}
