//! Many tenants, one machine: admits a batch of concurrent Bolund-style
//! simulation sessions from several tenants through the pooled
//! `alya-serve` service, then prints what multi-tenancy actually cost —
//! per-tenant Table-I live profiles (each tenant's telemetry sees only
//! its own sessions), the deficit-round-robin fairness spread, and the
//! pool's cold/warm bind ledger showing steady-state slot reuse.
//!
//! Run with: `cargo run --release --example serve_many [sessions] [tenants]`

use std::sync::Arc;

use alya_bench::case::Case;
use alya_core::Variant;
use alya_serve::{PoolConfig, Service, ServiceConfig, SessionSpec, SharedCase};
use alya_solver::StepConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let sessions: usize = args.and_parse().unwrap_or(24);
    let ntenants: usize = args.and_parse().unwrap_or(3).max(1);
    let steps = 3u32;

    println!("building the shared Bolund-like case (~2000 tets)...");
    let case = Case::bolund(2_000);
    let mut cfg = StepConfig::default();
    cfg.dt = 5e-4;
    cfg.props = case.props;
    cfg.body_force = case.body_force;
    let ne = case.mesh.num_elements();
    let shared = Arc::new(SharedCase::new(
        "bolund-serve",
        case.mesh,
        cfg,
        Variant::Rsp,
        |p| [0.1 + 0.3 * p[2], 0.0, 0.0],
    ));
    println!(
        "{ne} elements per session, {steps} steps/session, \
         {sessions} sessions across {ntenants} tenant(s)\n"
    );

    // A pool smaller than the offered load, so admission back-pressure and
    // slot recycling are both exercised.
    let capacity = (sessions / 2).clamp(1, 64);
    let service = Service::new(ServiceConfig {
        pool: PoolConfig {
            capacity,
            stripes: 4.min(capacity),
            leak_slot_state_for_audit: false,
        },
        ..ServiceConfig::default()
    });
    let tenants: Vec<u32> = (0..ntenants)
        .map(|i| {
            service.add_tenant(
                &format!("tenant-{i}"),
                1,
                sessions.div_ceil(ntenants).max(1) as u32,
            )
        })
        .collect();
    let spec = SessionSpec::new(Arc::clone(&shared), steps);

    // Round-robin admission; when quota or pool push back, drain a round.
    let mut admitted = 0usize;
    let mut next = 0usize;
    while admitted < sessions {
        match service.admit(tenants[next % ntenants], &spec) {
            Ok(_) => {
                admitted += 1;
                next += 1;
            }
            Err(_) => {
                service.run_round();
            }
        }
    }
    service.run_to_idle();

    for (i, &t) in tenants.iter().enumerate() {
        if let Some(profile) = service.tenant_profile(t) {
            println!("tenant-{i}");
            println!("{profile}");
        }
    }

    let report = service.report();
    println!("service ledger");
    println!("  sessions retired   {}", report.outcomes.len());
    println!(
        "  pool               {} slot(s), peak live {}, cold builds {}, warm binds {}",
        report.capacity, report.peak_live, report.cold_builds, report.warm_binds
    );
    println!(
        "  step latency       p50 {:.3} ms, p99 {:.3} ms",
        report.step_latency_ns(0.50) as f64 * 1e-6,
        report.step_latency_ns(0.99) as f64 * 1e-6
    );
    println!(
        "  fairness spread    {:.3} (deficit-round-robin, equal weights)",
        report.fairness_spread()
    );
    for t in &report.tenants {
        println!(
            "    {:<12} {} session(s), {} step item(s), work {}",
            t.name, t.sessions, t.steps, t.work_done
        );
    }
}

/// Tiny extension so positional args parse without a clap dependency.
trait AndParse {
    fn and_parse<T: std::str::FromStr>(&mut self) -> Option<T>;
}

impl<I: Iterator<Item = String>> AndParse for I {
    fn and_parse<T: std::str::FromStr>(&mut self) -> Option<T> {
        self.next().and_then(|a| a.parse().ok())
    }
}
