//! Body-force-driven channel (plane Poiseuille) flow: no-slip plates at
//! z = 0 and z = H, a uniform streamwise body force, and the laminar
//! steady state `u(z) = (f/2ν) z (H − z)` to converge to — an analytic
//! end-to-end check that convection, diffusion, forcing and the
//! projection cooperate over hundreds of time steps.
//!
//! Run with: `cargo run --release --example channel_flow [n] [steps]`

use alya_core::Variant;
use alya_fem::bc::DirichletBc;
use alya_fem::material::ConstantProperties;
use alya_mesh::BoxMeshBuilder;
use alya_solver::step::{FractionalStep, StepConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(150);

    let h = 1.0; // channel height
    let nu = 0.2;
    let f = 1.0; // body force per unit mass
    let mesh = BoxMeshBuilder::new(n, n, n).extent(1.0, 1.0, h).build();
    println!("plane Poiseuille channel: {n}^3 boxes, nu = {nu}, f = {f}");

    let mut config = StepConfig::default();
    config.dt = 0.02;
    config.props = ConstantProperties {
        density: 1.0,
        viscosity: nu,
    };
    config.body_force = [f, 0.0, 0.0];
    config.vreman_c = 0.0; // laminar
    let mut solver = FractionalStep::new(&mesh, config);

    let eps = 1e-9;
    let mut bc = DirichletBc::new();
    // No-slip plates.
    bc.fix_where(&mesh, move |p| p[2] <= eps || p[2] >= h - eps, |_| [0.0; 3]);
    // Impermeable lateral walls (normal components only), so the flow is
    // effectively 1-D in z without periodic BCs.
    for (node, p) in mesh.coords().iter().enumerate() {
        if p[1] <= eps || p[1] >= 1.0 - eps {
            bc.fix(node, 1, 0.0);
        }
        if p[0] <= eps || p[0] >= 1.0 - eps {
            // Leave u_x free on the x faces: the force drives through them.
            bc.fix(node, 2, 0.0);
        }
    }
    solver.set_bc(bc);
    solver.set_velocity(|_| [0.0; 3]);

    let exact = |z: f64| f / (2.0 * nu) * z * (h - z);
    let u_max_exact = exact(h / 2.0);

    println!("\nstep    u(center)   exact    ratio");
    #[allow(unused_assignments)]
    let mut center = 0.0;
    let center_node = mesh
        .coords()
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let da = (a[0] - 0.5).powi(2) + (a[1] - 0.5).powi(2) + (a[2] - 0.5).powi(2);
            let db = (b[0] - 0.5).powi(2) + (b[1] - 0.5).powi(2) + (b[2] - 0.5).powi(2);
            da.total_cmp(&db)
        })
        .map(|(i, _)| i)
        .unwrap();
    for step in 1..=steps {
        let stats = solver.step(Variant::Rsp);
        assert!(stats.kinetic_energy.is_finite(), "diverged at step {step}");
        center = solver.velocity().get(center_node)[0];
        if step % (steps / 8).max(1) == 0 {
            println!(
                "{step:4}  {center:9.4}  {u_max_exact:7.4}  {:6.3}",
                center / u_max_exact
            );
        }
    }

    // Profile check across the channel height at the domain center.
    println!("\n   z     u(z) sim    u(z) exact");
    let mut worst: f64 = 0.0;
    for (node, p) in mesh.coords().iter().enumerate() {
        if (p[0] - 0.5).abs() < 1e-9 && (p[1] - 0.5).abs() < 1e-9 {
            let sim = solver.velocity().get(node)[0];
            let ex = exact(p[2]);
            println!("{:5.2}  {sim:9.4}  {ex:10.4}", p[2]);
            if ex > 1e-9 {
                worst = worst.max((sim - ex).abs() / u_max_exact);
            }
        }
    }
    println!("\nworst profile error (rel. to centerline): {worst:.2}");
    assert!(
        worst < 0.15,
        "Poiseuille profile off by {worst:.1} of centerline"
    );
    println!("PASS: parabolic profile recovered within 15%");
}
