//! Taylor–Green vortex validation: the classic *exact* unsteady solution
//! of the incompressible Navier–Stokes equations,
//!
//! ```text
//! u =  sin(x) cos(y) e^{-2νt},   v = -cos(x) sin(y) e^{-2νt},
//! ```
//!
//! on `[0, π]²` (free-slip box: normal velocities vanish on the walls),
//! extruded thinly in z. Convection is exactly balanced by the pressure
//! field, so the kinetic energy must decay as `e^{-4νt}` — a quantitative
//! end-to-end check of assembly + projection + correction.
//!
//! Run with: `cargo run --release --example taylor_green [n] [steps]`

use alya_core::Variant;
use alya_fem::bc::DirichletBc;
use alya_fem::material::ConstantProperties;
use alya_mesh::BoxMeshBuilder;
use alya_solver::step::{FractionalStep, StepConfig, TimeScheme};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);

    let pi = std::f64::consts::PI;
    let nu = 0.05;
    let mesh = BoxMeshBuilder::new(n, n, 2)
        .extent(pi, pi, 0.2 * pi)
        .build();
    println!(
        "Taylor-Green vortex: {}x{}x2 boxes ({} tets), nu = {nu}",
        n,
        n,
        mesh.num_elements()
    );

    let mut config = StepConfig::default();
    config.dt = 2.5e-3;
    config.scheme = TimeScheme::SspRk3;
    config.props = ConstantProperties {
        density: 1.0,
        viscosity: nu,
    };
    config.vreman_c = 0.0; // laminar validation
    config.cg_tol = 1e-8;

    let mut solver = FractionalStep::new(&mesh, config);

    // Free-slip box: normal component fixed to zero on each wall pair.
    let mut bc = DirichletBc::new();
    let eps = 1e-9;
    for (node, p) in mesh.coords().iter().enumerate() {
        if p[0] <= eps || p[0] >= pi - eps {
            bc.fix(node, 0, 0.0);
        }
        if p[1] <= eps || p[1] >= pi - eps {
            bc.fix(node, 1, 0.0);
        }
        if p[2] <= eps || p[2] >= 0.2 * pi - eps {
            bc.fix(node, 2, 0.0);
        }
    }
    solver.set_bc(bc);
    solver.set_velocity(|p| [p[0].sin() * p[1].cos(), -(p[0].cos()) * p[1].sin(), 0.0]);

    let e0 = solver.velocity().kinetic_energy();
    println!("\n  t       KE/KE0 (sim)   KE/KE0 (exact)  rel err");
    let mut worst: f64 = 0.0;
    for step in 1..=steps {
        let stats = solver.step(Variant::Rsp);
        let t = solver.time();
        let sim = stats.kinetic_energy / e0;
        let exact = (-4.0 * nu * t).exp();
        let err = (sim - exact).abs() / exact;
        worst = worst.max(err);
        if step % (steps / 10).max(1) == 0 {
            println!("{t:7.4}  {sim:13.6}  {exact:14.6}  {err:8.2e}");
        }
    }
    println!("\nworst relative KE error: {worst:.3e}");
    assert!(
        worst < 0.05,
        "Taylor-Green decay deviates by {worst} — solver inaccurate"
    );
    println!("PASS: decay follows exp(-4 nu t) within 5%");
}
