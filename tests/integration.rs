//! Cross-crate integration tests: mesh → FEM → assembly → solver,
//! end to end.

use alya_core::{assemble_parallel, assemble_serial, ParallelStrategy, Variant};
use alya_fem::bc::DirichletBc;
use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::{BoxMeshBuilder, TerrainMeshBuilder};
use alya_solver::poisson;
use alya_solver::step::{FractionalStep, StepConfig};

#[test]
fn terrain_mesh_through_full_pipeline() {
    let mesh = TerrainMeshBuilder::new(10, 10, 5).build();
    let velocity = VectorField::from_fn(&mesh, |p| [p[2], 0.1 * p[0], -0.05 * p[1]]);
    let pressure = ScalarField::from_fn(&mesh, |p| p[0] * p[1]);
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = alya_core::AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR);

    let serial = assemble_serial(Variant::Rspr, &input);
    let parallel = assemble_parallel(Variant::Rspr, &input, &ParallelStrategy::colored(&mesh));
    assert!(serial.norm() > 0.0);
    let dev = serial.max_abs_diff(&parallel) / serial.max_abs();
    assert!(dev < 1e-12, "serial/parallel deviation {dev}");
}

#[test]
fn les_time_loop_conserves_sanity() {
    let mesh = BoxMeshBuilder::new(6, 6, 6).build();
    let mut config = StepConfig::default();
    config.dt = 1e-3;
    config.props = ConstantProperties {
        density: 1.0,
        viscosity: 1e-3,
    };
    let mut solver = FractionalStep::new(&mesh, config);
    solver.set_bc(DirichletBc::no_slip_ground(&mesh, 1e-9));
    solver.set_velocity(|p| {
        [
            0.2 * (std::f64::consts::PI * p[2]).sin(),
            0.1 * (std::f64::consts::PI * p[0]).sin(),
            0.0,
        ]
    });
    let mut last_div = f64::INFINITY;
    for _ in 0..5 {
        let s = solver.step(Variant::Rsp);
        assert!(s.cg.converged, "pressure solve failed");
        assert!(s.kinetic_energy.is_finite());
        last_div = s.divergence_after;
    }
    // After a few projections the velocity is (weakly) divergence-free.
    assert!(last_div < 1e-4, "divergence {last_div}");
}

#[test]
fn every_variant_drives_the_solver_identically() {
    let mesh = BoxMeshBuilder::new(4, 4, 4).build();
    let mut kes = Vec::new();
    for variant in Variant::ALL {
        let mut solver = FractionalStep::new(&mesh, StepConfig::default());
        solver.set_velocity(|p| [0.1 * p[2] * p[2], -0.05 * p[0], 0.0]);
        let s = solver.run(variant, 3).unwrap();
        kes.push(s.kinetic_energy);
    }
    for w in kes.windows(2) {
        let rel = (w[0] - w[1]).abs() / w[0].max(1e-30);
        assert!(rel < 1e-10, "trajectories diverged: {kes:?}");
    }
}

#[test]
fn dirichlet_bcs_survive_the_step() {
    let mesh = BoxMeshBuilder::new(5, 5, 5).build();
    let mut solver = FractionalStep::new(&mesh, StepConfig::default());
    let bc = DirichletBc::no_slip_ground(&mesh, 1e-9);
    solver.set_bc(bc);
    solver.set_velocity(|p| [p[2], 0.0, 0.0]);
    solver.step(Variant::Rs);
    for (n, p) in mesh.coords().iter().enumerate() {
        if p[2] <= 1e-9 {
            assert_eq!(solver.velocity().get(n), [0.0; 3], "node {n} slipped");
        }
    }
}

#[test]
fn nut_pass_and_inline_vreman_agree_through_assembly() {
    // The baseline (nut pass) and specialized (inline) paths must inject
    // the same turbulent viscosity into the physics.
    let mesh = TerrainMeshBuilder::new(6, 6, 3).build();
    let velocity = VectorField::from_fn(&mesh, |p| [p[2] * p[2], p[0] * p[1] * 0.1, 0.0]);
    let pressure = ScalarField::zeros(mesh.num_nodes());
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = alya_core::AssemblyInput::new(&mesh, &velocity, &pressure, &temperature);
    let b = assemble_serial(Variant::B, &input); // runs the nut pass inside
    let rs = assemble_serial(Variant::Rs, &input); // inline Vreman
    let dev = b.max_abs_diff(&rs) / rs.max_abs();
    assert!(dev < 1e-11, "nu_t paths disagree: {dev}");
}

#[test]
fn laplacian_consistent_with_assembly_diffusion() {
    // Pure-diffusion assembly equals -mu * L u (component-wise) when
    // convection, pressure, forcing and turbulence are off.
    let mesh = BoxMeshBuilder::new(3, 3, 3).jitter(0.1).seed(3).build();
    let velocity = VectorField::from_fn(&mesh, |p| [p[0] * p[2], p[1], p[0] + p[2]]);
    let pressure = ScalarField::zeros(mesh.num_nodes());
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let mu = 0.7;
    let input = alya_core::AssemblyInput::new(&mesh, &velocity, &pressure, &temperature).props(
        ConstantProperties {
            density: 0.0, // kills convection, forcing and rho*nut
            viscosity: mu,
        },
    );
    let rhs = assemble_serial(Variant::Rsp, &input);

    let lap = poisson::laplacian(&mesh);
    for d in 0..3 {
        let mut lu = vec![0.0; mesh.num_nodes()];
        lap.spmv(velocity.component(d), &mut lu);
        for n in 0..mesh.num_nodes() {
            let expect = -mu * lu[n];
            let got = rhs.get(n)[d];
            assert!(
                (got - expect).abs() < 1e-11,
                "node {n} comp {d}: {got} vs {expect}"
            );
        }
    }
}
