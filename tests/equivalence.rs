//! Randomized cross-variant equivalence: on random meshes, random smooth
//! fields and random physical parameters, all five kernel variants (and all
//! parallel scatter strategies) produce the same RHS. Seeded and
//! deterministic — see `alya_mesh::rng`.

use alya_core::{
    assemble_parallel, assemble_parallel_with, assemble_serial, assemble_serial_with,
    AssemblyInput, ExecMode, ParallelStrategy, Variant,
};
use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::{BoxMeshBuilder, Rng64};

/// A random smooth vector field from a small trigonometric basis.
fn field_from_coeffs(mesh: &alya_mesh::TetMesh, c: &[f64; 9]) -> VectorField {
    VectorField::from_fn(mesh, |p| {
        [
            c[0] * p[2] * p[2] + c[1] * (2.0 * p[1]).sin() + c[2],
            c[3] * p[0] + c[4] * (3.0 * p[2]).cos() + c[5] * p[1] * p[0],
            c[6] * p[1] + c[7] * (p[0] * p[1]) + c[8],
        ]
    })
}

fn arb_coeffs(rng: &mut Rng64) -> [f64; 9] {
    let mut c = [0.0; 9];
    for x in &mut c {
        *x = rng.range_f64(-1.0, 1.0);
    }
    c
}

#[test]
fn variants_agree_on_random_inputs() {
    let mut rng = Rng64::new(0xEC01);
    for _ in 0..12 {
        let nx = rng.range_usize(2, 4);
        let nz = rng.range_usize(2, 4);
        let jitter = rng.range_f64(0.0, 0.2);
        let seed = rng.next_u64() % 1000;
        let coeffs = arb_coeffs(&mut rng);
        let rho = rng.range_f64(0.5, 2.0);
        let mu = rng.range_f64(1e-4, 1e-1);
        let fz = rng.range_f64(-1.0, 1.0);

        let mesh = BoxMeshBuilder::new(nx, 3, nz)
            .jitter(jitter)
            .seed(seed)
            .build();
        let velocity = field_from_coeffs(&mesh, &coeffs);
        let pressure = ScalarField::from_fn(&mesh, |p| coeffs[0] * p[0] - coeffs[3] * p[1] * p[2]);
        let temperature = ScalarField::zeros(mesh.num_nodes());
        let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
            .props(ConstantProperties {
                density: rho,
                viscosity: mu,
            })
            .body_force([0.0, 0.1, fz]);

        let reference = assemble_serial(Variant::Rsp, &input);
        let scale = reference.max_abs().max(1e-12);
        for variant in Variant::ALL {
            let rhs = assemble_serial(variant, &input);
            let dev = rhs.max_abs_diff(&reference) / scale;
            assert!(dev < 1e-10, "{variant} deviates by {dev}");
        }
    }
}

#[test]
fn parallel_strategies_agree_on_random_inputs() {
    let mut rng = Rng64::new(0xEC02);
    for _ in 0..12 {
        let seed = rng.next_u64() % 1000;
        let coeffs = arb_coeffs(&mut rng);
        let parts = rng.range_usize(2, 9);

        let mesh = BoxMeshBuilder::new(3, 3, 3).jitter(0.1).seed(seed).build();
        let velocity = field_from_coeffs(&mesh, &coeffs);
        let pressure = ScalarField::from_fn(&mesh, |p| p[0] + p[1] * p[2]);
        let temperature = ScalarField::zeros(mesh.num_nodes());
        let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
            .props(ConstantProperties::AIR);

        let reference = assemble_serial(Variant::Rspr, &input);
        let scale = reference.max_abs().max(1e-12);
        for strategy in [
            ParallelStrategy::TwoPhase,
            ParallelStrategy::colored(&mesh),
            ParallelStrategy::partitioned(&mesh, parts),
            ParallelStrategy::sharded(&mesh, parts),
        ] {
            let rhs = assemble_parallel(Variant::Rspr, &input, &strategy);
            let dev = rhs.max_abs_diff(&reference) / scale;
            assert!(dev < 1e-10, "{} deviation {dev}", strategy.name());
        }
    }
}

/// Full equivalence sweep: every parallel strategy matches the serial
/// reference within 1e-12 (relative, per node), for every variant, with
/// 1/2/8-way decompositions, on a mesh big enough to spawn real worker
/// threads (288 elements, above `par`'s serial cutoff of 256) **and** on a
/// degenerate 24-element mesh that takes the serial fast path everywhere.
#[test]
fn all_strategies_match_serial_across_variants_and_worker_counts() {
    let meshes = [
        (
            BoxMeshBuilder::new(4, 4, 3).jitter(0.12).seed(41).build(),
            "288-element",
        ),
        (
            BoxMeshBuilder::new(2, 2, 1).build(),
            "degenerate 24-element",
        ),
    ];
    for (mesh, label) in &meshes {
        let velocity = field_from_coeffs(mesh, &[0.4, -0.2, 0.9, 0.3, -0.6, 0.1, 0.7, 0.2, -0.4]);
        let pressure = ScalarField::from_fn(mesh, |p| p[0] - 0.3 * p[1] + p[2] * p[2]);
        let temperature = ScalarField::zeros(mesh.num_nodes());
        let input = AssemblyInput::new(mesh, &velocity, &pressure, &temperature)
            .props(ConstantProperties::AIR)
            .body_force([0.05, -0.02, -0.4]);

        // Worker-count-independent strategies once, owner-computes
        // decompositions at every worker count.
        let mut strategies = vec![
            ParallelStrategy::TwoPhase,
            ParallelStrategy::colored(mesh),
            ParallelStrategy::auto(mesh),
        ];
        for workers in [1, 2, 8] {
            strategies.push(ParallelStrategy::partitioned(mesh, workers));
            strategies.push(ParallelStrategy::sharded(mesh, workers));
        }

        for variant in Variant::ALL {
            let serial = assemble_serial(variant, &input);
            let scale = serial.max_abs().max(1e-12);
            assert!(serial.max_abs() > 0.0, "{label}: degenerate input");
            for strategy in &strategies {
                let rhs = assemble_parallel(variant, &input, strategy);
                let dev = rhs.max_abs_diff(&serial) / scale;
                assert!(
                    dev < 1e-12,
                    "{label} mesh, {variant} × {}: deviation {dev}",
                    strategy.name()
                );
            }
        }
    }
}

/// The same sweep under explicit thread caps: the process-wide worker
/// count must never change the assembled values, only the parallelism.
#[test]
fn thread_cap_never_changes_the_result() {
    use alya_machine::par;
    let mesh = BoxMeshBuilder::new(4, 4, 3).jitter(0.1).seed(17).build();
    let velocity = field_from_coeffs(&mesh, &[0.2, 0.5, -0.1, 0.8, 0.0, -0.3, 0.4, -0.7, 0.6]);
    let pressure = ScalarField::from_fn(&mesh, |p| 2.0 * p[0] * p[2] - p[1]);
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR);

    let serial = assemble_serial(Variant::Rsp, &input);
    let scale = serial.max_abs().max(1e-12);
    let strategies = [
        ParallelStrategy::TwoPhase,
        ParallelStrategy::colored(&mesh),
        ParallelStrategy::partitioned(&mesh, 8),
        ParallelStrategy::sharded(&mesh, 8),
    ];
    for cap in [1, 2, 8] {
        par::set_thread_cap(Some(cap));
        for strategy in &strategies {
            let rhs = assemble_parallel(Variant::Rsp, &input, strategy);
            let dev = rhs.max_abs_diff(&serial) / scale;
            assert!(
                dev < 1e-12,
                "cap {cap}, {}: deviation {dev}",
                strategy.name()
            );
        }
    }
    par::set_thread_cap(None);
}

/// Telemetry must be a pure observer: the RHS assembled inside a
/// telemetry session is **bitwise** identical to the one assembled with
/// telemetry off, for every variant × strategy × worker cap. Counters
/// tally at closed-form contract rates and spans only read the clock, so
/// not one floating-point operation is added or reordered — this test is
/// the enforcement.
#[test]
fn telemetry_on_or_off_never_changes_a_bit() {
    use alya_machine::par;
    use alya_telemetry::Metric;
    let mesh = BoxMeshBuilder::new(4, 4, 3).jitter(0.12).seed(41).build();
    let velocity = field_from_coeffs(&mesh, &[0.4, -0.2, 0.9, 0.3, -0.6, 0.1, 0.7, 0.2, -0.4]);
    let pressure = ScalarField::from_fn(&mesh, |p| p[0] - 0.3 * p[1] + p[2] * p[2]);
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR);

    let strategies = [
        ParallelStrategy::TwoPhase,
        ParallelStrategy::colored(&mesh),
        ParallelStrategy::partitioned(&mesh, 8),
        ParallelStrategy::sharded(&mesh, 8),
    ];
    // Serial first, then every parallel strategy, telemetry off/on.
    let sweep = |variant| {
        let mut out = vec![assemble_serial(variant, &input)];
        out.extend(
            strategies
                .iter()
                .map(|s| assemble_parallel(variant, &input, s)),
        );
        out
    };
    for cap in [1, 2, 8] {
        par::set_thread_cap(Some(cap));
        for variant in Variant::ALL {
            let baseline = sweep(variant);
            let session = alya_telemetry::session();
            let observed = sweep(variant);
            let report = session.finish();
            // The session really was live and counting…
            assert!(report.total(Metric::ElementsAssembled) > 0);
            // …and changed nothing.
            for (b, o) in baseline.iter().zip(&observed) {
                assert_eq!(
                    o.max_abs_diff(b),
                    0.0,
                    "cap {cap}, {variant}: telemetry perturbed the RHS"
                );
            }
        }
    }
    par::set_thread_cap(None);
}

/// The lane-packed execution path is not merely equivalent to the scalar
/// path — it is **bitwise identical**, for every variant × strategy ×
/// worker cap. The packed kernels replay the scalar statement sequence
/// lane by lane (no operation mixes lanes, no FMA contraction), so a
/// 1e-12 tolerance would already be loose; this test pins equality at
/// zero, on a mesh whose element count is *not* a multiple of the lane
/// width so the scalar remainder path is exercised too.
#[test]
fn packed_execution_matches_scalar_across_variants_strategies_and_worker_counts() {
    use alya_machine::par;
    let mesh = BoxMeshBuilder::new(3, 3, 3).jitter(0.12).seed(41).build();
    assert!(
        mesh.num_elements() % alya_core::DEFAULT_LANES != 0,
        "fixture must exercise the scalar remainder"
    );
    let velocity = field_from_coeffs(&mesh, &[0.4, -0.2, 0.9, 0.3, -0.6, 0.1, 0.7, 0.2, -0.4]);
    let pressure = ScalarField::from_fn(&mesh, |p| p[0] - 0.3 * p[1] + p[2] * p[2]);
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR)
        .body_force([0.05, -0.02, -0.4]);

    let strategies = [
        ParallelStrategy::TwoPhase,
        ParallelStrategy::colored(&mesh),
        ParallelStrategy::partitioned(&mesh, 8),
        ParallelStrategy::sharded(&mesh, 8),
    ];
    for cap in [1, 2, 8] {
        par::set_thread_cap(Some(cap));
        // Variant::ALL on purpose: P has no packed twin, so the packed
        // mode must fall back to scalar there — identically.
        for variant in Variant::ALL {
            let scalar = assemble_serial(variant, &input);
            let packed = assemble_serial_with(variant, &input, ExecMode::Packed);
            assert_eq!(
                packed.max_abs_diff(&scalar),
                0.0,
                "cap {cap}, {variant}: packed serial diverged from scalar"
            );
            for strategy in &strategies {
                let scalar = assemble_parallel(variant, &input, strategy);
                let packed = assemble_parallel_with(variant, &input, strategy, ExecMode::Packed);
                assert_eq!(
                    packed.max_abs_diff(&scalar),
                    0.0,
                    "cap {cap}, {variant} × {}: packed diverged from scalar",
                    strategy.name()
                );
            }
        }
    }
    par::set_thread_cap(None);
}

/// Bitwise reproducibility of the packed path itself: at the fixed
/// default lane count, re-assembling the same input through the packed
/// path gives the same bits, run after run and across worker caps — the
/// deterministic-scatter guarantee extends to packed execution.
#[test]
fn packed_execution_is_bitwise_reproducible() {
    use alya_machine::par;
    let mesh = BoxMeshBuilder::new(4, 3, 3).jitter(0.1).seed(29).build();
    let velocity = field_from_coeffs(&mesh, &[0.3, 0.1, -0.5, 0.7, -0.2, 0.4, 0.0, 0.6, -0.1]);
    let pressure = ScalarField::from_fn(&mesh, |p| p[1] + 0.5 * p[0] * p[2]);
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR);

    for variant in [Variant::Rsp, Variant::Rspr] {
        let reference = assemble_serial_with(variant, &input, ExecMode::Packed);
        for _ in 0..3 {
            let again = assemble_serial_with(variant, &input, ExecMode::Packed);
            assert_eq!(again.max_abs_diff(&reference), 0.0, "{variant}: serial");
        }
        // A parallel strategy reproduces against its own packed runs (a
        // different strategy accumulates in a different order, so it is
        // equivalent, not bitwise-equal, to serial).
        let strategy = ParallelStrategy::sharded(&mesh, 8);
        let parallel_ref = assemble_parallel_with(variant, &input, &strategy, ExecMode::Packed);
        for cap in [1, 2, 8] {
            par::set_thread_cap(Some(cap));
            let rhs = assemble_parallel_with(variant, &input, &strategy, ExecMode::Packed);
            assert_eq!(
                rhs.max_abs_diff(&parallel_ref),
                0.0,
                "{variant}: sharded at cap {cap}"
            );
        }
        par::set_thread_cap(None);
    }
}

/// The Table-I telemetry profile is invariant under the execution mode:
/// counters tally at pack granularity through the same per-driver-call
/// chokepoint the scalar path uses, so packed assembly reports exactly
/// the scalar profile — same elements, same contract-rate counters, zero
/// deviation — and telemetry still perturbs nothing.
#[test]
fn table_one_profile_is_invariant_under_packed_execution() {
    use alya_core::metrics;
    use alya_telemetry::Metric;
    let mesh = BoxMeshBuilder::new(4, 4, 3).jitter(0.12).seed(41).build();
    let velocity = field_from_coeffs(&mesh, &[0.4, -0.2, 0.9, 0.3, -0.6, 0.1, 0.7, 0.2, -0.4]);
    let pressure = ScalarField::from_fn(&mesh, |p| p[0] - 0.3 * p[1] + p[2] * p[2]);
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature)
        .props(ConstantProperties::AIR);

    for variant in [Variant::Rsp, Variant::Rspr] {
        let session = alya_telemetry::session();
        let scalar = assemble_serial(variant, &input);
        let scalar_report = session.finish();

        let session = alya_telemetry::session();
        let packed = assemble_serial_with(variant, &input, ExecMode::Packed);
        let packed_report = session.finish();

        // Telemetry perturbed neither mode, and the modes agree bitwise.
        assert_eq!(packed.max_abs_diff(&scalar), 0.0, "{variant}");
        // Same elements tallied (pack granularity never double- or
        // under-counts), identical exact Table-I profiles.
        assert_eq!(
            scalar_report.total(Metric::ElementsAssembled),
            packed_report.total(Metric::ElementsAssembled),
            "{variant}"
        );
        assert!(scalar_report.total(Metric::ElementsAssembled) > 0);
        let sp = metrics::table_one(&scalar_report);
        let pp = metrics::table_one(&packed_report);
        assert!(sp.is_exact(), "{variant} scalar profile: {sp}");
        assert!(pp.is_exact(), "{variant} packed profile: {pp}");
        assert_eq!(
            sp.to_string(),
            pp.to_string(),
            "{variant}: packed execution changed the Table-I profile"
        );
    }
}

/// Layout invariance: the CPU pack and GPU launch addressing conventions
/// change *where* the modelled traffic lands, never how much of it there
/// is nor what gets computed.
#[test]
fn cpu_and_gpu_layouts_trace_identical_counts() {
    use alya_core::drivers::{trace_element, CPU_VECTOR_DIM};
    use alya_core::layout::Layout;
    let mesh = BoxMeshBuilder::new(3, 3, 2).jitter(0.05).seed(23).build();
    let velocity = field_from_coeffs(&mesh, &[0.1, 0.3, 0.5, -0.2, 0.4, 0.0, 0.6, -0.1, 0.2]);
    let pressure = ScalarField::from_fn(&mesh, |p| p[0] + p[1] - p[2]);
    let temperature = ScalarField::zeros(mesh.num_nodes());
    let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature);
    let (ne, nn) = (mesh.num_elements(), mesh.num_nodes());
    for variant in Variant::ALL {
        for e in [0, ne / 2, ne - 1] {
            let cpu = trace_element(variant, &input, e, &Layout::cpu(e, CPU_VECTOR_DIM, nn));
            let gpu = trace_element(variant, &input, e, &Layout::gpu(e, ne, nn));
            assert_eq!(
                cpu.counts(),
                gpu.counts(),
                "{variant} element {e}: layout changed the operation counts"
            );
        }
    }
}

#[test]
fn rigid_translation_always_yields_zero_rhs() {
    let mut rng = Rng64::new(0xEC03);
    for _ in 0..12 {
        let ux = rng.range_f64(-2.0, 2.0);
        let uy = rng.range_f64(-2.0, 2.0);
        let uz = rng.range_f64(-2.0, 2.0);
        let seed = rng.next_u64() % 100;
        // Constant velocity, no pressure, no forcing: every term of the
        // momentum RHS vanishes identically, on any mesh.
        let mesh = BoxMeshBuilder::new(3, 2, 3).jitter(0.15).seed(seed).build();
        let velocity = VectorField::from_fn(&mesh, |_| [ux, uy, uz]);
        let pressure = ScalarField::zeros(mesh.num_nodes());
        let temperature = ScalarField::zeros(mesh.num_nodes());
        let input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature);
        for variant in Variant::ALL {
            let rhs = assemble_serial(variant, &input);
            assert!(rhs.max_abs() < 1e-11, "{variant}: {}", rhs.max_abs());
        }
    }
}

#[test]
fn rhs_is_linear_in_body_force() {
    let mut rng = Rng64::new(0xEC04);
    for _ in 0..12 {
        let f = [
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(-5.0, 5.0),
        ];
        let alpha = rng.range_f64(0.1, 3.0);
        // With zero velocity and pressure the RHS is exactly linear in f.
        let mesh = BoxMeshBuilder::new(2, 2, 2).build();
        let velocity = VectorField::zeros(mesh.num_nodes());
        let pressure = ScalarField::zeros(mesh.num_nodes());
        let temperature = ScalarField::zeros(mesh.num_nodes());
        let base = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature);
        let r1 = assemble_serial(Variant::Rsp, &base.body_force(f));
        let scaled = [alpha * f[0], alpha * f[1], alpha * f[2]];
        let r2 = assemble_serial(Variant::Rsp, &base.body_force(scaled));
        for n in 0..mesh.num_nodes() {
            for d in 0..3 {
                let a = alpha * r1.get(n)[d];
                let b = r2.get(n)[d];
                assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()));
            }
        }
    }
}
