//! Integration parity between `alya-form` and the handwritten kernels:
//! every variant's executable Gauss loop and contract are *derived* from
//! the one symbolic base description, and this suite pins both backends to
//! the handwritten truth — per-element event streams under both addressing
//! conventions, the contract table field-for-field, and bitwise assembled
//! output through every parallel strategy at 1/2/8 worker caps.

use alya_analyze::Fixture;
use alya_core::drivers::{trace_element, CPU_VECTOR_DIM};
use alya_core::layout::Layout;
use alya_core::{
    assemble_parallel_with, assemble_serial, assemble_serial_with, ExecMode, KernelImpl,
    ParallelStrategy, Variant,
};
use alya_form::exec::trace_generated;
use alya_form::{derive, derive_contract, CompiledKernel};
use alya_machine::par;

/// Every hand-maintained contract in `alya_core::variant` equals its
/// IR-derived twin — all nine fields, every variant. The derivation goes
/// through the full trace → classify → register-allocate path, so a drift
/// in either the table or a rewrite pass fails here.
#[test]
fn handwritten_contracts_equal_their_derived_twins() {
    for v in Variant::ALL {
        let derived = derive_contract(&derive(v));
        assert_eq!(
            derived,
            v.contract(),
            "{v}: derived contract diverged from the hand-maintained table"
        );
    }
}

/// Per-element event streams of the generated kernels equal the
/// handwritten kernels' under **both** addressing conventions — the same
/// loads, stores, flops and register events in the same order.
#[test]
fn generated_event_streams_match_handwritten_under_both_layouts() {
    let fx = Fixture::new();
    let input = fx.input();
    let ne = input.mesh.num_elements();
    let nn = input.mesh.num_nodes();
    for v in Variant::ALL {
        let prog = derive(v);
        for e in [0, ne / 2, ne - 1] {
            for lay in [Layout::gpu(e, ne, nn), Layout::cpu(e, CPU_VECTOR_DIM, nn)] {
                let hand = trace_element(v, &input, e, &lay);
                let generated = trace_generated(&prog, &input, e, &lay);
                assert_eq!(
                    hand.events, generated.events,
                    "{v} element {e}: generated stream diverged"
                );
            }
        }
    }
}

/// Whole-mesh serial assembly through `KernelImpl::Generated` is bitwise
/// identical to the handwritten variant.
#[test]
fn generated_serial_output_is_bitwise_identical() {
    let fx = Fixture::new();
    let input = fx.input();
    for v in Variant::ALL {
        let kernel = CompiledKernel::new(derive(v));
        let hand = assemble_serial(v, &input);
        let generated =
            assemble_serial_with(KernelImpl::Generated(&kernel), &input, ExecMode::Scalar);
        assert_eq!(
            generated.max_abs_diff(&hand),
            0.0,
            "{v}: generated serial assembly diverged from handwritten"
        );
    }
}

/// Bitwise output parity across every parallel strategy × 1/2/8 worker
/// caps: a generated kernel dropped into `assemble_parallel_with` visits
/// elements in the same deterministic order as the handwritten one, so the
/// assembled RHS must match bit for bit — not merely within tolerance.
#[test]
fn generated_parallel_output_is_bitwise_identical_across_strategies_and_caps() {
    let fx = Fixture::new();
    let input = fx.input();
    let strategies = [
        ParallelStrategy::TwoPhase,
        ParallelStrategy::colored(&fx.mesh),
        ParallelStrategy::partitioned(&fx.mesh, 8),
        ParallelStrategy::sharded(&fx.mesh, 8),
    ];
    for v in Variant::ALL {
        let kernel = CompiledKernel::new(derive(v));
        for cap in [1, 2, 8] {
            par::set_thread_cap(Some(cap));
            for strategy in &strategies {
                let hand = assemble_parallel_with(v, &input, strategy, ExecMode::Scalar);
                let generated = assemble_parallel_with(
                    KernelImpl::Generated(&kernel),
                    &input,
                    strategy,
                    ExecMode::Scalar,
                );
                assert_eq!(
                    generated.max_abs_diff(&hand),
                    0.0,
                    "{v} × {} at cap {cap}: generated assembly diverged",
                    strategy.name()
                );
            }
        }
    }
    par::set_thread_cap(None);
}

/// The derivation chain is really a chain: each pass's output feeds the
/// next, and the derived programs carry the right variant tags and
/// workspace footprints (the paper's 441 → 103 → 0 trajectory).
#[test]
fn derivation_chain_carries_the_paper_footprint_trajectory() {
    for v in Variant::ALL {
        let prog = derive(v);
        assert_eq!(prog.variant, v);
        assert_eq!(
            prog.nvalues(),
            v.nvalues(),
            "{v}: derived workspace footprint diverged"
        );
    }
}
