//! Reproduction assertions: the qualitative claims of every table and
//! figure, checked against the models on a small case (the binaries print
//! the full tables; these tests pin the *shape* in CI).

use alya_bench::case::Case;
use alya_bench::profile::{cpu_report, gpu_report};
use alya_bench::PAPER_ELEMS;
use alya_core::listing3::{trace, TempMapping};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::cpu::CpuModel;
use alya_machine::energy::{efficiency_ratio, PowerSpec};
use alya_machine::gpu::{GpuModel, GpuReport};
use alya_machine::roofline::{Roofline, RooflineClass};
use alya_machine::spec::{CpuSpec, GpuSpec};
use alya_machine::trace::TraceCounts;
use alya_machine::RegisterAllocator;

struct Setup {
    case: Case,
    nut: Vec<f64>,
}

impl Setup {
    fn new() -> Self {
        let case = Case::bolund(6_000);
        let nut = compute_nu_t(&case.input());
        Self { case, nut }
    }

    fn input(&self) -> alya_core::AssemblyInput<'_> {
        let mut input = self.case.input();
        input.nu_t = Some(&self.nut);
        input
    }
}

fn small_gpu() -> GpuModel {
    let mut m = GpuModel::new(GpuSpec::a100_40gb());
    m.sample_sms = 1;
    m.waves = 1;
    m
}

fn small_cpu() -> CpuModel {
    let mut m = CpuModel::new(CpuSpec::icelake_8360y());
    m.sample_packs = 24;
    m
}

fn gpu_all(setup: &Setup) -> Vec<GpuReport> {
    let model = small_gpu();
    let input = setup.input();
    Variant::ALL
        .iter()
        .map(|&v| gpu_report(v, &input, &model, PAPER_ELEMS))
        .collect()
}

#[test]
fn table2_gpu_orderings() {
    let setup = Setup::new();
    let r = gpu_all(&setup);
    let (b, p, rs, rsp, rspr) = (&r[0], &r[1], &r[2], &r[3], &r[4]);

    // Runtime strictly improves along the paper's path B -> P and B -> RS
    // -> RSP -> RSPR (RSP/RSPR may tie at the compute roof).
    assert!(b.runtime > p.runtime);
    assert!(b.runtime > rs.runtime);
    assert!(rs.runtime > rsp.runtime);
    assert!(rsp.runtime >= rspr.runtime * 0.99);
    // The headline: a large end-to-end factor.
    assert!(
        b.runtime / rspr.runtime > 20.0,
        "B->RSPR only {:.1}x",
        b.runtime / rspr.runtime
    );

    // Privatization converts global traffic to local traffic.
    assert!(p.global_ldst < 0.2 * b.global_ldst);
    assert!(p.local_ldst > 10.0 * b.local_ldst.max(1.0));
    // Specialization removes ~3-6x of the flops.
    assert!(b.flops / rs.flops > 3.0);
    // DRAM volume collapses down the waterfall.
    assert!(b.dram_volume > 4.0 * rs.dram_volume);
    assert!(rs.dram_volume > 3.0 * rsp.dram_volume);
    // Register pressure falls monotonically after specialization.
    assert!(b.registers >= rs.registers);
    assert!(rs.registers > rsp.registers);
    assert!(rsp.registers > rspr.registers);
    // ... and occupancy rises.
    assert!(rspr.occupancy > b.occupancy);
}

#[test]
fn table1_cpu_orderings() {
    let setup = Setup::new();
    let model = small_cpu();
    let input = setup.input();
    let b = cpu_report(Variant::B, &input, &model, PAPER_ELEMS);
    let rs = cpu_report(Variant::Rs, &input, &model, PAPER_ELEMS);
    let rsp = cpu_report(Variant::Rsp, &input, &model, PAPER_ELEMS);

    assert!(b.runtime_1c > rs.runtime_1c);
    assert!(rs.runtime_1c > rsp.runtime_1c);
    assert!(
        b.runtime_1c / rsp.runtime_1c > 3.0,
        "CPU B->RSP only {:.1}x",
        b.runtime_1c / rsp.runtime_1c
    );
    // The CPU baseline is cache-friendly (the paper's 74% L1, 98% L2/L3):
    // VECTOR_DIM=16 workspaces live in L1.
    assert!(b.l1_effectiveness > 0.6);
    // DRAM volumes stay low and similar — the paper's point that the CPU
    // baseline is NOT memory-starved, just instruction-bloated.
    assert!(b.dram_volume < 600.0);
    assert!(b.ldst_ops > 5.0 * rsp.ldst_ops);
}

#[test]
fn fig2_scaling_shape() {
    let setup = Setup::new();
    let model = small_cpu();
    let input = setup.input();
    let rsp = cpu_report(Variant::Rsp, &input, &model, PAPER_ELEMS);

    // Linear region: 1 -> 17 workers at the same clock.
    let t1 = model.scale(&rsp, PAPER_ELEMS, 1);
    let t17 = model.scale(&rsp, PAPER_ELEMS, 17);
    assert!((t1 / t17 / 17.0 - 1.0).abs() < 0.05);
    // Turbo kink: the 18th worker helps less than 18/17.
    let t18 = model.scale(&rsp, PAPER_ELEMS, 18);
    let gain = t17 / t18;
    assert!(gain < 18.0 / 17.0, "no turbo kink: gain {gain}");
    // But never a slowdown.
    assert!(gain > 0.95);
    // Full node still much faster than one core.
    let t71 = model.scale(&rsp, PAPER_ELEMS, 71);
    assert!(t1 / t71 > 40.0);
}

#[test]
fn fig3_roofline_migration() {
    let setup = Setup::new();
    let r = gpu_all(&setup);
    let chart = Roofline::a100(&GpuSpec::a100_40gb());
    let ai = |rep: &GpuReport| rep.flops / rep.dram_volume.max(1e-30);

    // The baseline sits deep in the memory-bound region...
    assert_eq!(chart.classify(ai(&r[0])), RooflineClass::MemoryBound);
    // ... intensity increases along the waterfall ...
    assert!(ai(&r[2]) > ai(&r[0]));
    assert!(ai(&r[3]) > ai(&r[2]));
    // ... and the final variant crosses the knee.
    assert_eq!(chart.classify(ai(&r[4])), RooflineClass::ComputeBound);
}

#[test]
fn table3_store_semantics() {
    // Counts only (the table3 binary also measures volumes): 9/1/1 global
    // stores and 0/8/0 local stores per thread.
    for (mapping, glob, loc) in [
        (TempMapping::Global, 9u64, 0u64),
        (TempMapping::Local, 1, 8),
        (TempMapping::Registers, 1, 0),
    ] {
        let mut ev = trace(mapping, 5, 512);
        if mapping == TempMapping::Registers {
            ev = RegisterAllocator::new(64).allocate(&ev).events;
        }
        let c = TraceCounts::from_events(&ev);
        assert_eq!(c.global_stores, glob, "{mapping:?}");
        assert_eq!(c.local_stores, loc, "{mapping:?}");
    }
}

#[test]
fn energy_section_vi() {
    let setup = Setup::new();
    let gpu = gpu_all(&setup);
    let model = small_cpu();
    let input = setup.input();
    let cpu_rsp = cpu_report(Variant::Rsp, &input, &model, PAPER_ELEMS);

    let power = PowerSpec::alex_fritz();
    let t_gpu = gpu[4].runtime; // RSPR
    let t_cpu = model.scale(&cpu_rsp, PAPER_ELEMS, 71);
    // Optimized: GPU clearly more energy-efficient.
    let ratio = efficiency_ratio(&power, t_gpu, t_cpu);
    assert!(ratio > 2.0, "optimized ratio {ratio}");
    // Baseline: the advantage shrinks dramatically (the paper: inverts).
    let cpu_b = cpu_report(Variant::B, &input, &model, PAPER_ELEMS);
    let base_ratio = efficiency_ratio(&power, gpu[0].runtime, model.scale(&cpu_b, PAPER_ELEMS, 71));
    assert!(
        base_ratio < 0.5 * ratio,
        "baseline ratio {base_ratio} vs optimized {ratio}"
    );
}

#[test]
fn register_counts_follow_the_paper() {
    let setup = Setup::new();
    let r = gpu_all(&setup);
    // B and P max out the register file.
    assert_eq!(r[0].registers, 255);
    assert_eq!(r[1].registers, 255);
    // RS lands in the 160..200 window (paper: 184).
    assert!(
        (160..=200).contains(&r[2].registers),
        "RS {}",
        r[2].registers
    );
    // RSP in 120..160 (paper: 148), RSPR below it (paper: 128).
    assert!(
        (120..=160).contains(&r[3].registers),
        "RSP {}",
        r[3].registers
    );
    assert!(r[4].registers < r[3].registers);
}
