//! Pooled-service isolation: a recycled session slot must be
//! indistinguishable from a fresh one. The pool may keep solver state,
//! scratch buffers and telemetry contexts alive across sessions — but
//! the moment that reuse becomes *observable* in the numbers, pooling
//! has broken the service contract. These tests pin the two ways reuse
//! could leak: sequential slot recycling across *different* cases, and
//! cross-tenant interleaving under concurrent admission.

use std::sync::Arc;
use std::thread;

use alya_analyze::serve::{check_report, FAIRNESS_BAND};
use alya_core::Variant;
use alya_mesh::BoxMeshBuilder;
use alya_serve::{PoolConfig, Service, ServiceConfig, SessionSpec, SharedCase, WorkKind};
use alya_solver::StepConfig;

fn service(capacity: usize, stripes: usize) -> Service {
    Service::new(ServiceConfig {
        pool: PoolConfig {
            capacity,
            stripes,
            leak_slot_state_for_audit: false,
        },
        ..ServiceConfig::default()
    })
}

fn case_a() -> Arc<SharedCase> {
    let mesh = BoxMeshBuilder::new(3, 3, 3).jitter(0.1).seed(11).build();
    let mut cfg = StepConfig::default();
    cfg.dt = 4e-4;
    Arc::new(SharedCase::new("case-a", mesh, cfg, Variant::Rsp, |p| {
        [0.2 + 0.4 * p[2], 0.1 * (3.0 * p[0]).sin(), 0.0]
    }))
}

fn case_b() -> Arc<SharedCase> {
    // A genuinely different case: other mesh resolution, other time step,
    // other inflow — a cold rebuild in a recycled slot, not a warm rewind.
    let mesh = BoxMeshBuilder::new(4, 3, 2).jitter(0.05).seed(23).build();
    let mut cfg = StepConfig::default();
    cfg.dt = 2e-4;
    Arc::new(SharedCase::new("case-b", mesh, cfg, Variant::Rspr, |p| {
        [0.05 * p[1], -0.3 * p[2], 0.1]
    }))
}

/// Runs one session of `spec` on a throwaway single-slot pool and returns
/// its state digest — the fresh-pool reference a recycled slot must match.
fn fresh_digest(spec: &SessionSpec) -> u64 {
    let svc = service(1, 1);
    let t = svc.add_tenant("fresh", 1, 1);
    svc.admit(t, spec).expect("fresh pool admits");
    svc.run_to_idle();
    let report = svc.report();
    assert_eq!(report.outcomes.len(), 1);
    report.outcomes[0].digest
}

/// The satellite contract: run a session, release it, re-admit a
/// *different* case into the same slot, and the results must be bitwise
/// identical to a fresh pool — across a cold rebuild (case switch), a
/// cold re-rebuild (switch back), and a warm rewind (same case again).
#[test]
fn recycled_slot_matches_a_fresh_pool_bitwise() {
    let (a, b) = (case_a(), case_b());
    let spec_a = SessionSpec::new(Arc::clone(&a), 3);
    let spec_b = SessionSpec::new(Arc::clone(&b), 3);
    let (ref_a, ref_b) = (fresh_digest(&spec_a), fresh_digest(&spec_b));

    let svc = service(1, 1);
    let t = svc.add_tenant("recycler", 1, 1);
    // a → b → a → a through the one slot: cold, cold, cold, warm.
    for spec in [&spec_a, &spec_b, &spec_a, &spec_a] {
        svc.admit(t, spec).expect("slot was drained");
        svc.run_to_idle();
    }
    let report = svc.report();
    assert_eq!(report.outcomes.len(), 4);
    for (i, out) in report.outcomes.iter().enumerate() {
        assert_eq!(out.slot, 0, "single-slot pool");
        assert_eq!(out.generation, i as u32, "generations count reuse");
        let expect = if out.case == "case-a" { ref_a } else { ref_b };
        assert_eq!(
            out.digest, expect,
            "session {i} ({}) in the recycled slot diverged from a fresh pool",
            out.case
        );
    }
    // The bind ledger proves which path each admission took.
    assert_eq!(report.cold_builds, 3, "a, b and the switch back are cold");
    assert_eq!(report.warm_binds, 1, "the final same-case re-admit is warm");
    let contract = check_report(&report);
    assert!(contract.is_clean(), "{contract}");
}

/// Eight tenants hammer one pool from eight threads; every session of the
/// same spec must still land on the fresh-pool digest, and the
/// deficit-round-robin ledger must stay inside the fairness band.
#[test]
fn eight_way_concurrent_tenants_stay_isolated() {
    const TENANTS: usize = 8;
    const SESSIONS_EACH: usize = 3;

    let a = case_a();
    let spec = SessionSpec::new(Arc::clone(&a), 2);
    let reference = fresh_digest(&spec);

    let svc = service(TENANTS, 4);
    let ids: Vec<u32> = (0..TENANTS)
        .map(|i| svc.add_tenant(&format!("tenant-{i}"), 1, 2))
        .collect();
    thread::scope(|s| {
        for &tenant in &ids {
            let svc = &svc;
            let spec = &spec;
            s.spawn(move || {
                let mut done = 0;
                while done < SESSIONS_EACH {
                    match svc.admit(tenant, spec) {
                        Ok(_) => done += 1,
                        // Quota or pool full: help drain the backlog.
                        Err(_) => {
                            svc.run_round();
                        }
                    }
                }
            });
        }
    });
    svc.run_to_idle();

    let report = svc.report();
    assert_eq!(report.outcomes.len(), TENANTS * SESSIONS_EACH);
    for out in &report.outcomes {
        assert_eq!(out.kind, WorkKind::Step);
        assert_eq!(
            out.digest, reference,
            "tenant {} leaked state into another tenant's session (slot {} gen {})",
            out.tenant, out.slot, out.generation
        );
    }
    for (i, t) in report.tenants.iter().enumerate() {
        assert_eq!(t.sessions, SESSIONS_EACH as u64, "tenant {i} lost sessions");
        assert_eq!(t.active, 0, "tenant {i} still holds slots after idle");
    }
    assert!(report.live == 0 && report.peak_live <= TENANTS);
    assert!(
        report.fairness_spread() <= FAIRNESS_BAND,
        "spread {} outside the no-starvation band",
        report.fairness_spread()
    );
    let contract = check_report(&report);
    assert!(contract.is_clean(), "{contract}");
}
