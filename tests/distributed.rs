//! Distributed-assembly equivalence and reproducibility: the rank-parallel
//! driver matches the serial reference for every variant at every rank
//! count, is bitwise reproducible at a fixed rank count whatever the
//! process-wide thread cap — and whether compute/exchange overlap is on
//! or off — honors the analyzer's comm contract on random meshes, and the
//! committed `BENCH_comm.json` matches the recomputed closed-form halo
//! budget and records a real overlap win. A pipelined run inside a
//! telemetry session must also emit a contract-exact Table-I profile and
//! a chrome trace whose halo-drain spans overlap interior assembly.

use alya_analyze::comm::{check_bench_comm, check_distributed};
use alya_core::{assemble_serial, AssemblyInput, DistributedDriver, Variant};
use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::{BoxMeshBuilder, Rng64, TetMesh};

const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn fields(mesh: &TetMesh) -> (VectorField, ScalarField, ScalarField) {
    let v = VectorField::from_fn(mesh, |p| {
        [
            p[2] * p[2] + 0.4 * (2.0 * p[1]).sin(),
            0.6 * p[0] - (3.0 * p[2]).cos(),
            0.3 * p[0] * p[1] - 0.2 * p[2],
        ]
    });
    let p = ScalarField::from_fn(mesh, |q| q[0] - 0.3 * q[1] + q[2] * q[2]);
    let t = ScalarField::zeros(mesh.num_nodes());
    (v, p, t)
}

#[test]
fn distributed_matches_serial_for_every_variant_and_rank_count() {
    let mesh = BoxMeshBuilder::new(4, 4, 3).jitter(0.12).seed(29).build();
    let (v, p, t) = fields(&mesh);
    let input = AssemblyInput::new(&mesh, &v, &p, &t)
        .props(ConstantProperties::AIR)
        .body_force([0.05, -0.02, -0.4]);
    for ranks in RANK_COUNTS {
        let driver = DistributedDriver::new(&mesh, ranks);
        for variant in Variant::ALL {
            let serial = assemble_serial(variant, &input);
            let scale = serial.max_abs().max(1e-12);
            let (rhs, report) = driver.assemble(variant, &input);
            let dev = rhs.max_abs_diff(&serial) / scale;
            assert!(dev < 1e-12, "{variant} × {ranks} ranks: deviation {dev}");
            assert!(report.all_delivered(), "{variant} × {ranks}: {report:#?}");
            // The exchange volume is a property of the decomposition, not
            // the variant: every variant ships the same halo.
            assert_eq!(report.total_bytes(), driver.expected_halo_bytes() as u64);
        }
    }
}

#[test]
fn distributed_assembly_is_bitwise_reproducible_across_thread_caps() {
    use alya_machine::par;
    let mesh = BoxMeshBuilder::new(4, 3, 3).jitter(0.1).seed(43).build();
    let (v, p, t) = fields(&mesh);
    let input = AssemblyInput::new(&mesh, &v, &p, &t).props(ConstantProperties::AIR);
    for ranks in [2, 8] {
        let driver = DistributedDriver::new(&mesh, ranks);
        // The rank count is fixed by the decomposition; a process-wide
        // worker cap changes scheduling only, so the deterministic
        // sender-ordered combine must reproduce every bit.
        par::set_thread_cap(Some(1));
        let (a, ra) = driver.assemble(Variant::Rspr, &input);
        par::set_thread_cap(Some(8));
        let (b, rb) = driver.assemble(Variant::Rspr, &input);
        par::set_thread_cap(None);
        assert_eq!(
            a.max_abs_diff(&b),
            0.0,
            "{ranks} ranks: combine order leaked into the result"
        );
        // The accounting is deterministic too.
        assert_eq!(ra, rb, "{ranks} ranks: nondeterministic comm report");
    }
}

#[test]
fn overlap_on_and_off_agree_bitwise_for_every_variant_and_rank_count() {
    let mesh = BoxMeshBuilder::new(4, 4, 3).jitter(0.11).seed(61).build();
    let (v, p, t) = fields(&mesh);
    let input = AssemblyInput::new(&mesh, &v, &p, &t)
        .props(ConstantProperties::AIR)
        .body_force([-0.03, 0.07, -0.3]);
    for ranks in RANK_COUNTS {
        let on = DistributedDriver::new(&mesh, ranks);
        let off = DistributedDriver::from_shard_set(on.shard_set().clone()).overlap(false);
        assert!(on.overlap_enabled() && !off.overlap_enabled());
        for variant in Variant::ALL {
            // Interior elements never touch boundary slots and both modes
            // assemble boundary elements first in the same order, so the
            // shipped halos — and therefore every combined bit — must
            // match exactly.
            let (a, ra) = on.assemble(variant, &input);
            let (b, rb) = off.assemble(variant, &input);
            assert_eq!(
                a.max_abs_diff(&b),
                0.0,
                "{variant} × {ranks} ranks: overlap changed a bit"
            );
            assert_eq!(ra, rb, "{variant} × {ranks} ranks: comm report diverged");
        }
    }
}

/// The PR-acceptance run: a 4-rank pipelined assembly on a mesh big
/// enough that every rank's interior spans many assembly chunks, run
/// inside a telemetry session. The live Table-I profile must show zero
/// deviation from the kernel contracts, the chrome-trace export must
/// parse, and the analyzer's telemetry pass must certify the lot —
/// including the time overlap between each rank's `halo-drain` and
/// `assemble-overlap` spans, the pipelining made visible.
#[test]
fn pipelined_run_emits_contract_exact_telemetry_and_an_overlapping_trace() {
    use alya_analyze::telemetry::{check_report, expectation};
    use alya_core::metrics;
    use alya_telemetry::export::validate_json;

    // 15×15×13 boxes → 17550 tets: >4k interior elements per rank, so
    // the drain stage is structurally guaranteed to interleave with the
    // chunked interior assembly on every rank.
    let mesh = BoxMeshBuilder::new(15, 15, 13)
        .jitter(0.05)
        .seed(11)
        .build();
    let (v, p, t) = fields(&mesh);
    let input = AssemblyInput::new(&mesh, &v, &p, &t).props(ConstantProperties::AIR);
    let driver = DistributedDriver::new(&mesh, 4);

    let session = alya_telemetry::session();
    let (_, comm) = driver.assemble(Variant::Rsp, &input);
    let report = session.finish();

    // Live Table-I profile: every counter at its closed-form rate.
    let profile = metrics::table_one(&report);
    assert!(profile.is_exact(), "{profile}");
    assert_eq!(profile.max_abs_deviation(), 0);

    // The chrome export is well-formed trace_event JSON.
    validate_json(&report.chrome_trace()).expect("chrome trace parses");

    // Pass 6 certifies counters, span nesting, comm budget, blocked-wait
    // and — on this mesh — the compute/exchange overlap evidence.
    let exp = expectation(&driver, Variant::Rsp, &comm, true);
    let checked = check_report(&report, &exp);
    assert!(checked.is_clean(), "{checked}");
    assert_eq!(checked.observed_elements, mesh.num_elements() as u64);
}

#[test]
fn live_exchanges_honor_the_comm_contract_on_random_meshes() {
    let mut rng = Rng64::new(0xD157);
    for _ in 0..6 {
        let nx = rng.range_usize(2, 5);
        let ny = rng.range_usize(2, 4);
        let nz = rng.range_usize(2, 4);
        let jitter = rng.range_f64(0.0, 0.2);
        let seed = rng.next_u64() % 1000;
        let ranks = rng.range_usize(2, 9);
        let mesh = BoxMeshBuilder::new(nx, ny, nz)
            .jitter(jitter)
            .seed(seed)
            .build();
        let (v, p, t) = fields(&mesh);
        let input = AssemblyInput::new(&mesh, &v, &p, &t).props(ConstantProperties::AIR);
        let (report, _, _) = check_distributed(&input, ranks);
        assert!(
            report.is_clean(),
            "{nx}×{ny}×{nz} mesh at {ranks} ranks: {report}"
        );
    }
}

#[test]
fn committed_bench_comm_report_matches_the_closed_form() {
    // tests/ compiles into alya-bench, so the workspace root is two up.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_comm.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed: {e}", path.display()));
    let report = check_bench_comm(&json);
    assert!(report.is_clean(), "{report}");
    assert!(report.rows_checked >= RANK_COUNTS.len(), "{report:?}");

    // The analyzer proves the overlap accounting self-consistent; the
    // claim that overlap actually *helps* is ours to hold: once several
    // ranks exchange real halo traffic, overlapped interior assembly must
    // have absorbed part of the blocked wait.
    for (ranks, win) in committed_overlap_wins(&json) {
        if ranks >= 4 {
            assert!(
                win > 0.0,
                "committed BENCH_comm.json shows no overlap win at {ranks} ranks ({win})"
            );
        }
    }
}

/// Pulls `(ranks, overlap_win)` out of each result row of the committed
/// report (one row per line, as `comm --json` renders it).
fn committed_overlap_wins(json: &str) -> Vec<(usize, f64)> {
    fn field(line: &str, name: &str) -> Option<f64> {
        let rest = line.split(&format!("\"{name}\": ")).nth(1)?;
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    }
    let rows: Vec<(usize, f64)> = json
        .lines()
        .filter_map(|l| {
            let ranks = field(l, "ranks")? as usize;
            Some((ranks, field(l, "overlap_win")?))
        })
        .collect();
    assert!(
        rows.iter().any(|&(r, _)| r >= 4),
        "committed report carries no rows at ≥4 ranks"
    );
    rows
}
