//! The always-on flight recorder is a pure observer: assembling with the
//! recorder on is **bitwise** identical to assembling with it off, for
//! every variant × strategy and for the pipelined distributed driver. A
//! seeded halo fault must leave a black-box dump naming the stalled
//! stage and the blocking rank, and the regression sentinel armed from
//! the committed bench baselines must stay quiet.
//!
//! The recorder's enabled gate and last-dump slot are process-global, so
//! every test that toggles or reads them serializes on [`GATE`].

use std::sync::Mutex;
use std::time::Duration;

use alya_analyze::probe::{check_sentinel_pairs, sentinel_pairs_from_workspace};
use alya_core::{
    assemble_parallel, assemble_serial, AssemblyInput, DistributedDriver, HaloFault,
    ParallelStrategy, Variant,
};
use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::BoxMeshBuilder;
use alya_probe as probe;

/// Serializes probe-global state across the tests in this binary.
static GATE: Mutex<()> = Mutex::new(());

fn lock_gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fields(mesh: &alya_mesh::TetMesh) -> (VectorField, ScalarField, ScalarField) {
    let v = VectorField::from_fn(mesh, |p| {
        [
            p[2] * p[2] + 0.4 * (2.0 * p[1]).sin(),
            0.6 * p[0] - (3.0 * p[2]).cos(),
            0.3 * p[0] * p[1] - 0.2 * p[2],
        ]
    });
    let p = ScalarField::from_fn(mesh, |q| q[0] - 0.3 * q[1] + q[2] * q[2]);
    let t = ScalarField::zeros(mesh.num_nodes());
    (v, p, t)
}

fn bits_equal(a: &VectorField, b: &VectorField) -> bool {
    let (xs, ys) = (a.as_slice(), b.as_slice());
    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[test]
fn recorder_on_or_off_never_changes_a_bit_across_strategies() {
    let _g = lock_gate();
    probe::init();
    let mesh = BoxMeshBuilder::new(4, 3, 3).jitter(0.12).seed(23).build();
    let (v, p, t) = fields(&mesh);
    let input = AssemblyInput::new(&mesh, &v, &p, &t)
        .props(ConstantProperties::AIR)
        .body_force([0.0, 0.1, -0.3]);
    let strategies = [
        ParallelStrategy::TwoPhase,
        ParallelStrategy::colored(&mesh),
        ParallelStrategy::partitioned(&mesh, 8),
        ParallelStrategy::sharded(&mesh, 8),
    ];
    let sweep = |variant| {
        let mut out = vec![assemble_serial(variant, &input)];
        out.extend(
            strategies
                .iter()
                .map(|s| assemble_parallel(variant, &input, s)),
        );
        out
    };
    for variant in Variant::ALL {
        probe::set_enabled(true);
        let on = sweep(variant);
        probe::set_enabled(false);
        let off = sweep(variant);
        probe::set_enabled(true);
        for (a, b) in on.iter().zip(&off) {
            assert!(
                bits_equal(a, b),
                "{variant}: the flight recorder perturbed the RHS"
            );
        }
    }
}

#[test]
fn recorder_on_or_off_never_changes_a_distributed_bit() {
    let _g = lock_gate();
    probe::init();
    let mesh = BoxMeshBuilder::new(4, 4, 3).jitter(0.1).seed(51).build();
    let (v, p, t) = fields(&mesh);
    let input = AssemblyInput::new(&mesh, &v, &p, &t).props(ConstantProperties::AIR);
    for ranks in [2, 4] {
        let driver = DistributedDriver::new(&mesh, ranks);
        probe::set_enabled(true);
        let before = probe::total_events();
        let (a, ra) = driver.assemble(Variant::Rspr, &input);
        assert!(
            probe::total_events() > before,
            "{ranks} ranks: the enabled recorder saw nothing"
        );
        probe::set_enabled(false);
        let (b, rb) = driver.assemble(Variant::Rspr, &input);
        probe::set_enabled(true);
        assert!(
            bits_equal(&a, &b),
            "{ranks} ranks: the flight recorder perturbed the distributed RHS"
        );
        assert_eq!(ra, rb, "{ranks} ranks: recording changed the comm report");
    }
}

#[test]
fn a_seeded_stall_leaves_a_dump_naming_stage_and_blocking_rank() {
    let _g = lock_gate();
    probe::init();
    probe::set_enabled(true);
    probe::clear_last_dump();
    let mesh = BoxMeshBuilder::new(3, 3, 2).build();
    let (v, p, t) = fields(&mesh);
    let input = AssemblyInput::new(&mesh, &v, &p, &t);
    let driver = DistributedDriver::new(&mesh, 4).stall_timeout(Duration::from_millis(150));
    // Withhold a message that is really owed, so exactly one rank starves.
    let plan = driver.exchange_plan();
    let (from, to) = (0..4u32)
        .find_map(|r| plan.rank(r as usize).sends.first().map(|&(to, _)| (r, to)))
        .expect("a 4-rank decomposition always exchanges something");
    let stall = driver
        .assemble_sched(Variant::Rsp, &input, Some(HaloFault { from, to }))
        .unwrap_err();
    assert!(stall.stalled.contains(&"halo-drain"));

    let dump = probe::last_dump().expect("the watchdog stall captured a black box");
    assert!(
        dump.contains("stalled in \"halo-drain\""),
        "dump does not diagnose the drain stage:\n{dump}"
    );
    assert!(
        dump.contains(&format!("waiting on rank {from}")),
        "dump does not blame the withheld rank {from}:\n{dump}"
    );
    // The same snapshot exports a parsing chrome trace.
    let trace = probe::snapshot("probe test").chrome_trace();
    alya_telemetry::export::validate_json(&trace).expect("black-box trace parses");
}

#[test]
fn the_sentinel_is_quiet_on_the_committed_baselines_and_fires_on_a_skew() {
    // Pure sentinel math — no recorder-global state beyond drift events,
    // but `observe` records into the rings, so still serialize.
    let _g = lock_gate();
    probe::init();
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let pairs = sentinel_pairs_from_workspace(&root)
        .expect("the workspace commits BENCH_drivers.json and BENCH_comm.json");
    let (baselines, violations) = check_sentinel_pairs(&pairs);
    assert!(baselines > 0);
    assert!(violations.is_empty(), "{violations:?}");

    // Halve one throughput: exactly one drift, naming the key.
    let mut skewed = pairs;
    let idx = skewed
        .iter()
        .position(|p| p.key.starts_with("melem_per_s/"))
        .expect("throughput rows present");
    skewed[idx].measured *= 0.5;
    let key = skewed[idx].key.clone();
    let (_, drifts) = check_sentinel_pairs(&skewed);
    assert_eq!(drifts.len(), 1, "{drifts:?}");
    assert!(drifts[0].contains(&key), "{}", drifts[0]);
}
