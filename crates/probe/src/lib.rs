//! # alya-probe — always-on flight recorder, black-box dumps, and the
//! # performance-regression sentinel
//!
//! The paper's method is measurement-driven: every optimization step is
//! attributed to measured traffic and runtime deltas. This crate keeps
//! that discipline alive *at runtime*:
//!
//! * **Flight recorder** — every thread that touches the instrumented
//!   runtime gets a bounded, pre-allocated ring buffer of recent events
//!   (span begin/end, pipeline stage begin/end, comm post/block,
//!   counter deltas, warnings), stamped on the same monotonic clock
//!   `alya-telemetry` uses. Recording is allocation-free after the ring
//!   is built (`alya:hot`-clean: fixed-slot writes behind an
//!   uncontended per-thread mutex), and a relaxed atomic gate makes the
//!   disabled path two loads. Rings of finished threads are retained
//!   for post-mortems and recycled for new threads, so the registry is
//!   bounded by the peak live thread count.
//! * **Black-box dumps** ([`dump`]) — on a scheduler watchdog stall, an
//!   injected [`HaloFault`](`alya_core`), an analyzer violation, or an
//!   explicit [`capture`], the last events of every thread are stitched
//!   into a causally-ordered human-readable report plus a chrome-trace
//!   file reusing `telemetry::export`.
//! * **Regression sentinel** ([`sentinel`]) — compares live
//!   measurements (Melem/s, halo bytes, blocked-wait fractions) against
//!   committed `BENCH_*.json` baselines and closed-form predictions,
//!   emitting structured [`sentinel::Drift`]s outside a configurable
//!   band. Analyzer pass 11 proves the sentinel is silent on the
//!   committed baselines and fires on a seeded skew
//!   (`audit --seed-violation perf-regression`).
//!
//! The recorder is on by default ("always-on"): pass 11 and the
//! equivalence suite pin recorder-on bitwise identical to recorder-off,
//! so there is no accuracy reason to turn it off.
#![forbid(unsafe_code)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use alya_telemetry as telemetry;
use alya_telemetry::ProbeEvent;

pub mod dump;
pub mod sentinel;

pub use dump::{BlackBox, ThreadLog};
pub use sentinel::{Drift, Sentinel, ServiceSample};

/// Events each per-thread ring retains; at 64 bytes per slot a ring is
/// 128 KiB — deep enough to hold the full five-stage pipeline history
/// of several assemblies, small enough to keep always-on.
pub const RING_CAP: usize = 2048;

/// Inline label bytes per event (longer names are truncated at a char
/// boundary) — labels are copied, never allocated, on the record path.
pub const TAG_LEN: usize = 40;

/// A fixed-size inline label: the flight recorder never allocates to
/// name an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag {
    len: u8,
    bytes: [u8; TAG_LEN],
}

impl Tag {
    /// Copies `s` (truncated to [`TAG_LEN`] at a char boundary).
    pub fn new(s: &str) -> Self {
        let raw = s.as_bytes();
        let mut n = raw.len().min(TAG_LEN);
        while n > 0 && !s.is_char_boundary(n) {
            n -= 1;
        }
        let mut bytes = [0u8; TAG_LEN];
        bytes[..n].copy_from_slice(&raw[..n]);
        Self {
            len: n as u8,
            bytes,
        }
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("<non-utf8>")
    }
}

/// What one recorded event describes. The `a`/`b` payload of
/// [`Event`] is kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A telemetry RAII span opened (`a`/`b` unused).
    SpanBegin,
    /// A telemetry span completed; `a` = start ns on the shared clock.
    SpanEnd,
    /// An `alya-sched` pipeline stage started executing (`a`/`b` unused).
    StageBegin,
    /// A pipeline stage retired (`a`/`b` unused; paired with the last
    /// unmatched [`EventKind::StageBegin`] of the same name).
    StageEnd,
    /// A halo message posted; `a` = destination rank, `b` = bytes.
    CommPost,
    /// A blocking receive returned a message; `a` = peer rank,
    /// `b` = nanoseconds spent blocked.
    CommBlock,
    /// A blocking receive timed out with nothing from the peer;
    /// `a` = peer rank, `b` = nanoseconds spent blocked. A stalled rank
    /// leaves a trail of these naming the rank it is waiting on.
    CommTimeout,
    /// A counter delta; `a` = amount added (the tag names the counter).
    Counter,
    /// A warning crossed the telemetry warn channel (tag = truncated
    /// message; `a`/`b` unused).
    Warn,
    /// The sentinel flagged a baseline drift; `a` = measured as
    /// permille of expected (the tag names the drifted key).
    Drift,
}

/// One flight-recorder event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Timestamp, nanoseconds on [`telemetry::now_ns`]'s clock.
    pub at_ns: u64,
    /// Event class.
    pub kind: EventKind,
    /// Inline label (span/stage/counter name, warn text, drift key).
    pub name: Tag,
    /// Kind-specific payload (see [`EventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub b: u64,
}

/// One thread's bounded event history.
struct Ring {
    /// Fixed [`RING_CAP`] slots, written round-robin.
    events: Vec<Event>,
    /// Next slot to write.
    head: usize,
    /// Live slots (saturates at [`RING_CAP`]).
    used: usize,
    /// Events ever recorded; `seq - used` is how many the ring evicted.
    seq: u64,
    /// Thread label (thread name, or "rank N" once adopted).
    label: Tag,
    /// Rank this thread executes, when it told us via [`set_thread_rank`].
    rank: Option<u32>,
    /// The owning thread exited; the data stays for post-mortems until
    /// a new thread recycles the slot.
    retired: bool,
}

impl Ring {
    fn store_event(&mut self, ev: Event) {
        self.events[self.head] = ev;
        self.head = (self.head + 1) % RING_CAP;
        if self.used < RING_CAP {
            self.used += 1;
        }
        self.seq += 1;
    }

    /// Events oldest→newest (cold: dump path only).
    fn ordered(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.used);
        let start = (self.head + RING_CAP - self.used) % RING_CAP;
        for i in 0..self.used {
            out.push(self.events[(start + i) % RING_CAP]);
        }
        out
    }
}

struct ProbeRegistry {
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    enabled: AtomicBool,
    last_dump: Mutex<Option<String>>,
    /// Events recorded by retired rings that were since recycled (their
    /// `seq` restarts at zero) — keeps [`total_events`] monotonic.
    recycled: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// alya:cold: one-time process init behind the OnceLock — the hot record
// path only ever sees the already-initialized registry.
fn fresh_registry() -> ProbeRegistry {
    telemetry::install_probe_sink(forward_telemetry_event);
    ProbeRegistry {
        rings: Mutex::new(Vec::new()),
        enabled: AtomicBool::new(true),
        last_dump: Mutex::new(None),
        recycled: AtomicU64::new(0),
    }
}

fn preg() -> &'static ProbeRegistry {
    static REG: OnceLock<ProbeRegistry> = OnceLock::new();
    REG.get_or_init(fresh_registry)
}

/// Owns a thread's ring registration; marks it retired (data kept for
/// post-mortems, slot recyclable) when the thread exits.
struct RingHandle(Arc<Mutex<Ring>>);

impl Drop for RingHandle {
    fn drop(&mut self) {
        lock(&self.0).retired = true;
    }
}

thread_local! {
    static RING: RefCell<Option<RingHandle>> = const { RefCell::new(None) };
}

/// Builds (or recycles) a ring for the calling thread and registers it.
// alya:cold: runs once per thread lifetime; every later record call
// takes the TLS fast path.
fn init_ring() -> RingHandle {
    let label = std::thread::current()
        .name()
        .map(Tag::new)
        .unwrap_or_else(|| Tag::new("thread"));
    let rings = &mut *lock(&preg().rings);
    for arc in rings.iter() {
        let mut r = lock(arc);
        if r.retired {
            preg().recycled.fetch_add(r.seq, Ordering::Relaxed);
            r.retired = false;
            r.head = 0;
            r.used = 0;
            r.seq = 0;
            r.rank = None;
            r.label = label;
            return RingHandle(Arc::clone(arc));
        }
    }
    let blank = Event {
        at_ns: 0,
        kind: EventKind::Counter,
        name: Tag::new(""),
        a: 0,
        b: 0,
    };
    let arc = Arc::new(Mutex::new(Ring {
        events: vec![blank; RING_CAP],
        head: 0,
        used: 0,
        seq: 0,
        label,
        rank: None,
        retired: false,
    }));
    rings.push(Arc::clone(&arc));
    RingHandle(arc)
}

/// Installs the telemetry sink and materializes the registry. Recording
/// works without calling this (any record call initializes lazily), but
/// bench binaries call it first thing so even pre-session spans flow.
pub fn init() {
    let _ = preg();
}

/// Turns the flight recorder on or off process-wide. It is **on** by
/// default; pass 11 pins recorder-on bitwise identical to recorder-off,
/// so disabling is for overhead experiments, not correctness.
pub fn set_enabled(on: bool) {
    preg().enabled.store(on, Ordering::Relaxed);
}

/// Whether the flight recorder is currently recording.
pub fn enabled() -> bool {
    preg().enabled.load(Ordering::Relaxed)
}

/// Nanoseconds on the shared monotonic clock (same timeline as every
/// telemetry span, so dumps and traces align).
pub fn probe_clock_ns() -> u64 {
    telemetry::now_ns()
}

fn record_event(kind: EventKind, name: Tag, a: u64, b: u64) {
    if !preg().enabled.load(Ordering::Relaxed) {
        return;
    }
    let at_ns = telemetry::now_ns();
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            *slot = Some(init_ring());
        }
        let Some(handle) = slot.as_ref() else {
            return;
        };
        lock(&handle.0).store_event(Event {
            at_ns,
            kind,
            name,
            a,
            b,
        });
    });
}

/// Tags the calling thread's ring as executing `rank` — the comm
/// runtime calls this so dumps can name ranks, not just threads.
pub fn set_thread_rank(rank: u32) {
    if !preg().enabled.load(Ordering::Relaxed) {
        return;
    }
    RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            *slot = Some(init_ring());
        }
        let Some(handle) = slot.as_ref() else {
            return;
        };
        let mut r = lock(&handle.0);
        r.rank = Some(rank);
        let mut buf = [0u8; TAG_LEN];
        let prefix = b"rank ";
        buf[..prefix.len()].copy_from_slice(prefix);
        let digits = format_u32(rank, &mut buf[prefix.len()..]);
        r.label = Tag::new(std::str::from_utf8(&buf[..prefix.len() + digits]).unwrap_or("rank"));
    });
}

/// Writes `v` in decimal into `out`, returning the digit count (no
/// allocation; `out` must hold at least 10 bytes).
fn format_u32(v: u32, out: &mut [u8]) -> usize {
    let mut tmp = [0u8; 10];
    let mut n = 0;
    let mut v = v;
    loop {
        tmp[n] = b'0' + (v % 10) as u8;
        n += 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for i in 0..n {
        out[i] = tmp[n - 1 - i];
    }
    n
}

/// Records a pipeline stage starting on this thread.
pub fn note_stage_begin(name: &'static str) {
    record_event(EventKind::StageBegin, Tag::new(name), 0, 0);
}

/// Records a pipeline stage retiring on this thread.
pub fn note_stage_end(name: &'static str) {
    record_event(EventKind::StageEnd, Tag::new(name), 0, 0);
}

/// Records a halo message posted to `peer`.
pub fn note_comm_post(peer: u32, bytes: u64) {
    record_event(
        EventKind::CommPost,
        Tag::new("halo-send"),
        u64::from(peer),
        bytes,
    );
}

/// Records the outcome of a blocking receive: `got` says whether the
/// peer's message arrived before the wait gave up.
pub fn note_comm_block(peer: u32, waited_ns: u64, got: bool) {
    let kind = if got {
        EventKind::CommBlock
    } else {
        EventKind::CommTimeout
    };
    record_event(kind, Tag::new("halo-wait"), u64::from(peer), waited_ns);
}

/// Records a counter delta under `name`.
pub fn note_counter(name: &'static str, delta: u64) {
    if delta == 0 {
        return;
    }
    record_event(EventKind::Counter, Tag::new(name), delta, 0);
}

/// Records a warning (also reachable via the telemetry sink; this entry
/// point serves code that wants the recorder without the warn channel).
pub fn note_warn(message: &str) {
    record_event(EventKind::Warn, Tag::new(message), 0, 0);
}

/// Records a sentinel drift on `key`; `measured_permille` is the live
/// value as permille of the baseline (1000 = exactly on baseline).
pub fn note_drift(key: &str, measured_permille: u64) {
    record_event(EventKind::Drift, Tag::new(key), measured_permille, 0);
}

/// The telemetry sink: forwards every span begin/end and warning into
/// the calling thread's ring.
fn forward_telemetry_event(ev: &ProbeEvent<'_>) {
    match ev {
        ProbeEvent::SpanBegin { name, .. } => {
            record_event(EventKind::SpanBegin, Tag::new(name), 0, 0);
        }
        ProbeEvent::SpanEnd { name, start_ns, .. } => {
            record_event(EventKind::SpanEnd, Tag::new(name), *start_ns, 0);
        }
        ProbeEvent::Warn { message, .. } => {
            record_event(EventKind::Warn, Tag::new(message), 0, 0);
        }
    }
}

/// Total events ever recorded across every ring (including evicted
/// ones) — the "did the recorder actually see the run" probe.
pub fn total_events() -> u64 {
    let live: u64 = lock(&preg().rings).iter().map(|r| lock(r).seq).sum();
    preg().recycled.load(Ordering::Relaxed) + live
}

/// Copies every ring (live and retired) into a [`BlackBox`] snapshot.
pub fn snapshot(reason: &str) -> BlackBox {
    let at_ns = telemetry::now_ns();
    let threads = lock(&preg().rings)
        .iter()
        .map(|arc| {
            let r = lock(arc);
            ThreadLog {
                label: r.label.as_str().to_string(),
                rank: r.rank,
                retired: r.retired,
                dropped: r.seq - r.used as u64,
                events: r.ordered(),
            }
        })
        .collect();
    BlackBox {
        reason: reason.to_string(),
        at_ns,
        warn_overflow: telemetry::warn_overflow(),
        threads,
    }
}

/// Takes a snapshot, renders it, stores it as the process's last dump
/// (readable via [`last_dump`]) and returns the rendered report. The
/// distributed driver calls this automatically on a watchdog stall.
pub fn capture(reason: &str) -> String {
    let text = snapshot(reason).render();
    *lock(&preg().last_dump) = Some(text.clone());
    text
}

/// The most recent [`capture`] output, if any.
pub fn last_dump() -> Option<String> {
    lock(&preg().last_dump).clone()
}

/// Forgets the stored dump (tests isolate themselves with this).
pub fn clear_last_dump() {
    *lock(&preg().last_dump) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_truncate_at_char_boundaries() {
        let t = Tag::new("short");
        assert_eq!(t.as_str(), "short");
        let long = "x".repeat(TAG_LEN + 20);
        assert_eq!(Tag::new(&long).as_str().len(), TAG_LEN);
        // Multibyte char straddling the cut is dropped whole.
        let awkward = format!("{}é", "a".repeat(TAG_LEN - 1));
        let t = Tag::new(&awkward);
        assert_eq!(t.as_str(), &awkward[..TAG_LEN - 1]);
    }

    #[test]
    fn rings_are_bounded_and_count_evictions() {
        set_enabled(true);
        for i in 0..(RING_CAP + 7) {
            note_counter("overflow-test", i as u64 + 1);
        }
        let bb = snapshot("bound check");
        let me = bb
            .threads
            .iter()
            .find(|t| t.events.iter().any(|e| e.name.as_str() == "overflow-test"))
            .expect("this thread recorded");
        assert!(me.events.len() <= RING_CAP);
        assert!(me.dropped >= 7);
    }

    #[test]
    fn disabled_recorder_records_nothing_new() {
        note_counter("pre-disable", 1);
        let before = total_events();
        set_enabled(false);
        note_counter("while-disabled", 1);
        assert_eq!(total_events(), before);
        set_enabled(true);
        note_counter("post-enable", 1);
        assert!(total_events() > before);
    }

    #[test]
    fn warn_channel_overflow_is_counted_and_surfaced() {
        // This is the satellite fix's contract: the bounded warn channel
        // never loses messages silently. This test owns the process-wide
        // warn channel in this binary (no other test here warns).
        telemetry::drain_warnings();
        for i in 0..300 {
            telemetry::warn(format!("flood {i}"));
        }
        assert!(telemetry::warn_overflow() > 0);
        let drained = telemetry::drain_warnings();
        let last = drained.last().expect("drained something");
        assert!(
            last.contains("warning(s) dropped"),
            "synthetic overflow entry missing: {last:?}"
        );
        assert_eq!(telemetry::warn_overflow(), 0);
        // The flight recorder saw every message, including dropped ones.
        let bb = snapshot("warn overflow");
        let seen = bb
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.kind == EventKind::Warn && e.name.as_str().starts_with("flood"))
            .count();
        assert!(seen > 256, "recorder saw {seen} of 300 warnings");
    }
}
