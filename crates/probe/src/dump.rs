//! Post-mortem black-box rendering: stitch every thread's ring into a
//! causally-ordered human-readable report, diagnose who was waiting on
//! whom, and export the same window as a chrome trace through
//! `telemetry::export` — the file a stalled run leaves behind.

use std::fmt::Write as _;

use alya_telemetry::{export, SpanRecord, TelemetryReport};

use crate::{Event, EventKind};

/// One thread's copied ring at snapshot time (oldest event first).
#[derive(Debug, Clone)]
pub struct ThreadLog {
    /// Thread label ("rank N" once the comm runtime adopted it).
    pub label: String,
    /// Rank the thread executed, when known.
    pub rank: Option<u32>,
    /// The thread had already exited at snapshot time.
    pub retired: bool,
    /// Events the bounded ring evicted before the snapshot.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

/// A full flight-recorder snapshot: every thread's recent history plus
/// the warn-channel overflow count, ready to render or export.
#[derive(Debug, Clone)]
pub struct BlackBox {
    /// Why the snapshot was taken (watchdog stall, fault, explicit...).
    pub reason: String,
    /// Snapshot timestamp on the shared monotonic clock.
    pub at_ns: u64,
    /// Warnings the bounded telemetry channel dropped (satellite fix:
    /// the loss is surfaced here and in `drain_warnings`).
    pub warn_overflow: u64,
    /// Per-thread logs, registry order.
    pub threads: Vec<ThreadLog>,
}

/// Maximum merged-timeline lines a rendered dump prints.
const TIMELINE_MAX: usize = 160;

fn ms(ns: u64) -> f64 {
    ns as f64 * 1e-6
}

fn describe(ev: &Event) -> String {
    let name = ev.name.as_str();
    match ev.kind {
        EventKind::SpanBegin => format!("span-begin   {name}"),
        EventKind::SpanEnd => format!(
            "span-end     {name} ({:.3} ms)",
            ms(ev.at_ns.saturating_sub(ev.a))
        ),
        EventKind::StageBegin => format!("stage-begin  {name}"),
        EventKind::StageEnd => format!("stage-end    {name}"),
        EventKind::CommPost => format!("comm-post    → rank {} ({} bytes)", ev.a, ev.b),
        EventKind::CommBlock => format!("comm-recv    ← rank {} after {:.3} ms", ev.a, ms(ev.b)),
        EventKind::CommTimeout => {
            format!("comm-timeout rank {} silent for {:.3} ms", ev.a, ms(ev.b))
        }
        EventKind::Counter => format!("counter      {name} += {}", ev.a),
        EventKind::Warn => format!("warn         {name}"),
        EventKind::Drift => format!("drift        {name} at {}‰ of baseline", ev.a),
    }
}

/// A thread's open stage (begun, never retired) — the "still in
/// interior-assemble" half of the stall narrative.
fn open_stage(log: &ThreadLog) -> Option<(&str, u64)> {
    let mut open: Vec<(&str, u64)> = Vec::new();
    for ev in &log.events {
        match ev.kind {
            EventKind::StageBegin => open.push((ev.name.as_str(), ev.at_ns)),
            EventKind::StageEnd => {
                if let Some(pos) = open.iter().rposition(|(n, _)| *n == ev.name.as_str()) {
                    open.remove(pos);
                }
            }
            _ => {}
        }
    }
    open.last().copied()
}

/// Trailing blocked time on one peer: sums the run of `CommTimeout`
/// events (same peer) at the end of the log.
fn trailing_timeout(log: &ThreadLog) -> Option<(u32, u64)> {
    let mut peer = None;
    let mut waited = 0u64;
    for ev in log.events.iter().rev() {
        match ev.kind {
            EventKind::CommTimeout => {
                let p = ev.a as u32;
                match peer {
                    None => {
                        peer = Some(p);
                        waited = ev.b;
                    }
                    Some(q) if q == p => waited += ev.b,
                    Some(_) => break,
                }
            }
            // Stage/span bookkeeping and warnings (the watchdog records
            // one right after the last timeout slice) don't end the
            // wait; any real progress (a receive, a post) does.
            EventKind::StageBegin | EventKind::StageEnd | EventKind::Counter | EventKind::Warn => {
                if peer.is_some() {
                    break;
                }
            }
            _ => break,
        }
    }
    peer.map(|p| (p, waited))
}

impl BlackBox {
    /// Renders the human-readable post-mortem report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== alya-probe black box: {} ===", self.reason);
        let _ = writeln!(
            out,
            "captured at t={:.3} ms · {} thread(s) · warn overflow {}",
            ms(self.at_ns),
            self.threads.len(),
            self.warn_overflow
        );
        for log in &self.threads {
            let _ = writeln!(
                out,
                "  {}: {} event(s) retained, {} evicted{}",
                log.label,
                log.events.len(),
                log.dropped,
                if log.retired { " (thread exited)" } else { "" }
            );
        }

        // Causally-ordered merged timeline (ties broken by thread order).
        let mut merged: Vec<(&ThreadLog, &Event)> = self
            .threads
            .iter()
            .flat_map(|t| t.events.iter().map(move |e| (t, e)))
            .collect();
        merged.sort_by_key(|(_, e)| e.at_ns);
        let skip = merged.len().saturating_sub(TIMELINE_MAX);
        let _ = writeln!(out, "-- timeline (last {} events) --", merged.len() - skip);
        if skip > 0 {
            let _ = writeln!(out, "  ... {skip} earlier event(s) omitted ...");
        }
        for (t, e) in &merged[skip..] {
            let _ = writeln!(
                out,
                "[{:>12.3} ms] {:<10} {}",
                ms(e.at_ns),
                t.label,
                describe(e)
            );
        }

        // Diagnosis: who is stuck where, waiting on whom.
        let _ = writeln!(out, "-- diagnosis --");
        let mut diagnosed = 0;
        for log in &self.threads {
            let Some((stage, since)) = open_stage(log) else {
                continue;
            };
            diagnosed += 1;
            let _ = write!(
                out,
                "{} stalled in \"{stage}\" (open since t={:.3} ms)",
                log.label,
                ms(since)
            );
            if let Some((peer, waited)) = trailing_timeout(log) {
                let _ = write!(out, ", blocked {:.3} ms waiting on rank {peer}", ms(waited));
                if let Some(peer_log) = self.threads.iter().find(|t| t.rank == Some(peer)) {
                    match open_stage(peer_log) {
                        Some((pstage, _)) => {
                            let _ = write!(out, ", which was still in \"{pstage}\"");
                        }
                        None => {
                            if let Some(last) = peer_log.events.last() {
                                let _ = write!(
                                    out,
                                    "; rank {peer} last seen at t={:.3} ms: {}",
                                    ms(last.at_ns),
                                    describe(last)
                                );
                            }
                        }
                    }
                }
            }
            let _ = writeln!(out);
        }
        if diagnosed == 0 {
            let _ = writeln!(out, "no open stages — nothing was stuck at snapshot time");
        }
        out
    }

    /// Exports the snapshot as chrome `trace_event` JSON (reusing
    /// `telemetry::export::chrome_trace`): one trace process per rank /
    /// thread, complete spans for everything the rings can pair.
    pub fn chrome_trace(&self) -> String {
        let mut report = TelemetryReport::default();
        let mut next_id = 1u64;
        for (i, log) in self.threads.iter().enumerate() {
            let pid = log.rank.map_or(900 + i as u32, |r| r + 1);
            report.track_labels.push(((pid, 0), log.label.clone()));
            let mut open: Vec<(&str, u64)> = Vec::new();
            for ev in &log.events {
                let mut span = |name: String, start_ns: u64, end_ns: u64| {
                    report.spans.push(SpanRecord {
                        id: next_id,
                        parent: None,
                        name,
                        pid,
                        tid: 0,
                        start_ns,
                        end_ns,
                    });
                    next_id += 1;
                };
                match ev.kind {
                    EventKind::SpanEnd => span(ev.name.as_str().to_string(), ev.a, ev.at_ns),
                    EventKind::StageBegin => open.push((ev.name.as_str(), ev.at_ns)),
                    EventKind::StageEnd => {
                        if let Some(pos) = open.iter().rposition(|(n, _)| *n == ev.name.as_str()) {
                            let (name, start) = open.remove(pos);
                            span(name.to_string(), start, ev.at_ns);
                        }
                    }
                    EventKind::CommBlock => span(
                        format!("wait rank {}", ev.a),
                        ev.at_ns.saturating_sub(ev.b),
                        ev.at_ns,
                    ),
                    EventKind::CommTimeout => span(
                        format!("timeout rank {}", ev.a),
                        ev.at_ns.saturating_sub(ev.b),
                        ev.at_ns,
                    ),
                    _ => {}
                }
            }
            // Stages still open at snapshot time render to the capture
            // edge, flagged as unfinished.
            for (name, start) in open {
                report.spans.push(SpanRecord {
                    id: next_id,
                    parent: None,
                    name: format!("{name} (unfinished)"),
                    pid,
                    tid: 0,
                    start_ns: start,
                    end_ns: self.at_ns,
                });
                next_id += 1;
            }
        }
        report
            .spans
            .sort_by_key(|s| (s.pid, s.tid, s.start_ns, s.id));
        export::chrome_trace(&report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tag;

    fn ev(kind: EventKind, name: &str, at_ns: u64, a: u64, b: u64) -> Event {
        Event {
            at_ns,
            kind,
            name: Tag::new(name),
            a,
            b,
        }
    }

    fn stalled_box() -> BlackBox {
        BlackBox {
            reason: "test stall".into(),
            at_ns: 60_000_000,
            warn_overflow: 0,
            threads: vec![
                ThreadLog {
                    label: "rank 2".into(),
                    rank: Some(2),
                    retired: false,
                    dropped: 0,
                    events: vec![
                        ev(EventKind::StageBegin, "halo-drain", 10_000_000, 0, 0),
                        ev(
                            EventKind::CommTimeout,
                            "halo-wait",
                            30_000_000,
                            0,
                            20_000_000,
                        ),
                        ev(
                            EventKind::CommTimeout,
                            "halo-wait",
                            58_000_000,
                            0,
                            28_000_000,
                        ),
                    ],
                },
                ThreadLog {
                    label: "rank 0".into(),
                    rank: Some(0),
                    retired: false,
                    dropped: 0,
                    events: vec![ev(
                        EventKind::StageBegin,
                        "interior-assemble",
                        9_000_000,
                        0,
                        0,
                    )],
                },
            ],
        }
    }

    #[test]
    fn render_names_the_stalled_stage_and_the_blocking_rank() {
        let text = stalled_box().render();
        assert!(text.contains("rank 2 stalled in \"halo-drain\""), "{text}");
        assert!(text.contains("waiting on rank 0"), "{text}");
        assert!(text.contains("still in \"interior-assemble\""), "{text}");
    }

    #[test]
    fn chrome_export_parses_and_carries_unfinished_stages() {
        let json = stalled_box().chrome_trace();
        export::validate_json(&json).expect("dump trace parses");
        assert!(json.contains("halo-drain (unfinished)"));
        assert!(json.contains("timeout rank 0"));
    }
}
