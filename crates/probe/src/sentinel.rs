//! The performance-regression sentinel: committed baselines and
//! closed-form predictions in, structured drift warnings out.
//!
//! The bench suite commits measured baselines (`BENCH_drivers.json`,
//! `BENCH_comm.json`, `BENCH_serve.json`) and the analyzer pins live
//! counters to closed forms — but until now nothing compared a *live*
//! run against them while it ran: a 2x throughput regression shipped
//! silently as long as bitwise tests passed. A [`Sentinel`] holds the
//! baseline table, watches observations, and flags every value outside
//! the configured relative band. Each drift is recorded three ways: as
//! a structured [`Drift`] for callers, as a flight-recorder event
//! ([`crate::note_drift`]), and as a `telemetry::warn` so it lands in
//! session reports. Analyzer pass 11 proves the sentinel is silent on
//! the committed baselines themselves and fires on a seeded skew.

use alya_telemetry as telemetry;

/// Default relative drift band: live values within ±30% of baseline
/// are considered in-family (bench noise across hosts is real; the
/// sentinel hunts regressions, not jitter).
pub const DEFAULT_BAND: f64 = 0.30;

/// One observation outside the band.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Baseline key (e.g. `melem_per_s/serial/RSPR/1`).
    pub key: String,
    /// Committed/predicted value.
    pub expected: f64,
    /// Live value.
    pub measured: f64,
    /// `measured / expected` (1.0 = exactly on baseline).
    pub ratio: f64,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: measured {:.4} vs baseline {:.4} ({:.1}% of baseline)",
            self.key,
            self.measured,
            self.expected,
            self.ratio * 100.0
        )
    }
}

/// A baseline table plus the drifts observed against it.
#[derive(Debug, Clone, Default)]
pub struct Sentinel {
    band: f64,
    baselines: Vec<(String, f64)>,
    drifts: Vec<Drift>,
    observed: usize,
}

impl Sentinel {
    /// A sentinel with the [`DEFAULT_BAND`].
    pub fn new() -> Self {
        Self::with_band(DEFAULT_BAND)
    }

    /// A sentinel accepting live values within `±band` (relative) of
    /// baseline.
    pub fn with_band(band: f64) -> Self {
        Self {
            band: band.max(0.0),
            baselines: Vec::new(),
            drifts: Vec::new(),
            observed: 0,
        }
    }

    /// Registers (or overwrites) the baseline for `key`.
    pub fn baseline(&mut self, key: &str, expected: f64) {
        match self.baselines.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = expected,
            None => self.baselines.push((key.to_string(), expected)),
        }
    }

    /// The registered baseline for `key`, if any.
    pub fn expected(&self, key: &str) -> Option<f64> {
        self.baselines
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Number of baselines registered.
    pub fn num_baselines(&self) -> usize {
        self.baselines.len()
    }

    /// Number of observations checked so far.
    pub fn num_observed(&self) -> usize {
        self.observed
    }

    /// Holds a live value against its baseline. Returns the [`Drift`]
    /// when the value falls outside the band (also recorded in the
    /// flight recorder and on the telemetry warn channel). Unknown keys
    /// and zero baselines with zero measurements are in-family.
    pub fn observe(&mut self, key: &str, measured: f64) -> Option<Drift> {
        let expected = self.expected(key)?;
        self.observed += 1;
        let ratio = if expected == 0.0 {
            if measured == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            measured / expected
        };
        if (ratio - 1.0).abs() <= self.band {
            return None;
        }
        let drift = Drift {
            key: key.to_string(),
            expected,
            measured,
            ratio,
        };
        let permille = if ratio.is_finite() {
            (ratio * 1000.0).clamp(0.0, u64::MAX as f64) as u64
        } else {
            u64::MAX
        };
        crate::note_drift(key, permille);
        telemetry::warn(format!("perf sentinel: {drift}"));
        self.drifts.push(drift.clone());
        Some(drift)
    }

    /// Every drift observed so far, in observation order.
    pub fn drifts(&self) -> &[Drift] {
        &self.drifts
    }

    /// Whether every observation so far stayed inside the band.
    pub fn is_quiet(&self) -> bool {
        self.drifts.is_empty()
    }
}

/// A `top`-style live service sample — the per-tenant snapshot `serve`
/// renders periodically (throughput, latency quantiles, fairness,
/// cold/warm bind ratio). Built by `alya-serve`, checked by callers.
#[derive(Debug, Clone, Default)]
pub struct ServiceSample {
    /// Sample window, seconds.
    pub elapsed_s: f64,
    /// p50 work-item latency, milliseconds.
    pub p50_step_ms: f64,
    /// p99 work-item latency, milliseconds.
    pub p99_step_ms: f64,
    /// Weight-normalized fairness spread (0 = perfectly fair).
    pub fairness_spread: f64,
    /// Cold solver builds since service start.
    pub cold_builds: u64,
    /// Warm pooled binds since service start.
    pub warm_binds: u64,
    /// Per-tenant rows: (name, active sessions, retired sessions,
    /// steps, work done).
    pub tenants: Vec<(String, u32, u64, u64, u64)>,
}

impl ServiceSample {
    /// Warm binds as a fraction of all binds (1.0 = pure slot reuse).
    pub fn warm_ratio(&self) -> f64 {
        let total = self.cold_builds + self.warm_binds;
        if total == 0 {
            return 1.0;
        }
        self.warm_binds as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_inside_the_band_stay_quiet() {
        let mut s = Sentinel::with_band(0.25);
        s.baseline("melem_per_s/serial/RSPR/1", 7.2);
        assert!(s.observe("melem_per_s/serial/RSPR/1", 7.2).is_none());
        assert!(s.observe("melem_per_s/serial/RSPR/1", 6.0).is_none());
        assert!(s.observe("unknown-key", 0.0).is_none());
        assert!(s.is_quiet());
        assert_eq!(s.num_observed(), 2);
    }

    #[test]
    fn a_regression_outside_the_band_is_flagged_with_structure() {
        let mut s = Sentinel::with_band(0.25);
        s.baseline("melem_per_s/serial/RSPR/1", 8.0);
        let d = s
            .observe("melem_per_s/serial/RSPR/1", 4.0)
            .expect("halved throughput must drift");
        assert_eq!(d.expected, 8.0);
        assert_eq!(d.measured, 4.0);
        assert!((d.ratio - 0.5).abs() < 1e-12);
        assert!(!s.is_quiet());
        assert_eq!(s.drifts().len(), 1);
    }

    #[test]
    fn inflation_drifts_too_and_zero_baselines_behave() {
        let mut s = Sentinel::with_band(0.10);
        s.baseline("halo_bytes/2", 0.0);
        assert!(s.observe("halo_bytes/2", 0.0).is_none());
        assert!(s.observe("halo_bytes/2", 12.0).is_some());
        s.baseline("blocked_wait_s/4", 1.0e-2);
        assert!(s.observe("blocked_wait_s/4", 2.0e-2).is_some());
    }

    #[test]
    fn service_sample_warm_ratio() {
        let mut sample = ServiceSample::default();
        assert_eq!(sample.warm_ratio(), 1.0);
        sample.cold_builds = 1;
        sample.warm_binds = 3;
        assert_eq!(sample.warm_ratio(), 0.75);
    }
}
