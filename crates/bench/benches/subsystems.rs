//! Benchmarks of the extension subsystems: mixed-element assembly, the
//! tetrahedral decomposition, halo-exchange assembly, multigrid
//! preconditioning, and reuse-distance analysis.

use alya_bench::harness::{Criterion, Throughput};
use alya_bench::{criterion_group, criterion_main};

use alya_core::kernels::generic::{assemble_mixed, MixedInput};
use alya_core::{AssemblyInput, Variant};
use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_machine::reuse::analyze;
use alya_machine::NoRecord;
use alya_mesh::mixed::mixed_box;
use alya_mesh::BoxMeshBuilder;
use alya_solver::halo::{assemble_distributed, DistributedMesh};
use alya_solver::multigrid::{solve_pcg, Jacobi, TwoLevelMg};
use alya_solver::poisson::{laplacian, lumped_mass};

fn bench_subsystems(c: &mut Criterion) {
    // Mixed-element assembly (hex + prism blocks) vs its tet decomposition.
    let mixed = mixed_box(8, 8, 4, [1.0, 1.0, 1.0]);
    let mvel = VectorField::from_coords(mixed.coords(), |p| [p[2] * p[2], 0.2 * p[0], 0.0]);
    let mpre = ScalarField::from_coords(mixed.coords(), |p| p[0]);
    let minput = MixedInput {
        mesh: &mixed,
        velocity: &mvel,
        pressure: &mpre,
        props: ConstantProperties::AIR,
        body_force: [0.0; 3],
        vreman_c: 0.07,
    };
    let mut group = c.benchmark_group("mixed_assembly");
    group.throughput(Throughput::Elements(mixed.num_cells() as u64));
    group.sample_size(10);
    group.bench_function("generic_native", |b| {
        b.iter(|| assemble_mixed(&minput, &mut NoRecord));
    });
    group.bench_function("to_tets_decomposition", |b| b.iter(|| mixed.to_tets()));
    group.finish();

    // Distributed halo assembly.
    let mesh = BoxMeshBuilder::new(10, 10, 5).build();
    let vel = VectorField::from_fn(&mesh, |p| [p[2], 0.1 * p[0], 0.0]);
    let pre = ScalarField::zeros(mesh.num_nodes());
    let tem = ScalarField::zeros(mesh.num_nodes());
    let input = AssemblyInput::new(&mesh, &vel, &pre, &tem);
    let dist = DistributedMesh::build(&mesh, 8);
    let mut group = c.benchmark_group("halo_assembly");
    group.throughput(Throughput::Elements(mesh.num_elements() as u64));
    group.sample_size(10);
    group.bench_function("8_ranks", |b| {
        b.iter(|| assemble_distributed(Variant::Rsp, &input, &dist));
    });
    group.finish();

    // Multigrid-PCG vs Jacobi-PCG on the shifted Laplacian.
    let pm = BoxMeshBuilder::new(10, 10, 10).build();
    let lap = laplacian(&pm);
    let mass = lumped_mass(&pm);
    let mut trips = Vec::new();
    for r in 0..lap.num_rows() {
        let (cols, vals) = lap.row(r);
        for (col, v) in cols.iter().zip(vals) {
            trips.push((r as u32, *col, *v));
        }
        trips.push((r as u32, r as u32, 0.1 * mass[r]));
    }
    let a = alya_solver::CsrMatrix::from_triplets(lap.num_rows(), lap.num_cols(), trips);
    let b_rhs: Vec<f64> = pm.coords().iter().map(|p| (3.0 * p[0]).sin()).collect();
    let mut group = c.benchmark_group("pressure_preconditioners");
    group.sample_size(10);
    group.bench_function("jacobi_pcg", |bch| {
        let j = Jacobi::new(&a.diagonal());
        bch.iter(|| {
            let mut x = vec![0.0; b_rhs.len()];
            solve_pcg(&a, &j, &b_rhs, &mut x, 1e-8, 2000).iterations
        });
    });
    group.bench_function("mg_pcg", |bch| {
        let mg = TwoLevelMg::new(&pm, a.clone(), 48);
        bch.iter(|| {
            let mut x = vec![0.0; b_rhs.len()];
            solve_pcg(&a, &mg, &b_rhs, &mut x, 1e-8, 2000).iterations
        });
    });
    group.finish();

    // Reuse-distance analysis throughput.
    let mut events = Vec::new();
    let mut s = 7u64;
    for _ in 0..60_000 {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        events.push(alya_machine::Event::GLoad((s >> 20) % (1 << 22)));
    }
    let mut group = c.benchmark_group("reuse_analysis");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(10);
    group.bench_function("mattson_60k", |b| b.iter(|| analyze(&events, 32).cold));
    group.finish();
}

criterion_group!(benches, bench_subsystems);
criterion_main!(benches);
