//! Performance-machine substrate benchmarks: cache-simulation throughput
//! and register-allocation speed — these bound how large a sampled GPU/CPU
//! simulation stays practical.

use alya_bench::harness::{Criterion, Throughput};
use alya_bench::{criterion_group, criterion_main};

use alya_machine::cache::{AccessKind, CacheSim, Replacement};
use alya_machine::{Event, RegisterAllocator};

fn bench_machine(c: &mut Criterion) {
    // Cache simulation on a pseudo-random stream.
    let stream: Vec<u64> = {
        let mut s = 0xDEADBEEFu64;
        (0..100_000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 16) % (16 << 20)
            })
            .collect()
    };
    let mut group = c.benchmark_group("cache_sim");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(20);
    for (name, policy) in [("lru", Replacement::Lru), ("random", Replacement::Random)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = CacheSim::new(1 << 20, 32, 16).with_replacement(policy);
                for &a in &stream {
                    cache.access(a, AccessKind::Load, None);
                }
                cache.stats().misses()
            });
        });
    }
    group.finish();

    // Register allocation over a synthetic kernel-sized def/use stream.
    let events: Vec<Event> = {
        let mut ev = Vec::new();
        for round in 0..200u32 {
            for v in 0..40 {
                ev.push(Event::Def(round * 40 + v));
            }
            for v in 0..40 {
                ev.push(Event::Use(round * 40 + v));
            }
        }
        ev
    };
    let mut group = c.benchmark_group("regalloc");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(20);
    group.bench_function("linear_scan", |b| {
        b.iter(|| RegisterAllocator::new(32).allocate(&events).spilled_values);
    });
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
