//! Solver-substrate benchmarks: SpMV, the pressure projection solve, and a
//! full fractional-step time step.

use alya_bench::harness::{Criterion, Throughput};
use alya_bench::{criterion_group, criterion_main};

use alya_core::Variant;
use alya_mesh::BoxMeshBuilder;
use alya_solver::poisson::{laplacian, lumped_mass, weak_divergence, ProjectionOp};
use alya_solver::solve_cg;
use alya_solver::step::{FractionalStep, StepConfig};

fn bench_solver(c: &mut Criterion) {
    let mesh = BoxMeshBuilder::new(16, 16, 16).build();
    let n = mesh.num_nodes();

    // SpMV on the P1 Laplacian.
    let lap = laplacian(&mesh);
    let x = vec![1.0; n];
    let mut y = vec![0.0; n];
    let mut group = c.benchmark_group("solver");
    group.throughput(Throughput::Elements(lap.nnz() as u64));
    group.sample_size(20);
    group.bench_function("spmv", |b| b.iter(|| lap.par_spmv(&x, &mut y)));
    group.finish();

    // Pressure projection solve.
    let mass = lumped_mass(&mesh);
    let u = alya_fem::VectorField::from_fn(&mesh, |p| {
        [(2.0 * std::f64::consts::PI * p[0]).sin(), 0.0, 0.0]
    });
    let mut b_rhs = weak_divergence(&mesh, &u);
    for v in b_rhs.as_mut_slice() {
        *v *= 1000.0;
    }
    let mut group = c.benchmark_group("pressure_solve");
    group.sample_size(10);
    group.bench_function("cg_projection", |b| {
        b.iter(|| {
            let op = ProjectionOp::new(&mesh, &mass);
            let mut p = vec![0.0; n];
            let res = solve_cg(&op, b_rhs.as_slice(), &mut p, 1e-8, 500);
            assert!(res.converged);
            res.iterations
        });
    });
    group.finish();

    // A full fractional-step time step.
    let mut group = c.benchmark_group("fractional_step");
    group.sample_size(10);
    group.bench_function("step_rsp", |b| {
        let mut solver = FractionalStep::new(&mesh, StepConfig::default());
        solver.set_velocity(|p| [0.1 * (3.0 * p[2]).sin(), 0.0, 0.0]);
        b.iter(|| solver.step(Variant::Rsp).kinetic_energy);
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
