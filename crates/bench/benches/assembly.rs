//! Wall-clock benchmark of the five assembly variants (serial),
//! the native companion to the modelled Table I/II: the same B → RSPR
//! ordering must show up in real execution on the host.

use alya_bench::harness::{BenchmarkId, Criterion, Throughput};
use alya_bench::{criterion_group, criterion_main};

use alya_bench::case::Case;
use alya_core::nut::compute_nu_t;
use alya_core::{assemble_serial, Variant};

fn bench_variants(c: &mut Criterion) {
    let case = Case::bolund(20_000);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);
    let ne = case.mesh.num_elements() as u64;

    let mut group = c.benchmark_group("assembly_serial");
    group.throughput(Throughput::Elements(ne));
    group.sample_size(10);
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(variant.name()),
            &variant,
            |b, &v| b.iter(|| assemble_serial(v, &input)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
