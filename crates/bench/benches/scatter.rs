//! Parallel scatter-strategy ablation: two-phase vs colored vs
//! owner-computes partitions vs compact-numbered shards (all race-free by
//! construction).

use alya_bench::harness::{BenchmarkId, Criterion, Throughput};
use alya_bench::{criterion_group, criterion_main};

use alya_bench::case::Case;
use alya_core::nut::compute_nu_t;
use alya_core::{assemble_parallel, ParallelStrategy, Variant};

fn bench_scatter(c: &mut Criterion) {
    let case = Case::bolund(20_000);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);
    let ne = case.mesh.num_elements() as u64;

    let strategies = [
        ("two_phase", ParallelStrategy::TwoPhase),
        ("colored", ParallelStrategy::colored(&case.mesh)),
        ("partitioned", ParallelStrategy::partitioned(&case.mesh, 8)),
        ("sharded", ParallelStrategy::sharded(&case.mesh, 8)),
    ];

    let mut group = c.benchmark_group("scatter_strategy");
    group.throughput(Throughput::Elements(ne));
    group.sample_size(10);
    for (name, strategy) in &strategies {
        group.bench_with_input(BenchmarkId::from_parameter(name), strategy, |b, s| {
            b.iter(|| assemble_parallel(Variant::Rsp, &input, s));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scatter);
criterion_main!(benches);
