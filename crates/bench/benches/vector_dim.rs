//! `VECTOR_DIM` sweep (paper §IV: 16 is fastest on the CPU — small packs
//! keep the interleaved workspace inside L1/L2; large packs blow it out).

use alya_bench::harness::{BenchmarkId, Criterion, Throughput};
use alya_bench::{criterion_group, criterion_main};

use alya_bench::case::Case;
use alya_core::drivers::assemble_element;
use alya_core::gather::DirectSink;
use alya_core::layout::Layout;
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_fem::VectorField;
use alya_machine::NoRecord;

fn assemble_with_vector_dim(input: &alya_core::AssemblyInput, vector_dim: usize) -> VectorField {
    let nn = input.mesh.num_nodes();
    let ne = input.mesh.num_elements();
    let variant = Variant::Rs; // the workspace variant, where VECTOR_DIM bites
    let nval = variant.nvalues();
    let mut ws_buf = vec![0.0; nval * vector_dim];
    let mut rhs = VectorField::zeros(nn);
    let mut sink = DirectSink { rhs: &mut rhs };
    for e in 0..ne {
        let lay = Layout::cpu(e, vector_dim, nn);
        assemble_element(
            variant,
            input,
            e,
            &lay,
            &mut ws_buf,
            vector_dim,
            e % vector_dim,
            &mut sink,
            &mut NoRecord,
        );
    }
    rhs
}

fn bench_vector_dim(c: &mut Criterion) {
    let case = Case::bolund(20_000);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);
    let ne = case.mesh.num_elements() as u64;

    let mut group = c.benchmark_group("vector_dim");
    group.throughput(Throughput::Elements(ne));
    group.sample_size(10);
    for vd in [4usize, 16, 64, 256, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(vd), &vd, |b, &vd| {
            b.iter(|| assemble_with_vector_dim(&input, vd));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vector_dim);
criterion_main!(benches);
