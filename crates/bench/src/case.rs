//! The benchmark scenario: Bolund-like terrain LES snapshot.

use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::{TerrainMeshBuilder, TetMesh};

/// A self-contained assembly scenario (owns mesh and fields).
pub struct Case {
    /// The mesh.
    pub mesh: TetMesh,
    /// Velocity snapshot.
    pub velocity: VectorField,
    /// Pressure snapshot.
    pub pressure: ScalarField,
    /// Temperature (unused by the specialized paths).
    pub temperature: ScalarField,
    /// Fluid properties (air).
    pub props: ConstantProperties,
    /// Body force (weak synoptic pressure-gradient forcing).
    pub body_force: [f64; 3],
}

impl Case {
    /// Builds the Bolund-like case with roughly `target_elems` tetrahedra.
    ///
    /// The velocity is a logarithmic-law inflow profile with a lateral
    /// perturbation and a recirculation hint behind the cliff — enough
    /// structure that every term of the assembly (convection, Vreman,
    /// diffusion, pressure) is exercised with realistic magnitudes.
    pub fn bolund(target_elems: usize) -> Self {
        let mesh = TerrainMeshBuilder::with_approx_elements(target_elems).build();
        let u_star = 0.4; // friction velocity, m/s
        let z0 = 3e-4; // roughness length (Bolund: water upstream)
        let kappa = 0.4;
        let velocity = VectorField::from_fn(&mesh, |p| {
            let z = (p[2]).max(z0 * 1.01);
            let log_u = u_star / kappa * (z / z0).ln();
            [
                log_u * (1.0 + 0.05 * (6.0 * p[1]).sin()),
                0.3 * (4.0 * p[0]).sin() * (-(p[2] * 4.0)).exp(),
                0.2 * (5.0 * (p[0] - 1.0)).sin() * (-(p[2] * 3.0)).exp(),
            ]
        });
        let props = ConstantProperties::AIR;
        let rho = props.density;
        let pressure = ScalarField::from_fn(&mesh, |p| {
            // Hydrostatic-ish background + a wake low behind the cliff.
            -rho * 9.81 * p[2] * 0.01
                - 0.5 * (-((p[0] - 1.2).powi(2) + (p[1] - 1.0).powi(2)) * 4.0).exp()
        });
        let temperature = ScalarField::from_fn(&mesh, |p| 288.0 - 6.5 * p[2]);
        Self {
            mesh,
            velocity,
            pressure,
            temperature,
            props,
            body_force: [1.2e-3, 0.0, 0.0],
        }
    }

    /// The assembly input view over this case.
    pub fn input(&self) -> alya_core::AssemblyInput<'_> {
        alya_core::AssemblyInput::new(
            &self.mesh,
            &self.velocity,
            &self.pressure,
            &self.temperature,
        )
        .props(self.props)
        .body_force(self.body_force)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_is_well_posed() {
        let case = Case::bolund(5_000);
        assert!(case.mesh.num_elements() >= 3_000);
        assert!(case.mesh.validate().is_ok());
        assert!(case.velocity.max_abs() > 1.0); // ABL winds of a few m/s
        assert!(case.velocity.as_slice().iter().all(|v| v.is_finite()));
        let rhs = alya_core::assemble_serial(alya_core::Variant::Rsp, &case.input());
        assert!(rhs.max_abs() > 0.0);
        assert!(rhs.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn turbulence_is_active_in_the_case() {
        let case = Case::bolund(3_000);
        let nut = alya_core::nut::compute_nu_t(&case.input());
        let active = nut.iter().filter(|&&n| n > 0.0).count();
        assert!(
            active * 2 > nut.len(),
            "Vreman inactive on {}/{} elements",
            nut.len() - active,
            nut.len()
        );
    }
}
