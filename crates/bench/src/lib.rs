//! Shared plumbing for the reproduction binaries and benchmarks.
//!
//! * [`case`] — the benchmark scenario: a Bolund-like terrain mesh with an
//!   atmospheric-boundary-layer velocity profile (the stand-in for the
//!   paper's 5.6 M-node / 32 M-tet LES case);
//! * [`profile`] — turns each kernel variant into the lowered event
//!   streams and register demands the machine models consume (running the
//!   register allocator exactly where the compilers would);
//! * [`pipeline`] — the async variant of the above: trace generation on
//!   a producer thread overlapped with model replay through an
//!   `alya-sched` double buffer, bit-identical to the fused path;
//! * [`paper`] — the published Table I/II/III and figure values, printed
//!   side by side with the model output;
//! * [`report`] — plain-text table formatting.
//!
//! Conventions carried over from the paper: runtimes are reported for the
//! full 32 M-element Bolund mesh and for **three assembly sweeps** per
//! reported "runtime" (the explicit scheme evaluates the RHS three times
//! per step; this reconciles the paper's milliseconds with its per-element
//! counters, e.g. 6293 Flop × 32 M / 163 GF/s ≈ 1.24 s ≈ 3773 ms / 3).

#![forbid(unsafe_code)]

pub mod blackbox;
pub mod case;
pub mod harness;
pub mod paper;
pub mod pipeline;
pub mod profile;
pub mod report;
pub mod trace;

/// Elements of the paper's Bolund mesh (runtime scaling target).
pub const PAPER_ELEMS: usize = 32_000_000;

/// RHS evaluations per reported runtime (3-stage explicit scheme).
pub const CALLS_PER_RUNTIME: f64 = 3.0;
