//! Ablation study: what each measure (R+S, P, the final R) contributes,
//! on both targets — the per-transition deltas behind the paper's Tables.
//!
//! Usage: `ablation [mesh_elems]` (default 40000).

use alya_bench::case::Case;
use alya_bench::profile::{cpu_report, gpu_report};
use alya_bench::report::{num, Table};
use alya_bench::{CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::cpu::CpuModel;
use alya_machine::gpu::GpuModel;
use alya_machine::spec::{CpuSpec, GpuSpec};

fn main() {
    let elems: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);

    eprintln!("building case (~{elems} tets) and simulating all variants on both targets...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    let gpu_model = GpuModel::new(GpuSpec::a100_40gb());
    let mut cpu_model = CpuModel::new(CpuSpec::icelake_8360y());
    cpu_model.sample_packs = 96;

    let gpu: Vec<_> = Variant::ALL
        .iter()
        .map(|&v| gpu_report(v, &input, &gpu_model, PAPER_ELEMS))
        .collect();
    let cpu: Vec<_> = Variant::ALL
        .iter()
        .map(|&v| cpu_report(v, &input, &cpu_model, PAPER_ELEMS))
        .collect();

    println!("Ablation — what each measure buys (runtimes in ms, 3 sweeps)\n");
    let mut t = Table::new([
        "transition",
        "measure isolated",
        "GPU before",
        "GPU after",
        "GPU gain",
        "CPU-1c before",
        "CPU-1c after",
        "CPU gain",
    ]);
    // (from, to, label)
    let steps = [
        (0usize, 1usize, "B -> P", "Privatization alone"),
        (0, 2, "B -> RS", "Restructure + Specialize"),
        (2, 3, "RS -> RSP", "Privatization on RS"),
        (3, 4, "RSP -> RSPR", "Final restructuring"),
        (0, 4, "B -> RSPR", "everything"),
    ];
    for (from, to, label, measure) in steps {
        let g0 = gpu[from].runtime * CALLS_PER_RUNTIME * 1e3;
        let g1 = gpu[to].runtime * CALLS_PER_RUNTIME * 1e3;
        let c0 = cpu[from].runtime_1c * CALLS_PER_RUNTIME * 1e3;
        let c1 = cpu[to].runtime_1c * CALLS_PER_RUNTIME * 1e3;
        t.row([
            label.to_string(),
            measure.to_string(),
            num(g0),
            num(g1),
            format!("{:.2}x", g0 / g1),
            num(c0),
            num(c1),
            format!("{:.2}x", c0 / c1),
        ]);
    }
    println!("{}", t.render());

    // The paper's conclusion: RSP is the natural *unified* source (the
    // penultimate GPU version unifies with the best CPU version); RSPR is
    // GPU-only. Quantify the performance cost of portability.
    let unified_gpu = gpu[3].runtime;
    let best_gpu = gpu[4].runtime;
    println!(
        "cost of portability (unified RSP vs GPU-only RSPR): {:+.1}% GPU runtime\n\
         (the paper judged this loss acceptable and recommends the unified source)\n",
        (unified_gpu / best_gpu - 1.0) * 100.0
    );

    println!("counter deltas (GPU, per element):");
    let mut d = Table::new([
        "variant",
        "flops",
        "global ld/st",
        "local ld/st",
        "DRAM B",
        "regs",
    ]);
    for (v, r) in Variant::ALL.iter().zip(&gpu) {
        d.row([
            v.name().to_string(),
            num(r.flops),
            num(r.global_ldst),
            num(r.local_ldst),
            num(r.dram_volume),
            r.registers.to_string(),
        ]);
    }
    println!("{}", d.render());
}
