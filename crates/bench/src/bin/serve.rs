//! Multi-tenant pooled-service benchmark: session throughput, step
//! latency quantiles and fairness spread of `alya-serve` across
//! concurrency levels, emitted as `BENCH_serve.json`.
//!
//! Each level runs two phases over a shared Bolund-like case:
//!
//! * **warm-up** — fill every pool slot once (all cold builds happen
//!   here) and drain;
//! * **measured** — admit and retire `max(2 × level, 16)` sessions
//!   through the warmed pool while the deficit-round-robin scheduler
//!   dispatches their steps over the shared worker pool. The pool's
//!   cold-build counter must not move during this phase: steady state is
//!   pure slot reuse, and the binary refuses to emit a report that
//!   performed a steady-state allocation-by-rebuild.
//!
//! Every level's final report is also held against the analyzer's serve
//! contract ([`alya_analyze::serve::check_report`]) — isolation,
//! conservation, fairness — before a row is written: `BENCH_serve.json`
//! is evidence, not prose.
//!
//! Usage:
//!
//! ```text
//! serve                        # levels 1/8/64/512, JSON note to stdout
//! serve --quick                # small mesh, short sessions (CI smoke)
//! serve --sessions 64          # cap the top concurrency level
//! serve --steps 4              # work items per session
//! serve --elems 2000           # case-mesh element target
//! serve --json PATH            # write the JSON report to PATH
//! serve --top                  # print a top-style per-tenant snapshot
//!                              # after each level
//! serve --probe-dump PATH      # write the flight recorder's black box
//!                              # at exit (plus PATH.trace.json)
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use alya_bench::case::Case;
use alya_core::Variant;
use alya_machine::par;
use alya_serve::{PoolConfig, Service, ServiceConfig, SessionSpec, SharedCase};
use alya_solver::StepConfig;

const LEVELS: [usize; 4] = [1, 8, 64, 512];
const DEFAULT_ELEMS: usize = 2_000;
const QUICK_ELEMS: usize = 600;
const DEFAULT_STEPS: u32 = 4;
const QUICK_STEPS: u32 = 2;
const TENANTS: usize = 4;

struct Args {
    elems: usize,
    steps: u32,
    max_sessions: usize,
    json: Option<String>,
    top: bool,
    probe_dump: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut elems = None;
    let mut steps = None;
    let mut max_sessions = None;
    let mut json = None;
    let mut top = false;
    let mut probe_dump = None;
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--elems" => {
                let v = it.next().ok_or("--elems needs a value")?;
                elems = Some(v.parse::<usize>().map_err(|e| format!("--elems: {e}"))?);
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                steps = Some(v.parse::<u32>().map_err(|e| format!("--steps: {e}"))?);
            }
            "--sessions" => {
                let v = it.next().ok_or("--sessions needs a value")?;
                max_sessions = Some(v.parse::<usize>().map_err(|e| format!("--sessions: {e}"))?);
            }
            "--json" => json = Some(it.next().ok_or("--json needs a path")?),
            "--top" => top = true,
            "--probe-dump" => {
                probe_dump = Some(it.next().ok_or("--probe-dump needs a path")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        elems: elems.unwrap_or(if quick { QUICK_ELEMS } else { DEFAULT_ELEMS }),
        steps: steps.unwrap_or(if quick { QUICK_STEPS } else { DEFAULT_STEPS }),
        max_sessions: max_sessions.unwrap_or(512),
        json,
        top,
        probe_dump,
    })
}

struct Row {
    sessions: usize,
    tenants: usize,
    steps_per_session: u32,
    measured_sessions: usize,
    items: u64,
    elapsed_s: f64,
    sessions_per_s: f64,
    items_per_s: f64,
    p50_step_ms: f64,
    p99_step_ms: f64,
    fairness_spread: f64,
    cold_builds_steady: u64,
    warm_binds: u64,
}

fn run_level(level: usize, case: &Arc<SharedCase>, steps: u32, top: bool) -> Row {
    let ntenants = TENANTS.min(level).max(1);
    let service = Service::new(ServiceConfig {
        pool: PoolConfig {
            capacity: level,
            stripes: 8.min(level),
            leak_slot_state_for_audit: false,
        },
        ..ServiceConfig::default()
    });
    let tenants: Vec<u32> = (0..ntenants)
        .map(|i| service.add_tenant(&format!("tenant-{i}"), 1, level.div_ceil(ntenants) as u32))
        .collect();
    let spec = SessionSpec::new(Arc::clone(case), steps);

    // Warm-up: touch every slot once so the measured phase is pure reuse.
    let mut next = 0usize;
    let mut warm_admitted = 0usize;
    while warm_admitted < level {
        match service.admit(tenants[next % ntenants], &spec) {
            Ok(_) => {
                warm_admitted += 1;
                next += 1;
            }
            Err(_) => {
                service.run_round();
            }
        }
    }
    service.run_to_idle();
    let cold_before = service.pool().cold_builds();

    // Measured phase: a steady stream of sessions through the warm pool.
    let target = (2 * level).max(16);
    let t0 = Instant::now();
    let mut admitted = 0usize;
    let mut items = 0u64;
    while admitted < target {
        match service.admit(tenants[next % ntenants], &spec) {
            Ok(_) => {
                admitted += 1;
                next += 1;
            }
            Err(_) => {
                items += service.run_round() as u64;
            }
        }
    }
    items += service.run_to_idle();
    let elapsed = t0.elapsed().as_secs_f64();

    let report = service.report();
    let cold_steady = report.cold_builds - cold_before;
    let contract = alya_analyze::serve::check_report(&report);
    if !contract.is_clean() {
        eprintln!("refusing to report a dishonest service: {contract}");
        std::process::exit(1);
    }
    if cold_steady != 0 {
        eprintln!(
            "refusing to report a non-pooling service: {cold_steady} cold builds \
             in the measured phase"
        );
        std::process::exit(1);
    }
    if top {
        print!("{}", service.top_snapshot(elapsed));
    }

    Row {
        sessions: level,
        tenants: ntenants,
        steps_per_session: steps,
        measured_sessions: target,
        items,
        elapsed_s: elapsed,
        sessions_per_s: target as f64 / elapsed,
        items_per_s: items as f64 / elapsed,
        p50_step_ms: report.step_latency_ns(0.50) as f64 * 1e-6,
        p99_step_ms: report.step_latency_ns(0.99) as f64 * 1e-6,
        fairness_spread: report.fairness_spread(),
        cold_builds_steady: cold_steady,
        warm_binds: report.warm_binds,
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: serve [--quick] [--sessions N] [--steps N] [--elems N] [--json PATH] \
                 [--top] [--probe-dump PATH]"
            );
            std::process::exit(1);
        }
    };
    // Register the recorder's telemetry sink before the first span so
    // --probe-dump captures the whole run.
    alya_probe::init();
    let case = Case::bolund(args.elems);
    let mut cfg = StepConfig::default();
    cfg.dt = 5e-4;
    cfg.props = case.props;
    cfg.body_force = case.body_force;
    let ne = case.mesh.num_elements();
    let nn = case.mesh.num_nodes();
    let shared = Arc::new(SharedCase::new(
        "bolund-serve",
        case.mesh,
        cfg,
        Variant::Rsp,
        |p| [0.1 + 0.3 * p[2], 0.0, 0.0],
    ));
    let hw = par::hardware_threads();
    println!(
        "pooled service: {ne} elements / {nn} nodes per session, {} steps/session, host threads {hw}",
        args.steps
    );

    let mut rows = Vec::new();
    for level in LEVELS {
        if level > args.max_sessions {
            continue;
        }
        let row = run_level(level, &shared, args.steps, args.top);
        println!(
            "  {:>4} sessions × {} tenants: {:>8.1} sessions/s  {:>8.1} items/s  \
             p50 {:.3} ms  p99 {:.3} ms  spread {:.3}  warm {} cold-steady {}",
            row.sessions,
            row.tenants,
            row.sessions_per_s,
            row.items_per_s,
            row.p50_step_ms,
            row.p99_step_ms,
            row.fairness_spread,
            row.warm_binds,
            row.cold_builds_steady,
        );
        rows.push(row);
    }

    let json = render_json(&args, ne, nn, hw, &rows);
    match &args.json {
        Some(path) => {
            std::fs::write(path, json).expect("write JSON report");
            println!("\nwrote {path}");
        }
        None => println!("\n(re-run with --json PATH to persist the report)"),
    }
    if let Some(path) = &args.probe_dump {
        alya_bench::blackbox::write_probe_dump(path, "serve bench exit");
    }
}

fn render_json(args: &Args, ne: usize, nn: usize, hw: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"name\": \"BENCH_serve\",");
    let _ = writeln!(s, "  \"case\": \"bolund-serve\",");
    let _ = writeln!(s, "  \"elements\": {ne},");
    let _ = writeln!(s, "  \"nodes\": {nn},");
    let _ = writeln!(s, "  \"host_threads\": {hw},");
    let _ = writeln!(s, "  \"steps_per_session\": {},", args.steps);
    s.push_str("  \"rows\": [\n");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"sessions\": {}, \"tenants\": {}, \"steps_per_session\": {}, \
                 \"measured_sessions\": {}, \"items\": {}, \"elapsed_s\": {:.6}, \
                 \"sessions_per_s\": {:.3}, \"items_per_s\": {:.3}, \
                 \"p50_step_ms\": {:.6}, \"p99_step_ms\": {:.6}, \
                 \"fairness_spread\": {:.6}, \"cold_builds_steady\": {}, \
                 \"warm_binds\": {}}}",
                r.sessions,
                r.tenants,
                r.steps_per_session,
                r.measured_sessions,
                r.items,
                r.elapsed_s,
                r.sessions_per_s,
                r.items_per_s,
                r.p50_step_ms,
                r.p99_step_ms,
                r.fairness_spread,
                r.cold_builds_steady,
                r.warm_binds,
            )
        })
        .collect();
    s.push_str(&rendered.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}
