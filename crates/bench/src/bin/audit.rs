//! The static-analysis audit: runs all six `alya-analyze` passes and
//! exits nonzero on any violation, so CI can gate on it.
//!
//! Usage:
//!
//! ```text
//! audit                                  # full audit, exit 0 iff clean
//! audit --seed-violation coloring        # corrupt a coloring, expect catch
//! audit --seed-violation contract-store  # forge a global intermediate store
//! audit --seed-violation contract-registers  # forge register pressure
//! audit --seed-violation shard-mismatch  # validate shards against wrong mesh
//! audit --seed-violation comm-drop       # lose a halo message, expect catch
//! audit --seed-violation overlap-stall   # withhold a halo send, expect the
//!                                        # scheduler watchdog to fire
//! audit --seed-violation telemetry-skew  # skew a live counter off its
//!                                        # contract rate, expect catch
//! ```
//!
//! The `--seed-violation` modes are self-tests of the analyzer: they inject
//! a known breach and exit 0 only if the analyzer *catches* it (and exit 2
//! if the analyzer missed it — the worst outcome).

use std::process::ExitCode;
use std::time::Duration;

use alya_analyze::{comm, contracts, races, sources, telemetry, Fixture};
use alya_core::drivers::trace_element;
use alya_core::layout::{self, Layout};
use alya_core::{DistributedDriver, HaloFault, Variant};
use alya_machine::Event;
use alya_mesh::{ordering, Coloring, Partition, ShardSet};
use alya_telemetry::Metric;

fn full_audit() -> ExitCode {
    let root = sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
    let root = if root.join("crates").is_dir() {
        Some(root)
    } else {
        eprintln!(
            "note: sources not found at {}; skipping the lint pass",
            root.display()
        );
        None
    };
    let report = alya_analyze::run_audit(root.as_deref());

    println!("kernel-contract audit");
    println!("=====================");
    for v in Variant::ALL {
        let c = v.contract();
        println!(
            "  {:5}  flops {:>5}  global ld/st {:>5}  ws {:>12}  register story: {}",
            v.name(),
            c.flops,
            c.global_ldst(),
            match c.workspace_stores {
                Some((space, n)) => format!("{n} st {space:?}"),
                None => "none".into(),
            },
            match c.spills_at_contract_budget {
                Some(true) => "spills at 128-reg budget",
                Some(false) => "fits 128-reg budget, no spills",
                None => "array-style",
            },
        );
    }
    match report.contract_violations.len() {
        0 => println!("  PASS: every variant trace matches its contract"),
        n => {
            println!("  FAIL: {n} contract violation(s)");
            for v in &report.contract_violations {
                println!("    {v}");
            }
        }
    }

    println!("\nscatter race audit");
    println!("==================");
    println!("  {}", report.races);
    println!("  {}", report.shards);

    println!("\ncomm contract audit");
    println!("===================");
    println!("  {}", report.comm);

    println!("\nschedule contract audit");
    println!("=======================");
    println!("  {}", report.sched);

    println!("\ntelemetry contract audit");
    println!("========================");
    println!("  {}", report.telemetry);

    println!("\nsource lint audit");
    println!("=================");
    match report.source_violations.len() {
        0 => println!("  PASS: unsafety and lint policy hold across the workspace"),
        n => {
            println!("  FAIL: {n} source violation(s)");
            for v in &report.source_violations {
                println!("    {v}");
            }
        }
    }

    if report.is_clean() {
        println!("\naudit clean");
        ExitCode::SUCCESS
    } else {
        println!("\naudit FAILED: {} violation(s)", report.num_violations());
        ExitCode::FAILURE
    }
}

/// Injects a known breach; exits 0 iff the analyzer catches it.
fn seeded(mode: &str) -> ExitCode {
    let fx = Fixture::new();
    let input = fx.input();
    let caught = match mode {
        "coloring" => {
            // Collapse the proper coloring into a single class: neighbours
            // land in the same class and must be reported.
            let bad = Coloring::from_color_assignment(vec![0; fx.mesh.num_elements()]);
            let report = races::check_coloring(&fx.mesh, &bad);
            println!("{report}");
            !report.is_race_free()
        }
        "contract-store" => {
            // Append one store into the workspace region of an RSPR trace —
            // the signature of staged intermediates creeping back in.
            let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
            let mut rec = trace_element(Variant::Rspr, &input, 0, &lay);
            rec.events.push(Event::GStore(layout::WS_BASE + 8));
            let violations =
                contracts::check_trace(Variant::Rspr, &Variant::Rspr.contract(), &rec.events);
            for v in &violations {
                println!("{v}");
            }
            !violations.is_empty()
        }
        "contract-registers" => {
            // Keep 80 extra values live to the end of an RSPR trace: peak
            // pressure and budgeted spills both breach the contract.
            let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
            let mut rec = trace_element(Variant::Rspr, &input, 0, &lay);
            for v in 0..80u32 {
                rec.events.push(Event::Def(10_000 + v));
            }
            for v in 0..80u32 {
                rec.events.push(Event::Use(10_000 + v));
            }
            let violations =
                contracts::check_trace(Variant::Rspr, &Variant::Rspr.contract(), &rec.events);
            for v in &violations {
                println!("{v}");
            }
            violations.iter().any(|v| v.message.contains("pressure"))
        }
        "shard-mismatch" => {
            // Build a shard set on one element ordering, validate against a
            // Morton-reordered mesh: the compact connectivity no longer
            // matches the mesh and the validator must reject it — the
            // mutation a stale shard set surviving a mesh reorder produces.
            let set = ShardSet::build(&fx.mesh, &Partition::rcb(&fx.mesh, 8));
            let perm = ordering::element_permutation(&fx.mesh, ordering::ElementOrder::Morton);
            let reordered = ordering::reorder_elements(&fx.mesh, &perm);
            let report = races::check_shard_set(&reordered, &set);
            println!("{report}");
            !report.is_valid()
        }
        "comm-drop" => {
            // Lose one delivered halo message on the busiest channel of a
            // traced 8-rank exchange — the signature of a broken receive
            // loop. The dual-sided counters must expose it.
            let (clean, driver, mut live) = comm::check_distributed(&input, 8);
            if !clean.is_clean() {
                eprintln!("fixture exchange unexpectedly dirty: {clean}");
                return ExitCode::FAILURE;
            }
            let c = live
                .channels
                .iter_mut()
                .max_by_key(|c| c.received_bytes)
                .expect("8-rank decomposition exchanges halo traffic");
            c.received_messages -= 1;
            c.received_bytes -= c.max_message_bytes;
            let report = comm::check_exchange(driver.shard_set(), driver.exchange_plan(), &live);
            println!("{report}");
            !report.is_clean()
        }
        "overlap-stall" => {
            // Withhold one boundary message from an 8-rank overlapped
            // assembly — the signature of a lost send or a wedged peer.
            // The victim's halo-drain stage can never retire, so the
            // scheduler watchdog must fire instead of hanging forever.
            let driver =
                DistributedDriver::new(&fx.mesh, 8).stall_timeout(Duration::from_millis(250));
            let (from, to) = (0..8)
                .find_map(|r| {
                    let send = driver.exchange_plan().rank(r).sends.first()?;
                    Some((r as u32, send.0))
                })
                .expect("8-rank decomposition exchanges halo traffic");
            match driver.assemble_sched(Variant::Rsp, &input, Some(HaloFault { from, to })) {
                Err(stall) => {
                    println!("{stall}");
                    stall.stalled.contains(&"halo-drain")
                }
                Ok(_) => false,
            }
        }
        "telemetry-skew" => {
            // Shave one element's flops off a live counter — the drift a
            // missed tally or a wrong contract rate would produce. The
            // telemetry pass recomputes the closed forms independently
            // and must flag the skew.
            let (clean, exp, mut live) = telemetry::check_distributed_telemetry(&input, 8);
            if !clean.is_clean() {
                eprintln!("fixture telemetry unexpectedly dirty: {clean}");
                return ExitCode::FAILURE;
            }
            let sc = alya_core::metrics::scope(exp.variant);
            let flops = live.counter(sc, Metric::Flops);
            live.set_counter(sc, Metric::Flops, flops - exp.variant.contract().flops);
            let report = telemetry::check_report(&live, &exp);
            println!("{report}");
            !report.is_clean()
        }
        other => {
            eprintln!(
                "unknown seed mode {other:?}; expected coloring | contract-store | contract-registers | shard-mismatch | comm-drop | overlap-stall | telemetry-skew"
            );
            return ExitCode::FAILURE;
        }
    };
    if caught {
        println!("seeded {mode} violation caught — analyzer is alive");
        ExitCode::SUCCESS
    } else {
        eprintln!("seeded {mode} violation NOT caught — analyzer is blind");
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => full_audit(),
        [flag, mode] if flag == "--seed-violation" => seeded(mode),
        _ => {
            eprintln!(
                "usage: audit [--seed-violation coloring|contract-store|contract-registers|shard-mismatch|comm-drop|overlap-stall|telemetry-skew]"
            );
            ExitCode::FAILURE
        }
    }
}
