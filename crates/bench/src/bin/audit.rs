//! The static-analysis audit: runs all eleven `alya-analyze` passes and
//! exits nonzero on any violation, so CI can gate on it.
//!
//! Usage:
//!
//! ```text
//! audit                                  # full audit, exit 0 iff clean
//! audit --list                           # print every pass and seed mode
//! audit --lint                           # source passes only (3 and 7) —
//!                                        # fast gate for pre-push hooks
//! audit --seed-violation coloring        # corrupt a coloring, expect catch
//! audit --seed-violation contract-store  # forge a global intermediate store
//! audit --seed-violation contract-registers  # forge register pressure
//! audit --seed-violation shard-mismatch  # validate shards against wrong mesh
//! audit --seed-violation comm-drop       # lose a halo message, expect catch
//! audit --seed-violation overlap-stall   # withhold a halo send, expect the
//!                                        # scheduler watchdog to fire
//! audit --seed-violation telemetry-skew  # skew a live counter off its
//!                                        # contract rate, expect catch
//! audit --seed-violation pack-divergence # skew the packed throughput rows
//!                                        # below scalar, expect catch
//! audit --seed-violation hot-alloc       # hot fn that allocates
//! audit --seed-violation hot-panic       # hot fn that may panic
//! audit --seed-violation hash-iter       # hot fn over a HashMap
//! audit --seed-violation missing-safety  # unsafe without SAFETY linkage
//! audit --seed-violation slot-leak       # skip a warm-bind rewind; expect
//!                                        # the pass-9 isolation check
//! audit --seed-violation ir-contract-drift # perturb a derived contract;
//!                                        # expect the pass-10 parity check
//! audit --seed-violation perf-regression # skew the live throughput against
//!                                        # the committed baselines; expect
//!                                        # the pass-11 sentinel to fire
//! ```
//!
//! The `--seed-violation` modes are self-tests of the analyzer: they inject
//! a known breach and exit 0 only if the analyzer *catches* it (and exit 2
//! if the analyzer missed it — the worst outcome). The last four seed a
//! virtual source file through the pass-7 engine (`alya_lint::analyze`), so
//! they run in milliseconds with no fixture assembly.

use std::process::ExitCode;
use std::time::Duration;

use alya_analyze::{comm, contracts, form, probe, races, serve, simd, sources, telemetry, Fixture};
use alya_core::drivers::{trace_element, ThroughputDb};
use alya_core::layout::{self, Layout};
use alya_core::{DistributedDriver, HaloFault, Variant};
use alya_lint::{LintKind, SourceFile, UnsafeSanction};
use alya_machine::Event;
use alya_mesh::{ordering, Coloring, Partition, ShardSet};
use alya_telemetry::Metric;

fn full_audit() -> ExitCode {
    let root = sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
    let root = if root.join("crates").is_dir() {
        Some(root)
    } else {
        eprintln!(
            "note: sources not found at {}; skipping the lint pass",
            root.display()
        );
        None
    };
    let report = alya_analyze::run_audit(root.as_deref());

    println!("kernel-contract audit");
    println!("=====================");
    for v in Variant::ALL {
        let c = v.contract();
        println!(
            "  {:5}  flops {:>5}  global ld/st {:>5}  ws {:>12}  register story: {}",
            v.name(),
            c.flops,
            c.global_ldst(),
            match c.workspace_stores {
                Some((space, n)) => format!("{n} st {space:?}"),
                None => "none".into(),
            },
            match c.spills_at_contract_budget {
                Some(true) => "spills at 128-reg budget",
                Some(false) => "fits 128-reg budget, no spills",
                None => "array-style",
            },
        );
    }
    match report.contract_violations.len() {
        0 => println!("  PASS: every variant trace matches its contract"),
        n => {
            println!("  FAIL: {n} contract violation(s)");
            for v in &report.contract_violations {
                println!("    {v}");
            }
        }
    }

    println!("\nscatter race audit");
    println!("==================");
    println!("  {}", report.races);
    println!("  {}", report.shards);

    println!("\ncomm contract audit");
    println!("===================");
    println!("  {}", report.comm);

    println!("\nschedule contract audit");
    println!("=======================");
    println!("  {}", report.sched);

    println!("\ntelemetry contract audit");
    println!("========================");
    println!("  {}", report.telemetry);

    println!("\nsource lint audit");
    println!("=================");
    match report.source_violations.len() {
        0 => println!("  PASS: unsafety and lint policy hold across the workspace"),
        n => {
            println!("  FAIL: {n} source violation(s)");
            for v in &report.source_violations {
                println!("    {v}");
            }
        }
    }

    println!("\nstatic hot-path audit");
    println!("=====================");
    print_lint_report(&report.lint);

    println!("\nsimd contract audit");
    println!("===================");
    println!("  {}", report.simd);

    println!("\nserve contract audit");
    println!("====================");
    println!("  {}", report.serve);

    println!("\nIR-derivation audit");
    println!("===================");
    match report.form.violations.len() {
        0 => println!(
            "  PASS: {} variant(s) derived from one base form; {} event stream(s), \
             whole-mesh bitwise output and every contract field match handwritten",
            report.form.variants_checked, report.form.streams_compared
        ),
        n => {
            println!("  FAIL: {n} derivation violation(s)");
            for v in &report.form.violations {
                println!("    {v}");
            }
        }
    }

    println!("\nprobe contract audit");
    println!("====================");
    println!("  {}", report.probe);

    if report.is_clean() {
        println!("\naudit clean");
        ExitCode::SUCCESS
    } else {
        println!("\naudit FAILED: {} violation(s)", report.num_violations());
        ExitCode::FAILURE
    }
}

fn print_lint_report(lint: &alya_lint::LintReport) {
    println!(
        "  {} file(s) lexed, {} hot root(s), {} hot-reachable fn(s), {} allow(s) honored",
        lint.files_scanned, lint.hot_roots, lint.reachable_fns, lint.allows_honored
    );
    match lint.violations.len() {
        0 => println!("  PASS: hot paths are alloc-, panic-, and hash-free; unsafe fully linked"),
        n => {
            println!("  FAIL: {n} lint violation(s)");
            for v in &lint.violations {
                println!("    {v}");
            }
        }
    }
}

/// The fast gate: only the two source passes (3 and 7), no fixture
/// assembly. Suited to pre-push hooks — runs in well under a second.
fn lint_only() -> ExitCode {
    let root = sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
    if !root.join("crates").is_dir() {
        eprintln!("sources not found at {}", root.display());
        return ExitCode::FAILURE;
    }

    println!("source lint audit");
    println!("=================");
    let source_violations = sources::check_workspace(&root);
    match source_violations.len() {
        0 => println!("  PASS: unsafety and lint policy hold across the workspace"),
        n => {
            println!("  FAIL: {n} source violation(s)");
            for v in &source_violations {
                println!("    {v}");
            }
        }
    }

    println!("\nstatic hot-path audit");
    println!("=====================");
    let lint = match alya_lint::check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("  could not load workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_lint_report(&lint);

    if source_violations.is_empty() && lint.is_clean() {
        println!("\nlint clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "\nlint FAILED: {} violation(s)",
            source_violations.len() + lint.violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Every pass and every seed mode, one per line — the audit's own table of
/// contents, so the CI scripts and the docs cannot drift from the binary.
fn list_modes() -> ExitCode {
    println!("passes:");
    println!("  1  kernel contracts     flops/traffic/workspace/register closed forms per variant");
    println!("  2  scatter races        coloring disjointness and shard-interior exclusivity");
    println!("  3  source lints         forbid(unsafe_code), unsafe file allowlist, lint opt-in");
    println!("  4  comm contract        dual-sided halo accounting against the exchange plan");
    println!("  5  schedule contract    stage ordering, buffer hand-off, ascending-rank combine");
    println!("  6  telemetry contract   live counters against contract rates and halo budgets");
    println!(
        "  7  static hot-path      alloc/panic/hash/telemetry lints on the alya:hot-reachable"
    );
    println!("                          set, SAFETY linkage for sanctioned unsafe");
    println!("  8  simd contract        committed packed-vs-scalar bench rows beat scalar and");
    println!("                          agree with the CPU model's packed-speedup prediction");
    println!("  9  serve contract       pooled multi-tenant isolation, per-tenant conservation,");
    println!("                          DRR fairness, and the BENCH_serve.json service floor");
    println!("  10 IR derivation        every variant derived from the one symbolic base form:");
    println!("                          generated event streams, bitwise whole-mesh output and");
    println!("                          trace-derived contracts all equal to handwritten truth");
    println!("  11 probe contract       flight recorder bitwise-transparent and bounded, seeded");
    println!("                          stalls leave a diagnosing black-box dump, and the perf");
    println!("                          sentinel stays quiet on the committed bench baselines");
    println!("seed modes (--seed-violation <mode>, exit 0 iff caught):");
    for (mode, what) in SEED_MODES {
        println!("  {mode:<19} {what}");
    }
    ExitCode::SUCCESS
}

/// Every seed mode with a one-line description; `--list` prints these and
/// `main` rejects anything not in the table.
const SEED_MODES: &[(&str, &str)] = &[
    (
        "coloring",
        "collapse the coloring; pass 2 must report races",
    ),
    (
        "contract-store",
        "forge a workspace store; pass 1 must flag it",
    ),
    (
        "contract-registers",
        "inflate live values; pass 1 must flag register pressure",
    ),
    (
        "shard-mismatch",
        "validate shards against a reordered mesh; pass 2 must reject",
    ),
    (
        "comm-drop",
        "lose a delivered halo message; pass 4 must flag it",
    ),
    (
        "overlap-stall",
        "withhold a halo send; the pass-5 watchdog must fire",
    ),
    (
        "telemetry-skew",
        "skew a live counter; pass 6 must flag the drift",
    ),
    (
        "pack-divergence",
        "skew the packed bench rows below scalar; pass 8 must flag it",
    ),
    ("hot-alloc", "hot fn that allocates; pass 7 must flag it"),
    ("hot-panic", "hot fn that may panic; pass 7 must flag it"),
    (
        "hash-iter",
        "hot fn iterating a HashMap; pass 7 must flag it",
    ),
    (
        "missing-safety",
        "unsafe block without SAFETY linkage; pass 7 must flag it",
    ),
    (
        "slot-leak",
        "skip the warm-bind rewind on a reused slot; pass 9's isolation check must flag it",
    ),
    (
        "ir-contract-drift",
        "perturb a derived contract off the hand-maintained table; pass 10 must flag the drift",
    ),
    (
        "perf-regression",
        "skew the live throughput to half its committed baseline; the pass-11 sentinel must fire",
    ),
];

/// Seeds one virtual source file through the pass-7 engine and checks that
/// exactly the expected lint fires — no more, no less. Returns `None` for
/// modes this function does not own.
fn seeded_lint(mode: &str) -> Option<bool> {
    let (text, sanctions, expect): (&str, &[UnsafeSanction], LintKind) = match mode {
        "hot-alloc" => (
            "// alya:hot\npub fn scatter(out: &mut Vec<f64>, v: f64) {\n    out.push(v);\n}\n",
            &[],
            LintKind::HotAlloc,
        ),
        "hot-panic" => (
            "// alya:hot\npub fn gather(x: Option<f64>) -> f64 {\n    x.unwrap()\n}\n",
            &[],
            LintKind::HotPanic,
        ),
        "hash-iter" => (
            "// alya:hot\npub fn combine(msgs: &[(u32, f64)], out: &mut [f64]) {\n    let mut acc = std::collections::HashMap::from_iter(msgs.iter().copied());\n    for (k, v) in acc.drain() {\n        out[k as usize] += v;\n    }\n}\n",
            &[],
            LintKind::HashIter,
        ),
        "missing-safety" => (
            // A sanctioned site that lost its SAFETY comment: the linkage
            // check must flag both the bare site and the now-unmatched
            // allowlist marker.
            "pub fn writeback(dst: *mut f64, v: f64) {\n    unsafe { *dst += v }\n}\n",
            &[UnsafeSanction {
                file: "crates/x/src/seeded.rs",
                marker: "unsafe[seeded-writeback]",
            }],
            LintKind::MissingSafety,
        ),
        _ => return None,
    };
    let files = [SourceFile {
        path: "crates/x/src/seeded.rs".into(),
        text: text.into(),
    }];
    let report = alya_lint::analyze(&files, sanctions);
    for v in &report.violations {
        println!("{v}");
    }
    let fired = report.violations.iter().any(|v| v.lint == expect);
    let only = report.violations.iter().all(|v| v.lint == expect);
    if fired && !only {
        eprintln!("seeded {mode} breach also fired unrelated lints — engine over-matches");
    }
    Some(fired && only)
}

/// Injects a known breach; exits 0 iff the analyzer catches it.
fn seeded(mode: &str) -> ExitCode {
    if let Some(caught) = seeded_lint(mode) {
        return seed_verdict(mode, caught);
    }
    let fx = Fixture::new();
    let input = fx.input();
    let caught = match mode {
        "coloring" => {
            // Collapse the proper coloring into a single class: neighbours
            // land in the same class and must be reported.
            let bad = Coloring::from_color_assignment(vec![0; fx.mesh.num_elements()]);
            let report = races::check_coloring(&fx.mesh, &bad);
            println!("{report}");
            !report.is_race_free()
        }
        "contract-store" => {
            // Append one store into the workspace region of an RSPR trace —
            // the signature of staged intermediates creeping back in.
            let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
            let mut rec = trace_element(Variant::Rspr, &input, 0, &lay);
            rec.events.push(Event::GStore(layout::WS_BASE + 8));
            let violations =
                contracts::check_trace(Variant::Rspr, &Variant::Rspr.contract(), &rec.events);
            for v in &violations {
                println!("{v}");
            }
            !violations.is_empty()
        }
        "contract-registers" => {
            // Keep 80 extra values live to the end of an RSPR trace: peak
            // pressure and budgeted spills both breach the contract.
            let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
            let mut rec = trace_element(Variant::Rspr, &input, 0, &lay);
            for v in 0..80u32 {
                rec.events.push(Event::Def(10_000 + v));
            }
            for v in 0..80u32 {
                rec.events.push(Event::Use(10_000 + v));
            }
            let violations =
                contracts::check_trace(Variant::Rspr, &Variant::Rspr.contract(), &rec.events);
            for v in &violations {
                println!("{v}");
            }
            violations.iter().any(|v| v.message.contains("pressure"))
        }
        "shard-mismatch" => {
            // Build a shard set on one element ordering, validate against a
            // Morton-reordered mesh: the compact connectivity no longer
            // matches the mesh and the validator must reject it — the
            // mutation a stale shard set surviving a mesh reorder produces.
            let set = ShardSet::build(&fx.mesh, &Partition::rcb(&fx.mesh, 8));
            let perm = ordering::element_permutation(&fx.mesh, ordering::ElementOrder::Morton);
            let reordered = ordering::reorder_elements(&fx.mesh, &perm);
            let report = races::check_shard_set(&reordered, &set);
            println!("{report}");
            !report.is_valid()
        }
        "comm-drop" => {
            // Lose one delivered halo message on the busiest channel of a
            // traced 8-rank exchange — the signature of a broken receive
            // loop. The dual-sided counters must expose it.
            let (clean, driver, mut live) = comm::check_distributed(&input, 8);
            if !clean.is_clean() {
                eprintln!("fixture exchange unexpectedly dirty: {clean}");
                return ExitCode::FAILURE;
            }
            let c = live
                .channels
                .iter_mut()
                .max_by_key(|c| c.received_bytes)
                .expect("8-rank decomposition exchanges halo traffic");
            c.received_messages -= 1;
            c.received_bytes -= c.max_message_bytes;
            let report = comm::check_exchange(driver.shard_set(), driver.exchange_plan(), &live);
            println!("{report}");
            !report.is_clean()
        }
        "overlap-stall" => {
            // Withhold one boundary message from an 8-rank overlapped
            // assembly — the signature of a lost send or a wedged peer.
            // The victim's halo-drain stage can never retire, so the
            // scheduler watchdog must fire instead of hanging forever.
            let driver =
                DistributedDriver::new(&fx.mesh, 8).stall_timeout(Duration::from_millis(250));
            let (from, to) = (0..8)
                .find_map(|r| {
                    let send = driver.exchange_plan().rank(r).sends.first()?;
                    Some((r as u32, send.0))
                })
                .expect("8-rank decomposition exchanges halo traffic");
            match driver.assemble_sched(Variant::Rsp, &input, Some(HaloFault { from, to })) {
                Err(stall) => {
                    println!("{stall}");
                    stall.stalled.contains(&"halo-drain")
                }
                Ok(_) => false,
            }
        }
        "telemetry-skew" => {
            // Shave one element's flops off a live counter — the drift a
            // missed tally or a wrong contract rate would produce. The
            // telemetry pass recomputes the closed forms independently
            // and must flag the skew.
            let (clean, exp, mut live) = telemetry::check_distributed_telemetry(&input, 8);
            if !clean.is_clean() {
                eprintln!("fixture telemetry unexpectedly dirty: {clean}");
                return ExitCode::FAILURE;
            }
            let sc = alya_core::metrics::scope(exp.variant);
            let flops = live.counter(sc, Metric::Flops);
            live.set_counter(sc, Metric::Flops, flops - exp.variant.contract().flops);
            let report = telemetry::check_report(&live, &exp);
            println!("{report}");
            !report.is_clean()
        }
        "pack-divergence" => {
            // Skew every committed packed serial row to half the scalar
            // throughput — the regression a broken pack gather or a
            // scalar-fallback-everywhere dispatch would produce. Pass 8
            // must flag exactly the skewed cells, and nothing else.
            let root = sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
            let clean = simd::check_workspace_simd(Some(&root));
            if !clean.checked || !clean.is_clean() {
                eprintln!("committed bench report unexpectedly dirty: {clean}");
                return ExitCode::FAILURE;
            }
            let skewed: Vec<String> = clean
                .cells
                .iter()
                .flat_map(|c| {
                    [
                        format!(
                            "{{\"strategy\": \"serial\", \"variant\": \"{}\", \
                             \"threads\": 1, \"melem_per_s\": {:.3}}}",
                            c.variant.name(),
                            c.scalar_melem
                        ),
                        format!(
                            "{{\"strategy\": \"serial-packed\", \"variant\": \"{}\", \
                             \"threads\": 1, \"melem_per_s\": {:.3}}}",
                            c.variant.name(),
                            0.5 * c.scalar_melem
                        ),
                    ]
                })
                .collect();
            let db = ThroughputDb::parse(&format!("[{}]", skewed.join(",\n")))
                .expect("skewed rows are well-formed");
            let report = simd::check_db(&db, &simd::fixture_predictions());
            println!("{report}");
            // Every measured cell must be flagged as a packed regression —
            // the exact check this mode seeds against.
            !report.is_clean()
                && report.violations.iter().any(|v| v.contains("regressed"))
                && report.cells.len() == clean.cells.len()
        }
        "ir-contract-drift" => {
            // Drift the RSPR contract the way a stale hand-maintained table
            // (or a silently changed rewrite pass) would: one flop and a
            // few registers off. The field-for-field parity check must name
            // exactly the drifted fields, and the clean derivation must
            // still pass beforehand.
            let clean = form::check_form(&input);
            if !clean.is_clean() {
                eprintln!("fixture derivation unexpectedly dirty: {clean:#?}");
                return ExitCode::FAILURE;
            }
            let mut drifted = alya_form::derive_contract(&alya_form::derive(Variant::Rspr));
            drifted.flops += 1;
            drifted.max_pressure = drifted.max_pressure.map(|p| p + 3);
            let violations = form::check_derived_contract(Variant::Rspr, &drifted);
            for v in &violations {
                println!("{v}");
            }
            violations.len() == 2 && violations.iter().all(|v| v.message.contains("drifted"))
        }
        "slot-leak" => {
            // Skip the warm-bind rewind on every reused slot: a re-admitted
            // session continues from the previous session's final state —
            // the cross-tenant leak pooling must never allow. The pass-9
            // isolation check (identical work ⇒ bitwise-identical digest)
            // must flag it, and nothing else may fire: conservation and
            // accounting still hold on a leaked-but-counted slot.
            let clean = serve::check_report(&serve::run_pool_scenario(false));
            if !clean.is_clean() {
                eprintln!("clean pooled scenario unexpectedly dirty: {clean}");
                return ExitCode::FAILURE;
            }
            let report = serve::check_report(&serve::run_pool_scenario(true));
            println!("{report}");
            !report.is_clean() && report.violations.iter().all(|v| v.contains("isolation"))
        }
        "perf-regression" => {
            // Arm the sentinel from the committed bench reports and
            // confirm it is quiet, then replay the same keys with every
            // throughput halved — the drift a broken dispatch or a
            // silently degraded machine would produce. Every skewed row
            // (and nothing else) must fire the sentinel.
            let root = sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
            let Some(pairs) = probe::sentinel_pairs_from_workspace(&root) else {
                eprintln!("no committed bench reports to arm the sentinel from");
                return ExitCode::FAILURE;
            };
            let (baselines, quiet) = probe::check_sentinel_pairs(&pairs);
            if baselines == 0 || !quiet.is_empty() {
                eprintln!("committed baselines unexpectedly noisy: {quiet:?}");
                return ExitCode::FAILURE;
            }
            let skewed: Vec<probe::SentinelPair> = pairs
                .iter()
                .map(|p| probe::SentinelPair {
                    key: p.key.clone(),
                    expected: p.expected,
                    measured: if p.key.starts_with("melem_per_s/") {
                        0.5 * p.measured
                    } else {
                        p.measured
                    },
                })
                .collect();
            let (_, drifts) = probe::check_sentinel_pairs(&skewed);
            for d in &drifts {
                println!("{d}");
            }
            let melem_rows = skewed
                .iter()
                .filter(|p| p.key.starts_with("melem_per_s/"))
                .count();
            melem_rows > 0
                && drifts.len() == melem_rows
                && drifts.iter().all(|d| d.contains("melem_per_s/"))
        }
        other => {
            eprintln!("unknown seed mode {other:?}; run `audit --list` for the full table");
            return ExitCode::FAILURE;
        }
    };
    seed_verdict(mode, caught)
}

fn seed_verdict(mode: &str, caught: bool) -> ExitCode {
    if caught {
        println!("seeded {mode} violation caught — analyzer is alive");
        ExitCode::SUCCESS
    } else {
        eprintln!("seeded {mode} violation NOT caught — analyzer is blind");
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => full_audit(),
        [flag] if flag == "--list" => list_modes(),
        [flag] if flag == "--lint" => lint_only(),
        [flag, mode] if flag == "--seed-violation" => {
            if SEED_MODES.iter().any(|(m, _)| m == mode) {
                seeded(mode)
            } else {
                eprintln!("unknown seed mode {mode:?}; run `audit --list` for the full table");
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: audit [--list | --lint | --seed-violation <mode>]");
            eprintln!("       run `audit --list` for every pass and seed mode");
            ExitCode::FAILURE
        }
    }
}
