//! Reproduces **Section VI**: the energy-per-assembly estimate and the
//! GPU-vs-CPU efficiency ratio (including the baseline's inversion).
//!
//! Usage: `energy [mesh_elems]` (default 40000).

use alya_bench::case::Case;
use alya_bench::profile::{cpu_report, gpu_report};
use alya_bench::report::{num, Table};
use alya_bench::{paper, CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::cpu::CpuModel;
use alya_machine::energy::{cpu_energy, efficiency_ratio, gpu_energy, PowerSpec};
use alya_machine::gpu::GpuModel;
use alya_machine::spec::{CpuSpec, GpuSpec};

fn main() {
    let elems: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40_000);

    eprintln!("building case (~{elems} tets) and simulating...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    let gpu_model = GpuModel::new(GpuSpec::a100_40gb());
    let mut cpu_model = CpuModel::new(CpuSpec::icelake_8360y());
    cpu_model.sample_packs = 96;
    let power = PowerSpec::alex_fritz();

    // Fastest variants on each target (paper: RSPR on GPU, RSP on CPU at
    // 71 workers), plus the baseline for the inversion story.
    let gpu_best = gpu_report(Variant::Rspr, &input, &gpu_model, PAPER_ELEMS);
    let gpu_base = gpu_report(Variant::B, &input, &gpu_model, PAPER_ELEMS);
    let cpu_best = cpu_report(Variant::Rsp, &input, &cpu_model, PAPER_ELEMS);
    let cpu_base = cpu_report(Variant::B, &input, &cpu_model, PAPER_ELEMS);

    let t_gpu_best = gpu_best.runtime * CALLS_PER_RUNTIME;
    let t_gpu_base = gpu_base.runtime * CALLS_PER_RUNTIME;
    let t_cpu_best = cpu_model.scale(&cpu_best, PAPER_ELEMS, 71) * CALLS_PER_RUNTIME;
    let t_cpu_base = cpu_model.scale(&cpu_base, PAPER_ELEMS, 71) * CALLS_PER_RUNTIME;

    println!("Section VI reproduction — energy per assembly\n");
    println!(
        "power model: {} W per A100 (incl. host share), {} W per CPU node\n",
        power.gpu_watts, power.cpu_node_watts
    );

    let mut t = Table::new(["configuration", "runtime ms", "energy J"]);
    t.row([
        "GPU RSPR (fastest)".to_string(),
        num(t_gpu_best * 1e3),
        num(gpu_energy(&power, t_gpu_best)),
    ]);
    t.row([
        "CPU node RSP, 71 workers".to_string(),
        num(t_cpu_best * 1e3),
        num(cpu_energy(&power, t_cpu_best)),
    ]);
    t.row([
        "GPU B (baseline)".to_string(),
        num(t_gpu_base * 1e3),
        num(gpu_energy(&power, t_gpu_base)),
    ]);
    t.row([
        "CPU node B, 71 workers".to_string(),
        num(t_cpu_base * 1e3),
        num(cpu_energy(&power, t_cpu_base)),
    ]);
    println!("{}", t.render());

    let best_ratio = efficiency_ratio(&power, t_gpu_best, t_cpu_best);
    let base_ratio = efficiency_ratio(&power, t_gpu_base, t_cpu_base);
    println!(
        "optimized: GPU is {best_ratio:.1}x more energy-efficient (paper: ~{:.1}x from {} ms/{} J vs {} ms/{} J)",
        paper::ENERGY.cpu_joules / paper::ENERGY.gpu_joules,
        paper::ENERGY.gpu_runtime_s * 1e3,
        paper::ENERGY.gpu_joules,
        paper::ENERGY.cpu_runtime_s * 1e3,
        paper::ENERGY.cpu_joules,
    );
    println!(
        "baseline: ratio {base_ratio:.2} — {} (paper: the GPU was the LESS efficient option)",
        if base_ratio < 1.0 {
            "inversion reproduced"
        } else {
            "inversion NOT reproduced"
        }
    );
}
