//! Gather-locality ablation (extension beyond the paper): how element
//! ordering affects the irreducible nodal gather/scatter traffic that the
//! paper identifies as the optimized kernels' remaining cost.
//!
//! Sweeps natural / Morton / random element orderings, reports the
//! modelled GPU DRAM volume and runtime for the RSP variant, plus real
//! host wall-clock.
//!
//! Usage: `ordering [mesh_elems]` (default 100000).

use std::time::Instant;

use alya_bench::profile::gpu_report;
use alya_bench::report::{num, Table};
use alya_bench::{CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::{assemble_serial, AssemblyInput, Variant};
use alya_fem::{ScalarField, VectorField};
use alya_machine::gpu::GpuModel;
use alya_machine::spec::GpuSpec;
use alya_mesh::ordering::{element_permutation, ordering_locality, reorder_elements, ElementOrder};
use alya_mesh::TerrainMeshBuilder;

fn main() {
    let elems: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);

    let base = TerrainMeshBuilder::with_approx_elements(elems).build();
    println!(
        "gather-locality ablation — {} tets, RSP variant\n",
        base.num_elements()
    );

    let model = GpuModel::new(GpuSpec::a100_40gb());
    let mut t = Table::new([
        "ordering",
        "locality metric",
        "GPU DRAM B/elem",
        "GPU L2 eff",
        "GPU runtime ms",
        "host wall ms",
    ]);

    for order in ElementOrder::ALL {
        let perm = element_permutation(&base, order);
        let mesh = reorder_elements(&base, &perm);
        let velocity = VectorField::from_fn(&mesh, |p| [p[2] * p[2], 0.2 * p[0], -0.1 * p[1]]);
        let pressure = ScalarField::from_fn(&mesh, |p| p[0]);
        let temperature = ScalarField::zeros(mesh.num_nodes());
        let mut input = AssemblyInput::new(&mesh, &velocity, &pressure, &temperature);
        let nut = compute_nu_t(&input);
        input.nu_t = Some(&nut);

        let r = gpu_report(Variant::Rsp, &input, &model, PAPER_ELEMS);
        let t0 = Instant::now();
        let _ = assemble_serial(Variant::Rsp, &input);
        let wall = t0.elapsed().as_secs_f64();

        t.row([
            order.name().to_string(),
            num(ordering_locality(&mesh)),
            num(r.dram_volume),
            format!("{:.0}%", r.l2_effectiveness * 100.0),
            num(r.runtime * CALLS_PER_RUNTIME * 1e3),
            num(wall * 1e3),
        ]);
        eprintln!("{} done", order.name());
    }
    println!("{}", t.render());
    println!(
        "expectation: random order destroys node reuse -> higher DRAM volume and runtime;\n\
         Morton matches or improves the structured order."
    );
}
