//! Reproduces **Table III**: store behaviour of the Listing-3 microkernel
//! under the three `temp` mappings (global / local / registers).
//!
//! Usage: `table3` (no arguments; the microkernel is self-contained).

use alya_bench::paper;
use alya_bench::report::{num, Table};
use alya_core::listing3::{trace, TempMapping, ROWLEN};
use alya_machine::cache::{AccessKind, CacheSim, Replacement};
use alya_machine::spec::GpuSpec;
use alya_machine::trace::TraceCounts;
use alya_machine::{Event, RegisterAllocator};

/// Simulated threads (a few blocks' worth — the test code is tiny).
const THREADS: usize = 4096;
const TPB: usize = 128;

struct StoreVolumes {
    local_stores: u64,
    global_stores: u64,
    l2_bytes: f64,
    dram_bytes: f64,
}

/// Replays the microkernel for one mapping through an L1+L2 pair with the
/// local-line retirement semantics and measures per-thread store behaviour.
fn run(mapping: TempMapping) -> StoreVolumes {
    let spec = GpuSpec::a100_40gb();
    let mut l1 = CacheSim::new(spec.l1_bytes, spec.line_bytes, spec.l1_assoc);
    let mut l2 = CacheSim::new(4 * 1024 * 1024, spec.line_bytes, spec.l2_assoc)
        .with_replacement(Replacement::Random);

    let mut counts = TraceCounts::default();
    let mut l2_store_bytes = 0u64;
    let mut dram_store_bytes = 0u64;
    let line = spec.line_bytes as u64;

    for block in 0..(THREADS / TPB) as u32 {
        for t in 0..TPB {
            let thread = block as usize * TPB + t;
            let mut ev = trace(mapping, thread, THREADS);
            if mapping == TempMapping::Registers {
                ev = RegisterAllocator::new(64).allocate(&ev).events;
            }
            let c = TraceCounts::from_events(&ev);
            counts.global_stores += c.global_stores;
            counts.local_stores += c.local_stores;
            // Replay stores through the hierarchy (loads omitted: Table III
            // reports store traffic).
            for e in &ev {
                match *e {
                    Event::GStore(addr) => {
                        // Write-through L1, store lands in L2.
                        l1.write_through(addr);
                        let o2 = l2.access(addr / line * line, AccessKind::Store, None);
                        l2_store_bytes += 8;
                        if o2.writeback.is_some() {
                            dram_store_bytes += line;
                        }
                    }
                    Event::LStore(slot) => {
                        // Local memory: write-back in L1, block-owned.
                        let addr = (1u64 << 48)
                            + block as u64 * (1 << 24)
                            + (slot as u64 * TPB as u64 + t as u64) * 8;
                        let out = l1.access(addr / line * line, AccessKind::Store, Some(block));
                        if let Some(wb) = out.writeback {
                            let o2 = l2.access(wb, AccessKind::Store, out.writeback_owner);
                            l2_store_bytes += line;
                            if o2.writeback.is_some() {
                                dram_store_bytes += line;
                            }
                        }
                        let _ = out;
                    }
                    _ => {}
                }
            }
        }
        // Block retires: flush its local L1 lines to L2 (they must leave
        // the SM) and then invalidate the block's lines everywhere —
        // retired local data never needs DRAM.
        for wb in l1.flush() {
            if wb >= (1 << 48) {
                let o2 = l2.access(wb, AccessKind::Store, Some(block));
                l2_store_bytes += line;
                if o2.writeback.is_some() {
                    dram_store_bytes += line;
                }
            } else {
                dram_store_bytes += line;
            }
        }
        l2.invalidate_owner(block);
    }
    // End of kernel: surviving dirty L2 lines go to DRAM.
    dram_store_bytes += l2.flush().len() as u64 * line;

    StoreVolumes {
        local_stores: counts.local_stores / THREADS as u64,
        global_stores: counts.global_stores / THREADS as u64,
        l2_bytes: l2_store_bytes as f64 / THREADS as f64,
        dram_bytes: dram_store_bytes as f64 / THREADS as f64,
    }
}

fn main() {
    println!("Table III reproduction — Listing 3 ({ROWLEN} rows, {THREADS} threads)\n");
    let mut t = Table::new(["", "global memory", "local memory", "registers"]);
    let results: Vec<StoreVolumes> = TempMapping::ALL.iter().map(|&m| run(m)).collect();

    t.row(
        std::iter::once("local store instr".to_string())
            .chain(results.iter().map(|r| r.local_stores.to_string())),
    );
    t.row(
        std::iter::once("global store instr".to_string())
            .chain(results.iter().map(|r| r.global_stores.to_string())),
    );
    t.row(
        std::iter::once("store volume to L2 (B)".to_string())
            .chain(results.iter().map(|r| num(r.l2_bytes))),
    );
    t.row(
        std::iter::once("store volume to DRAM (B)".to_string())
            .chain(results.iter().map(|r| num(r.dram_bytes))),
    );
    println!("{}", t.render());

    println!("paper values:");
    let mut p = Table::new(["", "global memory", "local memory", "registers"]);
    let pt = &paper::TABLE3;
    p.row(
        std::iter::once("local store instr".to_string())
            .chain(pt.iter().map(|c| c.local_stores.to_string())),
    );
    p.row(
        std::iter::once("global store instr".to_string())
            .chain(pt.iter().map(|c| c.global_stores.to_string())),
    );
    p.row(
        std::iter::once("store volume to L2 (B)".to_string())
            .chain(pt.iter().map(|c| num(c.l2_store_bytes))),
    );
    p.row(
        std::iter::once("store volume to DRAM (B)".to_string())
            .chain(pt.iter().map(|c| num(c.dram_store_bytes))),
    );
    println!("{}", p.render());
}
