//! Reproduces **Table II**: GPU performance counters for the five variants.
//!
//! Usage: `table2 [mesh_elems] [sample_sms] [waves]` (defaults 40000 / 4 / 2).

use alya_bench::case::Case;
use alya_bench::profile::gpu_report;
use alya_bench::report::{num, pct, Table};
use alya_bench::{paper, CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::gpu::GpuModel;
use alya_machine::spec::GpuSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let sample_sms: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let waves: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    eprintln!("building Bolund-like case (~{elems} tets)...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    let mut model = GpuModel::new(GpuSpec::a100_40gb());
    model.sample_sms = sample_sms;
    model.waves = waves;

    println!("Table II reproduction — GPU ({})", model.spec.name);
    println!(
        "mesh: {} tets / {} nodes; runtimes scaled to {} elements x {} RHS sweeps\n",
        case.mesh.num_elements(),
        case.mesh.num_nodes(),
        PAPER_ELEMS,
        CALLS_PER_RUNTIME
    );

    let mut t = Table::new(["metric", "B", "P", "RS", "RSP", "RSPR"]);
    let mut reports = Vec::new();
    for variant in Variant::ALL {
        eprintln!("simulating {variant}...");
        reports.push(gpu_report(variant, &input, &model, PAPER_ELEMS));
    }

    macro_rules! push_row {
        ($name:expr, $f:expr) => {{
            let f = $f;
            let mut cells: Vec<String> = vec![$name.to_string()];
            for r in &reports {
                cells.push(f(r));
            }
            t.row(cells);
        }};
    }
    use alya_machine::gpu::GpuReport;
    push_row!("global ld/st per elem", |r: &GpuReport| num(r.global_ldst));
    push_row!("local  ld/st per elem", |r: &GpuReport| num(r.local_ldst));
    push_row!("flop per elem", |r: &GpuReport| num(r.flops));
    push_row!("L1 volume B/elem", |r: &GpuReport| num(r.l1_volume));
    push_row!("L1 effectiveness", |r: &GpuReport| pct(r.l1_effectiveness));
    push_row!("L2 volume B/elem", |r: &GpuReport| num(r.l2_volume));
    push_row!("L2 effectiveness", |r: &GpuReport| pct(r.l2_effectiveness));
    push_row!("DRAM volume B/elem", |r: &GpuReport| num(r.dram_volume));
    push_row!("registers", |r: &GpuReport| r.registers.to_string());
    push_row!("occupancy", |r: &GpuReport| pct(r.occupancy));
    push_row!("GFlop/s", |r: &GpuReport| num(r.gflops / 1e9));
    push_row!("GB/s", |r: &GpuReport| num(r.dram_bw / 1e9));
    push_row!("runtime ms (3 sweeps)", |r: &GpuReport| num(r.runtime
        * CALLS_PER_RUNTIME
        * 1e3));
    push_row!("bottleneck", |r: &GpuReport| r.bottleneck.to_string());
    println!("{}", t.render());

    println!("paper values:");
    let mut p = Table::new(["metric", "B", "P", "RS", "RSP", "RSPR"]);
    let pt = &paper::TABLE2;
    p.row(
        std::iter::once("global ld/st per elem".to_string())
            .chain(pt.iter().map(|c| num(c.global_ldst))),
    );
    p.row(
        std::iter::once("local  ld/st per elem".to_string())
            .chain(pt.iter().map(|c| num(c.local_ldst))),
    );
    p.row(std::iter::once("flop per elem".to_string()).chain(pt.iter().map(|c| num(c.flops))));
    p.row(std::iter::once("DRAM volume B/elem".to_string()).chain(pt.iter().map(|c| num(c.dram))));
    p.row(
        std::iter::once("registers".to_string()).chain(pt.iter().map(|c| c.registers.to_string())),
    );
    p.row(std::iter::once("GFlop/s".to_string()).chain(pt.iter().map(|c| num(c.gflops))));
    p.row(std::iter::once("runtime ms".to_string()).chain(pt.iter().map(|c| num(c.runtime_ms))));
    println!("{}", p.render());

    let speedup = reports[0].runtime / reports[4].runtime;
    println!(
        "headline: B -> RSPR speedup {:.1}x (paper: {:.1}x)",
        speedup,
        paper::TABLE2[0].runtime_ms / paper::TABLE2[4].runtime_ms
    );
}
