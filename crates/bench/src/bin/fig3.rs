//! Reproduces **Figure 3**: the roofline diagram of the GPU variants —
//! DRAM and L2 arithmetic-intensity points for each variant plus the four
//! roofs (FP64 peak, instruction-mix roof, DRAM bandwidth, L2 bandwidth).
//!
//! Usage: `fig3 [mesh_elems] [sample_sms] [waves]` (defaults 40000 / 4 / 2).
//! Output: gnuplot-ready point list + sampled roof lines.

use alya_bench::case::Case;
use alya_bench::profile::gpu_report;
use alya_bench::{paper, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::gpu::GpuModel;
use alya_machine::roofline::{point_from_counters, Roofline, RooflineClass};
use alya_machine::spec::GpuSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let sample_sms: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let waves: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    eprintln!("building case (~{elems} tets) and simulating variants...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    let mut model = GpuModel::new(GpuSpec::a100_40gb());
    model.sample_sms = sample_sms;
    model.waves = waves;
    let chart = Roofline::a100(&model.spec);

    println!("# Figure 3 reproduction — A100 roofline");
    println!(
        "# roofs: FP64 {:.1} TF/s, mix {:.1} TF/s, DRAM {:.0} GB/s, L2 {:.0} GB/s; knee at {:.2} Flop/B",
        chart.peak_flops / 1e12,
        chart.mix_roof / 1e12,
        chart.dram_bw / 1e9,
        chart.l2_bw / 1e9,
        chart.dram_knee()
    );
    println!(
        "# {:>7} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "variant", "AI_dram", "AI_L2", "GFlop/s", "class", "roof_frac"
    );

    for variant in Variant::ALL {
        let r = gpu_report(variant, &input, &model, PAPER_ELEMS);
        let p = point_from_counters(
            variant.name(),
            r.flops,
            r.dram_volume,
            r.l2_volume,
            r.gflops,
        );
        let class = match chart.classify(p.dram_intensity) {
            RooflineClass::MemoryBound => "memory-bound",
            RooflineClass::ComputeBound => "compute-bound",
        };
        println!(
            "{:>9} {:>12.3} {:>12.3} {:>12.1} {:>14} {:>12.2}",
            p.label,
            p.dram_intensity,
            p.l2_intensity,
            p.flops / 1e9,
            class,
            chart.dram_roof_fraction(&p)
        );
    }

    println!("\n# paper points (from Table II):");
    for c in &paper::TABLE2 {
        let p = point_from_counters(c.label, c.flops, c.dram, c.l2_volume, c.gflops * 1e9);
        println!(
            "# {:>7} {:>12.3} {:>12.3} {:>12.1}",
            p.label,
            p.dram_intensity,
            p.l2_intensity,
            p.flops / 1e9
        );
    }

    println!("\n# DRAM roof samples (AI, GFlop/s):");
    for (ai, perf) in chart.dram_series(0.1, 100.0, 40) {
        println!("{ai:>10.3} {:>12.1}", perf / 1e9);
    }
}
