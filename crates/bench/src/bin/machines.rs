//! Cross-hardware projection ("towards exascale", extension beyond the
//! paper): run the baseline and the fully optimized kernel through the
//! machine models of three GPU generations and two CPU nodes, and watch
//! how the optimization gap widens as machine balance shifts toward
//! compute.
//!
//! Usage: `machines [mesh_elems] [--pipelined] [--trace PATH]`
//! (default 40000). `--pipelined` runs the CPU sweep through the async
//! harness ([`alya_bench::pipeline::cpu_report_pipelined`]): trace
//! generation on a producer thread, model replay on this one,
//! double-buffered hand-off — same numbers, overlapped wall clock.
//! `--trace` dumps per-machine simulation spans as chrome trace JSON.

use alya_bench::case::Case;
use alya_bench::pipeline::cpu_report_pipelined;
use alya_bench::profile::{cpu_report, gpu_report};
use alya_bench::report::{num, Table};
use alya_bench::{CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::cpu::CpuModel;
use alya_machine::gpu::GpuModel;
use alya_machine::spec::{CpuSpec, GpuSpec};
use alya_telemetry as telemetry;

fn main() {
    let mut pipelined = false;
    let mut elems: usize = 40_000;
    let mut trace = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pipelined" => pipelined = true,
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => {
                    eprintln!("--trace needs a path");
                    std::process::exit(1);
                }
            },
            other => match other.parse() {
                Ok(n) => elems = n,
                Err(_) => {
                    eprintln!("usage: machines [mesh_elems] [--pipelined] [--trace PATH]");
                    std::process::exit(1);
                }
            },
        }
    }
    let session = trace.as_ref().map(|_| telemetry::session());

    eprintln!("building case (~{elems} tets)...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    println!("cross-hardware projection — B vs RSPR, {PAPER_ELEMS} elements x {CALLS_PER_RUNTIME} sweeps\n");

    let mut t = Table::new([
        "machine",
        "intensity F/B",
        "B ms",
        "RSPR ms",
        "speedup",
        "RSPR bottleneck",
    ]);
    for spec in [
        GpuSpec::v100_32gb(),
        GpuSpec::a100_40gb(),
        GpuSpec::h100_sxm(),
    ] {
        eprintln!("simulating {}...", spec.name);
        let name = spec.name;
        let intensity = spec.machine_intensity();
        let model = GpuModel::new(spec);
        let _sp = telemetry::span(format!("gpu-sim:{name}"));
        let b = gpu_report(Variant::B, &input, &model, PAPER_ELEMS);
        let rspr = gpu_report(Variant::Rspr, &input, &model, PAPER_ELEMS);
        t.row([
            name.to_string(),
            num(intensity),
            num(b.runtime * CALLS_PER_RUNTIME * 1e3),
            num(rspr.runtime * CALLS_PER_RUNTIME * 1e3),
            format!("{:.1}x", b.runtime / rspr.runtime),
            rspr.bottleneck.to_string(),
        ]);
    }
    println!("{}", t.render());

    let mut t = Table::new(["machine", "cores", "B node ms", "RSP node ms", "speedup"]);
    for spec in [CpuSpec::icelake_8360y(), CpuSpec::sapphire_rapids_8480()] {
        eprintln!("simulating {}...", spec.name);
        let name = spec.name;
        let workers = spec.total_cores() - 1; // paper convention: 1 master
        let _sp = telemetry::span(format!("cpu-sim:{name}"));
        let mut model = CpuModel::new(spec);
        model.sample_packs = 64;
        let run = if pipelined {
            cpu_report_pipelined
        } else {
            cpu_report
        };
        let b = run(Variant::B, &input, &model, PAPER_ELEMS);
        let rsp = run(Variant::Rsp, &input, &model, PAPER_ELEMS);
        let tb = model.scale(&b, PAPER_ELEMS, workers) * CALLS_PER_RUNTIME * 1e3;
        let tr = model.scale(&rsp, PAPER_ELEMS, workers) * CALLS_PER_RUNTIME * 1e3;
        t.row([
            name.to_string(),
            workers.to_string(),
            num(tb),
            num(tr),
            format!("{:.1}x", tb / tr),
        ]);
    }
    println!("{}", t.render());

    if let (Some(path), Some(s)) = (&trace, session) {
        alya_bench::trace::write_chrome_trace(path, &s.finish());
    }
}
