//! Reproduces **Table I**: CPU performance counters for B, RS, RSP.
//!
//! Usage: `table1 [mesh_elems] [sample_packs]` (defaults 40000 / 128).

use alya_bench::case::Case;
use alya_bench::profile::cpu_report;
use alya_bench::report::{num, pct, Table};
use alya_bench::{paper, CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::cpu::CpuModel;
use alya_machine::spec::CpuSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let packs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(128);

    eprintln!("building Bolund-like case (~{elems} tets)...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    let mut model = CpuModel::new(CpuSpec::icelake_8360y());
    model.sample_packs = packs;

    println!("Table I reproduction — CPU ({})", model.spec.name);
    println!(
        "mesh: {} tets / {} nodes; runtimes scaled to {} elements x {} RHS sweeps\n",
        case.mesh.num_elements(),
        case.mesh.num_nodes(),
        PAPER_ELEMS,
        CALLS_PER_RUNTIME
    );

    let variants = [Variant::B, Variant::Rs, Variant::Rsp];
    let mut reports = Vec::new();
    for v in variants {
        eprintln!("simulating {v}...");
        reports.push(cpu_report(v, &input, &model, PAPER_ELEMS));
    }

    let mut t = Table::new(["metric", "B", "RS", "RSP"]);
    use alya_machine::cpu::CpuReport;
    macro_rules! push_row {
        ($name:expr, $f:expr) => {{
            let f = $f;
            let mut cells: Vec<String> = vec![$name.to_string()];
            for r in &reports {
                cells.push(f(r));
            }
            t.row(cells);
        }};
    }
    push_row!("ld/st ops per elem", |r: &CpuReport| num(r.ldst_ops));
    push_row!("flop per elem", |r: &CpuReport| num(r.flops));
    push_row!("L1 volume B/elem", |r: &CpuReport| num(r.l1_volume));
    push_row!("L1 effectiveness", |r: &CpuReport| pct(r.l1_effectiveness));
    push_row!("L2/L3 volume B/elem", |r: &CpuReport| num(r.l23_volume));
    push_row!("L2/L3 effectiveness", |r: &CpuReport| pct(
        r.l23_effectiveness
    ));
    push_row!("DRAM volume B/elem", |r: &CpuReport| num(r.dram_volume));
    push_row!("GFlop/s (1c)", |r: &CpuReport| num(r.gflops_1c / 1e9));
    push_row!("GB/s (1c)", |r: &CpuReport| num(r.dram_bw_1c / 1e9));
    push_row!("runtime 1c ms (3 sweeps)", |r: &CpuReport| num(r
        .runtime_1c
        * CALLS_PER_RUNTIME
        * 1e3));
    // 71 workers via the scaling model.
    {
        let mut cells = vec!["runtime 71c ms (3 sweeps)".to_string()];
        for r in &reports {
            let t71 = model.scale(r, PAPER_ELEMS, 71) * CALLS_PER_RUNTIME * 1e3;
            cells.push(num(t71));
        }
        t.row(cells);
    }
    println!("{}", t.render());

    println!("paper values:");
    let mut p = Table::new(["metric", "B", "RS", "RSP"]);
    let pt = &paper::TABLE1;
    p.row(std::iter::once("ld/st ops per elem".to_string()).chain(pt.iter().map(|c| num(c.ldst))));
    p.row(std::iter::once("flop per elem".to_string()).chain(pt.iter().map(|c| num(c.flops))));
    p.row(
        std::iter::once("L1 volume B/elem".to_string()).chain(pt.iter().map(|c| num(c.l1_volume))),
    );
    p.row(std::iter::once("L1 effectiveness".to_string()).chain(pt.iter().map(|c| pct(c.l1_eff))));
    p.row(
        std::iter::once("L2/L3 volume B/elem".to_string())
            .chain(pt.iter().map(|c| num(c.l23_volume))),
    );
    p.row(std::iter::once("DRAM volume B/elem".to_string()).chain(pt.iter().map(|c| num(c.dram))));
    p.row(std::iter::once("GFlop/s (1c)".to_string()).chain(pt.iter().map(|c| num(c.gflops_1c))));
    p.row(
        std::iter::once("runtime 1c ms".to_string()).chain(pt.iter().map(|c| num(c.runtime_1c_ms))),
    );
    p.row(
        std::iter::once("runtime 71c ms".to_string())
            .chain(pt.iter().map(|c| num(c.runtime_71c_ms))),
    );
    println!("{}", p.render());

    println!(
        "headline: B -> RSP single-core speedup {:.1}x (paper {:.1}x)",
        reports[0].runtime_1c / reports[2].runtime_1c,
        paper::TABLE1[0].runtime_1c_ms / paper::TABLE1[2].runtime_1c_ms
    );
}
