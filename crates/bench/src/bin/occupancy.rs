//! Occupancy sweep (extension): the register-pressure → occupancy →
//! latency-hidden-bandwidth chain that underlies the paper's P/RSP/RSPR
//! progression, isolated on a synthetic streaming kernel.
//!
//! For each per-thread register demand, the sweep reports resident
//! threads/SM, occupancy, the Little's-law effective DRAM bandwidth, and
//! the modelled runtime of a pure streaming kernel — showing exactly why
//! shaving registers from 255 to 128 pays even when the arithmetic is
//! unchanged.
//!
//! Usage: `occupancy` (self-contained).

use alya_bench::report::{num, pct, Table};
use alya_machine::gpu::{GpuModel, RegisterDemand};
use alya_machine::spec::GpuSpec;
use alya_machine::Event;

fn main() {
    let spec = GpuSpec::a100_40gb();
    println!(
        "occupancy sweep — {} (streaming kernel, 32 B/elem)\n",
        spec.name
    );

    let mut t = Table::new([
        "regs/thread",
        "threads/SM",
        "occupancy",
        "eff. DRAM GB/s",
        "runtime ms",
        "bottleneck",
    ]);

    for regs in [255u32, 192, 160, 128, 96, 64, 40] {
        // Pressure such that Measured lands exactly on `regs`.
        let pressure = (regs.saturating_sub(26)) / 2;
        let demand = RegisterDemand::Measured { pressure };
        let model = GpuModel::new(spec.clone());
        let n = 1 << 22;
        // Dependent chain (load -> use -> load ...): MLP 1, the baseline's
        // access pattern — the one that exposes latency.
        let r = model.execute("stream", demand, n, |e| {
            vec![
                Event::GLoad(0x10_0000_0000 + e as u64 * 8),
                Event::Fma(2),
                Event::GLoad(0x20_0000_0000 + e as u64 * 8),
                Event::Fma(2),
                Event::GLoad(0x30_0000_0000 + e as u64 * 8),
                Event::Fma(2),
                Event::GStore(0x40_0000_0000 + e as u64 * 8),
            ]
        });
        t.row([
            r.registers.to_string(),
            spec.resident_threads_per_sm(r.registers).to_string(),
            pct(r.occupancy),
            num(r.dram_bw / 1e9),
            num(r.runtime * 1e3),
            r.bottleneck.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: below ~50% occupancy the streaming kernel cannot cover the\n\
         ~{:.0}-cycle DRAM latency and effective bandwidth collapses — the paper's\n\
         register economics in one table.",
        spec.dram_latency_cycles
    );
}
