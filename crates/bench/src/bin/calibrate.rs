//! Model calibration check, mirroring the paper's reference [12]
//! (gpu-benches): run Scale- and Triad-style streaming microkernels plus a
//! dependent-chain latency kernel through the GPU model, and the
//! likwid-bench-style load/peakflops kernels through the CPU model, and
//! compare against the machine figures the paper quotes.
//!
//! Usage: `calibrate` (self-contained).

use alya_bench::report::{num, Table};
use alya_machine::cpu::CpuModel;
use alya_machine::gpu::{GpuModel, RegisterDemand};
use alya_machine::spec::{CpuSpec, GpuSpec};
use alya_machine::Event;

fn main() {
    let spec = GpuSpec::a100_40gb();
    println!(
        "GPU model calibration — {} (paper machine figures in brackets)\n",
        spec.name
    );

    let model = GpuModel::new(spec);
    let n = 1 << 22;
    let mut t = Table::new(["kernel", "modelled", "reference"]);

    // Scale: b[i] = s * a[i] — the paper's 1381 GB/s bandwidth anchor.
    let scale = model.execute("scale", RegisterDemand::Measured { pressure: 8 }, n, |e| {
        vec![
            Event::GLoad(0x100_0000_0000 + e as u64 * 8),
            Event::Flop(1),
            Event::GStore(0x200_0000_0000 + e as u64 * 8),
        ]
    });
    t.row([
        "scale bandwidth".to_string(),
        format!("{} GB/s", num(scale.dram_bw / 1e9)),
        "[1381 GB/s measured]".to_string(),
    ]);

    // Triad: a[i] = b[i] + s*c[i] — 3 streams, plenty of MLP.
    let triad = model.execute("triad", RegisterDemand::Measured { pressure: 8 }, n, |e| {
        vec![
            Event::GLoad(0x300_0000_0000 + e as u64 * 8),
            Event::GLoad(0x400_0000_0000 + e as u64 * 8),
            Event::Fma(1),
            Event::GStore(0x500_0000_0000 + e as u64 * 8),
        ]
    });
    t.row([
        "triad bandwidth".to_string(),
        format!("{} GB/s", num(triad.dram_bw / 1e9)),
        "[~1350 GB/s]".to_string(),
    ]);

    // Peak FP64: FMA-dense kernel.
    let peak = model.execute(
        "peakflops",
        RegisterDemand::Measured { pressure: 8 },
        1 << 18,
        |e| {
            vec![
                Event::GLoad(0x600_0000_0000 + e as u64 * 8),
                Event::Fma(8192),
                Event::GStore(0x700_0000_0000 + e as u64 * 8),
            ]
        },
    );
    t.row([
        "peak FP64".to_string(),
        format!("{} TF/s", num(peak.gflops / 1e12)),
        "[9.7 TF/s]".to_string(),
    ]);

    // Pointer-chase-like dependent loads at minimal occupancy: the latency
    // floor the baseline variant lives under.
    // Eight separate coalesced streams, each load consumed before the
    // next issues — the baseline's MLP≈1 pattern with 8-sector warp
    // transactions.
    let chase = model.execute(
        "dependent-chain",
        RegisterDemand::Measured { pressure: 114 }, // 255 regs -> 12.5%
        n,
        |e| {
            let mut ev = Vec::new();
            for k in 0..8u64 {
                ev.push(Event::GLoad(
                    0x800_0000_0000 + k * 0x10_0000_0000 + e as u64 * 8,
                ));
                ev.push(Event::Fma(1));
            }
            ev
        },
    );
    t.row([
        "dependent-chain BW @12.5% occ".to_string(),
        format!("{} GB/s", num(chase.dram_bw / 1e9)),
        "[~608 GB/s (Table II, B)]".to_string(),
    ]);
    println!("{}", t.render());

    // CPU side.
    let cspec = CpuSpec::icelake_8360y();
    println!("CPU model calibration — {}\n", cspec.name);
    let mut t = Table::new(["kernel", "modelled", "reference"]);
    let mut cmodel = CpuModel::new(cspec);
    cmodel.sample_packs = 64;

    // likwid-bench load: pure streaming reads.
    let load = cmodel.execute("load", 1 << 22, 16, |p| {
        let mut ev = Vec::new();
        for lane in 0..16 {
            let e = (p * 16 + lane) as u64;
            ev.push(Event::GLoad(0x100_0000_0000 + e * 8));
            ev.push(Event::Flop(1));
        }
        ev
    });
    // Socket bandwidth = 36 cores sharing 179 GB/s; single core is capped
    // by core_dram_bw.
    t.row([
        "load BW (1 core)".to_string(),
        format!("{} GB/s", num(load.dram_bw_1c / 1e9)),
        "[<= 13 GB/s/core; 179 GB/s socket]".to_string(),
    ]);

    let flops = cmodel.execute("peakflops", 1 << 20, 16, |_| {
        let mut ev = Vec::new();
        for _ in 0..16 {
            ev.push(Event::Fma(64));
        }
        ev
    });
    t.row([
        "peak FP64 (1 core, 3.4 GHz)".to_string(),
        format!("{} GF/s", num(flops.gflops_1c / 1e9)),
        "[109 GF/s hw; model issue-capped at ~54]".to_string(),
    ]);
    println!("{}", t.render());
    println!(
        "note: the CPU issue model is calibrated to the ~1-IPC sustained rate of\n\
         the latency-bound FEM kernels (Table I), so a pure-FMA microkernel reads\n\
         half the hardware peak — the port-limit term alone would give 109 GF/s."
    );
}
