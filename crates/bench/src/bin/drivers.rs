//! Driver-throughput benchmark: Melem/s of every assembly strategy
//! (serial / two-phase / colored / partitioned / sharded) across variants
//! and thread counts on the Bolund-like terrain case, emitted as
//! `BENCH_drivers.json` so the repo carries a perf trajectory. Every
//! pack-supported configuration is additionally timed through the
//! lane-packed execution path ([`alya_core::ExecMode::Packed`]) as a
//! `-packed`-suffixed strategy row.
//!
//! Usage:
//!
//! ```text
//! drivers                      # default terrain mesh, JSON to stdout note
//! drivers --quick              # small mesh / few samples (CI smoke)
//! drivers --elems 200000       # override the element target
//! drivers --samples 7          # timed iterations per configuration
//! drivers --threads 1,2,8      # explicit thread sweep (default: powers
//!                              # of two up to the hardware parallelism)
//! drivers --variants rs,rspr   # explicit variant sweep, case-insensitive
//!                              # contract names (default: RSP,RSPR)
//! drivers --json PATH          # write the JSON report to PATH
//! drivers --trace PATH         # dump the run's telemetry spans as
//!                              # chrome trace JSON (chrome://tracing)
//! drivers --probe-dump PATH    # write the flight recorder's black box
//!                              # at exit (plus PATH.trace.json)
//! drivers --assert-packed      # exit nonzero unless the packed serial
//!                              # path beats scalar at one thread (CI)
//! ```
//!
//! Thread counts are swept with [`par::set_thread_cap`]: every power of
//! two up to the hardware parallelism (the cap can only lower, so the
//! sweep is honest on any host — a 1-core box reports a single column).
//! Per-shard boundary statistics and the cross-shard reduction traffic
//! ([`alya_mesh::ShardSet::boundary_reduction_bytes`]) are reported next
//! to the timings: they are the sharded strategy's whole story.

use std::fmt::Write as _;
use std::time::Instant;

use alya_bench::case::Case;
use alya_core::kernels::packed::pack_supported;
use alya_core::nut::compute_nu_t;
use alya_core::{
    assemble_parallel_with, assemble_serial_with, ExecMode, ParallelStrategy, Variant,
};
use alya_machine::par;
use alya_mesh::{Partition, ShardSet};

const DEFAULT_ELEMS: usize = 100_000;
const QUICK_ELEMS: usize = 8_000;
const DEFAULT_SAMPLES: usize = 5;
const QUICK_SAMPLES: usize = 2;

struct Args {
    elems: usize,
    samples: usize,
    threads: Option<Vec<usize>>,
    variants: Vec<Variant>,
    json: Option<String>,
    trace: Option<String>,
    probe_dump: Option<String>,
    assert_packed: bool,
}

/// Parses a comma-separated, case-insensitive list of contract names
/// (`b,p,rs,rsp,rspr`) against [`Variant::ALL`], deduplicating while
/// keeping the caller's order.
fn parse_variants(list: &str) -> Result<Vec<Variant>, String> {
    let mut out = Vec::new();
    for raw in list.split(',') {
        let name = raw.trim();
        let v = Variant::ALL
            .into_iter()
            .find(|v| v.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                let known: Vec<&str> = Variant::ALL.iter().map(|v| v.name()).collect();
                format!(
                    "--variants: unknown variant {name:?} (known: {})",
                    known.join(", ")
                )
            })?;
        if !out.contains(&v) {
            out.push(v);
        }
    }
    if out.is_empty() {
        return Err("--variants needs at least one variant".into());
    }
    Ok(out)
}

fn parse_args() -> Result<Args, String> {
    let mut elems = None;
    let mut samples = None;
    let mut threads = None;
    let mut variants = None;
    let mut json = None;
    let mut trace = None;
    let mut probe_dump = None;
    let mut quick = false;
    let mut assert_packed = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--assert-packed" => assert_packed = true,
            "--elems" => {
                let v = it.next().ok_or("--elems needs a value")?;
                elems = Some(v.parse::<usize>().map_err(|e| format!("--elems: {e}"))?);
            }
            "--samples" => {
                let v = it.next().ok_or("--samples needs a value")?;
                samples = Some(v.parse::<usize>().map_err(|e| format!("--samples: {e}"))?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a comma-separated list")?;
                let list: Vec<usize> = v
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--threads: {e}"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--threads needs positive counts".into());
                }
                threads = Some(list);
            }
            "--variants" => {
                let v = it.next().ok_or("--variants needs a comma-separated list")?;
                variants = Some(parse_variants(&v)?);
            }
            "--json" => json = Some(it.next().ok_or("--json needs a path")?),
            "--trace" => trace = Some(it.next().ok_or("--trace needs a path")?),
            "--probe-dump" => {
                probe_dump = Some(it.next().ok_or("--probe-dump needs a path")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        elems: elems.unwrap_or(if quick { QUICK_ELEMS } else { DEFAULT_ELEMS }),
        samples: samples.unwrap_or(if quick {
            QUICK_SAMPLES
        } else {
            DEFAULT_SAMPLES
        }),
        threads,
        variants: variants.unwrap_or_else(|| vec![Variant::Rsp, Variant::Rspr]),
        json,
        trace,
        probe_dump,
        assert_packed,
    })
}

/// Warm-up once, then `samples` timed runs; (median, min, max) seconds.
fn time_runs(samples: usize, mut body: impl FnMut()) -> (f64, f64, f64) {
    body();
    let mut t = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        body();
        t.push(t0.elapsed().as_secs_f64());
    }
    t.sort_by(f64::total_cmp);
    (t[t.len() / 2], t[0], t[t.len() - 1])
}

struct Row {
    strategy: String,
    variant: &'static str,
    threads: usize,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    melem_s: f64,
}

fn powers_of_two_up_to(n: usize) -> Vec<usize> {
    let mut out = vec![1];
    while *out.last().expect("non-empty") * 2 <= n {
        out.push(out.last().expect("non-empty") * 2);
    }
    if *out.last().expect("non-empty") != n {
        out.push(n);
    }
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: drivers [--quick] [--elems N] [--samples N] [--threads LIST] \
                 [--variants LIST] [--json PATH] [--trace PATH] [--probe-dump PATH] \
                 [--assert-packed]"
            );
            std::process::exit(1);
        }
    };
    // Register the recorder's telemetry sink before the first span so
    // --probe-dump captures the whole sweep.
    alya_probe::init();
    // A telemetry session costs one span per timed assembly, nothing in
    // the hot loops — only opened when an observer asked for it. The
    // flight recorder sees this bench exclusively through the telemetry
    // sink (no distributed stages here), so --probe-dump needs the
    // session too or the black box comes back empty.
    let session = (args.trace.is_some() || args.probe_dump.is_some()).then(alya_telemetry::session);

    let case = Case::bolund(args.elems);
    let ne = case.mesh.num_elements();
    let nn = case.mesh.num_nodes();
    let hw = par::hardware_threads();
    // An explicit sweep is clamped to the hardware and deduplicated: the
    // thread cap can only lower, so a row labeled t=8 on a 2-core host
    // would silently measure 2 workers — report what actually ran.
    let thread_counts = match args.threads.clone() {
        Some(list) => {
            let mut counts = Vec::new();
            for t in list {
                let t = t.min(hw);
                if !counts.contains(&t) {
                    counts.push(t);
                }
            }
            if counts.len() != args.threads.as_ref().map_or(0, Vec::len) {
                println!("note: --threads clamped to the {hw} hardware thread(s): {counts:?}");
            }
            counts
        }
        None => powers_of_two_up_to(hw),
    };
    let variants = args.variants.clone();

    // Precompute ν_t once so every strategy times pure assembly.
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    println!(
        "driver throughput: {ne} elements / {nn} nodes, {} samples, host threads {hw}",
        args.samples
    );

    // Shard statistics at the widest worker count (the configuration the
    // sharded rows at max threads use).
    let max_threads = *thread_counts.last().expect("non-empty");
    let shard_stats = ShardSet::build(&case.mesh, &Partition::rcb(&case.mesh, max_threads.max(2)));
    println!(
        "shards at {} workers: {} boundary slots, {} bytes into the tree reduction",
        max_threads.max(2),
        shard_stats.total_boundary_slots(),
        shard_stats.boundary_reduction_bytes()
    );

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &thread_counts {
        par::set_thread_cap(Some(threads));
        // Partitioned/sharded decompose into exactly `threads` parts so the
        // owner-computes mapping matches the worker count; serial only runs
        // in the 1-thread column.
        let mut strategies: Vec<(String, Option<ParallelStrategy>)> = Vec::new();
        if threads == 1 {
            strategies.push(("serial".into(), None));
        }
        let auto = ParallelStrategy::auto(&case.mesh);
        let auto_name = format!("auto({})", auto.name());
        strategies.push(("two-phase".into(), Some(ParallelStrategy::TwoPhase)));
        strategies.push((
            "colored".into(),
            Some(ParallelStrategy::colored(&case.mesh)),
        ));
        strategies.push((
            "partitioned".into(),
            Some(ParallelStrategy::partitioned(&case.mesh, threads.max(2))),
        ));
        strategies.push((
            "sharded".into(),
            Some(ParallelStrategy::sharded(&case.mesh, threads.max(2))),
        ));
        strategies.push((auto_name, Some(auto)));

        for (name, strategy) in &strategies {
            for &variant in &variants {
                // Scalar always; the lane-packed twin for every concrete
                // pack-supported configuration (auto re-times a concrete
                // strategy, so its packed twin would be a duplicate row).
                let mut modes = vec![ExecMode::Scalar];
                if pack_supported(variant) && !name.starts_with("auto") {
                    modes.push(ExecMode::Packed);
                }
                for mode in modes {
                    let (median, min, max) = match strategy {
                        None => time_runs(args.samples, || {
                            let _ = assemble_serial_with(variant, &input, mode);
                        }),
                        Some(s) => time_runs(args.samples, || {
                            let _ = assemble_parallel_with(variant, &input, s, mode);
                        }),
                    };
                    let row_name = match mode {
                        ExecMode::Scalar => name.clone(),
                        ExecMode::Packed => format!("{name}-packed"),
                    };
                    let melem = ne as f64 / median / 1e6;
                    println!(
                        "  {row_name:>24} {:>4} t={threads}: median {:.3} ms  [{:.3} .. {:.3}]  {melem:>8.2} Melem/s",
                        variant.name(),
                        median * 1e3,
                        min * 1e3,
                        max * 1e3,
                    );
                    rows.push(Row {
                        strategy: row_name,
                        variant: variant.name(),
                        threads,
                        median_s: median,
                        min_s: min,
                        max_s: max,
                        melem_s: melem,
                    });
                }
            }
        }
    }
    par::set_thread_cap(None);

    if let (Some(path), Some(s)) = (&args.trace, session) {
        alya_bench::trace::write_chrome_trace(path, &s.finish());
    }

    let json = render_json(&args, ne, nn, hw, &thread_counts, &shard_stats, &rows);
    match &args.json {
        Some(path) => {
            std::fs::write(path, json).expect("write JSON report");
            println!("\nwrote {path}");
        }
        None => println!("\n(re-run with --json PATH to persist the report)"),
    }
    if let Some(path) = &args.probe_dump {
        alya_bench::blackbox::write_probe_dump(path, "drivers bench exit");
    }

    if args.assert_packed && !packed_beats_scalar(&rows) {
        std::process::exit(1);
    }
}

/// The CI smoke gate: for every variant measured through both serial
/// paths at one thread, the packed best-of-samples time must beat the
/// scalar one. Compares `min_s` — the least noise-sensitive statistic on
/// a shared CI host.
fn packed_beats_scalar(rows: &[Row]) -> bool {
    let mut checked = 0;
    let mut ok = true;
    for packed in rows.iter().filter(|r| r.strategy == "serial-packed") {
        let Some(scalar) = rows
            .iter()
            .find(|r| r.strategy == "serial" && r.variant == packed.variant && r.threads == 1)
        else {
            continue;
        };
        checked += 1;
        if packed.min_s < scalar.min_s {
            println!(
                "packed-vs-scalar {}: packed {:.3} ms beats scalar {:.3} ms",
                packed.variant,
                packed.min_s * 1e3,
                scalar.min_s * 1e3
            );
        } else {
            eprintln!(
                "packed-vs-scalar {}: packed {:.3} ms does NOT beat scalar {:.3} ms",
                packed.variant,
                packed.min_s * 1e3,
                scalar.min_s * 1e3
            );
            ok = false;
        }
    }
    if checked == 0 {
        eprintln!("--assert-packed: no serial packed/scalar pair was measured");
        return false;
    }
    ok
}

fn render_json(
    args: &Args,
    ne: usize,
    nn: usize,
    hw: usize,
    thread_counts: &[usize],
    shards: &ShardSet,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"name\": \"BENCH_drivers\",");
    let _ = writeln!(s, "  \"case\": \"bolund-terrain\",");
    let _ = writeln!(s, "  \"elements\": {ne},");
    let _ = writeln!(s, "  \"nodes\": {nn},");
    let _ = writeln!(s, "  \"host_threads\": {hw},");
    let _ = writeln!(s, "  \"samples\": {},", args.samples);
    let tc: Vec<String> = thread_counts.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(s, "  \"thread_counts\": [{}],", tc.join(", "));
    let _ = writeln!(s, "  \"shards\": {{");
    let _ = writeln!(s, "    \"count\": {},", shards.num_shards());
    let _ = writeln!(
        s,
        "    \"total_boundary_slots\": {},",
        shards.total_boundary_slots()
    );
    let _ = writeln!(
        s,
        "    \"boundary_reduction_bytes\": {},",
        shards.boundary_reduction_bytes()
    );
    s.push_str("    \"per_shard\": [\n");
    let per: Vec<String> = shards
        .shards()
        .map(|sh| {
            format!(
                "      {{\"elements\": {}, \"local_nodes\": {}, \"interior\": {}, \"boundary\": {}, \"reduction_bytes\": {}}}",
                sh.elements().len(),
                sh.num_local_nodes(),
                sh.num_interior(),
                sh.num_boundary(),
                sh.num_boundary() * 3 * 8,
            )
        })
        .collect();
    s.push_str(&per.join(",\n"));
    s.push_str("\n    ]\n  },\n");
    s.push_str("  \"results\": [\n");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"strategy\": \"{}\", \"variant\": \"{}\", \"threads\": {}, \"median_s\": {:.6e}, \"min_s\": {:.6e}, \"max_s\": {:.6e}, \"melem_per_s\": {:.3}}}",
                r.strategy, r.variant, r.threads, r.median_s, r.min_s, r.max_s, r.melem_s
            )
        })
        .collect();
    s.push_str(&rendered.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}
