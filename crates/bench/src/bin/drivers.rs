//! Driver-throughput benchmark: Melem/s of every assembly strategy
//! (serial / two-phase / colored / partitioned / sharded) across variants
//! and thread counts on the Bolund-like terrain case, emitted as
//! `BENCH_drivers.json` so the repo carries a perf trajectory.
//!
//! Usage:
//!
//! ```text
//! drivers                      # default terrain mesh, JSON to stdout note
//! drivers --quick              # small mesh / few samples (CI smoke)
//! drivers --elems 200000       # override the element target
//! drivers --samples 7          # timed iterations per configuration
//! drivers --json PATH          # write the JSON report to PATH
//! drivers --trace PATH         # dump the run's telemetry spans as
//!                              # chrome trace JSON (chrome://tracing)
//! ```
//!
//! Thread counts are swept with [`par::set_thread_cap`]: every power of
//! two up to the hardware parallelism (the cap can only lower, so the
//! sweep is honest on any host — a 1-core box reports a single column).
//! Per-shard boundary statistics and the cross-shard reduction traffic
//! ([`alya_mesh::ShardSet::boundary_reduction_bytes`]) are reported next
//! to the timings: they are the sharded strategy's whole story.

use std::fmt::Write as _;
use std::time::Instant;

use alya_bench::case::Case;
use alya_core::nut::compute_nu_t;
use alya_core::{assemble_parallel, assemble_serial, ParallelStrategy, Variant};
use alya_machine::par;
use alya_mesh::{Partition, ShardSet};

const DEFAULT_ELEMS: usize = 100_000;
const QUICK_ELEMS: usize = 8_000;
const DEFAULT_SAMPLES: usize = 5;
const QUICK_SAMPLES: usize = 2;

struct Args {
    elems: usize,
    samples: usize,
    json: Option<String>,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut elems = None;
    let mut samples = None;
    let mut json = None;
    let mut trace = None;
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--elems" => {
                let v = it.next().ok_or("--elems needs a value")?;
                elems = Some(v.parse::<usize>().map_err(|e| format!("--elems: {e}"))?);
            }
            "--samples" => {
                let v = it.next().ok_or("--samples needs a value")?;
                samples = Some(v.parse::<usize>().map_err(|e| format!("--samples: {e}"))?);
            }
            "--json" => json = Some(it.next().ok_or("--json needs a path")?),
            "--trace" => trace = Some(it.next().ok_or("--trace needs a path")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        elems: elems.unwrap_or(if quick { QUICK_ELEMS } else { DEFAULT_ELEMS }),
        samples: samples.unwrap_or(if quick {
            QUICK_SAMPLES
        } else {
            DEFAULT_SAMPLES
        }),
        json,
        trace,
    })
}

/// Warm-up once, then `samples` timed runs; (median, min, max) seconds.
fn time_runs(samples: usize, mut body: impl FnMut()) -> (f64, f64, f64) {
    body();
    let mut t = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        body();
        t.push(t0.elapsed().as_secs_f64());
    }
    t.sort_by(f64::total_cmp);
    (t[t.len() / 2], t[0], t[t.len() - 1])
}

struct Row {
    strategy: String,
    variant: &'static str,
    threads: usize,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    melem_s: f64,
}

fn powers_of_two_up_to(n: usize) -> Vec<usize> {
    let mut out = vec![1];
    while *out.last().expect("non-empty") * 2 <= n {
        out.push(out.last().expect("non-empty") * 2);
    }
    if *out.last().expect("non-empty") != n {
        out.push(n);
    }
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: drivers [--quick] [--elems N] [--samples N] [--json PATH] [--trace PATH]"
            );
            std::process::exit(1);
        }
    };
    // A telemetry session costs one span per timed assembly, nothing in
    // the hot loops — only opened when a trace was asked for.
    let session = args.trace.as_ref().map(|_| alya_telemetry::session());

    let case = Case::bolund(args.elems);
    let ne = case.mesh.num_elements();
    let nn = case.mesh.num_nodes();
    let hw = par::hardware_threads();
    let thread_counts = powers_of_two_up_to(hw);
    let variants = [Variant::Rsp, Variant::Rspr];

    // Precompute ν_t once so every strategy times pure assembly.
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    println!(
        "driver throughput: {ne} elements / {nn} nodes, {} samples, host threads {hw}",
        args.samples
    );

    // Shard statistics at the widest worker count (the configuration the
    // sharded rows at max threads use).
    let max_threads = *thread_counts.last().expect("non-empty");
    let shard_stats = ShardSet::build(&case.mesh, &Partition::rcb(&case.mesh, max_threads.max(2)));
    println!(
        "shards at {} workers: {} boundary slots, {} bytes into the tree reduction",
        max_threads.max(2),
        shard_stats.total_boundary_slots(),
        shard_stats.boundary_reduction_bytes()
    );

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &thread_counts {
        par::set_thread_cap(Some(threads));
        // Partitioned/sharded decompose into exactly `threads` parts so the
        // owner-computes mapping matches the worker count; serial only runs
        // in the 1-thread column.
        let mut strategies: Vec<(String, Option<ParallelStrategy>)> = Vec::new();
        if threads == 1 {
            strategies.push(("serial".into(), None));
        }
        let auto = ParallelStrategy::auto(&case.mesh);
        let auto_name = format!("auto({})", auto.name());
        strategies.push(("two-phase".into(), Some(ParallelStrategy::TwoPhase)));
        strategies.push((
            "colored".into(),
            Some(ParallelStrategy::colored(&case.mesh)),
        ));
        strategies.push((
            "partitioned".into(),
            Some(ParallelStrategy::partitioned(&case.mesh, threads.max(2))),
        ));
        strategies.push((
            "sharded".into(),
            Some(ParallelStrategy::sharded(&case.mesh, threads.max(2))),
        ));
        strategies.push((auto_name, Some(auto)));

        for (name, strategy) in &strategies {
            for &variant in &variants {
                let (median, min, max) = match strategy {
                    None => time_runs(args.samples, || {
                        let _ = assemble_serial(variant, &input);
                    }),
                    Some(s) => time_runs(args.samples, || {
                        let _ = assemble_parallel(variant, &input, s);
                    }),
                };
                let melem = ne as f64 / median / 1e6;
                println!(
                    "  {name:>17} {:>4} t={threads}: median {:.3} ms  [{:.3} .. {:.3}]  {melem:>8.2} Melem/s",
                    variant.name(),
                    median * 1e3,
                    min * 1e3,
                    max * 1e3,
                );
                rows.push(Row {
                    strategy: name.clone(),
                    variant: variant.name(),
                    threads,
                    median_s: median,
                    min_s: min,
                    max_s: max,
                    melem_s: melem,
                });
            }
        }
    }
    par::set_thread_cap(None);

    if let (Some(path), Some(s)) = (&args.trace, session) {
        alya_bench::trace::write_chrome_trace(path, &s.finish());
    }

    let json = render_json(&args, ne, nn, hw, &thread_counts, &shard_stats, &rows);
    match &args.json {
        Some(path) => {
            std::fs::write(path, json).expect("write JSON report");
            println!("\nwrote {path}");
        }
        None => println!("\n(re-run with --json PATH to persist the report)"),
    }
}

fn render_json(
    args: &Args,
    ne: usize,
    nn: usize,
    hw: usize,
    thread_counts: &[usize],
    shards: &ShardSet,
    rows: &[Row],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"name\": \"BENCH_drivers\",");
    let _ = writeln!(s, "  \"case\": \"bolund-terrain\",");
    let _ = writeln!(s, "  \"elements\": {ne},");
    let _ = writeln!(s, "  \"nodes\": {nn},");
    let _ = writeln!(s, "  \"host_threads\": {hw},");
    let _ = writeln!(s, "  \"samples\": {},", args.samples);
    let tc: Vec<String> = thread_counts.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(s, "  \"thread_counts\": [{}],", tc.join(", "));
    let _ = writeln!(s, "  \"shards\": {{");
    let _ = writeln!(s, "    \"count\": {},", shards.num_shards());
    let _ = writeln!(
        s,
        "    \"total_boundary_slots\": {},",
        shards.total_boundary_slots()
    );
    let _ = writeln!(
        s,
        "    \"boundary_reduction_bytes\": {},",
        shards.boundary_reduction_bytes()
    );
    s.push_str("    \"per_shard\": [\n");
    let per: Vec<String> = shards
        .shards()
        .map(|sh| {
            format!(
                "      {{\"elements\": {}, \"local_nodes\": {}, \"interior\": {}, \"boundary\": {}, \"reduction_bytes\": {}}}",
                sh.elements().len(),
                sh.num_local_nodes(),
                sh.num_interior(),
                sh.num_boundary(),
                sh.num_boundary() * 3 * 8,
            )
        })
        .collect();
    s.push_str(&per.join(",\n"));
    s.push_str("\n    ]\n  },\n");
    s.push_str("  \"results\": [\n");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"strategy\": \"{}\", \"variant\": \"{}\", \"threads\": {}, \"median_s\": {:.6e}, \"min_s\": {:.6e}, \"max_s\": {:.6e}, \"melem_per_s\": {:.3}}}",
                r.strategy, r.variant, r.threads, r.median_s, r.min_s, r.max_s, r.melem_s
            )
        })
        .collect();
    s.push_str(&rendered.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}
