//! Reproduces **Figure 2**: CPU strong scaling (performance in Melem/s and
//! wall time vs worker count) for B, RS, RSP, with the turbo-bin kinks and
//! the perfect-scaling reference extrapolated from 4 workers.
//!
//! Usage: `fig2 [mesh_elems] [sample_packs]` (defaults 40000 / 96).
//! Output: one whitespace-separated row per worker count, gnuplot-ready.

use alya_bench::case::Case;
use alya_bench::profile::cpu_report;
use alya_bench::{CALLS_PER_RUNTIME, PAPER_ELEMS};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::cpu::CpuModel;
use alya_machine::spec::CpuSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let packs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(96);

    eprintln!("building case (~{elems} tets) and simulating variants...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    let mut model = CpuModel::new(CpuSpec::icelake_8360y());
    model.sample_packs = packs;

    let variants = [Variant::B, Variant::Rs, Variant::Rsp];
    let reports: Vec<_> = variants
        .iter()
        .map(|&v| cpu_report(v, &input, &model, PAPER_ELEMS))
        .collect();

    println!(
        "# Figure 2 reproduction — CPU strong scaling ({})",
        model.spec.name
    );
    println!(
        "# {PAPER_ELEMS} elements, {CALLS_PER_RUNTIME} RHS sweeps per runtime; turbo bins: <=17c@3.4GHz, <=32c@3.1GHz, else 2.6GHz"
    );
    println!(
        "# {:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "workers",
        "B_Melem/s",
        "RS_Melem/s",
        "RSP_Melem/s",
        "B_ms",
        "RS_ms",
        "RSP_ms",
        "perfect_RSP"
    );

    // Perfect-scaling line extrapolated from 4 workers (as in the paper).
    let rsp_4 = model.melems_per_s(&reports[2], PAPER_ELEMS, 4);

    for workers in 1..=71u32 {
        let me: Vec<f64> = reports
            .iter()
            .map(|r| model.melems_per_s(r, PAPER_ELEMS, workers))
            .collect();
        let ms: Vec<f64> = reports
            .iter()
            .map(|r| model.scale(r, PAPER_ELEMS, workers) * CALLS_PER_RUNTIME * 1e3)
            .collect();
        let perfect = rsp_4 / 4.0 * workers as f64;
        println!(
            "{:>9} {:>12.2} {:>12.2} {:>12.2} {:>12.1} {:>12.1} {:>12.1} {:>14.2}",
            workers, me[0], me[1], me[2], ms[0], ms[1], ms[2], perfect
        );
    }

    // The paper's kink narrative, verified numerically.
    let s17 = model.melems_per_s(&reports[2], PAPER_ELEMS, 17) / 17.0;
    let s18 = model.melems_per_s(&reports[2], PAPER_ELEMS, 18) / 18.0;
    eprintln!(
        "per-worker throughput drop at the 17->18 turbo bin: {:.1}% (expect ~{:.1}% = 1 - 3.1/3.4)",
        (1.0 - s18 / s17) * 100.0,
        (1.0 - 3.1 / 3.4) * 100.0
    );
}
