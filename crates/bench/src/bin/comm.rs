//! Distributed-assembly benchmark: Melem/s and exchanged halo bytes of
//! the rank-parallel driver across rank counts on the Bolund-like terrain
//! case, emitted as `BENCH_comm.json` so the repo carries the
//! communication trajectory next to the throughput one.
//!
//! Each rank count is timed twice — once with the compute/exchange
//! overlap pipeline off (boundary-first but fully serial per rank) and
//! once with it on (interior assembly overlapped with the halo drain).
//! Wall-clock deltas between the two are noise on an oversubscribed
//! host, so the report also carries the *blocked-wait* seconds each mode
//! accumulated inside `recv` and derives the overlap win from those:
//! `overlap_win = 1 − blocked_wait_on / blocked_wait_off`. The wait
//! comes from the telemetry `BlockedWaitNs` counter — the same single
//! accounting chokepoint every other consumer reads — not from summing
//! report fields by hand.
//!
//! Usage:
//!
//! ```text
//! comm                         # default terrain mesh, JSON to stdout note
//! comm --quick                 # small mesh / few samples (CI smoke)
//! comm --elems 200000          # override the element target
//! comm --samples 7             # timed iterations per rank count
//! comm --json PATH             # write the JSON report to PATH
//! comm --probe-dump PATH       # write the flight recorder's black box
//!                              # at exit (plus PATH.trace.json)
//! comm --trace PATH            # dump the run's telemetry spans as
//!                              # chrome trace JSON (chrome://tracing)
//! ```
//!
//! Every timed configuration is first validated against the analyzer's
//! comm contract ([`alya_analyze::comm::check_exchange`]) *and* the
//! schedule contract ([`alya_analyze::sched::check_run`]) of a traced
//! overlapped run, and the two modes must agree bitwise: the binary
//! refuses to emit a report whose live exchange diverges from the
//! closed-form halo budget — `BENCH_comm.json` is evidence, not prose.

use std::fmt::Write as _;
use std::time::Instant;

use alya_analyze::comm::check_exchange;
use alya_analyze::sched::check_run;
use alya_bench::case::Case;
use alya_core::nut::compute_nu_t;
use alya_core::{DistributedDriver, Variant};
use alya_machine::par;
use alya_telemetry::{self as telemetry, Metric};

const DEFAULT_ELEMS: usize = 100_000;
const QUICK_ELEMS: usize = 8_000;
const DEFAULT_SAMPLES: usize = 5;
const QUICK_SAMPLES: usize = 2;
const RANK_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Args {
    elems: usize,
    samples: usize,
    json: Option<String>,
    trace: Option<String>,
    probe_dump: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut elems = None;
    let mut samples = None;
    let mut json = None;
    let mut trace = None;
    let mut probe_dump = None;
    let mut quick = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--elems" => {
                let v = it.next().ok_or("--elems needs a value")?;
                elems = Some(v.parse::<usize>().map_err(|e| format!("--elems: {e}"))?);
            }
            "--samples" => {
                let v = it.next().ok_or("--samples needs a value")?;
                samples = Some(v.parse::<usize>().map_err(|e| format!("--samples: {e}"))?);
            }
            "--json" => json = Some(it.next().ok_or("--json needs a path")?),
            "--trace" => trace = Some(it.next().ok_or("--trace needs a path")?),
            "--probe-dump" => {
                probe_dump = Some(it.next().ok_or("--probe-dump needs a path")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        elems: elems.unwrap_or(if quick { QUICK_ELEMS } else { DEFAULT_ELEMS }),
        samples: samples.unwrap_or(if quick {
            QUICK_SAMPLES
        } else {
            DEFAULT_SAMPLES
        }),
        json,
        trace,
        probe_dump,
    })
}

/// Warm-up once, then `samples` timed runs. Each run's blocked-wait
/// seconds are read as a delta of the telemetry `BlockedWaitNs` counter
/// — the single accounting chokepoint — so this binary cannot drift
/// from what the analyzer's telemetry pass certifies. Returns
/// (median, min, max, wait-median).
fn time_runs(samples: usize, mut body: impl FnMut()) -> (f64, f64, f64, f64) {
    body();
    let mut t = Vec::with_capacity(samples);
    let mut w = Vec::with_capacity(samples);
    for _ in 0..samples {
        let w0 = telemetry::counter_total(Metric::BlockedWaitNs);
        let t0 = Instant::now();
        body();
        t.push(t0.elapsed().as_secs_f64());
        w.push((telemetry::counter_total(Metric::BlockedWaitNs) - w0) as f64 * 1e-9);
    }
    t.sort_by(f64::total_cmp);
    w.sort_by(f64::total_cmp);
    (t[t.len() / 2], t[0], t[t.len() - 1], w[w.len() / 2])
}

struct Row {
    ranks: usize,
    median_s: f64,
    min_s: f64,
    max_s: f64,
    overlap_median_s: f64,
    overlap_min_s: f64,
    overlap_max_s: f64,
    blocked_wait_off_s: f64,
    blocked_wait_on_s: f64,
    overlap_win: f64,
    melem_s: f64,
    halo_bytes: u64,
    predicted_bytes: u64,
    messages: u64,
    max_message_bytes: u64,
    boundary_slots: usize,
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "usage: comm [--quick] [--elems N] [--samples N] [--json PATH] [--trace PATH] \
                 [--probe-dump PATH]"
            );
            std::process::exit(1);
        }
    };
    // Register the recorder's telemetry sink before the first span so
    // --probe-dump captures the whole sweep.
    alya_probe::init();
    // The session stays open for the whole sweep: the blocked-wait
    // numbers come from its counters, and --trace dumps its spans.
    let session = telemetry::session();

    let case = Case::bolund(args.elems);
    let ne = case.mesh.num_elements();
    let nn = case.mesh.num_nodes();
    let hw = par::hardware_threads();

    // Precompute ν_t once so every rank count times pure assembly +
    // exchange, same as the drivers benchmark.
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    println!(
        "distributed assembly: {ne} elements / {nn} nodes, {} samples, host threads {hw}",
        args.samples
    );

    let mut rows: Vec<Row> = Vec::new();
    for ranks in RANK_COUNTS {
        let driver_off = DistributedDriver::new(&case.mesh, ranks).overlap(false);
        let driver_on = DistributedDriver::from_shard_set(driver_off.shard_set().clone());
        // Contract gate on a traced twin of the timed configuration: the
        // timed loop itself runs with counters only.
        let traced = DistributedDriver::from_shard_set(driver_off.shard_set().clone()).traced(true);
        let (_, audit) = traced.assemble(Variant::Rsp, &input);
        let contract = check_exchange(traced.shard_set(), traced.exchange_plan(), &audit);
        if !contract.is_clean() {
            eprintln!("refusing to report a dishonest exchange: {contract}");
            std::process::exit(1);
        }
        // Schedule-contract gate on the overlapped pipeline, plus the
        // bitwise-equality gate between the two timed modes.
        let (rhs_on, _, traces) = driver_on
            .assemble_sched(Variant::Rsp, &input, None)
            .expect("fault-free assembly does not stall");
        let sched = check_run(driver_on.exchange_plan(), &traces, true);
        if !sched.is_clean() {
            eprintln!("refusing to report a dishonest schedule: {sched}");
            std::process::exit(1);
        }
        let (rhs_off, _) = driver_off.assemble(Variant::Rsp, &input);
        assert_eq!(
            rhs_on.max_abs_diff(&rhs_off),
            0.0,
            "overlap changed the assembled RHS at ranks={ranks}"
        );

        let (median, min, max, wait_off) = time_runs(args.samples, || {
            let _ = driver_off.assemble(Variant::Rsp, &input);
        });
        let mut report = None;
        let (ov_median, ov_min, ov_max, wait_on) = time_runs(args.samples, || {
            let (_, r) = driver_on.assemble(Variant::Rsp, &input);
            report = Some(r);
        });
        let report = report.expect("at least one timed run");
        let win = if wait_off > 0.0 {
            1.0 - wait_on / wait_off
        } else {
            0.0
        };
        let melem = ne as f64 / median / 1e6;
        let predicted = driver_off.expected_halo_bytes() as u64;
        println!(
            "  ranks {ranks}: median {:.3} ms  [{:.3} .. {:.3}]  {melem:>8.2} Melem/s  \
             {} msgs / {} B halo (closed form {} B)",
            median * 1e3,
            min * 1e3,
            max * 1e3,
            report.total_messages(),
            report.total_bytes(),
            predicted,
        );
        println!(
            "           overlap on: median {:.3} ms  [{:.3} .. {:.3}]  blocked wait {:.3} ms -> {:.3} ms  win {:.1}%",
            ov_median * 1e3,
            ov_min * 1e3,
            ov_max * 1e3,
            wait_off * 1e3,
            wait_on * 1e3,
            win * 100.0,
        );
        rows.push(Row {
            ranks,
            median_s: median,
            min_s: min,
            max_s: max,
            overlap_median_s: ov_median,
            overlap_min_s: ov_min,
            overlap_max_s: ov_max,
            blocked_wait_off_s: wait_off,
            blocked_wait_on_s: wait_on,
            overlap_win: win,
            melem_s: melem,
            halo_bytes: report.total_bytes(),
            predicted_bytes: predicted,
            messages: report.total_messages(),
            max_message_bytes: report.max_message_bytes(),
            boundary_slots: driver_off.shard_set().total_boundary_slots(),
        });
    }

    let t_report = session.finish();
    if let Some(path) = &args.trace {
        alya_bench::trace::write_chrome_trace(path, &t_report);
    }

    let json = render_json(&args, ne, nn, hw, &rows);
    match &args.json {
        Some(path) => {
            std::fs::write(path, json).expect("write JSON report");
            println!("\nwrote {path}");
        }
        None => println!("\n(re-run with --json PATH to persist the report)"),
    }
    if let Some(path) = &args.probe_dump {
        alya_bench::blackbox::write_probe_dump(path, "comm bench exit");
    }
}

fn render_json(args: &Args, ne: usize, nn: usize, hw: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"name\": \"BENCH_comm\",");
    let _ = writeln!(s, "  \"case\": \"bolund-terrain\",");
    let _ = writeln!(s, "  \"target_elems\": {},", args.elems);
    let _ = writeln!(s, "  \"elements\": {ne},");
    let _ = writeln!(s, "  \"nodes\": {nn},");
    let _ = writeln!(s, "  \"host_threads\": {hw},");
    let _ = writeln!(s, "  \"samples\": {},", args.samples);
    s.push_str("  \"results\": [\n");
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"ranks\": {}, \"median_s\": {:.6e}, \"min_s\": {:.6e}, \"max_s\": {:.6e}, \
                 \"overlap_median_s\": {:.6e}, \"overlap_min_s\": {:.6e}, \"overlap_max_s\": {:.6e}, \
                 \"blocked_wait_off_s\": {:.6e}, \"blocked_wait_on_s\": {:.6e}, \"overlap_win\": {:.6}, \
                 \"melem_per_s\": {:.3}, \"halo_bytes\": {}, \"predicted_halo_bytes\": {}, \
                 \"messages\": {}, \"max_message_bytes\": {}, \"boundary_slots\": {}}}",
                r.ranks,
                r.median_s,
                r.min_s,
                r.max_s,
                r.overlap_median_s,
                r.overlap_min_s,
                r.overlap_max_s,
                r.blocked_wait_off_s,
                r.blocked_wait_on_s,
                r.overlap_win,
                r.melem_s,
                r.halo_bytes,
                r.predicted_bytes,
                r.messages,
                r.max_message_bytes,
                r.boundary_slots,
            )
        })
        .collect();
    s.push_str(&rendered.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}
