//! Native wall-clock benchmark: actually *runs* every variant on the host
//! CPU (serial and thread-parallel) and reports real Melem/s — the
//! companion to the modelled tables, demonstrating that the paper's code
//! transformations speed up real execution in the same direction.
//!
//! Usage: `native [mesh_elems] [repeats]` (defaults 200000 / 5).

use std::time::Instant;

use alya_bench::case::Case;
use alya_bench::report::{num, Table};
use alya_core::nut::compute_nu_t;
use alya_core::{assemble_parallel, assemble_serial, ParallelStrategy, Variant};

fn main() {
    let mut args = std::env::args().skip(1);
    let elems: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let repeats: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    eprintln!("building case (~{elems} tets)...");
    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);
    let ne = case.mesh.num_elements() as f64;

    eprintln!("coloring mesh for the parallel driver...");
    let strategy = ParallelStrategy::colored(&case.mesh);
    let threads = alya_machine::par::num_threads();

    println!(
        "native assembly wall-clock — {} tets, median of {} runs, {} worker threads\n",
        case.mesh.num_elements(),
        repeats,
        threads
    );

    let mut t = Table::new([
        "variant",
        "serial ms",
        "serial Melem/s",
        "parallel ms",
        "parallel Melem/s",
        "speedup vs B",
    ]);
    let mut serial_base = 0.0f64;
    for variant in Variant::ALL {
        let mut serial_times = Vec::new();
        let mut par_times = Vec::new();
        let mut checksum = 0.0;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let rhs = assemble_serial(variant, &input);
            serial_times.push(t0.elapsed().as_secs_f64());
            checksum = rhs.norm();

            let t0 = Instant::now();
            let rhs_p = assemble_parallel(variant, &input, &strategy);
            par_times.push(t0.elapsed().as_secs_f64());
            assert!(
                (rhs_p.norm() - checksum).abs() < 1e-6 * checksum.max(1.0),
                "parallel result deviates"
            );
        }
        serial_times.sort_by(f64::total_cmp);
        par_times.sort_by(f64::total_cmp);
        let s = serial_times[repeats / 2];
        let p = par_times[repeats / 2];
        if variant == Variant::B {
            serial_base = s;
        }
        t.row([
            variant.name().to_string(),
            num(s * 1e3),
            num(ne / s / 1e6),
            num(p * 1e3),
            num(ne / p / 1e6),
            format!("{:.2}x", serial_base / s),
        ]);
        eprintln!(
            "{variant}: serial {:.1} ms, parallel {:.1} ms (checksum {checksum:.6e})",
            s * 1e3,
            p * 1e3
        );
    }
    println!("{}", t.render());
}
