//! Reuse-distance diagnosis (extension): the paper's optimization story
//! retold in stack-distance terms. For each variant's per-thread trace the
//! binary prints the mean reuse distance, the cold fraction, the working
//! set needed for 90 % hits, and the analytic LRU miss-ratio curve — the
//! mechanism-level view behind the cache-effectiveness rows of Table II:
//! privatization removes the short-distance mass (register-resident now),
//! specialization removes the long tail (fewer intermediates).
//!
//! Usage: `reuse [mesh_elems]` (default 20000).

use alya_bench::case::Case;
use alya_bench::profile::gpu_thread_trace;
use alya_bench::report::{num, pct, Table};
use alya_core::nut::compute_nu_t;
use alya_core::Variant;
use alya_machine::reuse::analyze;

fn main() {
    let elems: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);

    let case = Case::bolund(elems);
    let nut = compute_nu_t(&case.input());
    let mut input = case.input();
    input.nu_t = Some(&nut);

    println!("reuse-distance diagnosis — one thread's global accesses, 32 B lines\n");
    let mut t = Table::new([
        "variant",
        "accesses",
        "cold",
        "mean dist",
        "lines for 90% hits",
        "miss@64",
        "miss@1k",
        "miss@16k",
    ]);
    for variant in Variant::ALL {
        // Concatenate a handful of threads for a denser stream.
        let mut events = Vec::new();
        for thread in 0..8 {
            events.extend(gpu_thread_trace(variant, &input, thread * 97, 4096));
        }
        let h = analyze(&events, 32);
        t.row([
            variant.name().to_string(),
            h.total.to_string(),
            pct(h.cold as f64 / h.total.max(1) as f64),
            num(h.mean_distance()),
            h.capacity_for_miss_ratio(0.10).to_string(),
            pct(h.lru_miss_ratio(64)),
            pct(h.lru_miss_ratio(1024)),
            pct(h.lru_miss_ratio(16 * 1024)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "reading: B re-reads thousands of interleaved intermediates (small mean\n\
         distance, huge access count) — privatization (P, RSP, RSPR) deletes those\n\
         accesses outright; what remains is the cold-dominated nodal gather."
    );
}
