//! Pipelined trace-generation / model-replay harness.
//!
//! The fused CPU path ([`crate::profile::cpu_report`]) interleaves two
//! very different workloads in one thread: *generating* a pack's event
//! stream (kernel trace + register allocation) and *replaying* it through
//! the cache/port model. Here the generator moves to its own thread and
//! hands finished packs to the replay through an
//! [`alya_sched::DoubleBuffer`] — depth 2, so pack `k+1` is being lowered
//! while pack `k` is being replayed, the same compute/exchange overlap
//! shape the distributed driver uses for halo traffic.
//!
//! The replay consumes versions in order and asserts it never sees a gap,
//! so the pipelined report is bit-identical to the fused one (enforced by
//! a test): pipelining changes *when* work happens, never *what* the
//! model observes.

use std::time::Duration;

use alya_core::drivers::CPU_VECTOR_DIM;
use alya_core::{AssemblyInput, Variant};
use alya_machine::cpu::{CpuModel, CpuReport};
use alya_machine::Event;
use alya_sched::DoubleBuffer;

use crate::profile::cpu_pack_trace;

/// Generous bound on one hand-off; a healthy pipeline passes batches in
/// microseconds, so hitting this means the peer thread died.
const HANDOFF_TIMEOUT: Duration = Duration::from_secs(60);

/// Runs `produce(k)` for `k in 0..batches` on a dedicated thread and
/// feeds the results, in order, to the `next` closure handed to
/// `consume`. Panics if the consumer requests batches out of order or
/// either side of the hand-off stalls.
pub fn pipelined<T, R>(
    batches: usize,
    produce: impl Fn(usize) -> T + Sync,
    consume: impl FnOnce(&mut dyn FnMut(usize) -> T) -> R,
) -> R
where
    T: Send,
{
    let buf: DoubleBuffer<T> = DoubleBuffer::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            for k in 0..batches {
                if buf.publish(produce(k), HANDOFF_TIMEOUT).is_err() {
                    // Consumer gone or wedged; its own take() reports why.
                    return;
                }
            }
            buf.close();
        });
        let mut next = |want: usize| -> T {
            match buf.take(HANDOFF_TIMEOUT) {
                Ok((version, batch)) => {
                    assert_eq!(
                        version as usize, want,
                        "pipelined consumer requested batch {want} but the stream is at {version}"
                    );
                    batch
                }
                Err(e) => panic!("pipelined hand-off failed at batch {want}: {e}"),
            }
        };
        consume(&mut next)
    })
}

/// [`crate::profile::cpu_report`] with trace generation overlapped
/// against the model replay on a second thread. Same result, bit for
/// bit — only the wall-clock shape differs.
pub fn cpu_report_pipelined(
    variant: Variant,
    input: &AssemblyInput,
    model: &CpuModel,
    scale_to_elems: usize,
) -> CpuReport {
    pipelined::<Vec<Event>, CpuReport>(
        model.sample_packs,
        |p| cpu_pack_trace(variant, input, p),
        |next| model.execute(variant.name(), scale_to_elems, CPU_VECTOR_DIM, next),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Case;
    use crate::profile::cpu_report;
    use alya_machine::spec::CpuSpec;

    #[test]
    fn pipelined_batches_arrive_complete_and_in_order() {
        let sum = pipelined::<Vec<usize>, usize>(
            20,
            |k| vec![k; k + 1],
            |next| (0..20).map(|k| next(k).into_iter().sum::<usize>()).sum(),
        );
        // Σ k·(k+1) for k in 0..20.
        assert_eq!(sum, (0..20).map(|k| k * (k + 1)).sum::<usize>());
    }

    #[test]
    fn pipelined_cpu_report_is_bit_identical_to_the_fused_one() {
        let case = Case::bolund(2_000);
        let input = case.input();
        let mut model = CpuModel::new(CpuSpec::icelake_8360y());
        model.sample_packs = 24;
        for variant in [Variant::B, Variant::Rsp, Variant::Rspr] {
            let fused = cpu_report(variant, &input, &model, 1_000_000);
            let piped = cpu_report_pipelined(variant, &input, &model, 1_000_000);
            assert_eq!(fused, piped, "{} diverged under pipelining", variant.name());
        }
    }
}
