//! Lowers each kernel variant into model-ready instruction streams.
//!
//! This is the "compiler back-end" step of the reproduction: raw kernel
//! traces still contain `Def`/`Use` register events; here the register
//! allocator runs with the budget of the target (GPU thread vs CPU core),
//! spills become local traffic, and the result feeds the machine models.

use alya_core::drivers::{trace_element, CPU_VECTOR_DIM};
use alya_core::layout::Layout;
use alya_core::{AssemblyInput, Variant};
use alya_machine::cpu::{CpuModel, CpuReport};
use alya_machine::gpu::{GpuModel, GpuReport};
use alya_machine::{Event, RegisterAllocator};

/// f64 private values an A100 thread can keep in registers
/// ((255 − overhead) / 2, matching `RegisterDemand::Measured`).
pub const GPU_PRIVATE_F64_BUDGET: u32 = 114;

/// f64 private values an AVX-512 core keeps vector-register-resident
/// (32 zmm registers minus loop-carried/addressing overhead).
pub const CPU_PRIVATE_F64_BUDGET: u32 = 24;

/// Measures the register-allocator pressure of a scalar-private variant on
/// one representative element (GPU addressing).
pub fn measured_pressure(variant: Variant, input: &AssemblyInput) -> u32 {
    let lay = Layout::gpu(0, input.mesh.num_elements(), input.mesh.num_nodes());
    let rec = trace_element(variant, input, 0, &lay);
    RegisterAllocator::new(4096)
        .allocate(&rec.events)
        .max_pressure
}

/// Maps a simulated thread id to a mesh element: warps keep their 32
/// consecutive elements (coalescing survives) but successive warps stride
/// across the whole mesh — the sampled threads then cover the same address
/// span the 108 real SMs' concurrent warps would, instead of a tiny
/// contiguous patch with unrealistically good gather locality.
pub fn thread_to_element(thread: usize, sim_threads: usize, num_elements: usize) -> usize {
    const WARP: usize = 32;
    let warp_id = thread / WARP;
    let lane = thread % WARP;
    let sim_warps = sim_threads.div_ceil(WARP).max(1);
    let mesh_warps = (num_elements / WARP).max(1);
    let stride = (mesh_warps / sim_warps).max(1);
    ((warp_id * stride) % mesh_warps) * WARP + lane
}

/// Register-forwarding window for the **P** variant: the compiler keeps
/// recently-touched private-array slots in registers (the paper: "the
/// total number of load and store operations halves, which indicates that
/// the compiler was able to keep intermediates in registers more often"),
/// so a local load that re-reads one of the last `window` touched slots is
/// served by a register, not by local memory.
pub fn forward_locals(events: Vec<Event>, window: usize) -> Vec<Event> {
    let mut recent: Vec<u32> = Vec::with_capacity(window);
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        match e {
            Event::LStore(slot) => {
                touch(&mut recent, slot, window);
                out.push(e);
            }
            Event::LLoad(slot) => {
                if recent.contains(&slot) {
                    touch(&mut recent, slot, window);
                    // register hit: no local instruction issued
                } else {
                    touch(&mut recent, slot, window);
                    out.push(e);
                }
            }
            other => out.push(other),
        }
    }
    out
}

fn touch(recent: &mut Vec<u32>, slot: u32, window: usize) {
    if let Some(pos) = recent.iter().position(|&s| s == slot) {
        recent.remove(pos);
    }
    recent.push(slot);
    if recent.len() > window {
        recent.remove(0);
    }
}

/// Lowered per-thread GPU trace for simulated thread `thread`.
pub fn gpu_thread_trace(
    variant: Variant,
    input: &AssemblyInput,
    thread: usize,
    launch_elems: usize,
) -> Vec<Event> {
    let ne = input.mesh.num_elements();
    let elem = thread_to_element(thread, launch_elems, ne).min(ne - 1);
    // Workspace addressing is by thread id (the OpenACC `ivect`), gather
    // addressing by mesh element.
    let mut lay = Layout::gpu(elem, launch_elems, input.mesh.num_nodes());
    lay.lane = thread;
    lay.vector_dim = launch_elems.max(thread + 1);
    let rec = trace_element(variant, input, elem, &lay);
    match variant {
        Variant::Rsp | Variant::Rspr => {
            RegisterAllocator::new(GPU_PRIVATE_F64_BUDGET)
                .allocate(&rec.events)
                .events
        }
        Variant::P => forward_locals(rec.events, P_FORWARD_WINDOW),
        _ => rec.events,
    }
}

/// Slots the P-variant forwarding window holds (≈ the register budget the
/// compiler spends on forwarding private-array values).
pub const P_FORWARD_WINDOW: usize = 48;

/// Runs the GPU model for one variant (Table II row).
pub fn gpu_report(
    variant: Variant,
    input: &AssemblyInput,
    model: &GpuModel,
    scale_to_elems: usize,
) -> GpuReport {
    let demand = variant.register_demand(measured_pressure_or_zero(variant, input));
    let regs = demand.registers(&model.spec);
    let launch = model.sim_elements(regs).max(1);
    model.execute(variant.name(), demand, scale_to_elems, |e| {
        gpu_thread_trace(variant, input, e, launch)
    })
}

fn measured_pressure_or_zero(variant: Variant, input: &AssemblyInput) -> u32 {
    match variant {
        Variant::Rsp | Variant::Rspr => measured_pressure(variant, input),
        _ => 0,
    }
}

/// Lowered CPU pack trace (16 lanes, spills against the AVX-512 budget).
pub fn cpu_pack_trace(variant: Variant, input: &AssemblyInput, pack: usize) -> Vec<Event> {
    let ne = input.mesh.num_elements();
    let nn = input.mesh.num_nodes();
    let alloc = RegisterAllocator::new(CPU_PRIVATE_F64_BUDGET);
    let mut out = Vec::new();
    for lane in 0..CPU_VECTOR_DIM {
        let e = (pack * CPU_VECTOR_DIM + lane) % ne;
        let lay = Layout::cpu(e, CPU_VECTOR_DIM, nn);
        let rec = trace_element(variant, input, e, &lay);
        match variant {
            Variant::Rsp | Variant::Rspr => {
                out.extend(alloc.allocate(&rec.events).events);
            }
            _ => out.extend(rec.events),
        }
    }
    out
}

/// Runs the CPU model for one variant (Table I column).
pub fn cpu_report(
    variant: Variant,
    input: &AssemblyInput,
    model: &CpuModel,
    scale_to_elems: usize,
) -> CpuReport {
    model.execute(variant.name(), scale_to_elems, CPU_VECTOR_DIM, |p| {
        cpu_pack_trace(variant, input, p)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::Case;
    use alya_core::nut::compute_nu_t;
    use alya_machine::spec::{CpuSpec, GpuSpec};

    #[test]
    fn thread_to_element_keeps_warps_contiguous() {
        let sim = 1024;
        let ne = 100_000;
        // Lanes of one warp map to consecutive elements (coalescing).
        let base = thread_to_element(64, sim, ne);
        for lane in 0..32 {
            assert_eq!(thread_to_element(64 + lane, sim, ne), base + lane);
        }
        // Successive warps stride far apart (covering the mesh).
        let next = thread_to_element(96, sim, ne);
        assert!(next.abs_diff(base) > 32, "warps not strided: {base} {next}");
        // Always in range.
        for t in 0..sim {
            assert!(thread_to_element(t, sim, ne) < ne);
        }
    }

    #[test]
    fn forward_locals_drops_rereads_within_window() {
        use alya_machine::Event::*;
        let ev = vec![LStore(1), LLoad(1), LLoad(2), LLoad(1), Fma(1)];
        let out = forward_locals(ev, 8);
        // LLoad(1) after LStore(1) forwarded; LLoad(2) first touch kept;
        // the second LLoad(1) still within window -> dropped.
        assert_eq!(out, vec![LStore(1), LLoad(2), Fma(1)]);
    }

    #[test]
    fn forward_locals_window_evicts() {
        use alya_machine::Event::*;
        let mut ev = vec![LStore(0)];
        for s in 1..5 {
            ev.push(LStore(s));
        }
        ev.push(LLoad(0)); // window of 3: slot 0 long evicted
        let out = forward_locals(ev, 3);
        assert!(out.contains(&LLoad(0)));
    }

    fn tiny_gpu_model() -> GpuModel {
        let mut m = GpuModel::new(GpuSpec::a100_40gb());
        m.sample_sms = 1;
        m.waves = 1;
        m
    }

    #[test]
    fn pressure_of_scalar_variants_is_moderate() {
        let case = Case::bolund(3_000);
        let input = case.input();
        let rsp = measured_pressure(Variant::Rsp, &input);
        let rspr = measured_pressure(Variant::Rspr, &input);
        // RSP carries the 12-entry elemental RHS across the kernel; RSPR
        // does not — the paper's register-count gap.
        assert!(
            rspr < rsp,
            "RSPR pressure {rspr} not below RSP pressure {rsp}"
        );
        assert!((30..100).contains(&rsp), "RSP pressure {rsp}");
    }

    #[test]
    fn lowered_traces_have_no_register_events() {
        let case = Case::bolund(2_000);
        let nut = compute_nu_t(&case.input());
        let mut input = case.input();
        input.nu_t = Some(&nut);
        for variant in Variant::ALL {
            let tr = gpu_thread_trace(variant, &input, 0, 4096);
            assert!(
                !tr.iter()
                    .any(|e| matches!(e, Event::Def(_) | Event::Use(_))),
                "{variant} trace still has register events"
            );
        }
    }

    #[test]
    fn gpu_reports_reproduce_the_ordering() {
        let case = Case::bolund(4_000);
        let nut = compute_nu_t(&case.input());
        let mut input = case.input();
        input.nu_t = Some(&nut);
        let model = tiny_gpu_model();
        let b = gpu_report(Variant::B, &input, &model, crate::PAPER_ELEMS);
        let rsp = gpu_report(Variant::Rsp, &input, &model, crate::PAPER_ELEMS);
        assert!(
            b.runtime > 5.0 * rsp.runtime,
            "B {} vs RSP {}",
            b.runtime,
            rsp.runtime
        );
        assert!(b.dram_volume > 5.0 * rsp.dram_volume);
        assert!(b.registers > rsp.registers);
        assert!(rsp.occupancy > b.occupancy);
    }

    #[test]
    fn cpu_reports_reproduce_the_ordering() {
        let case = Case::bolund(4_000);
        let nut = compute_nu_t(&case.input());
        let mut input = case.input();
        input.nu_t = Some(&nut);
        let mut model = CpuModel::new(CpuSpec::icelake_8360y());
        model.sample_packs = 32;
        let b = cpu_report(Variant::B, &input, &model, crate::PAPER_ELEMS);
        let rs = cpu_report(Variant::Rs, &input, &model, crate::PAPER_ELEMS);
        let rsp = cpu_report(Variant::Rsp, &input, &model, crate::PAPER_ELEMS);
        assert!(b.runtime_1c > rs.runtime_1c && rs.runtime_1c > rsp.runtime_1c);
        // The baseline keeps its workspace L1-resident (the paper's 74%).
        assert!(b.l1_effectiveness > 0.6, "B L1 eff {}", b.l1_effectiveness);
        assert!(rs.ldst_ops < 0.5 * b.ldst_ops);
    }
}
