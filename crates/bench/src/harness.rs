//! Minimal wall-clock benchmark harness with a criterion-shaped API.
//!
//! The workspace builds with no third-party crates, so the `benches/`
//! targets use this shim instead of criterion. It keeps the same surface
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros) so the
//! bench sources read identically; the statistics are deliberately simple:
//! one warm-up iteration, `sample_size` timed iterations, median and
//! min/max reported, throughput derived from the group's element count.

use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration (elements, events, nonzeros...).
    Elements(u64),
}

/// A benchmark identifier (criterion-compatible constructor).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        Self {
            name: p.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `body` once to warm up, then `sample_size` timed times.
    // alya:cold: measurement harness — shares the name `iter` with slice
    // iteration in hot code but never runs inside an assembly loop.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        let _ = body(); // warm-up, untimed
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let out = body();
            self.samples.push(t0.elapsed().as_secs_f64());
            drop(out);
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the per-iteration element count used for throughput lines.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.samples);
    }

    /// Ends the group (prints a separator; kept for criterion parity).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, samples: &[f64]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  {:>10.2} Melem/s", n as f64 / median / 1e6)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {}  [{} .. {}]{rate}",
            self.name,
            fmt_secs(median),
            fmt_secs(lo),
            fmt_secs(hi)
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Top-level harness handle (criterion-compatible).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: 10,
        }
    }
}

/// Declares the list of benchmark entry points (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input_through() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(1);
        let data = vec![1u64, 2, 3];
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::from_parameter(7), &data, |b, d| {
            b.iter(|| {
                seen = d.len();
            });
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn seconds_formatting_picks_sane_units() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0042), "4.200 ms");
        assert_eq!(fmt_secs(0.0000042), "4.2 µs");
    }
}
