//! Published values from the paper, for side-by-side reporting.

/// One column of the paper's Table II (GPU, per element).
#[derive(Debug, Clone, Copy)]
pub struct PaperGpu {
    /// Variant letter.
    pub label: &'static str,
    /// Global load/store operations.
    pub global_ldst: f64,
    /// Local load/store operations.
    pub local_ldst: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// L1 volume, bytes (effectiveness in `l1_eff`).
    pub l1_volume: f64,
    /// L1 effectiveness.
    pub l1_eff: f64,
    /// L2 volume, bytes.
    pub l2_volume: f64,
    /// L2 effectiveness.
    pub l2_eff: f64,
    /// DRAM volume, bytes.
    pub dram: f64,
    /// Registers per thread.
    pub registers: u32,
    /// Achieved GFlop/s.
    pub gflops: f64,
    /// Achieved GB/s.
    pub gbs: f64,
    /// Kernel runtime, ms.
    pub runtime_ms: f64,
}

/// Table II as printed in the paper.
pub const TABLE2: [PaperGpu; 5] = [
    PaperGpu {
        label: "B",
        global_ldst: 6218.0,
        local_ldst: 24.0,
        flops: 6293.0,
        l1_volume: 49936.0,
        l1_eff: 0.29,
        l2_volume: 35507.0,
        l2_eff: 0.34,
        dram: 23331.0,
        registers: 255,
        gflops: 163.0,
        gbs: 608.0,
        runtime_ms: 3773.0,
    },
    PaperGpu {
        label: "P",
        global_ldst: 483.0,
        local_ldst: 2593.0,
        flops: 6148.0,
        l1_volume: 24616.0,
        l1_eff: 0.03,
        l2_volume: 23837.0,
        l2_eff: 0.21,
        dram: 18721.0,
        registers: 255,
        gflops: 393.0,
        gbs: 1200.0,
        runtime_ms: 1536.0,
    },
    PaperGpu {
        label: "RS",
        global_ldst: 960.0,
        local_ldst: 0.0,
        flops: 1663.0,
        l1_volume: 7680.0,
        l1_eff: 0.60,
        l2_volume: 3052.0,
        l2_eff: 0.61,
        dram: 1170.0,
        registers: 184,
        gflops: 829.0,
        gbs: 583.0,
        runtime_ms: 197.0,
    },
    PaperGpu {
        label: "RSP",
        global_ldst: 50.0,
        local_ldst: 71.0,
        flops: 1391.0,
        l1_volume: 968.0,
        l1_eff: 0.0,
        l2_volume: 1304.0,
        l2_eff: 0.66,
        dram: 442.0,
        registers: 148,
        gflops: 2020.0,
        gbs: 646.0,
        runtime_ms: 68.0,
    },
    PaperGpu {
        label: "RSPR",
        global_ldst: 71.0,
        local_ldst: 30.0,
        flops: 1333.0,
        l1_volume: 808.0,
        l1_eff: 0.0,
        l2_volume: 968.0,
        l2_eff: 0.84,
        dram: 150.0,
        registers: 128,
        gflops: 2575.0,
        gbs: 289.0,
        runtime_ms: 51.0,
    },
];

/// One column of the paper's Table I (CPU, per element).
#[derive(Debug, Clone, Copy)]
pub struct PaperCpu {
    /// Variant letter.
    pub label: &'static str,
    /// Load/store operations.
    pub ldst: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// L1 volume, bytes.
    pub l1_volume: f64,
    /// L1 effectiveness.
    pub l1_eff: f64,
    /// L2/L3 volume, bytes.
    pub l23_volume: f64,
    /// L2/L3 effectiveness.
    pub l23_eff: f64,
    /// DRAM volume, bytes.
    pub dram: f64,
    /// Single-core GFlop/s.
    pub gflops_1c: f64,
    /// Single-core GB/s.
    pub gbs_1c: f64,
    /// Single-core runtime, ms.
    pub runtime_1c_ms: f64,
    /// 71-worker runtime, ms.
    pub runtime_71c_ms: f64,
}

/// Table I as printed in the paper.
pub const TABLE1: [PaperCpu; 3] = [
    PaperCpu {
        label: "B",
        ldst: 6055.0,
        flops: 6316.0,
        l1_volume: 48440.0,
        l1_eff: 0.74,
        l23_volume: 12716.0,
        l23_eff: 0.98,
        dram: 261.0,
        gflops_1c: 13.8,
        gbs_1c: 0.53,
        runtime_1c_ms: 44047.0,
        runtime_71c_ms: 785.0,
    },
    PaperCpu {
        label: "RS",
        ldst: 2516.0,
        flops: 1760.0,
        l1_volume: 20128.0,
        l1_eff: 0.94,
        l23_volume: 1120.0,
        l23_eff: 0.80,
        dram: 218.0,
        gflops_1c: 11.9,
        gbs_1c: 1.3,
        runtime_1c_ms: 15429.0,
        runtime_71c_ms: 244.0,
    },
    PaperCpu {
        label: "RSP",
        ldst: 639.0,
        flops: 1249.0,
        l1_volume: 5112.0,
        l1_eff: 0.82,
        l23_volume: 932.0,
        l23_eff: 0.74,
        dram: 241.0,
        gflops_1c: 14.2,
        gbs_1c: 2.5,
        runtime_1c_ms: 8400.0,
        runtime_71c_ms: 122.0,
    },
];

/// One column of Table III (Listing-3 store behaviour, per thread).
#[derive(Debug, Clone, Copy)]
pub struct PaperListing3 {
    /// Mapping name.
    pub label: &'static str,
    /// Local store instructions.
    pub local_stores: u64,
    /// Global store instructions.
    pub global_stores: u64,
    /// Store volume reaching L2, bytes.
    pub l2_store_bytes: f64,
    /// Store volume reaching DRAM, bytes.
    pub dram_store_bytes: f64,
}

/// Table III as printed in the paper.
pub const TABLE3: [PaperListing3; 3] = [
    PaperListing3 {
        label: "global memory",
        local_stores: 0,
        global_stores: 9,
        l2_store_bytes: 72.0,
        dram_store_bytes: 72.0,
    },
    PaperListing3 {
        label: "local memory",
        local_stores: 8,
        global_stores: 1,
        l2_store_bytes: 72.0,
        dram_store_bytes: 8.0,
    },
    PaperListing3 {
        label: "registers",
        local_stores: 0,
        global_stores: 1,
        l2_store_bytes: 8.0,
        dram_store_bytes: 8.0,
    },
];

/// Section VI headline energies.
pub struct PaperEnergy {
    /// Fastest GPU kernel time, s.
    pub gpu_runtime_s: f64,
    /// Fastest CPU node time, s.
    pub cpu_runtime_s: f64,
    /// GPU energy, J.
    pub gpu_joules: f64,
    /// CPU-node energy, J.
    pub cpu_joules: f64,
}

/// The paper's Section VI numbers (51 ms / 21 J vs 122 ms / 82 J).
pub const ENERGY: PaperEnergy = PaperEnergy {
    gpu_runtime_s: 0.051,
    cpu_runtime_s: 0.122,
    gpu_joules: 21.0,
    cpu_joules: 82.0,
};
