//! `--trace` support for the reproduction binaries: dump a finished
//! telemetry session as chrome `trace_event` JSON.
//!
//! The export is validated with the telemetry crate's own JSON parser
//! before it touches disk, so a written file always opens in
//! `chrome://tracing` or Perfetto.

use alya_telemetry::export::validate_json;
use alya_telemetry::TelemetryReport;

/// Renders `report` as chrome trace JSON and writes it to `path`.
///
/// # Panics
/// If the export fails its own JSON validation (a telemetry bug, not a
/// caller error) or the file cannot be written.
pub fn write_chrome_trace(path: &str, report: &TelemetryReport) {
    let json = report.chrome_trace();
    if let Err(e) = validate_json(&json) {
        panic!("chrome-trace export failed validation: {e}");
    }
    std::fs::write(path, &json).expect("write chrome trace");
    println!(
        "wrote {path} ({} spans; open in chrome://tracing or Perfetto)",
        report.spans.len()
    );
}
