//! `--probe-dump` support for the reproduction binaries: persist the
//! `alya-probe` flight recorder's black box at exit.
//!
//! Two files are written: the human-readable post-mortem report at the
//! given path, and the same snapshot as chrome `trace_event` JSON at
//! `<path>.trace.json` (validated with the telemetry crate's own JSON
//! parser before it touches disk, like `--trace`).

use alya_probe as probe;
use alya_telemetry::export::validate_json;

/// Snapshots every thread's ring under `reason` and writes the rendered
/// report to `path` plus the chrome trace to `<path>.trace.json`.
///
/// # Panics
/// If the chrome export fails its own JSON validation (a probe bug, not
/// a caller error) or either file cannot be written.
pub fn write_probe_dump(path: &str, reason: &str) {
    let snap = probe::snapshot(reason);
    std::fs::write(path, snap.render()).expect("write probe dump");
    let trace = snap.chrome_trace();
    if let Err(e) = validate_json(&trace) {
        panic!("black-box chrome-trace export failed validation: {e}");
    }
    let trace_path = format!("{path}.trace.json");
    std::fs::write(&trace_path, &trace).expect("write probe trace");
    println!(
        "wrote {path} and {trace_path} ({} thread(s), {} event(s) recorded)",
        snap.threads.len(),
        probe::total_events()
    );
}
