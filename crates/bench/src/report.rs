//! Plain-text table formatting for the reproduction binaries.

/// A column-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    // alya:cold: report formatting — shares the name `row` with CSR row
    // access in hot code but only runs when rendering result tables.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncol {
                if c > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[c];
                // Right-align numbers, left-align first column.
                if c == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[c]));
                } else {
                    line.push_str(&format!("{cell:>width$}", width = widths[c]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// `1234.5` → `"1234"`, `12.34` → `"12.3"` — compact numeric cells.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Percent with no decimals.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["variant", "flops"]);
        t.row(["B".to_string(), num(6293.0)]);
        t.row(["RSPR".to_string(), num(1333.0)]);
        let s = t.render();
        assert!(s.contains("variant"));
        assert!(s.contains("6293"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(6293.4), "6293");
        assert_eq!(num(12.34), "12.3");
        assert_eq!(num(0.2947), "0.295");
        assert_eq!(pct(0.2947), "29%");
    }
}
