//! End-to-end exercise of the `audit` binary: the full audit must pass on
//! the real kernels, and each seeded-violation mode must be caught (exit 0
//! in seed mode means "the analyzer saw the breach").

use std::process::Command;

fn audit(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_audit"))
        .args(args)
        .output()
        .expect("audit binary runs")
}

#[test]
fn full_audit_is_clean_on_the_real_kernels() {
    let out = audit(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "audit failed:\n{stdout}");
    assert!(stdout.contains("audit clean"), "{stdout}");
}

#[test]
fn seeded_violations_are_all_caught() {
    for mode in ["coloring", "contract-store", "contract-registers"] {
        let out = audit(&["--seed-violation", mode]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "seeded {mode} violation was not caught:\n{stdout}"
        );
        assert!(stdout.contains("caught"), "{stdout}");
    }
}

#[test]
fn seeded_lint_violations_fire_exactly_their_lint() {
    for mode in ["hot-alloc", "hot-panic", "hash-iter", "missing-safety"] {
        let out = audit(&["--seed-violation", mode]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            out.status.success(),
            "seeded {mode} violation was not caught:\n{stdout}{stderr}"
        );
        assert!(stdout.contains("caught"), "{stdout}");
        // Every printed finding carries the seeded lint's own tag — the
        // engine neither missed the breach nor over-matched around it.
        for line in stdout.lines().filter(|l| l.contains(": [")) {
            assert!(line.contains(&format!("[{mode}]")), "{mode}: {stdout}");
        }
        assert!(
            !stderr.contains("over-matches"),
            "{mode} fired unrelated lints:\n{stdout}{stderr}"
        );
    }
}

#[test]
fn list_names_every_pass_and_seed_mode() {
    let out = audit(&["--list"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    for pass in ["1 ", "2 ", "3 ", "4 ", "5 ", "6 ", "7 "] {
        assert!(
            stdout.contains(&format!("  {pass}")),
            "pass {pass}: {stdout}"
        );
    }
    for mode in [
        "coloring",
        "contract-store",
        "contract-registers",
        "shard-mismatch",
        "comm-drop",
        "overlap-stall",
        "telemetry-skew",
        "hot-alloc",
        "hot-panic",
        "hash-iter",
        "missing-safety",
    ] {
        assert!(stdout.contains(mode), "mode {mode}: {stdout}");
    }
}

#[test]
fn lint_fast_gate_is_clean_on_this_workspace() {
    let out = audit(&["--lint"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "lint gate failed:\n{stdout}");
    assert!(stdout.contains("lint clean"), "{stdout}");
    assert!(stdout.contains("hot root(s)"), "{stdout}");
}

#[test]
fn unknown_arguments_fail_fast() {
    assert!(!audit(&["--nonsense"]).status.success());
    assert!(!audit(&["--seed-violation", "bogus"]).status.success());
}
