//! End-to-end exercise of the `audit` binary: the full audit must pass on
//! the real kernels, and each seeded-violation mode must be caught (exit 0
//! in seed mode means "the analyzer saw the breach").

use std::process::Command;

fn audit(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_audit"))
        .args(args)
        .output()
        .expect("audit binary runs")
}

#[test]
fn full_audit_is_clean_on_the_real_kernels() {
    let out = audit(&[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "audit failed:\n{stdout}");
    assert!(stdout.contains("audit clean"), "{stdout}");
}

#[test]
fn seeded_violations_are_all_caught() {
    for mode in ["coloring", "contract-store", "contract-registers"] {
        let out = audit(&["--seed-violation", mode]);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "seeded {mode} violation was not caught:\n{stdout}"
        );
        assert!(stdout.contains("caught"), "{stdout}");
    }
}

#[test]
fn unknown_arguments_fail_fast() {
    assert!(!audit(&["--nonsense"]).status.success());
    assert!(!audit(&["--seed-violation", "bogus"]).status.success());
}
