//! The one base description: the paper's baseline (B) Navier-Stokes tet4
//! assembly as an IR [`Program`].
//!
//! Statement order mirrors `alya_core::kernels::baseline::element` exactly
//! — same loads, same stores, same `flop`/`fma` accounting points — which
//! is what lets the interpreter reproduce the handwritten kernel bit for
//! bit and event for event. Every other variant is a rewrite of this
//! program (see [`crate::rewrite`]); nothing else in the crate describes
//! the physics.

use alya_core::variant::Variant;
use alya_machine::Space;
use std::ops::{Mul, Sub};

use crate::ir::{iv, ix, k, tmp, ws, Block, Expr, Ix, Program, Stmt, Sym};

/// `for var in 0..count { body }` (constructor shorthand).
pub(crate) fn fr(var: Sym, count: i64, body: Vec<Stmt>) -> Stmt {
    Stmt::For { var, count, body }
}

/// Workspace store shorthand.
pub(crate) fn wst(buf: Sym, i: Ix, val: Expr) -> Stmt {
    Stmt::WsSt { buf, ix: i, val }
}

/// Workspace accumulate shorthand.
pub(crate) fn wacc(buf: Sym, i: Ix, inc: Expr) -> Stmt {
    Stmt::WsAcc { buf, ix: i, inc }
}

/// Silent temp store shorthand.
pub(crate) fn tst(buf: Sym, i: Ix, val: Expr) -> Stmt {
    Stmt::TmpSt { buf, ix: i, val }
}

/// Private-value definition shorthand.
pub(crate) fn pdef(buf: Sym, i: Ix, val: Expr) -> Stmt {
    Stmt::PrivDef { buf, ix: i, val }
}

/// The B workspace catalog — offsets are the prefix sums, matching
/// `alya_core::kernels::baseline`'s slot constants.
fn buffers() -> Vec<(Sym, usize)> {
    vec![
        ("ELCOD", 12),
        ("ELVEL", 12),
        ("ELPRE", 4),
        ("ELTEM", 4),
        ("ELNUT", 1),
        ("GPJAC", 36),
        ("GPDET", 4),
        ("GPJIN", 36),
        ("GPCAR", 48),
        ("GPVOL", 4),
        ("GPSHA", 16),
        ("GPADV", 12),
        ("GPGVE", 36),
        ("GPDEN", 4),
        ("GPVIS", 4),
        ("GPTEM", 4),
        ("GPNUT", 4),
        ("GPPRE", 4),
        ("GPFOR", 12),
        ("GPHES", 24),
        ("CMAT", 48),
        ("KMAT", 48),
        ("EMAT", 48),
        ("ELMASS", 4),
        ("ELRHS", 12),
    ]
}

/// The gather blocks shared (structurally) by every variant: nodal data
/// copied into element arrays.
fn gather_blocks() -> Vec<Block> {
    vec![
        Block {
            tag: "gather-conn",
            stmts: vec![Stmt::GatherConn],
        },
        Block {
            tag: "gather-coords",
            stmts: vec![
                Stmt::GatherCoords { dst: "coords_g" },
                fr(
                    "a",
                    4,
                    vec![fr(
                        "d",
                        3,
                        vec![wst(
                            "ELCOD",
                            ix(0).t(3, "a").t(1, "d"),
                            tmp("coords_g", ix(0).t(3, "a").t(1, "d")),
                        )],
                    )],
                ),
            ],
        },
        Block {
            tag: "gather-velocity",
            stmts: vec![
                Stmt::GatherVelocity { dst: "vel_g" },
                fr(
                    "a",
                    4,
                    vec![fr(
                        "d",
                        3,
                        vec![wst(
                            "ELVEL",
                            ix(0).t(3, "a").t(1, "d"),
                            tmp("vel_g", ix(0).t(3, "a").t(1, "d")),
                        )],
                    )],
                ),
            ],
        },
        Block {
            tag: "gather-pressure",
            stmts: vec![
                Stmt::GatherPressure { dst: "pre_g" },
                fr("a", 4, vec![wst("ELPRE", iv("a"), tmp("pre_g", iv("a")))]),
            ],
        },
        Block {
            tag: "gather-temperature",
            stmts: vec![
                Stmt::GatherTemperature { dst: "tem_g" },
                fr("a", 4, vec![wst("ELTEM", iv("a"), tmp("tem_g", iv("a")))]),
            ],
        },
        Block {
            tag: "gather-nut",
            stmts: vec![
                Stmt::GatherNut { dst: "nut_g" },
                wst("ELNUT", ix(0), tmp("nut_g", ix(0))),
            ],
        },
    ]
}

/// Geometry at every Gauss point, the generic way: Jacobian rebuilt per
/// point, det/inv through memory, Hessians computed though zero.
fn geometry_block() -> Block {
    let jac = fr(
        "r",
        3,
        vec![fr(
            "d",
            3,
            vec![
                tst("jac_acc", ix(0), k(0.0)),
                fr(
                    "a",
                    4,
                    vec![tst(
                        "jac_acc",
                        ix(0),
                        tmp("jac_acc", ix(0)).plus(
                            Expr::LocalGrad(iv("a"), iv("r"))
                                .mul(ws("ELCOD", ix(0).t(3, "a").t(1, "d"))),
                        ),
                    )],
                ),
                Stmt::Fma(4),
                wst(
                    "GPJAC",
                    ix(0).t(9, "g").t(3, "r").t(1, "d"),
                    tmp("jac_acc", ix(0)),
                ),
            ],
        )],
    );
    let jm_reload = fr(
        "r",
        3,
        vec![fr(
            "d",
            3,
            vec![tst(
                "jm",
                ix(0).t(3, "r").t(1, "d"),
                ws("GPJAC", ix(0).t(9, "g").t(3, "r").t(1, "d")),
            )],
        )],
    );
    let gpcar = fr(
        "a",
        4,
        vec![fr(
            "d",
            3,
            vec![
                tst("car_acc", ix(0), k(0.0)),
                fr(
                    "r",
                    3,
                    vec![tst(
                        "car_acc",
                        ix(0),
                        tmp("car_acc", ix(0)).plus(
                            ws("GPJIN", ix(0).t(9, "g").t(3, "d").t(1, "r"))
                                .mul(Expr::LocalGrad(iv("a"), iv("r"))),
                        ),
                    )],
                ),
                Stmt::Fma(3),
                wst(
                    "GPCAR",
                    ix(0).t(12, "g").t(3, "a").t(1, "d"),
                    tmp("car_acc", ix(0)),
                ),
            ],
        )],
    );
    Block {
        tag: "geometry",
        stmts: vec![fr(
            "g",
            4,
            vec![
                jac,
                jm_reload,
                Stmt::Det3 {
                    m: "jm",
                    dst: "det_t",
                },
                wst("GPDET", iv("g"), tmp("det_t", ix(0))),
                Stmt::Inv3 {
                    m: "jm",
                    det: "det_t",
                    dst: "jin_t",
                },
                fr(
                    "r",
                    3,
                    vec![fr(
                        "d",
                        3,
                        vec![wst(
                            "GPJIN",
                            ix(0).t(9, "g").t(3, "r").t(1, "d"),
                            tmp("jin_t", ix(0).t(3, "r").t(1, "d")),
                        )],
                    )],
                ),
                gpcar,
                tst("det_r", ix(0), ws("GPDET", iv("g"))),
                Stmt::Flop(1),
                wst(
                    "GPVOL",
                    iv("g"),
                    Expr::GaussWeight(iv("g")).mul(tmp("det_r", ix(0))),
                ),
                Stmt::Shape4 {
                    g: iv("g"),
                    dst: "sha_t",
                },
                Stmt::Flop(3),
                fr(
                    "a",
                    4,
                    vec![wst(
                        "GPSHA",
                        ix(0).t(4, "g").t(1, "a"),
                        tmp("sha_t", iv("a")),
                    )],
                ),
                fr(
                    "h",
                    6,
                    vec![
                        Stmt::Flop(4),
                        wst("GPHES", ix(0).t(6, "g").t(1, "h"), k(0.0)),
                    ],
                ),
            ],
        )],
    }
}

/// Interpolation of every field to the Gauss points, plus the
/// runtime-dispatched constitutive evaluations and the velocity gradient.
fn interpolation_block() -> Block {
    let adv = fr(
        "d",
        3,
        vec![
            tst("adv_acc", ix(0), k(0.0)),
            fr(
                "a",
                4,
                vec![tst(
                    "adv_acc",
                    ix(0),
                    tmp("adv_acc", ix(0)).plus(
                        ws("GPSHA", ix(0).t(4, "g").t(1, "a"))
                            .mul(ws("ELVEL", ix(0).t(3, "a").t(1, "d"))),
                    ),
                )],
            ),
            Stmt::Fma(4),
            wst("GPADV", ix(0).t(3, "g").t(1, "d"), tmp("adv_acc", ix(0))),
        ],
    );
    let tem_pre = vec![
        tst("tem_acc", ix(0), k(0.0)),
        tst("pre_acc", ix(0), k(0.0)),
        fr(
            "a",
            4,
            vec![
                tst("sha_n", ix(0), ws("GPSHA", ix(0).t(4, "g").t(1, "a"))),
                tst(
                    "tem_acc",
                    ix(0),
                    tmp("tem_acc", ix(0)).plus(tmp("sha_n", ix(0)).mul(ws("ELTEM", iv("a")))),
                ),
                tst(
                    "pre_acc",
                    ix(0),
                    tmp("pre_acc", ix(0)).plus(tmp("sha_n", ix(0)).mul(ws("ELPRE", iv("a")))),
                ),
            ],
        ),
        Stmt::Fma(8),
        wst("GPTEM", iv("g"), tmp("tem_acc", ix(0))),
        wst("GPPRE", iv("g"), tmp("pre_acc", ix(0))),
    ];
    let props = vec![
        tst("tem_r", ix(0), ws("GPTEM", iv("g"))),
        wst(
            "GPDEN",
            iv("g"),
            Expr::DensityAt(Box::new(tmp("tem_r", ix(0)))),
        ),
        wst(
            "GPVIS",
            iv("g"),
            Expr::ViscosityAt(Box::new(tmp("tem_r", ix(0)))),
        ),
        wst("GPNUT", iv("g"), ws("ELNUT", ix(0))),
        tst("den_r", ix(0), ws("GPDEN", iv("g"))),
        fr(
            "d",
            3,
            vec![
                Stmt::Flop(1),
                wst(
                    "GPFOR",
                    ix(0).t(3, "g").t(1, "d"),
                    tmp("den_r", ix(0)).mul(Expr::BodyForce(iv("d"))),
                ),
            ],
        ),
    ];
    let gve = fr(
        "i",
        3,
        vec![fr(
            "j",
            3,
            vec![
                tst("gv_acc", ix(0), k(0.0)),
                fr(
                    "a",
                    4,
                    vec![tst(
                        "gv_acc",
                        ix(0),
                        tmp("gv_acc", ix(0)).plus(
                            ws("GPCAR", ix(0).t(12, "g").t(3, "a").t(1, "i"))
                                .mul(ws("ELVEL", ix(0).t(3, "a").t(1, "j"))),
                        ),
                    )],
                ),
                Stmt::Fma(4),
                wst(
                    "GPGVE",
                    ix(0).t(9, "g").t(3, "i").t(1, "j"),
                    tmp("gv_acc", ix(0)),
                ),
            ],
        )],
    );
    let mut stmts = vec![adv];
    stmts.extend(tem_pre);
    stmts.extend(props);
    stmts.push(gve);
    Block {
        tag: "interpolation",
        stmts: vec![fr("g", 4, stmts)],
    }
}

/// Elemental convection/diffusion matrices, one 4×4 copy per component.
fn matrices_block() -> Block {
    let init = fr(
        "d",
        3,
        vec![fr(
            "ab",
            16,
            vec![
                wst("CMAT", ix(0).t(16, "d").t(1, "ab"), k(0.0)),
                wst("KMAT", ix(0).t(16, "d").t(1, "ab"), k(0.0)),
            ],
        )],
    );
    let accumulate = fr(
        "g",
        4,
        vec![fr(
            "d",
            3,
            vec![fr(
                "a",
                4,
                vec![fr(
                    "b",
                    4,
                    vec![
                        // Convection: rho · N_a · (u_gp · grad N_b).
                        tst("advdot", ix(0), k(0.0)),
                        fr(
                            "i",
                            3,
                            vec![tst(
                                "advdot",
                                ix(0),
                                tmp("advdot", ix(0)).plus(
                                    ws("GPADV", ix(0).t(3, "g").t(1, "i"))
                                        .mul(ws("GPCAR", ix(0).t(12, "g").t(3, "b").t(1, "i"))),
                                ),
                            )],
                        ),
                        Stmt::Fma(3),
                        tst("vol_m", ix(0), ws("GPVOL", iv("g"))),
                        tst("den_m", ix(0), ws("GPDEN", iv("g"))),
                        tst("sha_m", ix(0), ws("GPSHA", ix(0).t(4, "g").t(1, "a"))),
                        Stmt::Flop(3),
                        wacc(
                            "CMAT",
                            ix(0).t(16, "d").t(4, "a").t(1, "b"),
                            tmp("vol_m", ix(0))
                                .mul(tmp("den_m", ix(0)))
                                .mul(tmp("sha_m", ix(0)))
                                .mul(tmp("advdot", ix(0))),
                        ),
                        // Diffusion: (mu + rho nu_t) grad N_a · grad N_b
                        // plus the (zero) Hessian term.
                        tst("graddot", ix(0), k(0.0)),
                        fr(
                            "i",
                            3,
                            vec![tst(
                                "graddot",
                                ix(0),
                                tmp("graddot", ix(0)).plus(
                                    ws("GPCAR", ix(0).t(12, "g").t(3, "a").t(1, "i"))
                                        .mul(ws("GPCAR", ix(0).t(12, "g").t(3, "b").t(1, "i"))),
                                ),
                            )],
                        ),
                        Stmt::Fma(3),
                        tst("vis_m", ix(0), ws("GPVIS", iv("g"))),
                        tst("nut_m", ix(0), ws("GPNUT", iv("g"))),
                        tst("hes_m", ix(0), ws("GPHES", ix(0).t(6, "g"))),
                        Stmt::Flop(5),
                        wacc(
                            "KMAT",
                            ix(0).t(16, "d").t(4, "a").t(1, "b"),
                            tmp("vol_m", ix(0))
                                .mul(
                                    tmp("vis_m", ix(0))
                                        .plus(tmp("den_m", ix(0)).mul(tmp("nut_m", ix(0)))),
                                )
                                .mul(tmp("graddot", ix(0)).plus(tmp("hes_m", ix(0)))),
                        ),
                    ],
                )],
            )],
        )],
    );
    Block {
        tag: "matrices",
        stmts: vec![init, accumulate],
    }
}

/// `EMAT = CMAT + KMAT`.
fn emat_block() -> Block {
    Block {
        tag: "emat",
        stmts: vec![fr(
            "d",
            3,
            vec![fr(
                "ab",
                16,
                vec![
                    tst("c_e", ix(0), ws("CMAT", ix(0).t(16, "d").t(1, "ab"))),
                    tst("k_e", ix(0), ws("KMAT", ix(0).t(16, "d").t(1, "ab"))),
                    Stmt::Flop(1),
                    wst(
                        "EMAT",
                        ix(0).t(16, "d").t(1, "ab"),
                        tmp("c_e", ix(0)).plus(tmp("k_e", ix(0))),
                    ),
                ],
            )],
        )],
    }
}

/// Lumped mass (kept for the pressure projection).
fn mass_block() -> Block {
    Block {
        tag: "mass",
        stmts: vec![fr(
            "a",
            4,
            vec![
                tst("m_acc", ix(0), k(0.0)),
                fr(
                    "g",
                    4,
                    vec![tst(
                        "m_acc",
                        ix(0),
                        tmp("m_acc", ix(0))
                            .plus(ws("GPVOL", iv("g")).mul(ws("GPSHA", ix(0).t(4, "g").t(1, "a")))),
                    )],
                ),
                Stmt::Fma(4),
                wst("ELMASS", iv("a"), tmp("m_acc", ix(0))),
            ],
        )],
    }
}

/// Elemental RHS = −(A·u) + pressure + force terms.
fn rhs_block() -> Block {
    Block {
        tag: "rhs",
        stmts: vec![fr(
            "a",
            4,
            vec![fr(
                "d",
                3,
                vec![
                    tst("r_acc", ix(0), k(0.0)),
                    fr(
                        "b",
                        4,
                        vec![tst(
                            "r_acc",
                            ix(0),
                            tmp("r_acc", ix(0)).sub(
                                ws("EMAT", ix(0).t(16, "d").t(4, "a").t(1, "b"))
                                    .mul(ws("ELVEL", ix(0).t(3, "b").t(1, "d"))),
                            ),
                        )],
                    ),
                    Stmt::Fma(4),
                    fr(
                        "g",
                        4,
                        vec![
                            tst("vol_r", ix(0), ws("GPVOL", iv("g"))),
                            tst("pre_r", ix(0), ws("GPPRE", iv("g"))),
                            tst(
                                "car_r",
                                ix(0),
                                ws("GPCAR", ix(0).t(12, "g").t(3, "a").t(1, "d")),
                            ),
                            tst("sha_r", ix(0), ws("GPSHA", ix(0).t(4, "g").t(1, "a"))),
                            tst("for_r", ix(0), ws("GPFOR", ix(0).t(3, "g").t(1, "d"))),
                            Stmt::Fma(2),
                            Stmt::Flop(2),
                            tst(
                                "r_acc",
                                ix(0),
                                tmp("r_acc", ix(0)).plus(
                                    tmp("vol_r", ix(0))
                                        .mul(tmp("pre_r", ix(0)))
                                        .mul(tmp("car_r", ix(0)))
                                        .plus(
                                            tmp("vol_r", ix(0))
                                                .mul(tmp("sha_r", ix(0)))
                                                .mul(tmp("for_r", ix(0))),
                                        ),
                                ),
                            ),
                        ],
                    ),
                    wst("ELRHS", ix(0).t(3, "a").t(1, "d"), tmp("r_acc", ix(0))),
                ],
            )],
        )],
    }
}

/// The workspace-readback scatter shared by B and RS.
pub(crate) fn scatter_block(rhs_buf: Sym) -> Block {
    Block {
        tag: "scatter",
        stmts: vec![
            fr(
                "a",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![tst(
                        "elrhs_s",
                        ix(0).t(3, "a").t(1, "d"),
                        ws(rhs_buf, ix(0).t(3, "a").t(1, "d")),
                    )],
                )],
            ),
            Stmt::Scatter { src: "elrhs_s" },
        ],
    }
}

/// The base form: variant B, described once.
pub fn base() -> Program {
    let mut blocks = gather_blocks();
    blocks.push(geometry_block());
    blocks.push(interpolation_block());
    blocks.push(matrices_block());
    blocks.push(emat_block());
    blocks.push(mass_block());
    blocks.push(rhs_block());
    blocks.push(scatter_block("ELRHS"));
    Program {
        name: "B",
        variant: Variant::B,
        space: Some(Space::Global),
        buffers: buffers(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::pv;

    #[test]
    fn base_catalog_matches_variant_nvalues() {
        let p = base();
        assert_eq!(p.nvalues(), Variant::B.nvalues());
        assert_eq!(p.ws_base("ELRHS"), 429);
        assert_eq!(p.ws_base("GPHES"), 257);
    }

    // pv/pdef are exercised by the rewrite passes; silence the unused-import
    // warning path by touching them here.
    #[test]
    fn shorthands_construct() {
        assert_eq!(
            pdef("x", ix(0), pv("y", ix(1))),
            Stmt::PrivDef {
                buf: "x",
                ix: ix(0),
                val: Expr::Priv("y", ix(1)),
            }
        );
    }
}
