//! The symbolic kernel IR: typed expressions, statements, blocks.
//!
//! One [`Program`] describes one variant's per-element Gauss loop as data:
//! named workspace buffers with symbolic affine indices, explicit counted
//! loops, and composite nodes for the operations whose data-dependent
//! control flow (Vreman's early returns) or event signatures (det/inv,
//! gathers, scatter) belong to `alya-core`'s real implementations. The
//! rewrite passes in [`crate::rewrite`] transform programs into each other;
//! the interpreter in [`crate::exec`] runs them against the exact same
//! `Ws`/`Recorder` machinery the handwritten kernels use, which is what
//! makes bitwise and event-stream equality checkable instead of hoped-for.

use alya_machine::Space;

use crate::Variant;

/// A symbol: buffer names, loop variables, temp names. `&'static str`
/// keeps programs cheap to clone and trivially comparable.
pub type Sym = &'static str;

/// An affine index expression `base + Σ coeff·var` over the enclosing
/// loop variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ix {
    /// Constant offset.
    pub base: i64,
    /// `(coefficient, loop variable)` terms, in declaration order.
    pub terms: Vec<(i64, Sym)>,
}

impl Ix {
    /// Adds a `coeff·var` term (builder style).
    #[must_use]
    pub fn t(mut self, coeff: i64, var: Sym) -> Ix {
        self.terms.push((coeff, var));
        self
    }
}

/// Constant index.
pub fn ix(base: i64) -> Ix {
    Ix {
        base,
        terms: Vec::new(),
    }
}

/// Index that is just one loop variable.
pub fn iv(var: Sym) -> Ix {
    ix(0).t(1, var)
}

/// A scalar expression. Evaluation is left-to-right depth-first, exactly
/// mirroring the handwritten kernels' Rust statement order, so the
/// interpreter reproduces their event streams and floating-point results
/// bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    K(f64),
    /// Constant density (`input.props.density`) — RS-family only.
    Rho,
    /// Constant viscosity (`input.props.viscosity`) — RS-family only.
    Mu,
    /// `input.vreman_c`.
    VremanC,
    /// `input.body_force[ix]`.
    BodyForce(Ix),
    /// `kind.gauss_weight(g)` for tet4 (a constant, no events).
    GaussWeight(Ix),
    /// `Tet4::SHAPE[g][a]` (compile-time constant table, no events).
    Shape(Ix, Ix),
    /// `TET4_LOCAL_GRADS[a][r]` (constant table, no events).
    LocalGrad(Ix, Ix),
    /// Workspace read: `ws.ld(buffer_base + ix)` — emits the load event.
    Ws(Sym, Ix),
    /// Private-value read: `pv.get()` — emits `Use(id)`.
    Priv(Sym, Ix),
    /// Silent temporary read (plain Rust local / array, no events).
    Tmp(Sym, Ix),
    /// `input.density_at(t)` — `Flop(4)` then the property evaluation.
    DensityAt(Box<Expr>),
    /// `input.viscosity_at(t)` — `Flop(4)` then the property evaluation.
    ViscosityAt(Box<Expr>),
    /// Unary negation (no event of its own; pair with explicit `Flop`).
    Neg(Box<Expr>),
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a.cbrt()` (silent, like the handwritten kernels').
    Cbrt(Box<Expr>),
}

impl Expr {
    /// `self + rhs` (builder; named `plus` rather than implementing
    /// `std::ops::Add`, so the hot-path lint's name-based call graph
    /// doesn't conflate it with the hot `ScatterSink::add`).
    #[must_use]
    pub fn plus(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

/// Workspace read of `buf[ix]`.
pub fn ws(buf: Sym, i: Ix) -> Expr {
    Expr::Ws(buf, i)
}

/// Private-value read of `buf[ix]`.
pub fn pv(buf: Sym, i: Ix) -> Expr {
    Expr::Priv(buf, i)
}

/// Silent temporary read of `buf[ix]`.
pub fn tmp(buf: Sym, i: Ix) -> Expr {
    Expr::Tmp(buf, i)
}

/// Literal constant.
pub fn k(v: f64) -> Expr {
    Expr::K(v)
}

/// A statement. Composite nodes (gathers, `Det3`…`Vreman`, `Scatter`)
/// delegate to the real `alya-core` routines so their event signatures and
/// data-dependent branches are shared with the handwritten kernels by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Counted loop `for var in 0..count { body }`.
    For {
        /// Loop variable symbol.
        var: Sym,
        /// Trip count.
        count: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `rec.flop(n)` — arithmetic accounting with no data effect.
    Flop(u32),
    /// `rec.fma(n)`.
    Fma(u32),
    /// Workspace store `buf[ix] = val` (emits the store event).
    WsSt {
        /// Destination buffer.
        buf: Sym,
        /// Destination index within the buffer.
        ix: Ix,
        /// Stored value.
        val: Expr,
    },
    /// Workspace accumulate `buf[ix] += inc` via `Ws::acc` (load event,
    /// `Flop(1)`, store event).
    WsAcc {
        /// Destination buffer.
        buf: Sym,
        /// Destination index within the buffer.
        ix: Ix,
        /// Increment.
        inc: Expr,
    },
    /// Silent store into a plain temporary (no events).
    TmpSt {
        /// Destination temp array.
        buf: Sym,
        /// Destination index.
        ix: Ix,
        /// Stored value.
        val: Expr,
    },
    /// Define a fresh private value: `pa.def(val)` — evaluates `val`, then
    /// emits `Def(fresh id)`.
    PrivDef {
        /// Destination private array.
        buf: Sym,
        /// Destination index.
        ix: Ix,
        /// Initial value.
        val: Expr,
    },
    /// Re-assign an existing private value: `pv.set(val)` — evaluates
    /// `val`, then emits `Def(existing id)`.
    PrivSet {
        /// Destination private array.
        buf: Sym,
        /// Destination index.
        ix: Ix,
        /// New value.
        val: Expr,
    },
    /// `gather::gather_conn` into the frame's node list.
    GatherConn,
    /// `gather::gather_coords` into silent temp `dst[3a + d]`.
    GatherCoords {
        /// Destination temp (12 slots).
        dst: Sym,
    },
    /// `gather::gather_velocity` into silent temp `dst[3a + d]`.
    GatherVelocity {
        /// Destination temp (12 slots).
        dst: Sym,
    },
    /// `gather::gather_scalar(pressure)` into silent temp `dst[a]`.
    GatherPressure {
        /// Destination temp (4 slots).
        dst: Sym,
    },
    /// `gather::gather_scalar(temperature)` into silent temp `dst[a]`.
    GatherTemperature {
        /// Destination temp (4 slots).
        dst: Sym,
    },
    /// The baseline ν_t read: `input.nu_t` indexed at this element (one
    /// global load when present, else 0.0) into silent temp `dst[0]`.
    GatherNut {
        /// Destination temp (1 slot).
        dst: Sym,
    },
    /// `ops::det3` of the 3×3 silent temp `m[3r + c]` into `dst[0]`.
    Det3 {
        /// Source matrix temp (9 slots, row-major).
        m: Sym,
        /// Destination temp (1 slot).
        dst: Sym,
    },
    /// `ops::inv3` of `m` with determinant `det[0]` into `dst[3r + c]`.
    Inv3 {
        /// Source matrix temp (9 slots, row-major).
        m: Sym,
        /// Determinant temp (1 slot).
        det: Sym,
        /// Destination inverse temp (9 slots, row-major).
        dst: Sym,
    },
    /// `ops::tet4_grads` of coords temp `coords[3a + d]` into gradient
    /// temp `grads[3a + d]` and volume temp `vol[0]`.
    Tet4Grads {
        /// Corner coordinates temp (12 slots).
        coords: Sym,
        /// Destination gradients temp (12 slots).
        grads: Sym,
        /// Destination volume temp (1 slot).
        vol: Sym,
    },
    /// `tet4_shape(TET4_GAUSS[g])` (silent) into temp `dst[a]`.
    Shape4 {
        /// Gauss-point index.
        g: Ix,
        /// Destination temp (4 slots).
        dst: Sym,
    },
    /// `ops::vreman` of the 3×3 temp `grad[3i + j]` with filter width
    /// `delta` into `dst[0]`.
    Vreman {
        /// Velocity-gradient temp (9 slots, row-major).
        grad: Sym,
        /// Filter width expression.
        delta: Expr,
        /// Destination temp (1 slot).
        dst: Sym,
    },
    /// `gather::scatter_elemental` of the element RHS temp `src[3a + d]`.
    Scatter {
        /// Source temp (12 slots, node-major component-minor).
        src: Sym,
    },
    /// One scatter contribution `sink.add(nodes[node], dim, val)` — the
    /// specialized variants' direct emission path.
    EmitNode {
        /// Element-corner index expression (0..4).
        node: Ix,
        /// Component index expression (0..3).
        dim: Ix,
        /// Contribution value.
        val: Expr,
    },
}

/// A named group of statements. Blocks are the rewrite passes' unit of
/// reuse: a pass that leaves a stage untouched carries its block over
/// verbatim, which is how "derived from one description" stays honest.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Stable tag (`"gather-coords"`, `"geometry"`, …).
    pub tag: Sym,
    /// The statements, in execution order.
    pub stmts: Vec<Stmt>,
}

/// One variant's complete per-element program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Human-readable name (`"B"`, `"RSPR"`, …).
    pub name: Sym,
    /// The variant whose conventions (workspace size, ν_t pass, contract)
    /// this program follows.
    pub variant: Variant,
    /// Workspace address space, `None` for the fully privatized variants.
    pub space: Option<Space>,
    /// Named workspace buffers `(name, len)`; bases are the prefix sums,
    /// and the total must equal `variant.nvalues()`.
    pub buffers: Vec<(Sym, usize)>,
    /// The program body.
    pub blocks: Vec<Block>,
}

impl Program {
    /// Base slot of workspace buffer `buf` (prefix sum of the catalog).
    ///
    /// # Panics
    /// When `buf` is not in the catalog.
    pub fn ws_base(&self, buf: Sym) -> usize {
        let mut base = 0;
        for &(name, len) in &self.buffers {
            if name == buf {
                return base;
            }
            base += len;
        }
        panic!("{}: no workspace buffer {buf:?}", self.name)
    }

    /// Total workspace slots (must equal `self.variant.nvalues()`).
    pub fn nvalues(&self) -> usize {
        self.buffers.iter().map(|&(_, len)| len).sum()
    }

    /// The block tagged `tag`.
    ///
    /// # Panics
    /// When no block carries the tag.
    pub fn block(&self, tag: Sym) -> &Block {
        self.blocks
            .iter()
            .find(|b| b.tag == tag)
            .unwrap_or_else(|| panic!("{}: no block {tag:?}", self.name))
    }

    /// Mutable access to the block tagged `tag`.
    ///
    /// # Panics
    /// When no block carries the tag.
    pub fn block_mut(&mut self, tag: Sym) -> &mut Block {
        let name = self.name;
        self.blocks
            .iter_mut()
            .find(|b| b.tag == tag)
            .unwrap_or_else(|| panic!("{name}: no block {tag:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ix_builder_accumulates_terms() {
        let i = ix(5).t(3, "g").t(1, "d");
        assert_eq!(i.base, 5);
        assert_eq!(i.terms, vec![(3, "g"), (1, "d")]);
        assert_eq!(iv("a"), ix(0).t(1, "a"));
    }

    #[test]
    fn ws_base_is_prefix_sum() {
        let p = Program {
            name: "t",
            variant: Variant::B,
            space: None,
            buffers: vec![("x", 12), ("y", 4), ("z", 1)],
            blocks: Vec::new(),
        };
        assert_eq!(p.ws_base("x"), 0);
        assert_eq!(p.ws_base("y"), 12);
        assert_eq!(p.ws_base("z"), 16);
        assert_eq!(p.nvalues(), 17);
    }
}
