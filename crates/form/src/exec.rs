//! The executable backend: an interpreter that runs an IR [`Program`]
//! against the *real* `alya-core` machinery.
//!
//! The interpreter owns no numerics of its own — workspace traffic goes
//! through [`Ws`], gathers and the scatter through `alya_core::gather`,
//! geometry and the Vreman closure through `alya_core::ops` — so a derived
//! program that matches the handwritten kernel's statement order
//! necessarily matches its floating-point results bit for bit *and* its
//! instrumented event stream event for event. Both properties are what
//! analyzer pass 10 checks.

use alya_core::drivers::GeneratedKernel;
use alya_core::gather::{self, DirectSink, ScatterSink};
use alya_core::input::AssemblyInput;
use alya_core::layout::{self, Layout};
use alya_core::nut::compute_nu_t;
use alya_core::ops;
use alya_core::variant::Variant;
use alya_core::workspace::Ws;
use alya_fem::element::{tet4_shape, ElementKind, Tet4, TET4_GAUSS, TET4_LOCAL_GRADS};
use alya_fem::VectorField;
use alya_machine::{Recorder, Space, TraceRecorder};

use crate::ir::{Expr, Ix, Program, Stmt, Sym};

/// One tracked private value: the interpreter's stand-in for the
/// handwritten kernels' `Pv` (same `Def`/`Use` id discipline).
#[derive(Debug, Clone, Copy)]
struct PSlot {
    id: u32,
    val: f64,
}

/// Per-element interpreter state: the gathered node list, silent
/// temporaries, and tracked private values.
struct Frame {
    nodes: [u32; 4],
    tmps: Vec<(Sym, Vec<f64>)>,
    privs: Vec<(Sym, Vec<PSlot>)>,
    /// Next private-value id — fresh per element, like `PrivAlloc`.
    next_id: u32,
}

impl Frame {
    fn new() -> Self {
        Frame {
            nodes: [0; 4],
            tmps: Vec::new(),
            privs: Vec::new(),
            next_id: 0,
        }
    }

    fn tmp_slot(&mut self, buf: Sym, i: usize) -> &mut f64 {
        let arr = match self.tmps.iter().position(|(n, _)| *n == buf) {
            Some(p) => &mut self.tmps[p].1,
            None => {
                self.tmps.push((buf, Vec::new()));
                &mut self.tmps.last_mut().expect("just pushed").1
            }
        };
        if arr.len() <= i {
            arr.resize(i + 1, 0.0);
        }
        &mut arr[i]
    }

    fn tmp_read(&self, buf: Sym, i: usize) -> f64 {
        let arr = self
            .tmps
            .iter()
            .find(|(n, _)| *n == buf)
            .unwrap_or_else(|| panic!("read of undefined temp {buf:?}"));
        arr.1[i]
    }

    fn priv_read(&self, buf: Sym, i: usize) -> PSlot {
        let arr = self
            .privs
            .iter()
            .find(|(n, _)| *n == buf)
            .unwrap_or_else(|| panic!("read of undefined private array {buf:?}"));
        arr.1[i]
    }

    fn priv_slot(&mut self, buf: Sym, i: usize) -> &mut PSlot {
        let arr = match self.privs.iter().position(|(n, _)| *n == buf) {
            Some(p) => &mut self.privs[p].1,
            None => {
                self.privs.push((buf, Vec::new()));
                &mut self.privs.last_mut().expect("just pushed").1
            }
        };
        if arr.len() <= i {
            arr.resize(
                i + 1,
                PSlot {
                    id: u32::MAX,
                    val: 0.0,
                },
            );
        }
        &mut arr[i]
    }
}

/// Read-only execution context threaded through the walk.
struct Ctx<'a> {
    prog: &'a Program,
    input: &'a AssemblyInput<'a>,
    e: usize,
    lay: &'a Layout,
}

/// Resolves an affine index against the enclosing loop variables.
fn resolve_ix(i: &Ix, env: &[(Sym, i64)]) -> usize {
    let mut v = i.base;
    for &(coeff, var) in &i.terms {
        let val = env
            .iter()
            .rev()
            .find(|&&(n, _)| n == var)
            .unwrap_or_else(|| panic!("unbound loop variable {var:?}"))
            .1;
        v += coeff * val;
    }
    usize::try_from(v).unwrap_or_else(|_| panic!("negative index {v}"))
}

/// Evaluates one expression left-to-right depth-first, emitting exactly
/// the events the handwritten kernel's equivalent Rust expression would.
fn eval_expr<R: Recorder>(
    ctx: &Ctx<'_>,
    frame: &Frame,
    env: &[(Sym, i64)],
    ws: &Ws<'_>,
    rec: &mut R,
    expr: &Expr,
) -> f64 {
    match expr {
        Expr::K(v) => *v,
        Expr::Rho => ctx.input.props.density,
        Expr::Mu => ctx.input.props.viscosity,
        Expr::VremanC => ctx.input.vreman_c,
        Expr::BodyForce(i) => ctx.input.body_force[resolve_ix(i, env)],
        Expr::GaussWeight(i) => ElementKind::Tet4.gauss_weight(resolve_ix(i, env)),
        Expr::Shape(g, a) => Tet4::SHAPE[resolve_ix(g, env)][resolve_ix(a, env)],
        Expr::LocalGrad(a, r) => TET4_LOCAL_GRADS[resolve_ix(a, env)][resolve_ix(r, env)],
        Expr::Ws(buf, i) => {
            let v = ctx.prog.ws_base(buf) + resolve_ix(i, env);
            ws.ld(v, ctx.lay, rec)
        }
        Expr::Priv(buf, i) => {
            let slot = frame.priv_read(buf, resolve_ix(i, env));
            if R::ENABLED {
                rec.use_(slot.id);
            }
            slot.val
        }
        Expr::Tmp(buf, i) => frame.tmp_read(buf, resolve_ix(i, env)),
        Expr::DensityAt(t) => {
            let t = eval_expr(ctx, frame, env, ws, rec, t);
            rec.flop(4);
            ctx.input.density_at(t)
        }
        Expr::ViscosityAt(t) => {
            let t = eval_expr(ctx, frame, env, ws, rec, t);
            rec.flop(4);
            ctx.input.viscosity_at(t)
        }
        Expr::Neg(a) => -eval_expr(ctx, frame, env, ws, rec, a),
        Expr::Add(a, b) => {
            let a = eval_expr(ctx, frame, env, ws, rec, a);
            let b = eval_expr(ctx, frame, env, ws, rec, b);
            a + b
        }
        Expr::Sub(a, b) => {
            let a = eval_expr(ctx, frame, env, ws, rec, a);
            let b = eval_expr(ctx, frame, env, ws, rec, b);
            a - b
        }
        Expr::Mul(a, b) => {
            let a = eval_expr(ctx, frame, env, ws, rec, a);
            let b = eval_expr(ctx, frame, env, ws, rec, b);
            a * b
        }
        Expr::Cbrt(a) => eval_expr(ctx, frame, env, ws, rec, a).cbrt(),
    }
}

/// Reads a 9-slot temp as a row-major 3×3 matrix.
fn tmp_mat3(frame: &Frame, buf: Sym) -> [[f64; 3]; 3] {
    let mut m = [[0.0; 3]; 3];
    for (r, row) in m.iter_mut().enumerate() {
        for (c, v) in row.iter_mut().enumerate() {
            *v = frame.tmp_read(buf, 3 * r + c);
        }
    }
    m
}

/// Writes a node-major component-minor 12-slot temp from `[[f64; 3]; 4]`.
fn tmp_put12(frame: &mut Frame, buf: Sym, vals: [[f64; 3]; 4]) {
    for (a, v) in vals.iter().enumerate() {
        for (d, &x) in v.iter().enumerate() {
            *frame.tmp_slot(buf, 3 * a + d) = x;
        }
    }
}

/// Executes one statement.
fn exec_stmt<R: Recorder, S: ScatterSink>(
    ctx: &Ctx<'_>,
    frame: &mut Frame,
    env: &mut Vec<(Sym, i64)>,
    ws: &mut Ws<'_>,
    sink: &mut S,
    rec: &mut R,
    stmt: &Stmt,
) {
    match stmt {
        Stmt::For { var, count, body } => {
            for i in 0..*count {
                env.push((var, i));
                for s in body {
                    exec_stmt(ctx, frame, env, ws, sink, rec, s);
                }
                env.pop();
            }
        }
        Stmt::Flop(n) => rec.flop(*n),
        Stmt::Fma(n) => rec.fma(*n),
        Stmt::WsSt { buf, ix, val } => {
            let v = eval_expr(ctx, frame, env, ws, rec, val);
            let slot = ctx.prog.ws_base(buf) + resolve_ix(ix, env);
            ws.st(slot, v, ctx.lay, rec);
        }
        Stmt::WsAcc { buf, ix, inc } => {
            let v = eval_expr(ctx, frame, env, ws, rec, inc);
            let slot = ctx.prog.ws_base(buf) + resolve_ix(ix, env);
            ws.acc(slot, v, ctx.lay, rec);
        }
        Stmt::TmpSt { buf, ix, val } => {
            let v = eval_expr(ctx, frame, env, ws, rec, val);
            let i = resolve_ix(ix, env);
            *frame.tmp_slot(buf, i) = v;
        }
        Stmt::PrivDef { buf, ix, val } => {
            let v = eval_expr(ctx, frame, env, ws, rec, val);
            let i = resolve_ix(ix, env);
            let id = frame.next_id;
            frame.next_id += 1;
            if R::ENABLED {
                rec.def(id);
            }
            *frame.priv_slot(buf, i) = PSlot { id, val: v };
        }
        Stmt::PrivSet { buf, ix, val } => {
            let v = eval_expr(ctx, frame, env, ws, rec, val);
            let i = resolve_ix(ix, env);
            let slot = frame.priv_slot(buf, i);
            if R::ENABLED {
                rec.def(slot.id);
            }
            slot.val = v;
        }
        Stmt::GatherConn => {
            frame.nodes = gather::gather_conn(ctx.input, ctx.e, ctx.lay, rec);
        }
        Stmt::GatherCoords { dst } => {
            let c = gather::gather_coords(ctx.input, &frame.nodes, ctx.lay, rec);
            tmp_put12(frame, dst, c);
        }
        Stmt::GatherVelocity { dst } => {
            let v = gather::gather_velocity(ctx.input, &frame.nodes, ctx.lay, rec);
            tmp_put12(frame, dst, v);
        }
        Stmt::GatherPressure { dst } => {
            let p = gather::gather_scalar(
                ctx.input.pressure,
                layout::PRES_BASE,
                &frame.nodes,
                ctx.lay,
                rec,
            );
            for (a, &x) in p.iter().enumerate() {
                *frame.tmp_slot(dst, a) = x;
            }
        }
        Stmt::GatherTemperature { dst } => {
            let t = gather::gather_scalar(
                ctx.input.temperature,
                layout::TEMP_BASE,
                &frame.nodes,
                ctx.lay,
                rec,
            );
            for (a, &x) in t.iter().enumerate() {
                *frame.tmp_slot(dst, a) = x;
            }
        }
        Stmt::GatherNut { dst } => {
            let v = match ctx.input.nu_t {
                Some(nut) => {
                    if R::ENABLED {
                        rec.gload(ctx.lay.elemental(layout::NUT_BASE, ctx.e));
                    }
                    nut[ctx.e]
                }
                None => 0.0,
            };
            *frame.tmp_slot(dst, 0) = v;
        }
        Stmt::Det3 { m, dst } => {
            let mat = tmp_mat3(frame, m);
            *frame.tmp_slot(dst, 0) = ops::det3(&mat, rec);
        }
        Stmt::Inv3 { m, det, dst } => {
            let mat = tmp_mat3(frame, m);
            let d = frame.tmp_read(det, 0);
            let inv = ops::inv3(&mat, d, rec);
            for (r, row) in inv.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    *frame.tmp_slot(dst, 3 * r + c) = v;
                }
            }
        }
        Stmt::Tet4Grads { coords, grads, vol } => {
            let mut c = [[0.0; 3]; 4];
            for (a, row) in c.iter_mut().enumerate() {
                for (d, v) in row.iter_mut().enumerate() {
                    *v = frame.tmp_read(coords, 3 * a + d);
                }
            }
            let (g, v) = ops::tet4_grads(&c, rec);
            tmp_put12(frame, grads, g);
            *frame.tmp_slot(vol, 0) = v;
        }
        Stmt::Shape4 { g, dst } => {
            let sha = tet4_shape(TET4_GAUSS[resolve_ix(g, env)]);
            for (a, &x) in sha.iter().enumerate() {
                *frame.tmp_slot(dst, a) = x;
            }
        }
        Stmt::Vreman { grad, delta, dst } => {
            let g = tmp_mat3(frame, grad);
            let d = eval_expr(ctx, frame, env, ws, rec, delta);
            *frame.tmp_slot(dst, 0) = ops::vreman(&g, d, ctx.input.vreman_c, rec);
        }
        Stmt::Scatter { src } => {
            let mut elrhs = [[0.0; 3]; 4];
            for (a, row) in elrhs.iter_mut().enumerate() {
                for (d, v) in row.iter_mut().enumerate() {
                    *v = frame.tmp_read(src, 3 * a + d);
                }
            }
            let nodes = frame.nodes;
            gather::scatter_elemental(sink, &nodes, &elrhs, ctx.lay, rec);
        }
        Stmt::EmitNode { node, dim, val } => {
            let v = eval_expr(ctx, frame, env, ws, rec, val);
            let a = resolve_ix(node, env);
            let d = resolve_ix(dim, env);
            sink.add(frame.nodes[a], d, v, ctx.lay, rec);
        }
    }
}

/// Interprets `prog` for one element, scattering through `sink` and
/// recording through `rec` — the generated-kernel counterpart of
/// `alya_core::drivers::assemble_element`.
#[allow(clippy::too_many_arguments)]
pub fn run_ir<R: Recorder, S: ScatterSink>(
    prog: &Program,
    input: &AssemblyInput,
    e: usize,
    lay: &Layout,
    ws: &mut Ws<'_>,
    sink: &mut S,
    rec: &mut R,
) {
    let ctx = Ctx {
        prog,
        input,
        e,
        lay,
    };
    let mut frame = Frame::new();
    let mut env: Vec<(Sym, i64)> = Vec::new();
    for block in &prog.blocks {
        for stmt in &block.stmts {
            exec_stmt(&ctx, &mut frame, &mut env, ws, sink, rec, stmt);
        }
    }
}

/// Adapter funneling the drivers' `emit` callback into the kernel-facing
/// [`ScatterSink`] shape (untraced — the drivers record nothing on the
/// generated path).
struct EmitSink<'a> {
    emit: &'a mut dyn FnMut(u32, usize, f64),
}

impl ScatterSink for EmitSink<'_> {
    fn add<R: Recorder>(&mut self, n: u32, d: usize, v: f64, _lay: &Layout, _rec: &mut R) {
        (self.emit)(n, d, v);
    }
}

/// An IR program packaged as a [`GeneratedKernel`] the drivers can run via
/// `KernelImpl::Generated`.
pub struct CompiledKernel {
    prog: Program,
}

impl CompiledKernel {
    /// Wraps a derived program.
    pub fn new(prog: Program) -> Self {
        CompiledKernel { prog }
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.prog
    }
}

impl GeneratedKernel for CompiledKernel {
    fn variant(&self) -> Variant {
        self.prog.variant
    }

    fn run_element(
        &self,
        input: &AssemblyInput,
        e: usize,
        lay: &Layout,
        ws_buf: &mut [f64],
        stride: usize,
        lane: usize,
        emit: &mut dyn FnMut(u32, usize, f64),
    ) {
        let mut ws = match self.prog.space {
            Some(Space::Global) => Ws::global(ws_buf, stride, lane),
            _ => Ws::local(ws_buf),
        };
        let mut sink = EmitSink { emit };
        run_ir(
            &self.prog,
            input,
            e,
            lay,
            &mut ws,
            &mut sink,
            &mut alya_machine::NoRecord,
        );
    }
}

/// Traces one element of a derived program — the exact mirror of
/// `alya_core::drivers::trace_element` (same ν_t pre-pass, same workspace
/// shape, same [`DirectSink`]), so the two event streams are comparable
/// index by index.
pub fn trace_generated(
    prog: &Program,
    input: &AssemblyInput,
    e: usize,
    lay: &Layout,
) -> TraceRecorder {
    if prog.variant.needs_nut_pass() && input.nu_t.is_none() {
        let nut = compute_nu_t(input);
        let mut inp = *input;
        inp.nu_t = Some(&nut);
        return trace_generated_ready(prog, &inp, e, lay);
    }
    trace_generated_ready(prog, input, e, lay)
}

/// [`trace_generated`] once the ν_t field is attached (or not needed).
fn trace_generated_ready(
    prog: &Program,
    input: &AssemblyInput,
    e: usize,
    lay: &Layout,
) -> TraceRecorder {
    let nn = input.mesh.num_nodes();
    let mut rec = TraceRecorder::new();
    let nval = prog.variant.nvalues().max(1);
    let mut ws_buf = vec![0.0; nval];
    let mut rhs = VectorField::zeros(nn);
    let mut sink = DirectSink { rhs: &mut rhs };
    let mut ws = match prog.space {
        Some(Space::Global) => Ws::global(&mut ws_buf, 1, 0),
        _ => Ws::local(&mut ws_buf),
    };
    run_ir(prog, input, e, lay, &mut ws, &mut sink, &mut rec);
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive;
    use crate::fixture::Fixture;
    use alya_core::drivers::{trace_element, CPU_VECTOR_DIM};
    use alya_core::Variant;

    /// Event-for-event parity with the handwritten kernels, reporting the
    /// first divergence with context — the strongest possible pin: the
    /// generated kernel performs the *same operations in the same order*,
    /// not merely the same totals.
    #[test]
    fn generated_event_streams_match_handwritten_exactly() {
        let fx = Fixture::new();
        let input = fx.input();
        let ne = fx.mesh.num_elements();
        let nn = fx.mesh.num_nodes();
        for v in Variant::ALL {
            let prog = derive(v);
            for &e in &[0usize, ne / 3, ne - 1] {
                for lay in [Layout::gpu(e, ne, nn), Layout::cpu(e, CPU_VECTOR_DIM, nn)] {
                    let hand = trace_element(v, &input, e, &lay);
                    let gen = trace_generated(&prog, &input, e, &lay);
                    let n = hand.events.len().min(gen.events.len());
                    for i in 0..n {
                        assert_eq!(
                            hand.events[i],
                            gen.events[i],
                            "{} element {e}: first divergence at event {i}\n  handwritten: {:?}\n  generated:   {:?}",
                            v.name(),
                            &hand.events[i.saturating_sub(5)..(i + 5).min(n)],
                            &gen.events[i.saturating_sub(5)..(i + 5).min(n)],
                        );
                    }
                    assert_eq!(
                        hand.events.len(),
                        gen.events.len(),
                        "{} element {e}: stream lengths diverge after a common prefix; tails: {:?} vs {:?}",
                        v.name(),
                        &hand.events[n.saturating_sub(5)..],
                        &gen.events[n.saturating_sub(5)..],
                    );
                }
            }
        }
    }
}
