//! The paper's kernel transformations as IR-to-IR rewrite passes.
//!
//! Each variant is derived, never re-described:
//!
//! * [`privatize_workspace`] (B → P): flips the workspace address space to
//!   thread-local. No statement changes — exactly the paper's "laid out in
//!   private memory" step.
//! * [`restructure_specialize`] (B → RS): keeps the gather and scatter
//!   blocks of the base form (minus the temperature/ν_t gathers the
//!   constant-property specialization makes dead), folds the
//!   runtime-dispatched constitutive evaluations to the constants
//!   [`Expr::Rho`]/[`Expr::Mu`], and replaces the per-Gauss-point generic
//!   geometry + elemental-matrix pipeline with the restructured
//!   once-per-element blocks (constant gradients, on-the-fly Vreman,
//!   direct RHS accumulation).
//! * [`privatize_scalars`] (RS → RSP): every surviving workspace buffer
//!   becomes a tracked private scalar array ([`Stmt::PrivDef`]). The
//!   mechanical sub-rewrites are store privatization
//!   ([`privatize_block`]), definition sinking for the velocity gradient
//!   ([`sink_defs`]), the load-fold peephole that moves a single-use
//!   load past a flop annotation ([`fold_tmp`]), and per-Gauss-point array
//!   contraction of the advection/convection vectors (12 slots → 3
//!   short-lived ones, which forces the convection accumulation to fuse
//!   into the Gauss loop).
//! * [`recombine`] (RSP → RSPR): re-expands the convection vector to one
//!   long-lived register per `(g, d)` and recombines the three
//!   accumulation loops node-major, shrinking peak pressure below the
//!   contract budget — the paper's final recombination.
//!
//! Every pass is pinned by analyzer pass 10: the derived program must
//! reproduce the handwritten kernel's event stream *exactly*, so a rewrite
//! that reorders so much as one load fails the audit.

use alya_core::variant::Variant;
use alya_machine::Space;
use std::ops::{Mul, Neg, Sub};

use crate::base::{fr, pdef, scatter_block, tst, wacc, wst};
use crate::ir::{iv, ix, k, pv, tmp, ws, Block, Expr, Program, Stmt, Sym};

// ---- Generic rewrite machinery ---------------------------------------------

/// Bottom-up expression rewriter: applies `f` to every node (children
/// first); `None` keeps the (child-rewritten) node.
fn rewrite_expr(e: &Expr, f: &dyn Fn(&Expr) -> Option<Expr>) -> Expr {
    let walk = |x: &Expr| Box::new(rewrite_expr(x, f));
    let rebuilt = match e {
        Expr::DensityAt(a) => Expr::DensityAt(walk(a)),
        Expr::ViscosityAt(a) => Expr::ViscosityAt(walk(a)),
        Expr::Neg(a) => Expr::Neg(walk(a)),
        Expr::Cbrt(a) => Expr::Cbrt(walk(a)),
        Expr::Add(a, b) => Expr::Add(walk(a), walk(b)),
        Expr::Sub(a, b) => Expr::Sub(walk(a), walk(b)),
        Expr::Mul(a, b) => Expr::Mul(walk(a), walk(b)),
        other => other.clone(),
    };
    f(&rebuilt).unwrap_or(rebuilt)
}

/// Statement-tree rewriter: applies `fe` to every expression and `fs` to
/// every (expression-rewritten) statement; `fs` returning `None` keeps the
/// statement.
fn rewrite_stmts(
    stmts: &[Stmt],
    fe: &dyn Fn(&Expr) -> Option<Expr>,
    fs: &dyn Fn(&Stmt) -> Option<Stmt>,
) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| {
            let s2 = match s {
                Stmt::For { var, count, body } => Stmt::For {
                    var,
                    count: *count,
                    body: rewrite_stmts(body, fe, fs),
                },
                Stmt::WsSt { buf, ix, val } => Stmt::WsSt {
                    buf,
                    ix: ix.clone(),
                    val: rewrite_expr(val, fe),
                },
                Stmt::WsAcc { buf, ix, inc } => Stmt::WsAcc {
                    buf,
                    ix: ix.clone(),
                    inc: rewrite_expr(inc, fe),
                },
                Stmt::TmpSt { buf, ix, val } => Stmt::TmpSt {
                    buf,
                    ix: ix.clone(),
                    val: rewrite_expr(val, fe),
                },
                Stmt::PrivDef { buf, ix, val } => Stmt::PrivDef {
                    buf,
                    ix: ix.clone(),
                    val: rewrite_expr(val, fe),
                },
                Stmt::PrivSet { buf, ix, val } => Stmt::PrivSet {
                    buf,
                    ix: ix.clone(),
                    val: rewrite_expr(val, fe),
                },
                Stmt::Vreman { grad, delta, dst } => Stmt::Vreman {
                    grad,
                    delta: rewrite_expr(delta, fe),
                    dst,
                },
                other => other.clone(),
            };
            fs(&s2).unwrap_or(s2)
        })
        .collect()
}

/// Looks up a buffer rename.
fn renamed(renames: &[(Sym, Sym)], buf: Sym) -> Option<Sym> {
    renames
        .iter()
        .find(|&&(from, _)| from == buf)
        .map(|&(_, to)| to)
}

/// The store-privatization rewrite: workspace stores of the renamed
/// buffers become fresh private-value definitions, workspace loads become
/// tracked private reads. Buffers not in the map are untouched;
/// accumulates must have been restructured away before this runs.
fn privatize_block(b: &Block, renames: &[(Sym, Sym)]) -> Block {
    let fe = |e: &Expr| -> Option<Expr> {
        if let Expr::Ws(buf, i) = e {
            renamed(renames, buf).map(|to| Expr::Priv(to, i.clone()))
        } else {
            None
        }
    };
    let fs = |s: &Stmt| -> Option<Stmt> {
        match s {
            Stmt::WsSt { buf, ix, val } => renamed(renames, buf).map(|to| Stmt::PrivDef {
                buf: to,
                ix: ix.clone(),
                val: val.clone(),
            }),
            Stmt::WsAcc { buf, .. } => {
                assert!(
                    renamed(renames, buf).is_none(),
                    "accumulate into {buf:?} must be restructured before privatization"
                );
                None
            }
            _ => None,
        }
    };
    Block {
        tag: b.tag,
        stmts: rewrite_stmts(&b.stmts, &fe, &fs),
    }
}

/// The definition-sinking rewrite: private definitions of `buf` inside a
/// loop nest become silent stores to `raw`, and one definition loop per
/// slot is appended — the handwritten kernels define the whole velocity
/// gradient *after* computing it, keeping `Def` order contiguous.
fn sink_defs(b: &Block, buf: Sym, raw: Sym, def_loop: Vec<Stmt>) -> Block {
    let fs = |s: &Stmt| -> Option<Stmt> {
        if let Stmt::PrivDef { buf: pb, ix, val } = s {
            (*pb == buf).then(|| Stmt::TmpSt {
                buf: raw,
                ix: ix.clone(),
                val: val.clone(),
            })
        } else {
            None
        }
    };
    let mut stmts = rewrite_stmts(&b.stmts, &|_| None, &fs);
    stmts.extend(def_loop);
    Block { tag: b.tag, stmts }
}

/// The load-fold peephole: removes the single silent load `TmpSt{buf}` and
/// substitutes its value expression at every read site — in the
/// handwritten RSP this is what moves the volume read *past* the flop
/// annotation that precedes the Vreman call.
fn fold_tmp(stmts: &[Stmt], buf: Sym) -> Vec<Stmt> {
    let mut folded: Option<Expr> = None;
    let mut kept: Vec<Stmt> = Vec::new();
    for s in stmts {
        if let Stmt::TmpSt { buf: tb, val, .. } = s {
            if *tb == buf {
                assert!(folded.is_none(), "fold_tmp: {buf:?} stored twice");
                folded = Some(val.clone());
                continue;
            }
        }
        kept.push(s.clone());
    }
    let val = folded.unwrap_or_else(|| panic!("fold_tmp: no store to {buf:?}"));
    let fe = |e: &Expr| -> Option<Expr> {
        if let Expr::Tmp(tb, _) = e {
            (*tb == buf).then(|| val.clone())
        } else {
            None
        }
    };
    rewrite_stmts(&kept, &fe, &|_| None)
}

// ---- B → P -----------------------------------------------------------------

/// Workspace privatization: same statements, thread-local address space.
pub fn privatize_workspace(base: &Program) -> Program {
    assert_eq!(base.variant, Variant::B, "P is derived from the base form");
    let mut p = base.clone();
    p.name = "P";
    p.variant = Variant::P;
    p.space = Some(Space::Local);
    p
}

// ---- B → RS ----------------------------------------------------------------

/// The RS workspace catalog (13 arrays, down from 25).
fn rs_buffers() -> Vec<(Sym, usize)> {
    vec![
        ("ELCOD", 12),
        ("ELVEL", 12),
        ("ELPRE", 4),
        ("CARTE", 12),
        ("VOL", 1),
        ("GVE", 9),
        ("NUT", 1),
        ("GPADV", 12),
        ("GPCON", 12),
        ("PBAR", 1),
        ("FORCE", 3),
        ("DIFF", 12),
        ("ELRHS", 12),
    ]
}

/// Restructured geometry: constant gradients computed once per element.
fn rs_geometry_block() -> Block {
    Block {
        tag: "geometry",
        stmts: vec![
            fr(
                "a",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![tst(
                        "elcod_t",
                        ix(0).t(3, "a").t(1, "d"),
                        ws("ELCOD", ix(0).t(3, "a").t(1, "d")),
                    )],
                )],
            ),
            Stmt::Tet4Grads {
                coords: "elcod_t",
                grads: "grads_t",
                vol: "vol_t",
            },
            fr(
                "a",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![wst(
                        "CARTE",
                        ix(0).t(3, "a").t(1, "d"),
                        tmp("grads_t", ix(0).t(3, "a").t(1, "d")),
                    )],
                )],
            ),
            wst("VOL", ix(0), tmp("vol_t", ix(0))),
        ],
    }
}

/// Constant velocity gradient, computed once.
fn rs_gve_block() -> Block {
    Block {
        tag: "gve",
        stmts: vec![fr(
            "i",
            3,
            vec![fr(
                "j",
                3,
                vec![
                    tst("gv_acc", ix(0), k(0.0)),
                    fr(
                        "a",
                        4,
                        vec![tst(
                            "gv_acc",
                            ix(0),
                            tmp("gv_acc", ix(0)).plus(
                                ws("CARTE", ix(0).t(3, "a").t(1, "i"))
                                    .mul(ws("ELVEL", ix(0).t(3, "a").t(1, "j"))),
                            ),
                        )],
                    ),
                    Stmt::Fma(4),
                    wst("GVE", ix(0).t(3, "i").t(1, "j"), tmp("gv_acc", ix(0))),
                ],
            )],
        )],
    }
}

/// On-the-fly Vreman ν_t: one value per element.
fn rs_vreman_block() -> Block {
    Block {
        tag: "vreman",
        stmts: vec![
            fr(
                "i",
                3,
                vec![fr(
                    "j",
                    3,
                    vec![tst(
                        "gve_t",
                        ix(0).t(3, "i").t(1, "j"),
                        ws("GVE", ix(0).t(3, "i").t(1, "j")),
                    )],
                )],
            ),
            tst("vol_v", ix(0), ws("VOL", ix(0))),
            Stmt::Flop(2),
            Stmt::Vreman {
                grad: "gve_t",
                delta: Expr::Cbrt(Box::new(tmp("vol_v", ix(0)))),
                dst: "nut_t",
            },
            wst("NUT", ix(0), tmp("nut_t", ix(0))),
        ],
    }
}

/// Per-Gauss-point advection and convection vectors.
fn rs_gauss_vectors_block() -> Block {
    Block {
        tag: "gauss-vectors",
        stmts: vec![fr(
            "g",
            4,
            vec![
                fr(
                    "d",
                    3,
                    vec![
                        tst("adv_acc", ix(0), k(0.0)),
                        fr(
                            "a",
                            4,
                            vec![tst(
                                "adv_acc",
                                ix(0),
                                tmp("adv_acc", ix(0)).plus(
                                    Expr::Shape(iv("g"), iv("a"))
                                        .mul(ws("ELVEL", ix(0).t(3, "a").t(1, "d"))),
                                ),
                            )],
                        ),
                        Stmt::Fma(4),
                        wst("GPADV", ix(0).t(3, "g").t(1, "d"), tmp("adv_acc", ix(0))),
                    ],
                ),
                fr(
                    "d",
                    3,
                    vec![
                        tst("con_acc", ix(0), k(0.0)),
                        fr(
                            "i",
                            3,
                            vec![tst(
                                "con_acc",
                                ix(0),
                                tmp("con_acc", ix(0)).plus(
                                    ws("GPADV", ix(0).t(3, "g").t(1, "i"))
                                        .mul(ws("GVE", ix(0).t(3, "i").t(1, "d"))),
                                ),
                            )],
                        ),
                        Stmt::Fma(3),
                        Stmt::Flop(1),
                        wst(
                            "GPCON",
                            ix(0).t(3, "g").t(1, "d"),
                            Expr::Rho.mul(tmp("con_acc", ix(0))),
                        ),
                    ],
                ),
            ],
        )],
    }
}

/// Mean elemental pressure and the constant body-force vector.
fn rs_mean_pressure_force_block() -> Block {
    Block {
        tag: "mean-pressure-force",
        stmts: vec![
            tst("pbar_acc", ix(0), k(0.0)),
            fr(
                "a",
                4,
                vec![tst(
                    "pbar_acc",
                    ix(0),
                    tmp("pbar_acc", ix(0)).plus(ws("ELPRE", iv("a"))),
                )],
            ),
            Stmt::Flop(4),
            wst("PBAR", ix(0), k(0.25).mul(tmp("pbar_acc", ix(0)))),
            fr(
                "d",
                3,
                vec![
                    Stmt::Flop(1),
                    wst("FORCE", iv("d"), Expr::Rho.mul(Expr::BodyForce(iv("d")))),
                ],
            ),
        ],
    }
}

/// Direct RHS accumulation: convection, pressure + force, diffusion.
fn rs_accumulate_block() -> Block {
    let mut stmts = vec![
        tst("vol_r", ix(0), ws("VOL", ix(0))),
        Stmt::Flop(1),
        tst("gpvol_t", ix(0), k(0.25).mul(tmp("vol_r", ix(0)))),
        fr(
            "a",
            4,
            vec![fr(
                "d",
                3,
                vec![wst("ELRHS", ix(0).t(3, "a").t(1, "d"), k(0.0))],
            )],
        ),
        fr(
            "g",
            4,
            vec![fr(
                "a",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![
                        tst("con_r", ix(0), ws("GPCON", ix(0).t(3, "g").t(1, "d"))),
                        Stmt::Flop(2),
                        wacc(
                            "ELRHS",
                            ix(0).t(3, "a").t(1, "d"),
                            tmp("gpvol_t", ix(0))
                                .neg()
                                .mul(Expr::Shape(iv("g"), iv("a")))
                                .mul(tmp("con_r", ix(0))),
                        ),
                    ],
                )],
            )],
        ),
        tst("pbar_r", ix(0), ws("PBAR", ix(0))),
        fr(
            "a",
            4,
            vec![fr(
                "d",
                3,
                vec![
                    tst("car_r", ix(0), ws("CARTE", ix(0).t(3, "a").t(1, "d"))),
                    tst("f_r", ix(0), ws("FORCE", iv("d"))),
                    Stmt::Fma(2),
                    Stmt::Flop(2),
                    wacc(
                        "ELRHS",
                        ix(0).t(3, "a").t(1, "d"),
                        tmp("vol_r", ix(0))
                            .mul(tmp("pbar_r", ix(0)))
                            .mul(tmp("car_r", ix(0)))
                            .plus(tmp("gpvol_t", ix(0)).mul(tmp("f_r", ix(0)))),
                    ),
                ],
            )],
        ),
        tst("nut_r", ix(0), ws("NUT", ix(0))),
        Stmt::Flop(2),
        tst(
            "mueff_t",
            ix(0),
            Expr::Mu.plus(Expr::Rho.mul(tmp("nut_r", ix(0)))),
        ),
    ];
    stmts.push(fr(
        "a",
        4,
        vec![fr(
            "d",
            3,
            vec![
                tst("flux_t", ix(0), k(0.0)),
                fr(
                    "b",
                    4,
                    vec![
                        tst("gdot_t", ix(0), k(0.0)),
                        fr(
                            "i",
                            3,
                            vec![tst(
                                "gdot_t",
                                ix(0),
                                tmp("gdot_t", ix(0)).plus(
                                    ws("CARTE", ix(0).t(3, "a").t(1, "i"))
                                        .mul(ws("CARTE", ix(0).t(3, "b").t(1, "i"))),
                                ),
                            )],
                        ),
                        Stmt::Fma(3),
                        tst("u_t", ix(0), ws("ELVEL", ix(0).t(3, "b").t(1, "d"))),
                        Stmt::Fma(1),
                        tst(
                            "flux_t",
                            ix(0),
                            tmp("flux_t", ix(0)).plus(tmp("gdot_t", ix(0)).mul(tmp("u_t", ix(0)))),
                        ),
                    ],
                ),
                wst("DIFF", ix(0).t(3, "a").t(1, "d"), tmp("flux_t", ix(0))),
                tst("flux_r", ix(0), ws("DIFF", ix(0).t(3, "a").t(1, "d"))),
                Stmt::Flop(2),
                wacc(
                    "ELRHS",
                    ix(0).t(3, "a").t(1, "d"),
                    tmp("vol_r", ix(0))
                        .neg()
                        .mul(tmp("mueff_t", ix(0)))
                        .mul(tmp("flux_r", ix(0))),
                ),
            ],
        )],
    ));
    Block {
        tag: "accumulate",
        stmts,
    }
}

/// Restructuring + specialization: constant properties, constant
/// gradients, no elemental matrices. The gather and scatter blocks of the
/// base form are carried over (minus the gathers the specialization makes
/// dead); the generic interior is replaced by the restructured pipeline.
pub fn restructure_specialize(base: &Program) -> Program {
    assert_eq!(base.variant, Variant::B, "RS is derived from the base form");
    // The specialization constant-folds the runtime constitutive model.
    let specialize = |e: &Expr| -> Option<Expr> {
        match e {
            Expr::DensityAt(_) => Some(Expr::Rho),
            Expr::ViscosityAt(_) => Some(Expr::Mu),
            _ => None,
        }
    };
    // Blocks the restructuring eliminates outright (dead after
    // specialization, or replaced by the direct accumulation).
    for dead in [
        "gather-temperature",
        "gather-nut",
        "matrices",
        "emat",
        "mass",
        "rhs",
    ] {
        let _ = base.block(dead);
    }
    let carry = |tag: Sym| -> Block {
        let b = base.block(tag);
        Block {
            tag: b.tag,
            stmts: rewrite_stmts(&b.stmts, &specialize, &|_| None),
        }
    };
    let blocks = vec![
        carry("gather-conn"),
        carry("gather-coords"),
        carry("gather-velocity"),
        carry("gather-pressure"),
        rs_geometry_block(),
        rs_gve_block(),
        rs_vreman_block(),
        rs_gauss_vectors_block(),
        rs_mean_pressure_force_block(),
        rs_accumulate_block(),
        carry("scatter"),
    ];
    debug_assert_eq!(scatter_block("ELRHS"), base.block("scatter").clone());
    Program {
        name: "RS",
        variant: Variant::Rs,
        space: Some(Space::Global),
        buffers: rs_buffers(),
        blocks,
    }
}

// ---- RS → RSP --------------------------------------------------------------

/// Buffer → private-array renames of the scalar-privatization pass.
const RSP_RENAMES: &[(Sym, Sym)] = &[
    ("ELCOD", "coords"),
    ("ELVEL", "vel"),
    ("ELPRE", "pre"),
    ("CARTE", "grads"),
    ("VOL", "vol"),
    ("GVE", "gve"),
    ("NUT", "nut"),
    ("ELRHS", "rhs"),
];

/// RHS accumulator definitions plus the folded `gpvol` constant — hoisted
/// ahead of the (now fused) Gauss loop.
fn rsp_rhs_init_block() -> Block {
    Block {
        tag: "rhs-init",
        stmts: vec![
            fr(
                "a",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![pdef("rhs", ix(0).t(3, "a").t(1, "d"), k(0.0))],
                )],
            ),
            Stmt::Flop(1),
            tst("gpvol_t", ix(0), k(0.25).mul(pv("vol", ix(0)))),
        ],
    }
}

/// The fused Gauss loop: contracted advection/convection vectors (3
/// short-lived registers each, re-defined per point) and the convection
/// accumulation folded in — contraction leaves it nowhere else to go.
fn rsp_gauss_block() -> Block {
    Block {
        tag: "gauss",
        stmts: vec![fr(
            "g",
            4,
            vec![
                fr(
                    "d",
                    3,
                    vec![
                        tst("adv_raw", iv("d"), k(0.0)),
                        fr(
                            "a",
                            4,
                            vec![tst(
                                "adv_raw",
                                iv("d"),
                                tmp("adv_raw", iv("d")).plus(
                                    Expr::Shape(iv("g"), iv("a"))
                                        .mul(pv("vel", ix(0).t(3, "a").t(1, "d"))),
                                ),
                            )],
                        ),
                        Stmt::Fma(4),
                    ],
                ),
                fr("d", 3, vec![pdef("adv", iv("d"), tmp("adv_raw", iv("d")))]),
                fr(
                    "d",
                    3,
                    vec![
                        tst("con_acc", ix(0), k(0.0)),
                        fr(
                            "i",
                            3,
                            vec![tst(
                                "con_acc",
                                ix(0),
                                tmp("con_acc", ix(0)).plus(
                                    pv("adv", iv("i")).mul(pv("gve", ix(0).t(3, "i").t(1, "d"))),
                                ),
                            )],
                        ),
                        Stmt::Fma(3),
                        Stmt::Flop(1),
                        tst("con_raw", iv("d"), Expr::Rho.mul(tmp("con_acc", ix(0)))),
                    ],
                ),
                fr("d", 3, vec![pdef("con", iv("d"), tmp("con_raw", iv("d")))]),
                fr(
                    "a",
                    4,
                    vec![fr(
                        "d",
                        3,
                        vec![
                            Stmt::Flop(2),
                            tst(
                                "inc_t",
                                ix(0),
                                tmp("gpvol_t", ix(0))
                                    .neg()
                                    .mul(Expr::Shape(iv("g"), iv("a")))
                                    .mul(pv("con", iv("d"))),
                            ),
                            Stmt::Flop(1),
                            Stmt::PrivSet {
                                buf: "rhs",
                                ix: ix(0).t(3, "a").t(1, "d"),
                                val: pv("rhs", ix(0).t(3, "a").t(1, "d")).plus(tmp("inc_t", ix(0))),
                            },
                        ],
                    )],
                ),
            ],
        )],
    }
}

/// Mean pressure, effective viscosity, then the pressure/force and
/// diffusion accumulations over tracked private scalars.
fn rsp_tail_block() -> Block {
    Block {
        tag: "tail",
        stmts: vec![
            Stmt::Flop(4),
            pdef(
                "pbar",
                ix(0),
                k(0.25).mul(
                    pv("pre", ix(0))
                        .plus(pv("pre", ix(1)))
                        .plus(pv("pre", ix(2)))
                        .plus(pv("pre", ix(3))),
                ),
            ),
            Stmt::Flop(2),
            pdef(
                "mu_eff",
                ix(0),
                Expr::Mu.plus(Expr::Rho.mul(pv("nut", ix(0)))),
            ),
            tst("volv_t", ix(0), pv("vol", ix(0))),
            fr(
                "a",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![
                        Stmt::Fma(2),
                        Stmt::Flop(2),
                        tst(
                            "inc_t",
                            ix(0),
                            tmp("volv_t", ix(0))
                                .mul(pv("pbar", ix(0)))
                                .mul(pv("grads", ix(0).t(3, "a").t(1, "d")))
                                .plus(
                                    tmp("gpvol_t", ix(0))
                                        .mul(Expr::Rho)
                                        .mul(Expr::BodyForce(iv("d"))),
                                ),
                        ),
                        Stmt::Flop(1),
                        Stmt::PrivSet {
                            buf: "rhs",
                            ix: ix(0).t(3, "a").t(1, "d"),
                            val: pv("rhs", ix(0).t(3, "a").t(1, "d")).plus(tmp("inc_t", ix(0))),
                        },
                    ],
                )],
            ),
            fr(
                "a",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![
                        tst("flux_t", ix(0), k(0.0)),
                        fr(
                            "b",
                            4,
                            vec![
                                tst("gdot_t", ix(0), k(0.0)),
                                fr(
                                    "i",
                                    3,
                                    vec![tst(
                                        "gdot_t",
                                        ix(0),
                                        tmp("gdot_t", ix(0)).plus(
                                            pv("grads", ix(0).t(3, "a").t(1, "i"))
                                                .mul(pv("grads", ix(0).t(3, "b").t(1, "i"))),
                                        ),
                                    )],
                                ),
                                Stmt::Fma(3),
                                Stmt::Fma(1),
                                tst(
                                    "flux_t",
                                    ix(0),
                                    tmp("flux_t", ix(0)).plus(
                                        tmp("gdot_t", ix(0))
                                            .mul(pv("vel", ix(0).t(3, "b").t(1, "d"))),
                                    ),
                                ),
                            ],
                        ),
                        Stmt::Flop(3),
                        Stmt::PrivSet {
                            buf: "rhs",
                            ix: ix(0).t(3, "a").t(1, "d"),
                            val: pv("rhs", ix(0).t(3, "a").t(1, "d")).sub(
                                tmp("volv_t", ix(0))
                                    .mul(pv("mu_eff", ix(0)))
                                    .mul(tmp("flux_t", ix(0))),
                            ),
                        },
                    ],
                )],
            ),
        ],
    }
}

/// Scalar privatization: the surviving workspace arrays become tracked
/// private values, the advection/convection vectors contract to per-point
/// registers (fusing the convection accumulation into the Gauss loop), and
/// `PBAR`/`FORCE`/`DIFF` disappear into their use sites.
pub fn privatize_scalars(rs: &Program) -> Program {
    assert_eq!(rs.variant, Variant::Rs, "RSP is derived from RS");
    let gve_defs = fr(
        "i",
        3,
        vec![fr(
            "j",
            3,
            vec![pdef(
                "gve",
                ix(0).t(3, "i").t(1, "j"),
                tmp("gve_raw", ix(0).t(3, "i").t(1, "j")),
            )],
        )],
    );
    let vreman = privatize_block(rs.block("vreman"), RSP_RENAMES);
    let vreman = Block {
        tag: vreman.tag,
        stmts: fold_tmp(&vreman.stmts, "vol_v"),
    };
    // The restructured accumulation blocks are replaced, not mapped: the
    // contraction of GPADV/GPCON and the elimination of PBAR/FORCE/DIFF
    // change the loop structure itself. Assert they exist so the pass
    // breaks loudly if the RS derivation changes shape.
    for replaced in ["gauss-vectors", "mean-pressure-force", "accumulate"] {
        let _ = rs.block(replaced);
    }
    let blocks = vec![
        rs.block("gather-conn").clone(),
        privatize_block(rs.block("gather-coords"), RSP_RENAMES),
        privatize_block(rs.block("gather-velocity"), RSP_RENAMES),
        privatize_block(rs.block("gather-pressure"), RSP_RENAMES),
        privatize_block(rs.block("geometry"), RSP_RENAMES),
        sink_defs(
            &privatize_block(rs.block("gve"), RSP_RENAMES),
            "gve",
            "gve_raw",
            vec![gve_defs],
        ),
        vreman,
        rsp_rhs_init_block(),
        rsp_gauss_block(),
        rsp_tail_block(),
        privatize_block(rs.block("scatter"), RSP_RENAMES),
    ];
    Program {
        name: "RSP",
        variant: Variant::Rsp,
        space: None,
        buffers: Vec::new(),
        blocks,
    }
}

// ---- RSP → RSPR ------------------------------------------------------------

/// Recombination: the convection vector is re-expanded to one long-lived
/// register per `(g, d)` (un-fusing the accumulation from the Gauss loop),
/// and the three accumulation loops are recombined node-major with three
/// short-lived per-node registers — the shape whose peak pressure fits the
/// contract budget without spills.
pub fn recombine(rsp: &Program) -> Program {
    assert_eq!(rsp.variant, Variant::Rsp, "RSPR is derived from RSP");
    // Gauss loop: drop the fused accumulation, widen the con definitions
    // from per-point `d` to long-lived `3g + d`.
    let gauss = rsp.block("gauss");
    let widened = {
        let fs = |s: &Stmt| -> Option<Stmt> {
            if let Stmt::PrivDef {
                buf: "con",
                ix: i,
                val,
            } = s
            {
                assert_eq!(*i, iv("d"), "con contraction shape changed");
                Some(Stmt::PrivDef {
                    buf: "con",
                    ix: ix(0).t(3, "g").t(1, "d"),
                    val: val.clone(),
                })
            } else {
                None
            }
        };
        let mut stmts = rewrite_stmts(&gauss.stmts, &|_| None, &fs);
        let [Stmt::For { body, .. }] = stmts.as_mut_slice() else {
            panic!("gauss block is one Gauss loop");
        };
        let dropped = body.pop().expect("gauss loop has a fused accumulation");
        assert!(
            matches!(&dropped, Stmt::For { var, .. } if *var == "a"),
            "the dropped statement is the fused node-loop accumulation"
        );
        Block {
            tag: "gauss",
            stmts,
        }
    };
    // Tail prologue: pbar and mu_eff definitions carried over verbatim;
    // the volume read gains the single gpvol fold (rhs-init is gone).
    let tail = rsp.block("tail");
    let mut prologue: Vec<Stmt> = tail.stmts[..4].to_vec();
    assert!(
        matches!(prologue[1], Stmt::PrivDef { buf: "pbar", .. })
            && matches!(prologue[3], Stmt::PrivDef { buf: "mu_eff", .. }),
        "tail prologue is the pbar/mu_eff definitions"
    );
    prologue.push(Stmt::Flop(1));
    prologue.push(tst("volv_t", ix(0), pv("vol", ix(0))));
    prologue.push(tst("gpvol_t", ix(0), k(0.25).mul(tmp("volv_t", ix(0)))));
    let node_loop = fr(
        "a",
        4,
        vec![
            fr("d", 3, vec![tst("acc_t", iv("d"), k(0.0))]),
            fr(
                "g",
                4,
                vec![fr(
                    "d",
                    3,
                    vec![
                        Stmt::Flop(3),
                        tst(
                            "acc_t",
                            iv("d"),
                            tmp("acc_t", iv("d")).sub(
                                tmp("gpvol_t", ix(0))
                                    .mul(Expr::Shape(iv("g"), iv("a")))
                                    .mul(pv("con", ix(0).t(3, "g").t(1, "d"))),
                            ),
                        ),
                    ],
                )],
            ),
            fr(
                "d",
                3,
                vec![
                    Stmt::Fma(2),
                    Stmt::Flop(3),
                    tst(
                        "acc_t",
                        iv("d"),
                        tmp("acc_t", iv("d")).plus(
                            tmp("volv_t", ix(0))
                                .mul(pv("pbar", ix(0)))
                                .mul(pv("grads", ix(0).t(3, "a").t(1, "d")))
                                .plus(
                                    tmp("gpvol_t", ix(0))
                                        .mul(Expr::Rho)
                                        .mul(Expr::BodyForce(iv("d"))),
                                ),
                        ),
                    ),
                ],
            ),
            fr(
                "d",
                3,
                vec![
                    tst("flux_t", ix(0), k(0.0)),
                    fr(
                        "b",
                        4,
                        vec![
                            tst("gdot_t", ix(0), k(0.0)),
                            fr(
                                "i",
                                3,
                                vec![tst(
                                    "gdot_t",
                                    ix(0),
                                    tmp("gdot_t", ix(0)).plus(
                                        pv("grads", ix(0).t(3, "a").t(1, "i"))
                                            .mul(pv("grads", ix(0).t(3, "b").t(1, "i"))),
                                    ),
                                )],
                            ),
                            Stmt::Fma(3),
                            Stmt::Fma(1),
                            tst(
                                "flux_t",
                                ix(0),
                                tmp("flux_t", ix(0)).plus(
                                    tmp("gdot_t", ix(0)).mul(pv("vel", ix(0).t(3, "b").t(1, "d"))),
                                ),
                            ),
                        ],
                    ),
                    Stmt::Flop(3),
                    tst(
                        "acc_t",
                        iv("d"),
                        tmp("acc_t", iv("d")).sub(
                            tmp("volv_t", ix(0))
                                .mul(pv("mu_eff", ix(0)))
                                .mul(tmp("flux_t", ix(0))),
                        ),
                    ),
                ],
            ),
            fr("d", 3, vec![pdef("acc", iv("d"), tmp("acc_t", iv("d")))]),
            fr(
                "d",
                3,
                vec![Stmt::EmitNode {
                    node: iv("a"),
                    dim: iv("d"),
                    val: pv("acc", iv("d")),
                }],
            ),
        ],
    );
    let mut blocks: Vec<Block> = [
        "gather-conn",
        "gather-coords",
        "gather-velocity",
        "gather-pressure",
        "geometry",
        "gve",
        "vreman",
    ]
    .iter()
    .map(|t| rsp.block(t).clone())
    .collect();
    blocks.push(widened);
    let mut tail_stmts = prologue;
    tail_stmts.push(node_loop);
    blocks.push(Block {
        tag: "node-recombine",
        stmts: tail_stmts,
    });
    Program {
        name: "RSPR",
        variant: Variant::Rspr,
        space: None,
        buffers: Vec::new(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::base;

    #[test]
    fn p_is_base_with_a_local_workspace() {
        let b = base();
        let p = privatize_workspace(&b);
        assert_eq!(p.variant, Variant::P);
        assert_eq!(p.space, Some(Space::Local));
        assert_eq!(p.blocks, b.blocks);
        assert_eq!(p.buffers, b.buffers);
    }

    #[test]
    fn derived_catalogs_match_variant_nvalues() {
        for v in Variant::ALL {
            let prog = crate::derive(v);
            assert_eq!(prog.nvalues(), v.nvalues(), "{}", v.name());
            assert_eq!(prog.variant, v);
        }
    }

    #[test]
    fn base_mutations_propagate_to_every_derived_variant() {
        // A change to the single base description must flow through the
        // whole derivation chain — that is what "derived, not re-described"
        // means. Mutate the gather-pressure block and check every variant
        // sees it.
        let mut mutated = base();
        mutated
            .block_mut("gather-pressure")
            .stmts
            .push(Stmt::Flop(7));
        let rs = restructure_specialize(&mutated);
        let rsp = privatize_scalars(&rs);
        let rspr = recombine(&rsp);
        for prog in [privatize_workspace(&mutated), rs.clone(), rsp.clone(), rspr] {
            assert_eq!(
                prog.block("gather-pressure").stmts.last(),
                Some(&Stmt::Flop(7)),
                "{} lost the base mutation",
                prog.name
            );
        }
    }

    #[test]
    fn privatization_rewrites_loads_and_stores() {
        let rs = restructure_specialize(&base());
        let rsp = privatize_scalars(&rs);
        // The privatized scatter reads tracked registers, not workspace.
        let scatter = rsp.block("scatter");
        let has_ws = format!("{:?}", scatter.stmts).contains("Ws(");
        assert!(!has_ws, "privatized scatter still reads the workspace");
    }
}
