//! The contract-derivation fixture: the same jittered box mesh and smooth
//! fields the analyzer audits on. Contract derivation replays one element
//! of a real mesh, so the fixture must have jitter and curvature — a
//! degenerate mesh could let a data-dependent branch skew the derived
//! counts.

use alya_core::AssemblyInput;
use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::{BoxMeshBuilder, TetMesh};

/// Owns the mesh and fields an [`AssemblyInput`] borrows.
pub struct Fixture {
    /// The fixture mesh (jittered 4×4×4 box, 384 tets).
    pub mesh: TetMesh,
    velocity: VectorField,
    pressure: ScalarField,
    temperature: ScalarField,
}

impl Fixture {
    /// Builds the canonical fixture.
    pub fn new() -> Self {
        let mesh = BoxMeshBuilder::new(4, 4, 4).jitter(0.1).seed(7).build();
        let velocity =
            VectorField::from_fn(&mesh, |p| [p[2] * p[2], (2.0 * p[1]).sin(), p[0] * p[1]]);
        let pressure = ScalarField::from_fn(&mesh, |p| p[0] + p[1] * p[2]);
        let temperature = ScalarField::zeros(mesh.num_nodes());
        Self {
            mesh,
            velocity,
            pressure,
            temperature,
        }
    }

    /// The assembly input over the fixture's fields.
    pub fn input(&self) -> AssemblyInput<'_> {
        AssemblyInput::new(
            &self.mesh,
            &self.velocity,
            &self.pressure,
            &self.temperature,
        )
        .props(ConstantProperties::AIR)
        .body_force([0.0, 0.1, -0.3])
    }
}

impl Default for Fixture {
    fn default() -> Self {
        Self::new()
    }
}
