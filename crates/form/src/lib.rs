//! `alya-form`: a symbolic kernel IR for the per-element Navier-Stokes
//! Gauss loop, from which every assembly variant is *derived*.
//!
//! The paper's B → RS → RSP → RSPR progression is a sequence of program
//! transformations applied by hand to one finite-element form. This crate
//! makes that literal: [`base::base`] describes the baseline tet4 assembly
//! once as a [`ir::Program`], and the rewrite passes in [`rewrite`] derive
//! every other variant from it —
//!
//! * `P`    = [`rewrite::privatize_workspace`]`(B)` — workspace moved to
//!   thread-local storage, statements untouched;
//! * `RS`   = [`rewrite::restructure_specialize`]`(B)` — matrices
//!   eliminated, properties constant-folded, loops restructured;
//! * `RSP`  = [`rewrite::privatize_scalars`]`(RS)` — every workspace slot
//!   replaced by a tracked private scalar, arrays contracted;
//! * `RSPR` = [`rewrite::recombine`]`(RSP)` — the accumulation loop
//!   recombined node-major to shrink live ranges below the register budget.
//!
//! Two backends walk the same IR. The executable backend
//! ([`exec::CompiledKernel`]) interprets a program against the *real*
//! `alya-core` workspace, gather/scatter, and math routines, and plugs into
//! the drivers as `KernelImpl::Generated`; its results are required to be
//! **bitwise identical** to the handwritten kernels, and its instrumented
//! event streams identical event-for-event. The analysis backend
//! ([`contract::derive_contract`]) replays one element's event stream into
//! a [`KernelContract`] that must equal the hand-maintained one in
//! `alya_core::variant` field-for-field. Analyzer pass 10
//! (`alya-analyze`'s `form` module) enforces both on every audit.

#![forbid(unsafe_code)]

pub mod base;
pub mod contract;
pub mod exec;
pub mod fixture;
pub mod ir;
pub mod rewrite;

pub use alya_core::variant::{KernelContract, Variant};
pub use contract::derive_contract;
pub use exec::CompiledKernel;
pub use ir::{Block, Expr, Ix, Program, Stmt};

/// Derives `variant`'s program from the single base description.
pub fn derive(variant: Variant) -> Program {
    match variant {
        Variant::B => base::base(),
        Variant::P => rewrite::privatize_workspace(&base::base()),
        Variant::Rs => rewrite::restructure_specialize(&base::base()),
        Variant::Rsp => rewrite::privatize_scalars(&derive(Variant::Rs)),
        Variant::Rspr => rewrite::recombine(&derive(Variant::Rsp)),
    }
}
