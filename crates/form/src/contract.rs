//! The analysis backend: replays a derived program's instrumented event
//! stream on the canonical fixture and folds it into a
//! [`KernelContract`] — flop totals, per-region global traffic, workspace
//! discipline, and the register story. The derived contract must equal
//! the hand-maintained one in `alya_core::variant` field-for-field;
//! analyzer pass 10 enforces that on every audit, so the hand-maintained
//! table can never drift from what the form actually implies.

use alya_core::layout::{self, Layout};
use alya_core::{KernelContract, CONTRACT_F64_BUDGET};
use alya_machine::trace::TraceCounts;
use alya_machine::{Event, RegisterAllocator, Space};

use crate::exec::trace_generated;
use crate::fixture::Fixture;
use crate::ir::Program;

/// Derives the kernel contract implied by `prog`, by tracing one fixture
/// element under the GPU launch layout. The counts are structural (the
/// contract checker proves element invariance separately), so one element
/// suffices.
pub fn derive_contract(prog: &Program) -> KernelContract {
    let fx = Fixture::new();
    let input = fx.input();
    let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
    let rec = trace_generated(prog, &input, 0, &lay);
    contract_of_events(prog, &rec.events)
}

/// Folds one recorded event stream into a contract. The modelled layout
/// gives every logical array a disjoint address region, so each global
/// access classifies itself.
pub fn contract_of_events(prog: &Program, events: &[Event]) -> KernelContract {
    let counts = TraceCounts::from_events(events);
    let mut input_loads = 0u64;
    let mut rhs_loads = 0u64;
    let mut rhs_stores = 0u64;
    let mut ws_loads = 0u64;
    let mut ws_stores = 0u64;
    for e in events {
        match *e {
            Event::GLoad(a) => {
                if a >= layout::WS_BASE {
                    ws_loads += 1;
                } else if (layout::RHS_BASE..layout::NUT_BASE).contains(&a) {
                    rhs_loads += 1;
                } else {
                    input_loads += 1;
                }
            }
            Event::GStore(a) => {
                if a >= layout::WS_BASE {
                    ws_stores += 1;
                } else if (layout::RHS_BASE..layout::NUT_BASE).contains(&a) {
                    rhs_stores += 1;
                } else {
                    panic!(
                        "{}: generated kernel stored into an input region",
                        prog.name
                    );
                }
            }
            _ => {}
        }
    }
    let (workspace_loads, workspace_stores) = match prog.space {
        Some(Space::Global) => {
            debug_assert_eq!(counts.local_loads + counts.local_stores, 0);
            (
                Some((Space::Global, ws_loads)),
                Some((Space::Global, ws_stores)),
            )
        }
        Some(Space::Local) => {
            debug_assert_eq!(ws_loads + ws_stores, 0);
            (
                Some((Space::Local, counts.local_loads)),
                Some((Space::Local, counts.local_stores)),
            )
        }
        None => {
            debug_assert_eq!(ws_loads + ws_stores, 0);
            debug_assert_eq!(counts.local_loads + counts.local_stores, 0);
            (None, None)
        }
    };
    let uses_private_scalars = counts.defs > 0;
    let (max_pressure, spills_at_contract_budget) = if uses_private_scalars {
        let unbounded = RegisterAllocator::new(4096).allocate(events);
        let budgeted = RegisterAllocator::new(CONTRACT_F64_BUDGET).allocate(events);
        (
            Some(unbounded.max_pressure),
            Some(budgeted.spilled_values > 0),
        )
    } else {
        (None, None)
    };
    KernelContract {
        flops: counts.flops(),
        input_loads,
        rhs_loads,
        rhs_stores,
        workspace_loads,
        workspace_stores,
        uses_private_scalars,
        max_pressure,
        spills_at_contract_budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive;
    use alya_core::Variant;

    #[test]
    fn derived_contracts_match_the_hand_maintained_table() {
        for v in Variant::ALL {
            let derived = derive_contract(&derive(v));
            assert_eq!(
                derived,
                v.contract(),
                "{}: derived contract diverges from alya_core::variant",
                v.name()
            );
        }
    }
}
