//! Trace determinism: the instrumented kernels are pure functions of
//! (variant, input, element, layout) — tracing the same element twice must
//! produce byte-identical event streams. The machine models and the
//! contract checker both replay traces and silently assume this; here it
//! is pinned for every variant, both layout conventions, and the pack
//! tracer.

use alya_analyze::Fixture;
use alya_core::drivers::{trace_element, trace_pack};
use alya_core::layout::Layout;
use alya_core::Variant;

#[test]
fn element_traces_are_deterministic_for_every_variant() {
    let fx = Fixture::new();
    let input = fx.input();
    let ne = fx.mesh.num_elements();
    let nn = fx.mesh.num_nodes();
    for variant in Variant::ALL {
        for e in [0, 7, ne - 1] {
            let lay = Layout::gpu(e, ne, nn);
            let a = trace_element(variant, &input, e, &lay);
            let b = trace_element(variant, &input, e, &lay);
            assert_eq!(
                a.events, b.events,
                "{variant} element {e}: GPU-layout trace not reproducible"
            );
            assert!(!a.events.is_empty());

            let lay = Layout::cpu(e, 16, nn);
            let a = trace_element(variant, &input, e, &lay);
            let b = trace_element(variant, &input, e, &lay);
            assert_eq!(
                a.events, b.events,
                "{variant} element {e}: CPU-layout trace not reproducible"
            );
        }
    }
}

#[test]
fn pack_traces_are_deterministic_for_every_variant() {
    let fx = Fixture::new();
    let input = fx.input();
    for variant in Variant::ALL {
        let a = trace_pack(variant, &input, 3);
        let b = trace_pack(variant, &input, 3);
        assert_eq!(a.events, b.events, "{variant}: pack trace not reproducible");
    }
}

#[test]
fn distinct_elements_trace_to_distinct_streams() {
    // Determinism is not degeneracy: different elements touch different
    // addresses, so their streams must differ (same counts, though).
    let fx = Fixture::new();
    let input = fx.input();
    let ne = fx.mesh.num_elements();
    let nn = fx.mesh.num_nodes();
    for variant in Variant::ALL {
        let a = trace_element(variant, &input, 0, &Layout::gpu(0, ne, nn));
        let b = trace_element(variant, &input, 1, &Layout::gpu(1, ne, nn));
        assert_ne!(a.events, b.events, "{variant}");
        assert_eq!(a.counts(), b.counts(), "{variant}");
    }
}
