//! Pass 2 — the scatter race detector.
//!
//! The parallel drivers in `alya-core::drivers` scatter elemental
//! contributions through raw pointers (`SharedRhs`), and each `unsafe`
//! site rests on one statically provable invariant:
//!
//! * **colored scatter** — *no two elements of one color class share a
//!   node*, so concurrently processed elements write disjoint RHS slots.
//!   Proven by a per-node stamp sweep
//!   ([`alya_mesh::Coloring::find_conflict`]) — O(4·ne), independent of
//!   the element adjacency graph, so it also catches bugs *in* the graph
//!   construction that a graph-level properness check would inherit.
//! * **sharded interior writeback** — a node classified *interior* to a
//!   shard is touched by no element of any other shard, so plain
//!   unsynchronized stores from concurrent shards never alias. Proven by
//!   [`alya_mesh::ShardSet::validate`], which additionally proves the
//!   compact local↔global maps are mutually consistent and every element
//!   belongs to exactly one shard.

use alya_mesh::{Coloring, ColoringConflict, Partition, ShardSet, TetMesh};

/// Outcome of the race check for one mesh/coloring pair.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Elements checked.
    pub num_elements: usize,
    /// Color classes checked.
    pub num_colors: usize,
    /// The first conflict found, if any: two same-color elements sharing a
    /// node — a data race in the colored scatter.
    pub conflict: Option<ColoringConflict>,
}

impl RaceReport {
    /// Whether the coloring is safe to scatter in parallel.
    pub fn is_race_free(&self) -> bool {
        self.conflict.is_none()
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.conflict {
            None => write!(
                f,
                "race-free: {} elements in {} color classes, no shared node within any class",
                self.num_elements, self.num_colors
            ),
            Some(c) => write!(f, "RACE: {c}"),
        }
    }
}

/// Checks one coloring of one mesh.
pub fn check_coloring(mesh: &TetMesh, coloring: &Coloring) -> RaceReport {
    RaceReport {
        num_elements: mesh.num_elements(),
        num_colors: coloring.num_colors(),
        conflict: coloring.find_conflict(mesh),
    }
}

/// Builds the production greedy coloring for `mesh` (the one
/// `ParallelStrategy::colored` uses) and checks it.
pub fn check_mesh(mesh: &TetMesh) -> RaceReport {
    use alya_mesh::adjacency::{ElementGraph, NodeToElements};
    let n2e = NodeToElements::build(mesh);
    let graph = ElementGraph::build(mesh, &n2e);
    check_coloring(mesh, &Coloring::greedy(&graph))
}

/// Outcome of the sharded-scatter invariant check for one mesh/shard-set
/// pair.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shards checked.
    pub num_shards: usize,
    /// Elements covered.
    pub num_elements: usize,
    /// Boundary-node slots entering the cross-shard reduction.
    pub boundary_slots: usize,
    /// The first violated invariant, if any — aliasing interior writes or
    /// inconsistent compact maps, a data race or corruption in the sharded
    /// scatter.
    pub violation: Option<String>,
}

impl ShardReport {
    /// Whether the shard set is safe for unsynchronized interior writeback.
    pub fn is_valid(&self) -> bool {
        self.violation.is_none()
    }
}

impl std::fmt::Display for ShardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.violation {
            None => write!(
                f,
                "shard-safe: {} elements in {} shards, {} boundary slots reduced, interior writes exclusive",
                self.num_elements, self.num_shards, self.boundary_slots
            ),
            Some(v) => write!(f, "SHARD VIOLATION: {v}"),
        }
    }
}

/// Checks one shard set against one mesh.
pub fn check_shard_set(mesh: &TetMesh, set: &ShardSet) -> ShardReport {
    ShardReport {
        num_shards: set.num_shards(),
        num_elements: mesh.num_elements(),
        boundary_slots: set.total_boundary_slots(),
        violation: set.validate(mesh).err(),
    }
}

/// Builds the production shard set for `mesh` with `shards` parts (the one
/// `ParallelStrategy::sharded` uses) and checks it.
pub fn check_mesh_shards(mesh: &TetMesh, shards: usize) -> ShardReport {
    let partition = Partition::rcb(mesh, shards);
    check_shard_set(mesh, &ShardSet::build(mesh, &partition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_mesh::{BoxMeshBuilder, Rng64};

    #[test]
    fn greedy_colorings_of_random_meshes_are_race_free() {
        let mut rng = Rng64::new(0x4ACE01);
        for _ in 0..12 {
            let nx = rng.range_usize(1, 6);
            let ny = rng.range_usize(1, 5);
            let nz = rng.range_usize(1, 5);
            let jitter = rng.range_f64(0.0, 0.25);
            let seed = rng.next_u64() % 1000;
            let mesh = BoxMeshBuilder::new(nx, ny, nz)
                .jitter(jitter)
                .seed(seed)
                .build();
            let report = check_mesh(&mesh);
            assert!(report.is_race_free(), "{report}");
            assert_eq!(report.num_elements, mesh.num_elements());
        }
    }

    #[test]
    fn corrupted_coloring_is_rejected_with_a_witness() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        let report = check_mesh(&mesh);
        assert!(report.is_race_free());
        // Merge every class into one: neighbours now collide.
        let all_one = Coloring::from_color_assignment(vec![0; mesh.num_elements()]);
        let bad = check_coloring(&mesh, &all_one);
        assert!(!bad.is_race_free());
        let c = bad.conflict.unwrap();
        // The witness is genuine: both elements really contain the node.
        let conn = mesh.connectivity();
        assert!(conn[c.first as usize].contains(&c.node));
        assert!(conn[c.second as usize].contains(&c.node));
        assert_eq!(c.color, 0);
    }

    #[test]
    fn production_shard_sets_are_valid_and_mismatches_are_caught() {
        let mesh = BoxMeshBuilder::new(4, 3, 3).jitter(0.1).seed(5).build();
        for shards in [1, 2, 8] {
            let report = check_mesh_shards(&mesh, shards);
            assert!(report.is_valid(), "{report}");
            assert_eq!(report.num_shards, shards);
            assert_eq!(report.num_elements, mesh.num_elements());
        }
        // A shard set validated against the wrong mesh must be rejected.
        let set = ShardSet::build(&mesh, &Partition::rcb(&mesh, 4));
        let other = BoxMeshBuilder::new(2, 2, 2).build();
        let bad = check_shard_set(&other, &set);
        assert!(!bad.is_valid());
        assert!(bad.to_string().contains("SHARD VIOLATION"));
    }

    #[test]
    fn single_element_swap_is_caught() {
        let mut rng = Rng64::new(0x4ACE02);
        for _ in 0..8 {
            let seed = rng.next_u64() % 100;
            let mesh = BoxMeshBuilder::new(3, 2, 3).jitter(0.1).seed(seed).build();
            use alya_mesh::adjacency::{ElementGraph, NodeToElements};
            let n2e = NodeToElements::build(&mesh);
            let graph = ElementGraph::build(&mesh, &n2e);
            let good = Coloring::greedy(&graph);
            // Move one element into a neighbour's class.
            let mut color_of: Vec<u32> =
                (0..mesh.num_elements()).map(|e| good.color_of(e)).collect();
            let victim = rng.range_usize(0, mesh.num_elements());
            let neighbour = graph.neighbors_of(victim)[0] as usize;
            color_of[victim] = color_of[neighbour];
            let bad = Coloring::from_color_assignment(color_of);
            let report = check_coloring(&mesh, &bad);
            assert!(
                !report.is_race_free(),
                "swap of element {victim} undetected"
            );
        }
    }
}
