//! Pass 2 — the scatter race detector.
//!
//! The colored parallel driver in `alya-core::drivers` scatters elemental
//! contributions through raw pointers (`SharedRhs`), and its `unsafe impl
//! Send/Sync` rests on exactly one invariant: **no two elements of one
//! color class share a node**, so concurrently processed elements write
//! disjoint RHS slots. This pass proves that invariant statically for a
//! given mesh + coloring by a per-node stamp sweep
//! ([`alya_mesh::Coloring::find_conflict`]) — O(4·ne), independent of the
//! element adjacency graph, so it also catches bugs *in* the graph
//! construction that a graph-level properness check would inherit.

use alya_mesh::{Coloring, ColoringConflict, TetMesh};

/// Outcome of the race check for one mesh/coloring pair.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// Elements checked.
    pub num_elements: usize,
    /// Color classes checked.
    pub num_colors: usize,
    /// The first conflict found, if any: two same-color elements sharing a
    /// node — a data race in the colored scatter.
    pub conflict: Option<ColoringConflict>,
}

impl RaceReport {
    /// Whether the coloring is safe to scatter in parallel.
    pub fn is_race_free(&self) -> bool {
        self.conflict.is_none()
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.conflict {
            None => write!(
                f,
                "race-free: {} elements in {} color classes, no shared node within any class",
                self.num_elements, self.num_colors
            ),
            Some(c) => write!(f, "RACE: {c}"),
        }
    }
}

/// Checks one coloring of one mesh.
pub fn check_coloring(mesh: &TetMesh, coloring: &Coloring) -> RaceReport {
    RaceReport {
        num_elements: mesh.num_elements(),
        num_colors: coloring.num_colors(),
        conflict: coloring.find_conflict(mesh),
    }
}

/// Builds the production greedy coloring for `mesh` (the one
/// `ParallelStrategy::colored` uses) and checks it.
pub fn check_mesh(mesh: &TetMesh) -> RaceReport {
    use alya_mesh::adjacency::{ElementGraph, NodeToElements};
    let n2e = NodeToElements::build(mesh);
    let graph = ElementGraph::build(mesh, &n2e);
    check_coloring(mesh, &Coloring::greedy(&graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_mesh::{BoxMeshBuilder, Rng64};

    #[test]
    fn greedy_colorings_of_random_meshes_are_race_free() {
        let mut rng = Rng64::new(0x4ACE01);
        for _ in 0..12 {
            let nx = rng.range_usize(1, 6);
            let ny = rng.range_usize(1, 5);
            let nz = rng.range_usize(1, 5);
            let jitter = rng.range_f64(0.0, 0.25);
            let seed = rng.next_u64() % 1000;
            let mesh = BoxMeshBuilder::new(nx, ny, nz)
                .jitter(jitter)
                .seed(seed)
                .build();
            let report = check_mesh(&mesh);
            assert!(report.is_race_free(), "{report}");
            assert_eq!(report.num_elements, mesh.num_elements());
        }
    }

    #[test]
    fn corrupted_coloring_is_rejected_with_a_witness() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        let report = check_mesh(&mesh);
        assert!(report.is_race_free());
        // Merge every class into one: neighbours now collide.
        let all_one = Coloring::from_color_assignment(vec![0; mesh.num_elements()]);
        let bad = check_coloring(&mesh, &all_one);
        assert!(!bad.is_race_free());
        let c = bad.conflict.unwrap();
        // The witness is genuine: both elements really contain the node.
        let conn = mesh.connectivity();
        assert!(conn[c.first as usize].contains(&c.node));
        assert!(conn[c.second as usize].contains(&c.node));
        assert_eq!(c.color, 0);
    }

    #[test]
    fn single_element_swap_is_caught() {
        let mut rng = Rng64::new(0x4ACE02);
        for _ in 0..8 {
            let seed = rng.next_u64() % 100;
            let mesh = BoxMeshBuilder::new(3, 2, 3).jitter(0.1).seed(seed).build();
            use alya_mesh::adjacency::{ElementGraph, NodeToElements};
            let n2e = NodeToElements::build(&mesh);
            let graph = ElementGraph::build(&mesh, &n2e);
            let good = Coloring::greedy(&graph);
            // Move one element into a neighbour's class.
            let mut color_of: Vec<u32> =
                (0..mesh.num_elements()).map(|e| good.color_of(e)).collect();
            let victim = rng.range_usize(0, mesh.num_elements());
            let neighbour = graph.neighbors_of(victim)[0] as usize;
            color_of[victim] = color_of[neighbour];
            let bad = Coloring::from_color_assignment(color_of);
            let report = check_coloring(&mesh, &bad);
            assert!(
                !report.is_race_free(),
                "swap of element {victim} undetected"
            );
        }
    }
}
