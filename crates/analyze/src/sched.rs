//! Pass 5 — the schedule contract checker.
//!
//! The distributed driver's overlap pipeline is only admissible if the
//! scheduling cannot change the answer. This pass replays the
//! [`SchedTrace`] every rank records and holds it against the contract:
//!
//! * **single enqueue** — every stage is enqueued, started and retired
//!   exactly once, in that order; no stage runs twice or is skipped;
//! * **dependency order** — a stage is never enqueued before every one
//!   of its declared dependencies has retired;
//! * **buffer discipline** — each buffer is published exactly once, by
//!   its declared producer, and every read of it lands after the
//!   publish (no stage consumes a half-built accumulator);
//! * **deterministic combine** — the `combine` notes (one per incoming
//!   halo message, in fold order) are exactly the exchange plan's
//!   `recv_peers`, ascending: overlap may reorder *arrival*, never the
//!   sender-ordered *combine*;
//! * **full exchange** — the drain stage's `recv` notes cover every
//!   expected peer, and the post stage's `posted` note matches the
//!   plan's send count — nothing withheld, nothing extra.
//!
//! Structural checks ([`check_trace`]) apply to any pipeline; the
//! plan-aware checks ([`check_run`]) bind rank `r`'s trace to the
//! [`ExchangePlan`]. [`check_distributed_schedule`] runs a live
//! assembly and audits all of its traces.

use alya_core::{AssemblyInput, DistributedDriver, Variant};
use alya_mesh::ExchangePlan;
use alya_sched::{SchedEvent, SchedTrace};

/// Outcome of checking the schedule traces of one distributed assembly.
#[derive(Debug, Clone)]
pub struct SchedContractReport {
    /// Ranks whose traces were checked.
    pub num_ranks: usize,
    /// Whether the run used compute/exchange overlap.
    pub overlap: bool,
    /// Stages checked across all ranks.
    pub stages_checked: usize,
    /// Events replayed across all ranks.
    pub events_checked: usize,
    /// Every contract breach found (empty when clean).
    pub violations: Vec<String>,
}

impl SchedContractReport {
    /// Whether every trace honored the schedule contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for SchedContractReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "sched-clean: {} rank pipeline(s) (overlap {}), {} stages / {} events on contract",
                self.num_ranks,
                if self.overlap { "on" } else { "off" },
                self.stages_checked,
                self.events_checked
            )
        } else {
            write!(f, "SCHED VIOLATION: {}", self.violations.join("; "))
        }
    }
}

/// Index of the single event matching `pred`, with multiplicity errors
/// reported into `violations` under `what`.
fn single_event(
    trace: &SchedTrace,
    what: &str,
    violations: &mut Vec<String>,
    pred: impl Fn(&SchedEvent) -> bool,
) -> Option<usize> {
    let mut found = None;
    for (i, e) in trace.events.iter().enumerate() {
        if pred(e) {
            if found.is_some() {
                violations.push(format!("{}: duplicate {what}", trace.pipeline));
                return found;
            }
            found = Some(i);
        }
    }
    if found.is_none() {
        violations.push(format!("{}: missing {what}", trace.pipeline));
    }
    found
}

/// Structural schedule checks on one trace (no plan required). Returns
/// the violations found.
pub fn check_trace(trace: &SchedTrace) -> Vec<String> {
    let mut violations = Vec::new();
    let ns = trace.stages.len() as u32;
    let nb = trace.buffers.len() as u32;

    for e in &trace.events {
        if e.stage() >= ns {
            violations.push(format!(
                "{}: event references unknown stage {}",
                trace.pipeline,
                e.stage()
            ));
        }
        if let SchedEvent::BufPublish { buf, .. } | SchedEvent::BufRead { buf, .. } = e {
            if *buf >= nb {
                violations.push(format!(
                    "{}: event references unknown buffer {buf}",
                    trace.pipeline
                ));
            }
        }
    }

    // Single enqueue/start/retire per stage, ordered, after deps retired.
    let mut retire_at = vec![usize::MAX; trace.stages.len()];
    for (s, meta) in trace.stages.iter().enumerate() {
        let s = s as u32;
        let name = meta.name;
        let enq = single_event(
            trace,
            &format!("enqueue of '{name}'"),
            &mut violations,
            |e| matches!(e, SchedEvent::Enqueued { stage } if *stage == s),
        );
        let start = single_event(
            trace,
            &format!("start of '{name}'"),
            &mut violations,
            |e| matches!(e, SchedEvent::Started { stage } if *stage == s),
        );
        let ret = single_event(
            trace,
            &format!("retire of '{name}'"),
            &mut violations,
            |e| matches!(e, SchedEvent::Retired { stage } if *stage == s),
        );
        if let (Some(enq), Some(start), Some(ret)) = (enq, start, ret) {
            if !(enq < start && start < ret) {
                violations.push(format!(
                    "{}: stage '{name}' not enqueued→started→retired in order",
                    trace.pipeline
                ));
            }
            retire_at[s as usize] = ret;
        }
    }
    for (s, meta) in trace.stages.iter().enumerate() {
        let enq = trace
            .events
            .iter()
            .position(|e| matches!(e, SchedEvent::Enqueued { stage } if *stage == s as u32));
        let Some(enq) = enq else { continue };
        for &d in &meta.deps {
            let ret_d = retire_at.get(d as usize).copied().unwrap_or(usize::MAX);
            if ret_d == usize::MAX || ret_d > enq {
                violations.push(format!(
                    "{}: stage '{}' enqueued before its dependency '{}' retired",
                    trace.pipeline,
                    meta.name,
                    trace.stages.get(d as usize).map_or("<unknown>", |m| m.name)
                ));
            }
        }
    }

    // Buffer discipline: one publish, by the declared producer, before
    // every read.
    for (b, meta) in trace.buffers.iter().enumerate() {
        let b = b as u32;
        let publish = single_event(
            trace,
            &format!("publish of buffer '{}'", meta.name),
            &mut violations,
            |e| matches!(e, SchedEvent::BufPublish { buf, .. } if *buf == b),
        );
        if let Some(p) = publish {
            if let SchedEvent::BufPublish { stage, .. } = &trace.events[p] {
                if *stage != meta.producer {
                    violations.push(format!(
                        "{}: buffer '{}' published by stage {stage}, declared producer is {}",
                        trace.pipeline, meta.name, meta.producer
                    ));
                }
            }
            for (i, e) in trace.events.iter().enumerate() {
                if let SchedEvent::BufRead { stage, buf } = e {
                    if *buf == b && i < p {
                        violations.push(format!(
                            "{}: stage {stage} read buffer '{}' before its producer retired",
                            trace.pipeline, meta.name
                        ));
                    }
                }
            }
        }
    }

    // The combine fold must walk senders in ascending order.
    let combines = trace.notes("combine");
    if !combines.windows(2).all(|w| w[0] < w[1]) {
        violations.push(format!(
            "{}: combine order is not ascending by sender rank: {combines:?}",
            trace.pipeline
        ));
    }
    violations
}

/// Checks every rank's trace of one distributed assembly against the
/// structural contract *and* the exchange plan: sender-ordered combine,
/// full drain coverage, and the planned number of posted messages.
pub fn check_run(plan: &ExchangePlan, traces: &[SchedTrace], overlap: bool) -> SchedContractReport {
    let mut violations = Vec::new();
    if traces.len() != plan.num_ranks() {
        violations.push(format!(
            "{} trace(s) for {} rank(s)",
            traces.len(),
            plan.num_ranks()
        ));
    }
    let expected_name = if overlap {
        "rank-overlap"
    } else {
        "rank-serial"
    };
    let mut stages_checked = 0;
    let mut events_checked = 0;
    for (r, trace) in traces.iter().enumerate() {
        stages_checked += trace.stages.len();
        events_checked += trace.events.len();
        for v in check_trace(trace) {
            violations.push(format!("rank {r}: {v}"));
        }
        if trace.pipeline != expected_name {
            violations.push(format!(
                "rank {r}: pipeline '{}' does not match the requested overlap mode ('{expected_name}')",
                trace.pipeline
            ));
        }
        if r >= plan.num_ranks() {
            continue;
        }
        let exch = plan.rank(r);
        let expected: Vec<u64> = exch.recv_peers.iter().map(|&p| u64::from(p)).collect();
        let combines = trace.notes("combine");
        if combines != expected {
            violations.push(format!(
                "rank {r}: combined {combines:?}, plan expects senders {expected:?} — \
                 overlap reordered the deterministic combine"
            ));
        }
        let mut recvs = trace.notes("recv");
        recvs.sort_unstable();
        if recvs != expected {
            violations.push(format!(
                "rank {r}: drained messages from {recvs:?}, plan expects {expected:?}"
            ));
        }
        let posted = trace.notes("posted");
        if posted != vec![exch.sends.len() as u64] {
            violations.push(format!(
                "rank {r}: posted {posted:?} message batch(es), plan schedules {}",
                exch.sends.len()
            ));
        }
    }
    SchedContractReport {
        num_ranks: traces.len(),
        overlap,
        stages_checked,
        events_checked,
        violations,
    }
}

/// Runs one live distributed assembly of `input` at `ranks` ranks (with
/// the requested overlap mode) and audits every rank's schedule trace.
/// Returns the traces too so self-tests can mutate them and re-check.
pub fn check_distributed_schedule(
    input: &AssemblyInput,
    ranks: usize,
    overlap: bool,
) -> (SchedContractReport, DistributedDriver, Vec<SchedTrace>) {
    let driver = DistributedDriver::new(input.mesh, ranks).overlap(overlap);
    let traces = match driver.assemble_sched(Variant::Rsp, input, None) {
        Ok((_, _, traces)) => traces,
        Err(stall) => {
            return (
                SchedContractReport {
                    num_ranks: ranks,
                    overlap,
                    stages_checked: 0,
                    events_checked: 0,
                    violations: vec![format!("assembly stalled: {stall}")],
                },
                driver,
                Vec::new(),
            )
        }
    };
    let report = check_run(driver.exchange_plan(), &traces, overlap);
    (report, driver, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fixture;

    #[test]
    fn live_schedules_honor_the_contract_in_both_overlap_modes() {
        let fx = Fixture::new();
        let input = fx.input();
        for overlap in [true, false] {
            for ranks in [1, 4, 8] {
                let (report, _, traces) = check_distributed_schedule(&input, ranks, overlap);
                assert!(report.is_clean(), "{report}");
                assert_eq!(report.num_ranks, ranks);
                assert_eq!(traces.len(), ranks);
                assert_eq!(report.stages_checked, 5 * ranks);
            }
        }
    }

    #[test]
    fn reordered_combine_and_early_read_are_flagged() {
        let fx = Fixture::new();
        let input = fx.input();
        let (clean, driver, mut traces) = check_distributed_schedule(&input, 4, true);
        assert!(clean.is_clean(), "{clean}");
        // Swap the first rank-with-two-peers' combine notes: a combine
        // that folds arrival-order instead of sender-order looks exactly
        // like this.
        let victim = traces
            .iter_mut()
            .find(|t| t.notes("combine").len() >= 2)
            .expect("a 4-rank decomposition has a rank with 2+ peers");
        let mut idx = Vec::new();
        for (i, e) in victim.events.iter().enumerate() {
            if matches!(e, SchedEvent::Note { tag: "combine", .. }) {
                idx.push(i);
            }
        }
        victim.events.swap(idx[0], idx[1]);
        let bad = check_run(driver.exchange_plan(), &traces, true);
        assert!(
            bad.violations.iter().any(|v| v.contains("combine")),
            "{bad}"
        );

        // And an early buffer read (before its producer retired) breaks
        // the structural contract.
        let (_, _, mut traces) = check_distributed_schedule(&input, 4, true);
        let t = &mut traces[0];
        let read = t
            .events
            .iter()
            .position(|e| matches!(e, SchedEvent::BufRead { .. }))
            .expect("combine reads buffers");
        let ev = t.events.remove(read);
        t.events.insert(0, ev);
        let bad = check_run(driver.exchange_plan(), &traces, true);
        assert!(
            bad.violations
                .iter()
                .any(|v| v.contains("before its producer retired")),
            "{bad}"
        );
    }

    #[test]
    fn duplicate_enqueue_and_missing_retire_are_flagged() {
        let fx = Fixture::new();
        let input = fx.input();
        let (_, _, mut traces) = check_distributed_schedule(&input, 2, true);
        let t = &mut traces[0];
        // Re-enqueueing a retired stage is the classic double-run bug.
        t.events.push(SchedEvent::Enqueued { stage: 0 });
        let v = check_trace(t);
        assert!(v.iter().any(|s| s.contains("duplicate enqueue")), "{v:?}");

        let (_, _, mut traces) = check_distributed_schedule(&input, 2, true);
        let t = &mut traces[1];
        let ret = t
            .events
            .iter()
            .position(|e| matches!(e, SchedEvent::Retired { stage: 0 }))
            .unwrap();
        t.events.remove(ret);
        let v = check_trace(t);
        assert!(v.iter().any(|s| s.contains("missing retire")), "{v:?}");
    }
}
