//! Pass 8 — the SIMD-contract (packed-vs-scalar) checker.
//!
//! The lane-packed execution path ([`alya_core::kernels::packed`]) exists
//! for one reason: cross-element SIMD must actually be faster than the
//! scalar path, and by roughly the amount the CPU machine model predicts
//! from the instruction mix. This pass holds the committed
//! `BENCH_drivers.json` measurements against both claims:
//!
//! * **monotonicity** — for every variant with a measured
//!   `serial-packed` row at one thread, the packed throughput must beat
//!   the scalar `serial` row. A packed path slower than scalar is a
//!   regression no matter what the model says;
//! * **model agreement** — the measured packed/scalar speedup must land
//!   within a generous band of [`alya_machine::cpu::CpuModel::packed_speedup`]'s
//!   prediction for the same variant at [`alya_core::DEFAULT_LANES`]
//!   lanes. The model is an issue/port/transfer bound, not a cycle
//!   simulator, so the band ([`AGREEMENT_MIN`]..[`AGREEMENT_MAX`] of
//!   predicted) is wide — but a packed path that collapses to scalar
//!   speed, or a model that drifts away from what the code does, both
//!   fall out of it.
//!
//! Like the source passes, this one is workspace-gated: no workspace root
//! or no committed bench report means the pass reports clean-skipped (an
//! installed binary cannot audit a file it does not have). A present
//! report with no packed rows is a violation — the repo commits packed
//! measurements, so their absence is a stale or regressed bench.

use std::path::Path;

use alya_core::drivers::{trace_element, ThroughputDb, CPU_VECTOR_DIM};
use alya_core::kernels::packed::pack_supported;
use alya_core::layout::Layout;
use alya_core::{AssemblyInput, Variant, DEFAULT_LANES};
use alya_machine::cpu::CpuModel;
use alya_machine::spec::CpuSpec;
use alya_machine::RegisterAllocator;

use crate::Fixture;

/// Lower bound of measured/predicted packed speedup. The model charges
/// every instruction to the issue/port bound; real scalar code already
/// enjoys out-of-order overlap the model does not credit, so measured
/// speedups sit well below the idealized prediction.
pub const AGREEMENT_MIN: f64 = 0.10;

/// Upper bound of measured/predicted packed speedup: measuring *more*
/// than the model's idealized lane division means the measurement or the
/// model is broken.
pub const AGREEMENT_MAX: f64 = 1.50;

/// f64 private values an AVX-512 core keeps vector-register-resident when
/// lowering RSP/RSPR traces (mirrors the bench profiler's budget).
const CPU_PRIVATE_F64_BUDGET: u32 = 24;

/// One checked packed-vs-scalar cell of the bench report.
#[derive(Debug, Clone)]
pub struct SimdCell {
    /// The kernel variant.
    pub variant: Variant,
    /// Measured scalar `serial` Melem/s at one thread.
    pub scalar_melem: f64,
    /// Measured `serial-packed` Melem/s at one thread.
    pub packed_melem: f64,
    /// `packed_melem / scalar_melem`.
    pub measured_speedup: f64,
    /// The CPU model's predicted packed speedup at [`DEFAULT_LANES`].
    pub predicted_speedup: f64,
}

impl SimdCell {
    /// measured / predicted — the number the agreement band constrains.
    pub fn agreement(&self) -> f64 {
        self.measured_speedup / self.predicted_speedup
    }
}

/// Outcome of checking a bench report against the SIMD contract.
#[derive(Debug, Clone, Default)]
pub struct SimdContractReport {
    /// Whether the pass ran at all (false: no root / no bench report).
    pub checked: bool,
    /// Every packed-vs-scalar cell the report carried.
    pub cells: Vec<SimdCell>,
    /// Every contract breach found (empty when clean).
    pub violations: Vec<String>,
}

impl SimdContractReport {
    /// Whether the measurements honored the SIMD contract (a skipped pass
    /// is vacuously clean, like the workspace-gated source passes).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for SimdContractReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.checked {
            return write!(f, "simd-skipped: no committed bench report to audit");
        }
        if self.is_clean() {
            write!(f, "simd-clean:")?;
            for c in &self.cells {
                write!(
                    f,
                    " {} packed ×{:.2} measured vs ×{:.2} modeled ({:.0}%);",
                    c.variant,
                    c.measured_speedup,
                    c.predicted_speedup,
                    100.0 * c.agreement()
                )?;
            }
            Ok(())
        } else {
            write!(f, "SIMD VIOLATION: {}", self.violations.join("; "))
        }
    }
}

/// Lowered CPU pack trace of `variant` (mirrors the bench profiler:
/// `CPU_VECTOR_DIM` lanes, RSP/RSPR spilled against the AVX-512 budget).
fn pack_trace(variant: Variant, input: &AssemblyInput, pack: usize) -> Vec<alya_machine::Event> {
    let ne = input.mesh.num_elements();
    let nn = input.mesh.num_nodes();
    let alloc = RegisterAllocator::new(CPU_PRIVATE_F64_BUDGET);
    let mut out = Vec::new();
    for lane in 0..CPU_VECTOR_DIM {
        let e = (pack * CPU_VECTOR_DIM + lane) % ne;
        let lay = Layout::cpu(e, CPU_VECTOR_DIM, nn);
        let rec = trace_element(variant, input, e, &lay);
        match variant {
            Variant::Rsp | Variant::Rspr => out.extend(alloc.allocate(&rec.events).events),
            _ => out.extend(rec.events),
        }
    }
    out
}

/// The CPU model's predicted packed speedup for every pack-supported
/// variant, traced on `input` and evaluated at [`DEFAULT_LANES`] lanes.
pub fn predicted_speedups(input: &AssemblyInput) -> Vec<(Variant, f64)> {
    let mut model = CpuModel::new(CpuSpec::icelake_8360y());
    model.sample_packs = 8;
    Variant::ALL
        .into_iter()
        .filter(|&v| pack_supported(v))
        .map(|v| {
            let report = model.execute(v.name(), input.mesh.num_elements(), CPU_VECTOR_DIM, |p| {
                pack_trace(v, input, p)
            });
            (v, model.packed_speedup(&report, DEFAULT_LANES))
        })
        .collect()
}

/// Predictions on the canonical audit fixture — what the workspace check
/// and the seeded-violation audit both evaluate against.
pub fn fixture_predictions() -> Vec<(Variant, f64)> {
    let fx = Fixture::new();
    predicted_speedups(&fx.input())
}

/// Checks a parsed bench report against `predictions`. Pure — the seeded
/// audit mode skews a report and re-runs this to prove the checker
/// catches divergence.
pub fn check_db(db: &ThroughputDb, predictions: &[(Variant, f64)]) -> SimdContractReport {
    let mut cells = Vec::new();
    let mut violations = Vec::new();
    for &(variant, predicted) in predictions {
        let name = variant.name();
        let (Some(scalar), Some(packed)) = (
            db.melem_per_s("serial", name, 1),
            db.melem_per_s("serial-packed", name, 1),
        ) else {
            continue;
        };
        let cell = SimdCell {
            variant,
            scalar_melem: scalar,
            packed_melem: packed,
            measured_speedup: packed / scalar,
            predicted_speedup: predicted,
        };
        if cell.measured_speedup <= 1.0 {
            violations.push(format!(
                "{variant}: packed serial path measured no faster than scalar \
                 ({packed:.2} vs {scalar:.2} Melem/s) — the lane-packed path regressed"
            ));
        }
        let agreement = cell.agreement();
        if !(AGREEMENT_MIN..=AGREEMENT_MAX).contains(&agreement) {
            violations.push(format!(
                "{variant}: measured packed speedup ×{:.2} is {:.0}% of the model's \
                 ×{:.2} prediction, outside the {:.0}%..{:.0}% agreement band — \
                 measurement and model have diverged",
                cell.measured_speedup,
                100.0 * agreement,
                predicted,
                100.0 * AGREEMENT_MIN,
                100.0 * AGREEMENT_MAX,
            ));
        }
        cells.push(cell);
    }
    if cells.is_empty() {
        violations.push(
            "BENCH_drivers.json carries no packed-vs-scalar serial pair at one thread — \
             the packed execution path is unmeasured"
                .into(),
        );
    }
    SimdContractReport {
        checked: true,
        cells,
        violations,
    }
}

/// Runs the pass against the workspace's committed `BENCH_drivers.json`.
/// `None`, or a root without the report, reports clean-skipped.
pub fn check_workspace_simd(workspace_root: Option<&Path>) -> SimdContractReport {
    let Some(root) = workspace_root else {
        return SimdContractReport::default();
    };
    let path = root.join("BENCH_drivers.json");
    if !path.is_file() {
        return SimdContractReport::default();
    }
    let Some(db) = ThroughputDb::load(&path) else {
        return SimdContractReport {
            checked: true,
            cells: Vec::new(),
            violations: vec![format!(
                "{} exists but holds no well-formed throughput rows",
                path.display()
            )],
        };
    };
    check_db(&db, &fixture_predictions())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(rows: &str) -> ThroughputDb {
        ThroughputDb::parse(rows).expect("well-formed rows")
    }

    #[test]
    fn predictions_are_superlinear_in_nothing_and_bounded_by_the_lanes() {
        let preds = fixture_predictions();
        // Exactly the pack-supported variants, each predicting a real
        // speedup in (1, DEFAULT_LANES].
        assert_eq!(preds.len(), 4);
        for (v, s) in preds {
            assert!(pack_supported(v));
            assert!(s > 1.0, "{v}: predicted {s}");
            assert!(s <= DEFAULT_LANES as f64 + 1e-9, "{v}: predicted {s}");
        }
    }

    #[test]
    fn a_healthy_report_is_clean_and_a_collapsed_packed_path_is_flagged() {
        let preds = vec![(Variant::Rsp, 4.0)];
        let healthy = db(r#"[
            {"strategy": "serial", "variant": "RSP", "threads": 1, "melem_per_s": 5.0},
            {"strategy": "serial-packed", "variant": "RSP", "threads": 1, "melem_per_s": 7.5}]"#);
        let report = check_db(&healthy, &preds);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.cells.len(), 1);
        assert!((report.cells[0].measured_speedup - 1.5).abs() < 1e-12);

        // Packed slower than scalar: both the monotonicity check and the
        // agreement band fire (0.8/4.0 = 20%, inside the band — so the
        // regression is caught by monotonicity alone).
        let collapsed = db(r#"[
            {"strategy": "serial", "variant": "RSP", "threads": 1, "melem_per_s": 5.0},
            {"strategy": "serial-packed", "variant": "RSP", "threads": 1, "melem_per_s": 4.0}]"#);
        let report = check_db(&collapsed, &preds);
        assert!(!report.is_clean());
        assert!(
            report.violations.iter().any(|v| v.contains("regressed")),
            "{report}"
        );
    }

    #[test]
    fn model_divergence_and_missing_pairs_are_flagged() {
        // Measured wildly above the model's prediction: agreement band.
        let preds = vec![(Variant::Rspr, 2.0)];
        let implausible = db(r#"[
            {"strategy": "serial", "variant": "RSPR", "threads": 1, "melem_per_s": 5.0},
            {"strategy": "serial-packed", "variant": "RSPR", "threads": 1, "melem_per_s": 50.0}]"#);
        let report = check_db(&implausible, &preds);
        assert!(!report.is_clean());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("agreement band")),
            "{report}"
        );

        // No packed rows at all: the path is unmeasured.
        let unmeasured = db(r#"[
            {"strategy": "serial", "variant": "RSPR", "threads": 1, "melem_per_s": 5.0}]"#);
        let report = check_db(&unmeasured, &preds);
        assert!(!report.is_clean());
        assert!(
            report.violations.iter().any(|v| v.contains("unmeasured")),
            "{report}"
        );
    }

    #[test]
    fn the_pass_is_workspace_gated() {
        let skipped = check_workspace_simd(None);
        assert!(!skipped.checked);
        assert!(skipped.is_clean());
        let missing = std::env::temp_dir().join("alya-simd-no-bench-3b71");
        std::fs::create_dir_all(&missing).unwrap();
        let skipped = check_workspace_simd(Some(&missing));
        assert!(!skipped.checked);
        assert!(skipped.is_clean());
        let _ = std::fs::remove_dir_all(&missing);
    }

    #[test]
    fn the_committed_bench_report_honors_the_simd_contract() {
        let root = crate::sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
        let report = check_workspace_simd(Some(&root));
        assert!(report.checked, "workspace bench report missing");
        assert!(report.is_clean(), "{report}");
        assert!(!report.cells.is_empty());
    }
}
