//! Pass 10 — the IR-derivation checker.
//!
//! `alya-form` describes the Navier-Stokes assembly *once* and derives
//! every variant — its executable Gauss loop and its contract — by
//! rewriting. This pass holds both backends to the handwritten truth:
//!
//! * **Executable parity**: per variant, the generated kernel's per-element
//!   event stream must equal the handwritten kernel's event-for-event
//!   (sampled elements, both addressing conventions), and a whole-mesh
//!   serial assembly through `KernelImpl::Generated` must be **bitwise**
//!   identical to the handwritten one.
//! * **Contract parity**: the contract derived from the generated kernel's
//!   trace must equal the hand-maintained [`alya_core::KernelContract`]
//!   field-for-field — so the table in `alya_core::variant` can never
//!   drift from what the form actually implies (and vice versa).
//!
//! The audit binary's `ir-contract-drift` seeded mode perturbs a derived
//! contract and feeds it back through [`check_derived_contract`] to prove
//! this pass actually bites.

use alya_core::drivers::{assemble_serial, assemble_serial_with, CPU_VECTOR_DIM};
use alya_core::layout::Layout;
use alya_core::{AssemblyInput, ExecMode, KernelContract, KernelImpl, Variant};
use alya_form::exec::trace_generated;
use alya_form::{derive, derive_contract, CompiledKernel};

use crate::contracts::Violation;

/// Result of the IR-derivation pass.
#[derive(Debug, Default)]
pub struct FormReport {
    /// Everything that diverged between derived and handwritten.
    pub violations: Vec<Violation>,
    /// Variants whose derivation was exercised (all of [`Variant::ALL`]).
    pub variants_checked: usize,
    /// Per-element event streams compared (variants × elements × layouts).
    pub streams_compared: usize,
}

impl FormReport {
    /// Whether the pass came back clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn fail(v: Variant, out: &mut Vec<Violation>, message: String) {
    out.push(Violation {
        variant: v.name(),
        message,
    });
}

/// Checks a derived contract field-for-field against the hand-maintained
/// one. Pure — the audit binary's seeded `ir-contract-drift` mode feeds a
/// perturbed derived contract through here.
pub fn check_derived_contract(variant: Variant, derived: &KernelContract) -> Vec<Violation> {
    let hand = variant.contract();
    let mut out = Vec::new();
    macro_rules! field {
        ($name:ident) => {
            if derived.$name != hand.$name {
                fail(
                    variant,
                    &mut out,
                    format!(
                        "derived contract drifted from alya_core::variant: {}: derived {:?}, hand-maintained {:?}",
                        stringify!($name),
                        derived.$name,
                        hand.$name
                    ),
                );
            }
        };
    }
    field!(flops);
    field!(input_loads);
    field!(rhs_loads);
    field!(rhs_stores);
    field!(workspace_loads);
    field!(workspace_stores);
    field!(uses_private_scalars);
    field!(max_pressure);
    field!(spills_at_contract_budget);
    out
}

/// Compares one generated event stream against the handwritten one,
/// reporting the first divergence with surrounding context.
fn check_stream_parity(
    variant: Variant,
    input: &AssemblyInput,
    e: usize,
    lay: &Layout,
    prog: &alya_form::Program,
    convention: &str,
    out: &mut Vec<Violation>,
) {
    let hand = alya_core::drivers::trace_element(variant, input, e, lay);
    let generated = trace_generated(prog, input, e, lay);
    let n = hand.events.len().min(generated.events.len());
    for i in 0..n {
        if hand.events[i] != generated.events[i] {
            fail(
                variant,
                out,
                format!(
                    "element {e} ({convention} layout): generated event stream diverges from handwritten at event {i}: handwritten {:?}, generated {:?}",
                    hand.events[i], generated.events[i]
                ),
            );
            return;
        }
    }
    if hand.events.len() != generated.events.len() {
        fail(
            variant,
            out,
            format!(
                "element {e} ({convention} layout): streams agree for {n} events, then lengths diverge: handwritten {}, generated {}",
                hand.events.len(),
                generated.events.len()
            ),
        );
    }
}

/// Runs the full pass on `input`: derivation, contract parity, stream
/// parity on sampled elements under both layouts, and whole-mesh bitwise
/// output parity for every variant.
pub fn check_form(input: &AssemblyInput) -> FormReport {
    let ne = input.mesh.num_elements();
    let nn = input.mesh.num_nodes();
    let elements = [0, ne / 3, ne - 1];
    let mut report = FormReport::default();
    for v in Variant::ALL {
        let prog = derive(v);
        report.variants_checked += 1;

        // Contract parity, field for field.
        let derived = derive_contract(&prog);
        report
            .violations
            .extend(check_derived_contract(v, &derived));

        // Event-stream parity under both addressing conventions.
        for &e in &elements {
            for (lay, convention) in [
                (Layout::gpu(e, ne, nn), "gpu"),
                (Layout::cpu(e, CPU_VECTOR_DIM, nn), "cpu"),
            ] {
                check_stream_parity(v, input, e, &lay, &prog, convention, &mut report.violations);
                report.streams_compared += 1;
            }
        }

        // Whole-mesh bitwise output parity through the driver entry point.
        let hand = assemble_serial(v, input);
        let kernel = CompiledKernel::new(prog);
        let generated =
            assemble_serial_with(KernelImpl::Generated(&kernel), input, ExecMode::Scalar);
        let mismatched = hand
            .as_slice()
            .iter()
            .zip(generated.as_slice().iter())
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        if mismatched != 0 {
            fail(
                v,
                &mut report.violations,
                format!(
                    "generated kernel output is not bitwise identical to handwritten: {mismatched} of {} RHS entries differ",
                    hand.as_slice().len()
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::Fixture;

    #[test]
    fn derivation_pass_is_clean_on_the_fixture() {
        let fx = Fixture::new();
        let report = check_form(&fx.input());
        assert!(report.is_clean(), "{report:#?}");
        assert_eq!(report.variants_checked, Variant::ALL.len());
        assert_eq!(report.streams_compared, Variant::ALL.len() * 3 * 2);
    }

    #[test]
    fn drifted_contract_is_caught_field_by_field() {
        let mut derived = derive_contract(&derive(Variant::Rspr));
        derived.flops += 1;
        derived.max_pressure = derived.max_pressure.map(|p| p + 3);
        let violations = check_derived_contract(Variant::Rspr, &derived);
        assert_eq!(violations.len(), 2, "{violations:#?}");
        assert!(violations.iter().all(|v| v.message.contains("drifted")));
        assert!(violations.iter().any(|v| v.message.contains("flops")));
        assert!(violations
            .iter()
            .any(|v| v.message.contains("max_pressure")));
    }

    #[test]
    fn matching_contract_passes() {
        for v in Variant::ALL {
            let derived = derive_contract(&derive(v));
            assert!(check_derived_contract(v, &derived).is_empty());
        }
    }
}
