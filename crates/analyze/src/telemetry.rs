//! Pass 6 — the telemetry contract checker.
//!
//! The telemetry layer is only trustworthy if it cannot silently drift
//! from the machinery it observes. This pass runs one distributed
//! assembly inside a telemetry session and holds the emitted report
//! against the same closed forms the other passes prove:
//!
//! * **counter totals** — every assembly counter equals its kernel
//!   contract's per-element amount × the elements assembled (the live
//!   Table-I profile shows zero deviation), and `ElementsAssembled`
//!   equals the mesh's element count;
//! * **comm counters** — halo bytes posted *and* received both equal the
//!   `ExchangePlan` closed-form budget, and the blocked-wait counter
//!   agrees with [`CommReport::blocked_wait_s`] — one measurement feeds
//!   both views, so any double-count shows up as a divergence here;
//! * **span tree** — every parent link resolves to a recorded span on
//!   the same thread whose interval encloses the child's;
//! * **timeline** — each rank's trace process carries all five pipeline
//!   stage spans, and (when the mesh is large enough to guarantee it)
//!   the `halo-drain` span overlaps the `assemble-overlap` span in time
//!   — the compute/exchange overlap, visible in the chrome export;
//! * **export** — the chrome `trace_event` JSON actually parses.

use alya_comm::CommReport;
use alya_core::metrics;
use alya_core::{AssemblyInput, DistributedDriver, Variant};
use alya_telemetry::export::validate_json;
use alya_telemetry::{Metric, Scope, SpanRecord, TelemetryReport};

/// The five per-rank pipeline stages of the distributed driver, in
/// creation order — pass 6 requires a span for each on every rank.
pub const PIPELINE_STAGES: [&str; 5] = [
    "assemble-pre",
    "halo-post",
    "assemble-overlap",
    "halo-drain",
    "combine",
];

/// What the checked run was supposed to produce — recomputed from the
/// driver and the mesh, never from the telemetry under test.
#[derive(Debug, Clone)]
pub struct TelemetryExpectation {
    /// Ranks that assembled.
    pub num_ranks: usize,
    /// The kernel variant the run used.
    pub variant: Variant,
    /// Elements the mesh holds (= elements the run must have tallied).
    pub elements: u64,
    /// Closed-form halo bytes per assembly.
    pub halo_bytes: u64,
    /// The run's [`CommReport::blocked_wait_s`], which the blocked-wait
    /// counter must reproduce.
    pub blocked_wait_s: f64,
    /// Whether to demand a time overlap between `halo-drain` and
    /// `assemble-overlap` spans. Overlap is structurally guaranteed only
    /// when each rank's interior exceeds one assembly chunk, so small
    /// fixtures check the stage spans exist without demanding the
    /// intersection.
    pub require_overlap_evidence: bool,
}

/// Outcome of checking one session's telemetry against the contracts.
#[derive(Debug, Clone)]
pub struct TelemetryContractReport {
    /// Ranks the expectation covered.
    pub num_ranks: usize,
    /// Elements the session tallied for the checked variant.
    pub observed_elements: u64,
    /// Largest |measured − predicted| across the Table-I profile.
    pub max_deviation: u64,
    /// Spans the session recorded.
    pub spans_checked: usize,
    /// Every contract breach found (empty when clean).
    pub violations: Vec<String>,
}

impl TelemetryContractReport {
    /// Whether the telemetry honored the contracts.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for TelemetryContractReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "telemetry-clean: {} rank(s) tallied {} element(s) at contract rates \
                 (0 deviation), {} span(s) nest and export",
                self.num_ranks, self.observed_elements, self.spans_checked
            )
        } else {
            write!(f, "TELEMETRY VIOLATION: {}", self.violations.join("; "))
        }
    }
}

/// Checks a finished session's report against `exp`. Pure — self-tests
/// tamper the report and re-run this to prove the checker catches skew.
pub fn check_report(
    report: &TelemetryReport,
    exp: &TelemetryExpectation,
) -> TelemetryContractReport {
    let mut violations = Vec::new();
    let sc = metrics::scope(exp.variant);

    // Counter totals vs. the closed-form contract rates.
    let observed_elements = report.counter(sc, Metric::ElementsAssembled);
    if observed_elements != exp.elements {
        violations.push(format!(
            "elements tallied for {} diverge: counter has {observed_elements}, \
             the mesh holds {}",
            exp.variant, exp.elements
        ));
    }
    let profile = metrics::table_one(report);
    let max_deviation = profile.max_abs_deviation();
    if !profile.is_exact() {
        for row in &profile.rows {
            for cell in &row.cells {
                if cell.deviation() != 0 {
                    violations.push(format!(
                        "{} {} diverges from the contract: measured {}, \
                         {} per element × {} elements predicts {}",
                        row.label,
                        cell.metric,
                        cell.measured,
                        cell.predicted / row.elements.max(1),
                        row.elements,
                        cell.predicted
                    ));
                }
            }
        }
    }

    // Comm byte counters vs. the exchange plan's halo budget.
    for (metric, what) in [
        (Metric::HaloBytesPosted, "posted"),
        (Metric::HaloBytesReceived, "received"),
    ] {
        let got = report.counter(Scope::GLOBAL, metric);
        if got != exp.halo_bytes {
            violations.push(format!(
                "halo bytes {what} diverge from the closed form: counter has {got}, \
                 the exchange plan budgets {}",
                exp.halo_bytes
            ));
        }
    }

    // Blocked-wait: the telemetry counter and the CommReport field are
    // fed by one chokepoint, so they must agree to rounding; any
    // double-count or missed wait breaks the equality.
    let counter_s = report.counter(Scope::GLOBAL, Metric::BlockedWaitNs) as f64 * 1e-9;
    if (counter_s - exp.blocked_wait_s).abs() > 1e-6 {
        violations.push(format!(
            "blocked-wait accounting diverges: counter has {counter_s:.9} s, \
             CommReport has {:.9} s — the single-chokepoint invariant is broken",
            exp.blocked_wait_s
        ));
    }

    // Span-tree nesting: every parent link resolves, same thread,
    // enclosing interval.
    for s in &report.spans {
        if s.end_ns < s.start_ns {
            violations.push(format!("span '{}' ends before it starts", s.name));
        }
        let Some(pid) = s.parent else {
            continue;
        };
        match report.spans.iter().find(|p| p.id == pid) {
            None => violations.push(format!(
                "span '{}' links to parent {pid}, which was never recorded",
                s.name
            )),
            Some(p) => {
                if (p.pid, p.tid) != (s.pid, s.tid) {
                    violations.push(format!(
                        "span '{}' and its parent '{}' live on different threads",
                        s.name, p.name
                    ));
                } else if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                    violations.push(format!(
                        "span '{}' is not enclosed by its parent '{}'",
                        s.name, p.name
                    ));
                }
            }
        }
    }

    // Timeline: all five stage spans on every rank's trace process, and
    // (when demanded) drain/compute overlap on at least one rank.
    for rank in 0..exp.num_ranks {
        let pid = rank as u32 + 1;
        for stage in PIPELINE_STAGES {
            if !report.spans.iter().any(|s| s.pid == pid && s.name == stage) {
                violations.push(format!("rank {rank} recorded no '{stage}' span"));
            }
        }
    }
    if exp.require_overlap_evidence {
        let overlapped = (0..exp.num_ranks).any(|rank| {
            let pid = rank as u32 + 1;
            let find = |name: &str| -> Option<&SpanRecord> {
                report.spans.iter().find(|s| s.pid == pid && s.name == name)
            };
            match (find("assemble-overlap"), find("halo-drain")) {
                (Some(a), Some(d)) => a.start_ns < d.end_ns && d.start_ns < a.end_ns,
                _ => false,
            }
        });
        if !overlapped {
            violations.push(
                "no rank's halo-drain span overlaps its assemble-overlap span — \
                 the pipeline ran back-to-back"
                    .into(),
            );
        }
    }

    // The chrome export must be well-formed JSON.
    if let Err(e) = validate_json(&report.chrome_trace()) {
        violations.push(format!("chrome-trace export does not parse: {e}"));
    }

    TelemetryContractReport {
        num_ranks: exp.num_ranks,
        observed_elements,
        max_deviation,
        spans_checked: report.spans.len(),
        violations,
    }
}

/// Runs one distributed assembly of `input` at `ranks` ranks inside a
/// telemetry session and checks the emitted telemetry against the closed
/// forms. Returns the expectation and the live report too, so self-tests
/// can tamper the report and re-check.
pub fn check_distributed_telemetry(
    input: &AssemblyInput,
    ranks: usize,
) -> (
    TelemetryContractReport,
    TelemetryExpectation,
    TelemetryReport,
) {
    let variant = Variant::Rsp;
    let driver = DistributedDriver::new(input.mesh, ranks);
    let session = alya_telemetry::session();
    let (_, comm) = driver.assemble(variant, input);
    let report = session.finish();
    let exp = expectation(&driver, variant, &comm, false);
    let checked = check_report(&report, &exp);
    (checked, exp, report)
}

/// Builds the expectation for a run of `driver` — closed forms only,
/// nothing read from the telemetry under test.
pub fn expectation(
    driver: &DistributedDriver,
    variant: Variant,
    comm: &CommReport,
    require_overlap_evidence: bool,
) -> TelemetryExpectation {
    TelemetryExpectation {
        num_ranks: driver.num_ranks(),
        variant,
        elements: driver
            .shard_set()
            .shards()
            .map(|s| s.elements().len() as u64)
            .sum(),
        halo_bytes: driver.expected_halo_bytes() as u64,
        blocked_wait_s: comm.blocked_wait_s,
        require_overlap_evidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fixture;
    use alya_telemetry::profile::TableOneProfile;

    #[test]
    fn live_session_on_the_fixture_honors_the_contracts() {
        let fx = Fixture::new();
        let input = fx.input();
        for ranks in [1, 4, 8] {
            let (report, exp, live) = check_distributed_telemetry(&input, ranks);
            assert!(report.is_clean(), "{ranks} ranks: {report}");
            assert_eq!(report.observed_elements, exp.elements);
            assert_eq!(report.max_deviation, 0);
            assert!(report.spans_checked > 0);
            // The profile the counters render is exact.
            let profile: TableOneProfile = metrics::table_one(&live);
            assert!(profile.is_exact(), "{profile}");
        }
    }

    #[test]
    fn a_skewed_counter_is_flagged() {
        let fx = Fixture::new();
        let input = fx.input();
        let (clean, exp, mut live) = check_distributed_telemetry(&input, 8);
        assert!(clean.is_clean(), "{clean}");
        // Shave one element's flops off the counter — the drift a missed
        // tally or a wrong contract rate would produce.
        let sc = metrics::scope(exp.variant);
        let flops = live.counter(sc, Metric::Flops);
        live.set_counter(sc, Metric::Flops, flops - exp.variant.contract().flops);
        let bad = check_report(&live, &exp);
        assert!(!bad.is_clean());
        assert!(bad.violations.iter().any(|v| v.contains("flops")), "{bad}");
        assert_eq!(bad.max_deviation, exp.variant.contract().flops);
    }

    #[test]
    fn a_forged_halo_counter_and_a_broken_span_tree_are_flagged() {
        let fx = Fixture::new();
        let input = fx.input();
        let (clean, exp, mut live) = check_distributed_telemetry(&input, 4);
        assert!(clean.is_clean(), "{clean}");
        live.set_counter(Scope::GLOBAL, Metric::HaloBytesPosted, exp.halo_bytes + 1);
        let bad = check_report(&live, &exp);
        assert!(bad.violations.iter().any(|v| v.contains("posted")), "{bad}");
        // Orphan a parent link: the span tree no longer resolves.
        live.set_counter(Scope::GLOBAL, Metric::HaloBytesPosted, exp.halo_bytes);
        let child = live
            .spans
            .iter_mut()
            .find(|s| s.parent.is_some())
            .expect("the rank pipeline records parented spans");
        child.parent = Some(u64::MAX);
        let bad = check_report(&live, &exp);
        assert!(
            bad.violations.iter().any(|v| v.contains("never recorded")),
            "{bad}"
        );
    }

    #[test]
    fn missing_stage_spans_and_blocked_wait_drift_are_flagged() {
        let fx = Fixture::new();
        let input = fx.input();
        let (clean, mut exp, mut live) = check_distributed_telemetry(&input, 2);
        assert!(clean.is_clean(), "{clean}");
        // A blocked-wait report the counter does not reproduce.
        exp.blocked_wait_s += 0.5;
        let bad = check_report(&live, &exp);
        assert!(
            bad.violations.iter().any(|v| v.contains("chokepoint")),
            "{bad}"
        );
        exp.blocked_wait_s -= 0.5;
        // Erase every combine span: the per-rank timeline is incomplete.
        live.spans.retain(|s| s.name != "combine");
        let bad = check_report(&live, &exp);
        assert!(
            bad.violations.iter().any(|v| v.contains("combine")),
            "{bad}"
        );
    }
}
