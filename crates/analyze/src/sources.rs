//! Pass 3 — source lint gating.
//!
//! Walks the workspace sources and enforces the unsafety and lint policy
//! mechanically:
//!
//! * every crate's `lib.rs` carries `#![forbid(unsafe_code)]` — except
//!   `alya-core`, which hosts the sanctioned unsafe sites (the
//!   `SharedRhs` scatter in `drivers.rs`, whose invariants the race
//!   detector and the shard validator prove);
//! * `alya-core` contains exactly the four sanctioned `unsafe` tokens
//!   (`unsafe impl Send`, `unsafe impl Sync`, the colored scatter block,
//!   the sharded interior-writeback block), all in `drivers.rs`, and no
//!   other crate contains any;
//! * the workspace `Cargo.toml` defines `[workspace.lints]` and every
//!   member opts in with `[lints] workspace = true`, so clippy gating in
//!   CI covers every crate.

use std::fs;
use std::path::{Path, PathBuf};

/// One policy breach found in the sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceViolation {
    /// Path (workspace-relative where possible) of the offending file.
    pub file: String,
    /// What the policy expected.
    pub message: String,
}

impl std::fmt::Display for SourceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.message)
    }
}

/// The only crate allowed to contain `unsafe`.
const UNSAFE_CRATE: &str = "core";
/// The only file within it allowed to contain `unsafe`.
const UNSAFE_FILE: &str = "drivers.rs";
/// Lines of code (comments excluded) in that file that may mention
/// `unsafe`: the two auto-trait impls, the colored scatter block, and the
/// sharded interior-writeback block.
const SANCTIONED_UNSAFE_LINES: usize = 4;

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root).unwrap_or(p).display().to_string()
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    out.sort();
}

/// Whether `code` contains the standalone token `unsafe` (word-bounded, so
/// `forbid(unsafe_code)` and identifiers like `unsafe_code_lines` don't
/// count).
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(i) = code[from..].find("unsafe") {
        let start = from + i;
        let end = start + "unsafe".len();
        let ok_before = start == 0 || !is_word(bytes[start - 1]);
        let ok_after = end == bytes.len() || !is_word(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = end;
    }
    false
}

/// Lines with an `unsafe` token outside of `//`-comments.
fn unsafe_code_lines(src: &str) -> usize {
    src.lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .filter(|code| has_unsafe_token(code))
        .count()
}

/// Runs the whole source audit over a workspace root.
pub fn check_workspace(root: &Path) -> Vec<SourceViolation> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");

    // Workspace-level lint table.
    match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(s) if s.contains("[workspace.lints.clippy]") || s.contains("[workspace.lints]") => {}
        Ok(_) => out.push(SourceViolation {
            file: "Cargo.toml".into(),
            message: "workspace manifest lacks a [workspace.lints] table".into(),
        }),
        Err(e) => out.push(SourceViolation {
            file: "Cargo.toml".into(),
            message: format!("unreadable workspace manifest: {e}"),
        }),
    }

    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return vec![SourceViolation {
            file: "crates/".into(),
            message: "workspace crates directory not found".into(),
        }];
    };
    let mut crate_dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in &crate_dirs {
        let name = dir
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();

        // Every member opts into the workspace lints.
        let manifest = dir.join("Cargo.toml");
        match fs::read_to_string(&manifest) {
            Ok(s) if s.contains("[lints]") && s.contains("workspace = true") => {}
            Ok(_) => out.push(SourceViolation {
                file: rel(root, &manifest),
                message: "crate does not opt into workspace lints ([lints] workspace = true)"
                    .into(),
            }),
            Err(e) => out.push(SourceViolation {
                file: rel(root, &manifest),
                message: format!("unreadable manifest: {e}"),
            }),
        }

        // forbid(unsafe_code) everywhere except the sanctioned crate.
        let lib = dir.join("src/lib.rs");
        let lib_src = fs::read_to_string(&lib).unwrap_or_default();
        if name == UNSAFE_CRATE {
            if lib_src.contains("#![forbid(unsafe_code)]") {
                out.push(SourceViolation {
                    file: rel(root, &lib),
                    message: "alya-core hosts the sanctioned unsafe scatter; forbid(unsafe_code) here cannot compile — remove it or move the unsafe code".into(),
                });
            }
        } else if !lib_src.contains("#![forbid(unsafe_code)]") {
            out.push(SourceViolation {
                file: rel(root, &lib),
                message: "missing #![forbid(unsafe_code)]".into(),
            });
        }

        // No unsafe tokens anywhere but the sanctioned file.
        let mut files = Vec::new();
        rust_files(&dir.join("src"), &mut files);
        rust_files(&dir.join("tests"), &mut files);
        rust_files(&dir.join("benches"), &mut files);
        rust_files(&dir.join("examples"), &mut files);
        for f in &files {
            // The scanner necessarily names the token it hunts; don't scan
            // this very file (it is #![forbid(unsafe_code)]-covered anyway,
            // so the compiler enforces what the scan would).
            if name == "analyze" && f.file_name().is_some_and(|b| b == "sources.rs") {
                continue;
            }
            let src = fs::read_to_string(f).unwrap_or_default();
            let n = unsafe_code_lines(&src);
            let is_sanctioned =
                name == UNSAFE_CRATE && f.file_name().is_some_and(|b| b == UNSAFE_FILE);
            if is_sanctioned {
                if n != SANCTIONED_UNSAFE_LINES {
                    out.push(SourceViolation {
                        file: rel(root, f),
                        message: format!(
                            "expected exactly {SANCTIONED_UNSAFE_LINES} sanctioned unsafe code lines (Send impl, Sync impl, colored scatter block, sharded interior writeback), found {n}"
                        ),
                    });
                }
            } else if n != 0 {
                out.push(SourceViolation {
                    file: rel(root, f),
                    message: format!("contains {n} unsafe code line(s); only {UNSAFE_CRATE}/src/{UNSAFE_FILE} may"),
                });
            }
        }
    }

    // Top-level integration tests are covered by the bench crate's targets
    // but live outside crates/ — sweep them too.
    let mut top = Vec::new();
    rust_files(&root.join("tests"), &mut top);
    for f in &top {
        let src = fs::read_to_string(f).unwrap_or_default();
        let n = unsafe_code_lines(&src);
        if n != 0 {
            out.push(SourceViolation {
                file: rel(root, f),
                message: format!("contains {n} unsafe code line(s)"),
            });
        }
    }

    out
}

/// Locates the workspace root from a crate's manifest dir (`crates/<x>`).
pub fn workspace_root_from(manifest_dir: &str) -> PathBuf {
    Path::new(manifest_dir)
        .ancestors()
        .nth(2)
        .expect("crates/<name> has a workspace root two levels up")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        workspace_root_from(env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn this_workspace_passes_the_source_audit() {
        let violations = check_workspace(&root());
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn unsafe_counter_ignores_comments_and_non_tokens() {
        assert_eq!(unsafe_code_lines("// unsafe in a comment\nlet x = 1;"), 0);
        assert_eq!(unsafe_code_lines("unsafe { *p } // the one site"), 1);
        assert_eq!(
            unsafe_code_lines("unsafe impl Send for T {}\nunsafe impl Sync for T {}"),
            2
        );
        // Word-bounded: the forbid attribute and identifiers don't count.
        assert_eq!(unsafe_code_lines("#![forbid(unsafe_code)]"), 0);
        assert_eq!(unsafe_code_lines("fn unsafe_code_lines() {}"), 0);
        assert_eq!(unsafe_code_lines("let x = do_unsafe();"), 0);
        assert_eq!(unsafe_code_lines("x(unsafe { y })"), 1);
    }

    #[test]
    fn missing_lint_table_is_reported() {
        // A fabricated empty root: everything is missing, nothing panics.
        let tmp = std::env::temp_dir().join("alya-analyze-empty-root");
        let _ = fs::create_dir_all(tmp.join("crates"));
        let violations = check_workspace(&tmp);
        assert!(violations.iter().any(|v| v.file == "Cargo.toml"));
        let _ = fs::remove_dir_all(&tmp);
    }
}
