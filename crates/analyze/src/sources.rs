//! Pass 3 — source lint gating.
//!
//! Walks the workspace sources and enforces the unsafety and lint policy
//! mechanically:
//!
//! * every crate's `lib.rs` carries `#![forbid(unsafe_code)]` — except the
//!   crates hosting sanctioned unsafe sites (today only `alya-core`, whose
//!   `SharedRhs` scatter invariants the race detector and the shard
//!   validator prove);
//! * `unsafe` tokens appear only in files on the explicit
//!   [`alya_lint::SANCTIONED_UNSAFE`] allowlist, which this pass shares
//!   with the static analyzer (pass 7). The per-site `SAFETY:` linkage —
//!   each site's comment naming its proving pass and allowlist marker —
//!   is pass 7's job; this pass holds the coarser file-level line: no
//!   unsafe outside the allowlisted files, anywhere, including tests and
//!   benches;
//! * the workspace `Cargo.toml` defines `[workspace.lints]` and every
//!   member opts in with `[lints] workspace = true`, so clippy gating in
//!   CI covers every crate.
//!
//! The token scan is `alya_lint::unsafe_ident_lines`, a real lexer: the
//! word `unsafe` inside strings, chars, or comments does not count, so no
//! file needs to be exempted from its own scan.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// One policy breach found in the sources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceViolation {
    /// Path (workspace-relative where possible) of the offending file.
    pub file: String,
    /// What the policy expected.
    pub message: String,
}

impl std::fmt::Display for SourceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.file, self.message)
    }
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .display()
        .to_string()
        .replace('\\', "/")
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    out.sort();
}

/// Crate directory names (under `crates/`) that host sanctioned unsafe and
/// therefore cannot carry `#![forbid(unsafe_code)]`.
fn unsafe_crates(sanctioned: &BTreeSet<&'static str>) -> BTreeSet<&'static str> {
    sanctioned
        .iter()
        .filter_map(|f| f.strip_prefix("crates/"))
        .filter_map(|f| f.split('/').next())
        .collect()
}

/// Runs the whole source audit over a workspace root.
pub fn check_workspace(root: &Path) -> Vec<SourceViolation> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let sanctioned = alya_lint::sanctioned_files();
    let exempt_crates = unsafe_crates(&sanctioned);

    // Workspace-level lint table.
    match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(s) if s.contains("[workspace.lints.clippy]") || s.contains("[workspace.lints]") => {}
        Ok(_) => out.push(SourceViolation {
            file: "Cargo.toml".into(),
            message: "workspace manifest lacks a [workspace.lints] table".into(),
        }),
        Err(e) => out.push(SourceViolation {
            file: "Cargo.toml".into(),
            message: format!("unreadable workspace manifest: {e}"),
        }),
    }

    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return vec![SourceViolation {
            file: "crates/".into(),
            message: "workspace crates directory not found".into(),
        }];
    };
    let mut crate_dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for dir in &crate_dirs {
        let name = dir
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();

        // Every member opts into the workspace lints.
        let manifest = dir.join("Cargo.toml");
        match fs::read_to_string(&manifest) {
            Ok(s) if s.contains("[lints]") && s.contains("workspace = true") => {}
            Ok(_) => out.push(SourceViolation {
                file: rel(root, &manifest),
                message: "crate does not opt into workspace lints ([lints] workspace = true)"
                    .into(),
            }),
            Err(e) => out.push(SourceViolation {
                file: rel(root, &manifest),
                message: format!("unreadable manifest: {e}"),
            }),
        }

        // forbid(unsafe_code) everywhere except crates on the allowlist.
        let lib = dir.join("src/lib.rs");
        let lib_src = fs::read_to_string(&lib).unwrap_or_default();
        if exempt_crates.contains(name.as_str()) {
            if lib_src.contains("#![forbid(unsafe_code)]") {
                out.push(SourceViolation {
                    file: rel(root, &lib),
                    message: format!(
                        "crate hosts sanctioned unsafe sites; forbid(unsafe_code) in alya-{name} cannot compile — remove it or retire the allowlist entries"
                    ),
                });
            }
        } else if !lib_src.contains("#![forbid(unsafe_code)]") {
            out.push(SourceViolation {
                file: rel(root, &lib),
                message: "missing #![forbid(unsafe_code)]".into(),
            });
        }

        // No unsafe tokens anywhere but the allowlisted files. The per-site
        // count and SAFETY linkage inside those files is pass 7's job.
        let mut files = Vec::new();
        rust_files(&dir.join("src"), &mut files);
        rust_files(&dir.join("tests"), &mut files);
        rust_files(&dir.join("benches"), &mut files);
        rust_files(&dir.join("examples"), &mut files);
        for f in &files {
            let path = rel(root, f);
            if sanctioned.contains(path.as_str()) {
                continue;
            }
            let src = fs::read_to_string(f).unwrap_or_default();
            let lines = alya_lint::unsafe_ident_lines(&src);
            if !lines.is_empty() {
                out.push(SourceViolation {
                    file: path,
                    message: format!(
                        "contains `unsafe` at line(s) {lines:?}; only allowlisted files may (see alya_lint::SANCTIONED_UNSAFE)"
                    ),
                });
            }
        }
    }

    // Top-level integration tests are covered by the bench crate's targets
    // but live outside crates/ — sweep them too.
    let mut top = Vec::new();
    rust_files(&root.join("tests"), &mut top);
    for f in &top {
        let src = fs::read_to_string(f).unwrap_or_default();
        let lines = alya_lint::unsafe_ident_lines(&src);
        if !lines.is_empty() {
            out.push(SourceViolation {
                file: rel(root, f),
                message: format!("contains `unsafe` at line(s) {lines:?}"),
            });
        }
    }

    out
}

/// Locates the workspace root from a crate's manifest dir (`crates/<x>`).
pub fn workspace_root_from(manifest_dir: &str) -> PathBuf {
    Path::new(manifest_dir)
        .ancestors()
        .nth(2)
        .expect("crates/<name> has a workspace root two levels up")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> PathBuf {
        workspace_root_from(env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn this_workspace_passes_the_source_audit() {
        let violations = check_workspace(&root());
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn allowlist_derives_the_exempt_crate_set() {
        let exempt = unsafe_crates(&alya_lint::sanctioned_files());
        assert_eq!(exempt.into_iter().collect::<Vec<_>>(), vec!["core"]);
    }

    #[test]
    fn lexer_scan_ignores_strings_and_comments() {
        assert!(alya_lint::unsafe_ident_lines("// unsafe in a comment\nlet x = 1;").is_empty());
        assert!(alya_lint::unsafe_ident_lines("let s = \"unsafe\";").is_empty());
        assert_eq!(
            alya_lint::unsafe_ident_lines("unsafe impl Send for T {}\nunsafe impl Sync for T {}"),
            vec![1, 2]
        );
        assert!(alya_lint::unsafe_ident_lines("#![forbid(unsafe_code)]").is_empty());
    }

    #[test]
    fn missing_lint_table_is_reported() {
        // A fabricated empty root: everything is missing, nothing panics.
        let tmp = std::env::temp_dir().join("alya-analyze-empty-root");
        let _ = fs::create_dir_all(tmp.join("crates"));
        let violations = check_workspace(&tmp);
        assert!(violations.iter().any(|v| v.file == "Cargo.toml"));
        let _ = fs::remove_dir_all(&tmp);
    }
}
