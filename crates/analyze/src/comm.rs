//! Pass 4 — the communication contract checker.
//!
//! The distributed driver's halo exchange has a **closed-form budget**:
//! an interface node touched by `k` ranks ships exactly `k − 1`
//! contributions to its owner, so one assembly moves
//! [`ShardSet::halo_send_slots`]` × `[`HALO_ENTRY_BYTES`] bytes in
//! [`ExchangePlan::num_messages`] messages — no more (no double count),
//! no less (no dropped halo). This pass holds a live [`CommReport`]
//! against that budget:
//!
//! * **volume** — total posted bytes and messages equal the closed form;
//! * **delivery** — every channel's receiver-side counters match its
//!   sender-side counters (a dropped message is visible because the
//!   runtime accounts both endpoints), and no send was self-addressed or
//!   misaddressed;
//! * **schedule** — every channel that saw traffic is a planned
//!   `(sender → owner)` pair carrying exactly the planned entry count,
//!   and every planned pair actually carried traffic;
//! * **no double count** — under [`alya_comm::RecordMode::Full`], each
//!   message's traced slot list is strictly increasing and equals the
//!   plan's schedule for that channel, so no owner slot is ever summed
//!   twice.
//!
//! [`check_bench_comm`] applies the same budget to a committed
//! `BENCH_comm.json`: it rebuilds the terrain case recorded in the file
//! and verifies the reported halo bytes against the recomputed closed
//! form — a stale or hand-edited bench report fails the audit.

use alya_comm::{CommReport, HALO_ENTRY_BYTES};
use alya_core::{AssemblyInput, DistributedDriver, Variant};
use alya_mesh::{ExchangePlan, Partition, ShardSet, TerrainMeshBuilder};

/// Outcome of checking one live exchange against the comm contract.
#[derive(Debug, Clone)]
pub struct CommContractReport {
    /// Ranks that participated.
    pub num_ranks: usize,
    /// Closed-form halo bytes per assembly.
    pub expected_bytes: u64,
    /// Bytes the runtime actually posted.
    pub observed_bytes: u64,
    /// Messages the plan schedules per assembly.
    pub expected_messages: u64,
    /// Messages the runtime actually posted.
    pub observed_messages: u64,
    /// Whether the run carried per-message slot traces (the no-double-count
    /// check only runs when it did).
    pub traced: bool,
    /// Every contract breach found (empty when clean).
    pub violations: Vec<String>,
}

impl CommContractReport {
    /// Whether the exchange honored the contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for CommContractReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "comm-clean: {} ranks exchanged {} messages / {} bytes, equal to the closed form{}",
                self.num_ranks,
                self.observed_messages,
                self.observed_bytes,
                if self.traced {
                    ", every traced slot on schedule"
                } else {
                    ""
                }
            )
        } else {
            write!(f, "COMM VIOLATION: {}", self.violations.join("; "))
        }
    }
}

/// Checks one live exchange report against the decomposition it claims to
/// have run: closed-form volume, dual-sided delivery, planned schedule,
/// and (when traced) per-slot no-double-count.
pub fn check_exchange(
    set: &ShardSet,
    plan: &ExchangePlan,
    report: &CommReport,
) -> CommContractReport {
    let expected_bytes = (set.halo_send_slots() * HALO_ENTRY_BYTES) as u64;
    let expected_messages = plan.num_messages() as u64;
    let mut violations = Vec::new();

    if report.num_ranks != set.num_shards() {
        violations.push(format!(
            "rank count mismatch: report has {}, decomposition has {}",
            report.num_ranks,
            set.num_shards()
        ));
    }
    if report.self_send_attempts != 0 {
        violations.push(format!(
            "{} self-send(s): a rank's own contributions must never travel through a channel",
            report.self_send_attempts
        ));
    }
    if report.dropped_sends != 0 {
        violations.push(format!(
            "{} send(s) addressed to a nonexistent or finished rank",
            report.dropped_sends
        ));
    }
    for c in &report.channels {
        if c.sent_messages != c.received_messages || c.sent_bytes != c.received_bytes {
            violations.push(format!(
                "channel {}→{}: sent {} msg / {} B but received {} msg / {} B — halo message dropped or duplicated",
                c.from, c.to, c.sent_messages, c.sent_bytes, c.received_messages, c.received_bytes
            ));
        }
    }
    if report.total_bytes() != expected_bytes {
        violations.push(format!(
            "halo volume diverges from the closed form: posted {} B, \
             halo_send_slots × {HALO_ENTRY_BYTES} predicts {} B",
            report.total_bytes(),
            expected_bytes
        ));
    }
    if report.total_messages() != expected_messages {
        violations.push(format!(
            "message count diverges from the plan: posted {}, scheduled {}",
            report.total_messages(),
            expected_messages
        ));
    }

    // Schedule conformance, both directions: no unplanned channel carried
    // traffic, and no planned channel stayed silent or mis-sized.
    for c in &report.channels {
        match planned_slots(plan, c.from, c.to) {
            None => violations.push(format!(
                "channel {}→{} carried traffic but is not in the exchange plan",
                c.from, c.to
            )),
            Some(slots) => {
                let bytes = (slots.len() * HALO_ENTRY_BYTES) as u64;
                if c.sent_bytes != bytes {
                    violations.push(format!(
                        "channel {}→{}: posted {} B, plan schedules {} slot(s) = {} B",
                        c.from,
                        c.to,
                        c.sent_bytes,
                        slots.len(),
                        bytes
                    ));
                }
            }
        }
    }
    for r in 0..plan.num_ranks() {
        for (to, list) in &plan.rank(r).sends {
            if !list.is_empty() && report.channel(r as u32, *to).is_none() {
                violations.push(format!(
                    "planned message {r}→{to} ({} slot(s)) was never posted",
                    list.len()
                ));
            }
        }
    }

    // No-double-count: each traced message's slot list must be strictly
    // increasing (no owner slot repeated) and exactly the plan's schedule.
    let traced = !report.traces.is_empty();
    if traced {
        if report.traces.len() as u64 != report.total_messages() {
            violations.push(format!(
                "{} trace(s) for {} posted message(s)",
                report.traces.len(),
                report.total_messages()
            ));
        }
        for t in &report.traces {
            if !t.slots.windows(2).all(|w| w[0] < w[1]) {
                violations.push(format!(
                    "message {}→{}: slot list not strictly increasing — an owner slot would be summed twice",
                    t.from, t.to
                ));
                continue;
            }
            match planned_slots(plan, t.from, t.to) {
                Some(sched) if t.slots == sched => {}
                Some(_) => violations.push(format!(
                    "message {}→{}: traced slots diverge from the plan's schedule",
                    t.from, t.to
                )),
                None => violations.push(format!(
                    "traced message {}→{} is not in the exchange plan",
                    t.from, t.to
                )),
            }
        }
    }

    CommContractReport {
        num_ranks: report.num_ranks,
        expected_bytes,
        observed_bytes: report.total_bytes(),
        expected_messages,
        observed_messages: report.total_messages(),
        traced,
        violations,
    }
}

/// Owner slots the plan schedules on channel `from → to`, if planned.
fn planned_slots(plan: &ExchangePlan, from: u32, to: u32) -> Option<Vec<u32>> {
    plan.rank(from as usize)
        .sends
        .iter()
        .find(|(t, _)| *t == to)
        .map(|(_, list)| list.iter().map(|&(_, theirs)| theirs).collect())
}

/// Runs one fully-traced distributed assembly of `input` at `ranks` ranks
/// and checks the live exchange against the contract. Returns the live
/// report too so self-tests can mutate it and re-check.
pub fn check_distributed(
    input: &AssemblyInput,
    ranks: usize,
) -> (CommContractReport, DistributedDriver, CommReport) {
    let driver = DistributedDriver::new(input.mesh, ranks).traced(true);
    let (_, live) = driver.assemble(Variant::Rsp, input);
    let report = check_exchange(driver.shard_set(), driver.exchange_plan(), &live);
    (report, driver, live)
}

/// Outcome of validating a committed `BENCH_comm.json` against the
/// recomputed closed form.
#[derive(Debug, Clone)]
pub struct BenchCommReport {
    /// Rank-sweep rows validated.
    pub rows_checked: usize,
    /// Every divergence found (empty when the report is honest).
    pub violations: Vec<String>,
}

impl BenchCommReport {
    /// Whether the bench report matches the recomputed budget.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for BenchCommReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "bench-comm valid: {} row(s) match the recomputed closed-form halo volume",
                self.rows_checked
            )
        } else {
            write!(f, "BENCH VIOLATION: {}", self.violations.join("; "))
        }
    }
}

/// Validates a `BENCH_comm.json` document: rebuilds the recorded terrain
/// case, recomputes the closed-form halo volume per rank count, and
/// compares it against the reported bytes and message counts.
pub fn check_bench_comm(json: &str) -> BenchCommReport {
    let mut violations = Vec::new();
    let mut rows_checked = 0;

    let Some(target) = top_num(json, "target_elems") else {
        return BenchCommReport {
            rows_checked,
            violations: vec!["no \"target_elems\" field — cannot rebuild the case".into()],
        };
    };
    let mesh = TerrainMeshBuilder::with_approx_elements(target as usize).build();
    if let Some(ne) = top_num(json, "elements") {
        if ne as usize != mesh.num_elements() {
            violations.push(format!(
                "recorded {} elements but the generator now yields {} — the bench predates the mesh",
                ne as usize,
                mesh.num_elements()
            ));
        }
    }

    for obj in json.split('{').skip(1) {
        let Some(ranks) = row_num(obj, "ranks") else {
            continue;
        };
        let (Some(halo), Some(predicted), Some(messages)) = (
            row_num(obj, "halo_bytes"),
            row_num(obj, "predicted_halo_bytes"),
            row_num(obj, "messages"),
        ) else {
            violations.push(format!(
                "row at ranks={ranks} is missing halo accounting fields"
            ));
            continue;
        };
        rows_checked += 1;
        let set = ShardSet::build(&mesh, &Partition::rcb(&mesh, ranks as usize));
        let expected = (set.halo_send_slots() * HALO_ENTRY_BYTES) as f64;
        if halo != expected {
            violations.push(format!(
                "ranks={}: reported {halo} halo bytes, closed form recomputes {expected}",
                ranks as usize
            ));
        }
        if predicted != expected {
            violations.push(format!(
                "ranks={}: recorded prediction {predicted} diverges from recomputed {expected}",
                ranks as usize
            ));
        }
        let plan_messages = ExchangePlan::build(&set).num_messages() as f64;
        if messages != plan_messages {
            violations.push(format!(
                "ranks={}: reported {messages} messages, plan schedules {plan_messages}",
                ranks as usize
            ));
        }

        // Overlap accounting: the row must carry both schedules' timings
        // and a win consistent with its own blocked-wait measurements.
        let (Some(overlap_median), Some(wait_off), Some(wait_on), Some(win)) = (
            row_num(obj, "overlap_median_s"),
            row_num(obj, "blocked_wait_off_s"),
            row_num(obj, "blocked_wait_on_s"),
            row_num(obj, "overlap_win"),
        ) else {
            violations.push(format!(
                "row at ranks={ranks} is missing overlap accounting fields"
            ));
            continue;
        };
        if overlap_median <= 0.0 {
            violations.push(format!(
                "ranks={}: nonpositive overlap-on runtime {overlap_median}",
                ranks as usize
            ));
        }
        if wait_off < 0.0 || wait_on < 0.0 {
            violations.push(format!(
                "ranks={}: negative blocked-wait time ({wait_off} / {wait_on})",
                ranks as usize
            ));
        }
        let recomputed = if wait_off > 0.0 {
            1.0 - wait_on / wait_off
        } else {
            0.0
        };
        if (win - recomputed).abs() > 5e-3 {
            violations.push(format!(
                "ranks={}: overlap_win {win} inconsistent with its own waits (recomputes {recomputed:.4})",
                ranks as usize
            ));
        }
    }
    if rows_checked == 0 {
        violations.push("no rank-sweep rows found in the report".into());
    }
    BenchCommReport {
        rows_checked,
        violations,
    }
}

/// First `"key": number` in the document (top-level fields precede rows).
fn top_num(json: &str, key: &str) -> Option<f64> {
    row_num(json, key)
}

/// `"key": number` within one scanned object fragment.
fn row_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fixture;

    #[test]
    fn live_exchange_on_the_fixture_honors_the_contract() {
        let fx = Fixture::new();
        let input = fx.input();
        for ranks in [1, 2, 8] {
            let (report, driver, live) = check_distributed(&input, ranks);
            assert!(report.is_clean(), "{report}");
            assert_eq!(report.num_ranks, ranks);
            assert_eq!(report.expected_bytes, report.observed_bytes);
            assert!(report.traced || ranks == 1);
            assert_eq!(
                report.expected_bytes,
                (driver.shard_set().halo_send_slots() * HALO_ENTRY_BYTES) as u64
            );
            assert!(live.all_delivered());
        }
    }

    #[test]
    fn dropped_halo_message_is_flagged() {
        let fx = Fixture::new();
        let input = fx.input();
        let (clean, driver, mut live) = check_distributed(&input, 8);
        assert!(clean.is_clean(), "{clean}");
        // Lose one delivered message on the busiest channel — the failure a
        // broken receive loop would produce.
        let c = live
            .channels
            .iter_mut()
            .max_by_key(|c| c.received_bytes)
            .expect("an 8-rank fixture decomposition must exchange");
        c.received_messages -= 1;
        c.received_bytes -= c.max_message_bytes;
        let bad = check_exchange(driver.shard_set(), driver.exchange_plan(), &live);
        assert!(!bad.is_clean());
        assert!(
            bad.violations.iter().any(|v| v.contains("dropped")),
            "{bad}"
        );
    }

    #[test]
    fn double_counted_slot_and_unplanned_channel_are_flagged() {
        let fx = Fixture::new();
        let input = fx.input();
        let (_, driver, mut live) = check_distributed(&input, 4);
        let t = live.traces.first_mut().expect("traced run has messages");
        // Repeat the first slot: the owner would sum it twice.
        let s = t.slots[0];
        t.slots.insert(0, s);
        let bad = check_exchange(driver.shard_set(), driver.exchange_plan(), &live);
        assert!(
            bad.violations
                .iter()
                .any(|v| v.contains("strictly increasing")),
            "{bad}"
        );
    }

    #[test]
    fn bench_validation_recomputes_the_closed_form() {
        // Build an honest miniature report, then corrupt it.
        let target = 3_000usize;
        let mesh = TerrainMeshBuilder::with_approx_elements(target).build();
        let mut rows = String::new();
        for ranks in [1usize, 2, 4] {
            let set = ShardSet::build(&mesh, &Partition::rcb(&mesh, ranks));
            let bytes = set.halo_send_slots() * HALO_ENTRY_BYTES;
            let msgs = ExchangePlan::build(&set).num_messages();
            let (wait_off, wait_on) = if ranks == 1 { (0.0, 0.0) } else { (2e-3, 5e-4) };
            let win = if wait_off > 0.0 {
                1.0 - wait_on / wait_off
            } else {
                0.0
            };
            rows.push_str(&format!(
                "{{\"ranks\": {ranks}, \"halo_bytes\": {bytes}, \
                 \"predicted_halo_bytes\": {bytes}, \"messages\": {msgs}, \
                 \"overlap_median_s\": 1.5e-3, \"blocked_wait_off_s\": {wait_off}, \
                 \"blocked_wait_on_s\": {wait_on}, \"overlap_win\": {win}}},"
            ));
        }
        let honest = format!(
            "{{\"target_elems\": {target}, \"elements\": {}, \"results\": [{}]}}",
            mesh.num_elements(),
            rows.trim_end_matches(',')
        );
        let ok = check_bench_comm(&honest);
        assert!(ok.is_clean(), "{ok}");
        assert_eq!(ok.rows_checked, 3);

        let forged = honest.replace("\"halo_bytes\": ", "\"halo_bytes\": 1");
        let bad = check_bench_comm(&forged);
        assert!(!bad.is_clean());
        assert!(check_bench_comm("{}").violations.len() == 1);

        // An overlap win the row's own waits don't support is caught too.
        let forged = honest.replace(
            "\"blocked_wait_on_s\": 0.0005",
            "\"blocked_wait_on_s\": 0.002",
        );
        let bad = check_bench_comm(&forged);
        assert!(
            bad.violations.iter().any(|v| v.contains("overlap_win")),
            "{bad}"
        );
    }
}
