//! Pass 1 — the kernel-contract checker.
//!
//! Replays each variant's instrumented per-element event stream (see
//! [`alya_core::drivers::trace_element`]) and verifies it against the
//! declarative [`KernelContract`] pinned in `alya-core::variant`:
//!
//! * exact FP-operation totals;
//! * exact global traffic per address-space region (the modelled layout
//!   gives every logical array a disjoint region, so a store address
//!   *classifies itself*) — in particular, the scalar-private variants
//!   RSP/RSPR must perform **zero** intermediate stores to global memory
//!   besides the final RHS scatter;
//! * the baseline's workspace traffic against the closed-form
//!   phase-by-phase formulas in `kernels::baseline`;
//! * the register story: peak live-value pressure from the linear-scan
//!   allocator, and spill behaviour at the contract's 128-register budget
//!   (RSPR must not spill; RSP must — that spill is RSPR's raison d'être);
//! * element invariance: the counts must be identical for every sampled
//!   element (they are structural, not data-dependent).

use alya_core::drivers::{trace_element, trace_pack, CPU_VECTOR_DIM};
use alya_core::layout::{self, Layout};
use alya_core::{AssemblyInput, KernelContract, Variant, CONTRACT_F64_BUDGET};
use alya_machine::trace::TraceCounts;
use alya_machine::{Event, RegisterAllocator, Space};

/// One contract breach, with enough context to act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The variant whose contract was breached.
    pub variant: &'static str,
    /// What was breached and by how much.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.variant, self.message)
    }
}

/// Which modelled array region a global byte address falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Nodal/elemental kernel inputs (connectivity, coordinates, velocity,
    /// pressure, temperature, ν_t).
    Input,
    /// The assembled RHS — the only region a scatter may write.
    Rhs,
    /// The staged intermediate workspace.
    Workspace,
}

/// Classifies a global byte address by the layout's region bases.
pub fn classify(addr: u64) -> Region {
    if addr >= layout::WS_BASE {
        Region::Workspace
    } else if (layout::RHS_BASE..layout::NUT_BASE).contains(&addr) {
        Region::Rhs
    } else {
        Region::Input
    }
}

/// Region-resolved traffic totals of one event stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionCounts {
    /// Loads from [`Region::Input`].
    pub input_loads: u64,
    /// Stores into [`Region::Input`] — always forbidden.
    pub input_stores: u64,
    /// Loads from the RHS region (read-modify-write scatter).
    pub rhs_loads: u64,
    /// Stores into the RHS region (the scatter itself).
    pub rhs_stores: u64,
    /// Loads from the global workspace region.
    pub ws_loads: u64,
    /// Stores into the global workspace region.
    pub ws_stores: u64,
}

impl RegionCounts {
    /// Scans an event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut c = Self::default();
        for e in events {
            match *e {
                Event::GLoad(a) => match classify(a) {
                    Region::Input => c.input_loads += 1,
                    Region::Rhs => c.rhs_loads += 1,
                    Region::Workspace => c.ws_loads += 1,
                },
                Event::GStore(a) => match classify(a) {
                    Region::Input => c.input_stores += 1,
                    Region::Rhs => c.rhs_stores += 1,
                    Region::Workspace => c.ws_stores += 1,
                },
                _ => {}
            }
        }
        c
    }
}

fn fail(v: Variant, out: &mut Vec<Violation>, message: String) {
    out.push(Violation {
        variant: v.name(),
        message,
    });
}

fn expect(v: Variant, out: &mut Vec<Violation>, what: &str, got: u64, want: u64) {
    if got != want {
        fail(v, out, format!("{what}: got {got}, contract says {want}"));
    }
}

/// Checks one recorded event stream against a contract. Pure — the audit
/// binary's seeded-violation modes feed forged streams through here.
pub fn check_trace(
    variant: Variant,
    contract: &KernelContract,
    events: &[Event],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let counts = TraceCounts::from_events(events);
    let regions = RegionCounts::from_events(events);

    // FP-operation total, with the paper's 1-FMA-=-2 convention.
    expect(
        variant,
        &mut out,
        "fp-op total",
        counts.flops(),
        contract.flops,
    );

    // Global traffic, region by region. Stores into input arrays are
    // forbidden unconditionally — a kernel never writes its inputs.
    expect(
        variant,
        &mut out,
        "input-region loads",
        regions.input_loads,
        contract.input_loads,
    );
    expect(
        variant,
        &mut out,
        "input-region stores",
        regions.input_stores,
        0,
    );
    expect(
        variant,
        &mut out,
        "rhs loads",
        regions.rhs_loads,
        contract.rhs_loads,
    );
    expect(
        variant,
        &mut out,
        "rhs stores",
        regions.rhs_stores,
        contract.rhs_stores,
    );

    // Workspace discipline per space.
    let (want_gl, want_ll) = match contract.workspace_loads {
        Some((Space::Global, n)) => (n, 0),
        Some((Space::Local, n)) => (0, n),
        None => (0, 0),
    };
    let (want_gs, want_ls) = match contract.workspace_stores {
        Some((Space::Global, n)) => (n, 0),
        Some((Space::Local, n)) => (0, n),
        None => (0, 0),
    };
    expect(
        variant,
        &mut out,
        "global intermediate (workspace) loads",
        regions.ws_loads,
        want_gl,
    );
    expect(
        variant,
        &mut out,
        "global intermediate (workspace) stores — only the RHS scatter may store globally beyond this",
        regions.ws_stores,
        want_gs,
    );
    expect(
        variant,
        &mut out,
        "local loads",
        counts.local_loads,
        want_ll,
    );
    expect(
        variant,
        &mut out,
        "local stores",
        counts.local_stores,
        want_ls,
    );

    // Private-scalar and register story.
    if contract.uses_private_scalars {
        if counts.defs == 0 {
            fail(
                variant,
                &mut out,
                "contract expects private-scalar Def/Use events, trace has none".into(),
            );
        }
        // Peak pressure, measured with an effectively unbounded allocator.
        let unbounded = RegisterAllocator::new(4096).allocate(events);
        if let Some(cap) = contract.max_pressure {
            if unbounded.max_pressure != cap {
                fail(
                    variant,
                    &mut out,
                    format!(
                        "peak register pressure: got {} live f64 values, contract pins {}",
                        unbounded.max_pressure, cap
                    ),
                );
            }
        }
        // Spill behaviour at the 128-register contract budget.
        if let Some(must_spill) = contract.spills_at_contract_budget {
            let budgeted = RegisterAllocator::new(CONTRACT_F64_BUDGET).allocate(events);
            let spilled = budgeted.spilled_values > 0;
            if spilled != must_spill {
                fail(
                    variant,
                    &mut out,
                    format!(
                        "at the {CONTRACT_F64_BUDGET}-value (128-register) budget: {} values spilled, contract says spilling is {}",
                        budgeted.spilled_values,
                        if must_spill { "required" } else { "forbidden" },
                    ),
                );
            }
        }
    } else if counts.defs + counts.uses != 0 {
        fail(
            variant,
            &mut out,
            format!(
                "array-style contract forbids private-scalar events, trace has {} defs / {} uses",
                counts.defs, counts.uses
            ),
        );
    }

    out
}

/// Checks one recorded **pack** event stream ([`trace_pack`]: `lanes`
/// consecutive elements through one interleaved workspace) against `lanes`
/// times the per-element contract. Traffic and flop totals scale exactly —
/// the counts are structural — but the register story is *not* checked
/// here: `Def` ids restart at zero for every lane of a pack, so live
/// ranges of different lanes alias and any pressure measurement on the
/// merged stream would be meaningless.
pub fn check_pack_trace(
    variant: Variant,
    contract: &KernelContract,
    events: &[Event],
    lanes: u64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let counts = TraceCounts::from_events(events);
    let regions = RegionCounts::from_events(events);

    expect(
        variant,
        &mut out,
        "pack fp-op total",
        counts.flops(),
        lanes * contract.flops,
    );
    expect(
        variant,
        &mut out,
        "pack input-region loads",
        regions.input_loads,
        lanes * contract.input_loads,
    );
    expect(
        variant,
        &mut out,
        "pack input-region stores",
        regions.input_stores,
        0,
    );
    expect(
        variant,
        &mut out,
        "pack rhs loads",
        regions.rhs_loads,
        lanes * contract.rhs_loads,
    );
    expect(
        variant,
        &mut out,
        "pack rhs stores",
        regions.rhs_stores,
        lanes * contract.rhs_stores,
    );
    let (want_gl, want_ll) = match contract.workspace_loads {
        Some((Space::Global, n)) => (lanes * n, 0),
        Some((Space::Local, n)) => (0, lanes * n),
        None => (0, 0),
    };
    let (want_gs, want_ls) = match contract.workspace_stores {
        Some((Space::Global, n)) => (lanes * n, 0),
        Some((Space::Local, n)) => (0, lanes * n),
        None => (0, 0),
    };
    expect(
        variant,
        &mut out,
        "pack global intermediate (workspace) loads",
        regions.ws_loads,
        want_gl,
    );
    expect(
        variant,
        &mut out,
        "pack global intermediate (workspace) stores",
        regions.ws_stores,
        want_gs,
    );
    expect(
        variant,
        &mut out,
        "pack local loads",
        counts.local_loads,
        want_ll,
    );
    expect(
        variant,
        &mut out,
        "pack local stores",
        counts.local_stores,
        want_ls,
    );

    if contract.uses_private_scalars {
        if counts.defs == 0 {
            fail(
                variant,
                &mut out,
                "pack contract expects private-scalar Def/Use events, trace has none".into(),
            );
        }
    } else if counts.defs + counts.uses != 0 {
        fail(
            variant,
            &mut out,
            format!(
                "array-style contract forbids private-scalar events, pack trace has {} defs / {} uses",
                counts.defs, counts.uses
            ),
        );
    }
    out
}

fn check_variant_in(
    variant: Variant,
    input: &AssemblyInput,
    elements: &[usize],
    mk_lay: impl Fn(usize) -> Layout,
    convention: &str,
) -> Vec<Violation> {
    let contract = variant.contract();
    let mut out = Vec::new();
    let mut first: Option<TraceCounts> = None;
    for &e in elements {
        let lay = mk_lay(e);
        let rec = trace_element(variant, input, e, &lay);
        out.extend(check_trace(variant, &contract, &rec.events));
        let c = rec.counts();
        match first {
            None => first = Some(c),
            Some(f) if f != c => fail(
                variant,
                &mut out,
                format!("element {e} ({convention} layout) has different operation counts than element {}: the contract is structural, counts may not depend on data", elements[0]),
            ),
            Some(_) => {}
        }
    }
    out
}

/// Traces `elements` of `input` under `variant` with the **GPU** launch
/// layout and checks every trace, including cross-element invariance of
/// the counts.
pub fn check_variant(
    variant: Variant,
    input: &AssemblyInput,
    elements: &[usize],
) -> Vec<Violation> {
    let ne = input.mesh.num_elements();
    let nn = input.mesh.num_nodes();
    check_variant_in(variant, input, elements, |e| Layout::gpu(e, ne, nn), "gpu")
}

/// Same as [`check_variant`] but with the **CPU** pack addressing
/// convention — the contracts are layout-invariant, and this proves it.
pub fn check_variant_cpu(
    variant: Variant,
    input: &AssemblyInput,
    elements: &[usize],
) -> Vec<Violation> {
    let nn = input.mesh.num_nodes();
    check_variant_in(
        variant,
        input,
        elements,
        |e| Layout::cpu(e, CPU_VECTOR_DIM, nn),
        "cpu",
    )
}

/// Traces whole CPU packs of `input` under `variant` and checks each
/// against the ×[`CPU_VECTOR_DIM`] scaled contract.
pub fn check_variant_packs(
    variant: Variant,
    input: &AssemblyInput,
    packs: &[usize],
) -> Vec<Violation> {
    let contract = variant.contract();
    let mut out = Vec::new();
    for &p in packs {
        let rec = trace_pack(variant, input, p);
        out.extend(check_pack_trace(
            variant,
            &contract,
            &rec.events,
            CPU_VECTOR_DIM as u64,
        ));
    }
    out
}

/// Checks every variant on a sample of the fixture's elements, under both
/// addressing conventions, plus a sample of whole CPU packs.
pub fn check_all(input: &AssemblyInput) -> Vec<Violation> {
    let ne = input.mesh.num_elements();
    let elements = [0, ne / 3, ne - 1];
    let packs = [0, (ne / CPU_VECTOR_DIM).saturating_sub(1)];
    Variant::ALL
        .iter()
        .flat_map(|&v| {
            let mut out = check_variant(v, input, &elements);
            out.extend(check_variant_cpu(v, input, &elements));
            out.extend(check_variant_packs(v, input, &packs));
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::Fixture;

    #[test]
    fn real_kernels_satisfy_their_contracts() {
        let fx = Fixture::new();
        let violations = check_all(&fx.input());
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn forged_global_intermediate_store_is_caught() {
        let fx = Fixture::new();
        let input = fx.input();
        let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
        let mut rec = trace_element(Variant::Rspr, &input, 0, &lay);
        // Sneak one store into the workspace region — the exact mutation a
        // regression reintroducing staged intermediates would produce.
        rec.events.push(Event::GStore(layout::WS_BASE + 64));
        let violations = check_trace(Variant::Rspr, &Variant::Rspr.contract(), &rec.events);
        assert!(violations
            .iter()
            .any(|v| v.message.contains("workspace) stores")));
    }

    #[test]
    fn forged_register_pressure_is_caught() {
        let fx = Fixture::new();
        let input = fx.input();
        let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
        let mut rec = trace_element(Variant::Rspr, &input, 0, &lay);
        // Define 80 fresh values and hold them all live to the end: the
        // peak pressure blows past the contract pin and the budgeted
        // allocation must now spill.
        for v in 0..80 {
            rec.events.push(Event::Def(10_000 + v));
        }
        for v in 0..80 {
            rec.events.push(Event::Use(10_000 + v));
        }
        let violations = check_trace(Variant::Rspr, &Variant::Rspr.contract(), &rec.events);
        assert!(violations.iter().any(|v| v.message.contains("pressure")));
        assert!(violations.iter().any(|v| v.message.contains("spilled")));
    }

    #[test]
    fn forged_flop_count_is_caught() {
        let fx = Fixture::new();
        let input = fx.input();
        let lay = Layout::gpu(0, fx.mesh.num_elements(), fx.mesh.num_nodes());
        let mut rec = trace_element(Variant::B, &input, 0, &lay);
        rec.events.push(Event::Fma(1));
        let violations = check_trace(Variant::B, &Variant::B.contract(), &rec.events);
        assert!(violations.iter().any(|v| v.message.contains("fp-op")));
    }

    #[test]
    fn cpu_layout_and_pack_traces_satisfy_the_contracts() {
        let fx = Fixture::new();
        let input = fx.input();
        for v in Variant::ALL {
            let cpu = check_variant_cpu(v, &input, &[0, 3]);
            assert!(cpu.is_empty(), "{cpu:#?}");
            let packs = check_variant_packs(v, &input, &[0]);
            assert!(packs.is_empty(), "{packs:#?}");
        }
    }

    #[test]
    fn forged_pack_traffic_is_caught_without_a_register_story() {
        let fx = Fixture::new();
        let input = fx.input();
        let mut rec = trace_pack(Variant::Rsp, &input, 0);
        rec.events.push(Event::GStore(layout::WS_BASE + 8));
        let violations = check_pack_trace(
            Variant::Rsp,
            &Variant::Rsp.contract(),
            &rec.events,
            CPU_VECTOR_DIM as u64,
        );
        assert!(violations
            .iter()
            .any(|v| v.message.contains("workspace) stores")));
        // Def ids restart per lane in a pack, so no pressure/spill verdicts
        // may be emitted from a pack stream.
        assert!(violations
            .iter()
            .all(|v| !v.message.contains("pressure") && !v.message.contains("spill")));
    }

    #[test]
    fn address_classification_matches_the_layout() {
        assert_eq!(classify(layout::CONN_BASE), Region::Input);
        assert_eq!(classify(layout::TEMP_BASE + 8), Region::Input);
        assert_eq!(classify(layout::RHS_BASE), Region::Rhs);
        assert_eq!(classify(layout::NUT_BASE), Region::Input);
        assert_eq!(classify(layout::WS_BASE), Region::Workspace);
        assert_eq!(classify(layout::WS_BASE + (1 << 40)), Region::Workspace);
    }
}
