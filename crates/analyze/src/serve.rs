//! Pass 9 — the serve isolation + fairness contract checker.
//!
//! The pooled simulation service (`alya-serve`) recycles session slots:
//! the whole point is that a reused slot is *indistinguishable* from a
//! fresh one. This pass audits that contract three ways:
//!
//! * **isolation** — sessions of the same case, kind and step count must
//!   produce bitwise-identical state digests, no matter which slot they
//!   ran in, which tenant owned them, or how many sessions the slot saw
//!   before. A leaked slot (state surviving a release) breaks the group;
//! * **conservation** — each tenant's merged telemetry must account for
//!   exactly `Σ steps × rhs_evals × elements` over that tenant's retired
//!   sessions (the closed-form element total), and the pool's bind
//!   counters must balance its outcome ledger;
//! * **fairness** — when equally-weighted tenants retire the same
//!   workload, the weight-normalized work spread must sit inside
//!   [`FAIRNESS_BAND`] — the deficit-round-robin scheduler's no-starvation
//!   promise.
//!
//! The live half runs a deterministic pooled scenario (three tenants,
//! three admission waves over fewer slots than sessions, so every slot is
//! reused warm) and checks the resulting [`ServeReport`]. The audit's
//! `--seed-violation slot-leak` mode re-runs the same scenario with the
//! pool's hidden leak fault injected — a released slot keeps its solver
//! state and the warm rewind is skipped — and demands the isolation check
//! catch it. The workspace half holds the committed `BENCH_serve.json`
//! against the service-level acceptance floor: a measured level of at
//! least [`MIN_BENCH_SESSIONS`] concurrent sessions, zero steady-state
//! cold builds, ordered latency quantiles, and in-band fairness.

use std::path::Path;
use std::sync::Arc;

use alya_core::Variant;
use alya_mesh::BoxMeshBuilder;
use alya_serve::{
    PoolConfig, ServeReport, Service, ServiceConfig, SessionSpec, SharedCase, WorkKind,
};
use alya_solver::StepConfig;
use alya_telemetry::Metric;

/// Widest acceptable weight-normalized work spread `(max−min)/mean` for
/// equally-loaded tenants — beyond this, somebody starved.
pub const FAIRNESS_BAND: f64 = 0.25;

/// The committed serve bench must demonstrate at least this many
/// concurrent sessions over the shared worker pool.
pub const MIN_BENCH_SESSIONS: u64 = 512;

/// Outcome of the serve-contract pass.
#[derive(Debug, Clone, Default)]
pub struct ServeContractReport {
    /// Sessions the live pooled scenario retired and checked.
    pub sessions_checked: usize,
    /// Whether the committed `BENCH_serve.json` was present and audited.
    pub bench_checked: bool,
    /// Concurrency levels the bench file measured.
    pub bench_levels: Vec<u64>,
    /// Every contract breach found (empty when clean).
    pub violations: Vec<String>,
}

impl ServeContractReport {
    /// Whether the service honored the isolation + fairness contract.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ServeContractReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "serve-clean: {} pooled sessions isolated + conserved",
                self.sessions_checked
            )?;
            if self.bench_checked {
                write!(f, "; bench levels {:?} in contract", self.bench_levels)?;
            } else {
                write!(f, "; no committed serve bench to audit")?;
            }
            Ok(())
        } else {
            write!(f, "SERVE VIOLATION: {}", self.violations.join("; "))
        }
    }
}

/// Runs the deterministic pooled scenario: three equally-weighted tenants,
/// three admission waves of the same case over a three-slot pool with one
/// free-list stripe — so every wave past the first reuses every slot warm,
/// and sessions of every (tenant, slot, generation) combination exist for
/// the isolation check to compare. `leak` injects the pool's audit-only
/// slot-leak fault (skipped warm rewind).
pub fn run_pool_scenario(leak: bool) -> ServeReport {
    let mut cfg = StepConfig::default();
    cfg.dt = 5e-4;
    let case = Arc::new(SharedCase::new(
        "audit-cavity",
        BoxMeshBuilder::new(3, 3, 3).build(),
        cfg,
        Variant::Rsp,
        |p| {
            [
                (2.0 * std::f64::consts::PI * p[0]).sin() * 0.1,
                0.0,
                0.05 * p[1],
            ]
        },
    ));
    let service = Service::new(ServiceConfig {
        pool: PoolConfig {
            capacity: 3,
            stripes: 1,
            leak_slot_state_for_audit: leak,
        },
        ..ServiceConfig::default()
    });
    let tenants: Vec<u32> = ["t0", "t1", "t2"]
        .iter()
        .map(|n| service.add_tenant(n, 1, 1))
        .collect();
    for _wave in 0..3 {
        for &t in &tenants {
            service
                .admit(t, &SessionSpec::new(Arc::clone(&case), 2))
                .expect("scenario admission cannot fail");
        }
        service.run_to_idle();
    }
    service.report()
}

/// Checks a [`ServeReport`] against the isolation, conservation and
/// fairness contracts. Pure — the seeded audit runs the leaked scenario
/// through this same function and demands it object.
pub fn check_report(report: &ServeReport) -> ServeContractReport {
    let mut violations = Vec::new();

    // Isolation: identical work ⇒ identical digest, across slots/tenants.
    let mut groups: Vec<(&str, WorkKind, u32, u64, &alya_serve::SessionOutcome)> = Vec::new();
    for o in &report.outcomes {
        match groups.iter().find(|(case, kind, steps, _, _)| {
            *case == o.case && *kind == o.kind && *steps == o.steps
        }) {
            Some(&(_, _, _, digest, first)) => {
                if digest != o.digest {
                    violations.push(format!(
                        "isolation: case '{}' ({:?}, {} steps) digest {:016x} in slot {} \
                         gen {} != {:016x} in slot {} gen {} — a reused slot is not \
                         bitwise identical to a fresh one",
                        o.case,
                        o.kind,
                        o.steps,
                        o.digest,
                        o.slot,
                        o.generation,
                        digest,
                        first.slot,
                        first.generation,
                    ));
                }
            }
            None => groups.push((&o.case, o.kind, o.steps, o.digest, o)),
        }
    }

    // Conservation: per-tenant telemetry matches the closed-form element
    // total of that tenant's retired sessions.
    for (ti, t) in report.tenants.iter().enumerate() {
        let expected: u64 = report
            .outcomes
            .iter()
            .filter(|o| o.tenant as usize == ti)
            .map(|o| u64::from(o.steps) * o.rhs_evals * o.elements)
            .sum();
        let got = t.usage.total(Metric::ElementsAssembled);
        if got != expected {
            violations.push(format!(
                "conservation: tenant '{}' telemetry counts {got} elements assembled, \
                 closed form over its {} retired sessions demands {expected}",
                t.name, t.sessions,
            ));
        }
        let steps: u64 = report
            .outcomes
            .iter()
            .filter(|o| o.tenant as usize == ti)
            .map(|o| u64::from(o.steps))
            .sum();
        if t.steps < steps {
            violations.push(format!(
                "conservation: tenant '{}' charged {} work items but its retired \
                 sessions ran {steps}",
                t.name, t.steps,
            ));
        }
    }

    // Pool accounting: every retired or live session is exactly one bind.
    let binds = report.cold_builds + report.warm_binds;
    let admitted = report.outcomes.len() as u64 + report.live as u64;
    if binds != admitted {
        violations.push(format!(
            "accounting: {} cold + {} warm binds for {admitted} admitted sessions",
            report.cold_builds, report.warm_binds,
        ));
    }
    if report.peak_live > report.capacity {
        violations.push(format!(
            "accounting: peak {} live sessions exceeds pool capacity {}",
            report.peak_live, report.capacity,
        ));
    }
    for o in &report.outcomes {
        if o.slot as usize >= report.capacity {
            violations.push(format!(
                "accounting: outcome in slot {} outside pool capacity {}",
                o.slot, report.capacity,
            ));
        }
    }

    // Fairness: equally weighted tenants that all completed work must sit
    // inside the band.
    let finished = report.tenants.iter().filter(|t| t.sessions > 0).count();
    let equal_weights = report
        .tenants
        .iter()
        .filter(|t| t.sessions > 0)
        .map(|t| t.weight)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        <= 1;
    if finished >= 2 && equal_weights {
        let spread = report.fairness_spread();
        if spread > FAIRNESS_BAND {
            violations.push(format!(
                "fairness: weight-normalized work spread {spread:.3} exceeds the \
                 {FAIRNESS_BAND} no-starvation band",
            ));
        }
    }

    ServeContractReport {
        sessions_checked: report.outcomes.len(),
        bench_checked: false,
        bench_levels: Vec::new(),
        violations,
    }
}

fn num_field(row: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = row.find(&pat)? + pat.len();
    let rest = row[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Checks the serialized serve bench rows (the contents of
/// `BENCH_serve.json`) against the service acceptance floor. Pure.
pub fn check_bench_rows(text: &str) -> ServeContractReport {
    let mut violations = Vec::new();
    let mut levels = Vec::new();
    for row in text.split('{').filter(|r| r.contains("\"sessions\"")) {
        let Some(sessions) = num_field(row, "sessions") else {
            continue;
        };
        let sessions = sessions as u64;
        levels.push(sessions);
        let p50 = num_field(row, "p50_step_ms").unwrap_or(f64::NAN);
        let p99 = num_field(row, "p99_step_ms").unwrap_or(f64::NAN);
        if !(p50 > 0.0 && p99 > 0.0 && p50 <= p99) {
            violations.push(format!(
                "bench: level {sessions} latency quantiles disordered or missing \
                 (p50 {p50} ms, p99 {p99} ms)"
            ));
        }
        match num_field(row, "cold_builds_steady") {
            Some(c) => {
                if c != 0.0 {
                    violations.push(format!(
                        "bench: level {sessions} performed {c} cold builds in steady state — \
                         the pool is not reusing slots"
                    ));
                }
            }
            None => violations.push(format!(
                "bench: level {sessions} does not report steady-state cold builds"
            )),
        }
        if let Some(spread) = num_field(row, "fairness_spread") {
            if spread > FAIRNESS_BAND {
                violations.push(format!(
                    "bench: level {sessions} fairness spread {spread:.3} exceeds the \
                     {FAIRNESS_BAND} band"
                ));
            }
        }
        if !num_field(row, "sessions_per_s").is_some_and(|s| s > 0.0) {
            violations.push(format!("bench: level {sessions} reports no throughput"));
        }
    }
    if levels.is_empty() {
        violations.push("bench: no measured serve levels found".into());
    } else if levels.iter().max().copied().unwrap_or(0) < MIN_BENCH_SESSIONS {
        violations.push(format!(
            "bench: max measured level {:?} sessions is below the {MIN_BENCH_SESSIONS} \
             concurrent-session floor",
            levels.iter().max().copied().unwrap_or(0)
        ));
    }
    ServeContractReport {
        sessions_checked: 0,
        bench_checked: true,
        bench_levels: levels,
        violations,
    }
}

/// Runs the full pass: the live pooled scenario, plus the committed
/// `BENCH_serve.json` when a workspace root carries one (clean-skipped
/// otherwise, like the other workspace-gated passes).
pub fn check_serve(workspace_root: Option<&Path>) -> ServeContractReport {
    let mut report = check_report(&run_pool_scenario(false));
    if let Some(root) = workspace_root {
        let path = root.join("BENCH_serve.json");
        if let Ok(text) = std::fs::read_to_string(&path) {
            let bench = check_bench_rows(&text);
            report.bench_checked = true;
            report.bench_levels = bench.bench_levels;
            report.violations.extend(bench.violations);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_clean_scenario_passes_and_the_leaked_one_is_caught() {
        let clean = check_report(&run_pool_scenario(false));
        assert!(clean.is_clean(), "{clean}");
        assert_eq!(clean.sessions_checked, 9);

        let leaked = check_report(&run_pool_scenario(true));
        assert!(!leaked.is_clean(), "leak went unnoticed");
        assert!(
            leaked.violations.iter().any(|v| v.contains("isolation")),
            "{leaked}"
        );
    }

    #[test]
    fn tampered_reports_are_flagged() {
        let mut report = run_pool_scenario(false);
        // Forge a tenant's telemetry: conservation must object.
        report.tenants[0].usage.set_counter(
            alya_telemetry::Scope::GLOBAL,
            Metric::ElementsAssembled,
            7,
        );
        let checked = check_report(&report);
        assert!(checked
            .violations
            .iter()
            .any(|v| v.contains("conservation")));

        // Forge the bind ledger: accounting must object.
        let mut report = run_pool_scenario(false);
        report.warm_binds += 1;
        let checked = check_report(&report);
        assert!(checked.violations.iter().any(|v| v.contains("accounting")));

        // Starve a tenant on paper: fairness must object.
        let mut report = run_pool_scenario(false);
        report.tenants[0].work_done *= 10;
        let checked = check_report(&report);
        assert!(checked.violations.iter().any(|v| v.contains("fairness")));
    }

    #[test]
    fn bench_rows_are_held_to_the_floor() {
        let good = r#"{"bench":"serve","rows":[
            {"sessions": 1, "sessions_per_s": 10.0, "p50_step_ms": 0.5, "p99_step_ms": 0.9, "fairness_spread": 0.0, "cold_builds_steady": 0},
            {"sessions": 512, "sessions_per_s": 100.0, "p50_step_ms": 0.6, "p99_step_ms": 2.0, "fairness_spread": 0.05, "cold_builds_steady": 0}]}"#;
        let report = check_bench_rows(good);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.bench_levels, vec![1, 512]);

        // Too few sessions at the top level.
        let shallow = good.replace("\"sessions\": 512", "\"sessions\": 64");
        assert!(check_bench_rows(&shallow)
            .violations
            .iter()
            .any(|v| v.contains("floor")));

        // Steady-state cold builds: the pool is not pooling.
        let colder = good.replace("\"cold_builds_steady\": 0}]", "\"cold_builds_steady\": 3}]");
        assert!(check_bench_rows(&colder)
            .violations
            .iter()
            .any(|v| v.contains("cold builds")));

        // Disordered quantiles.
        let weird = good.replace("\"p99_step_ms\": 2.0", "\"p99_step_ms\": 0.1");
        assert!(check_bench_rows(&weird)
            .violations
            .iter()
            .any(|v| v.contains("disordered")));

        // Unfair split.
        let unfair = good.replace("\"fairness_spread\": 0.05", "\"fairness_spread\": 0.9");
        assert!(check_bench_rows(&unfair)
            .violations
            .iter()
            .any(|v| v.contains("fairness")));

        assert!(!check_bench_rows("[]").is_clean());
    }

    #[test]
    fn the_workspace_bench_report_honors_the_contract() {
        let root = crate::sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
        let report = check_serve(Some(&root));
        assert!(report.is_clean(), "{report}");
        assert!(
            report.bench_checked,
            "committed BENCH_serve.json missing from the workspace"
        );
    }
}
