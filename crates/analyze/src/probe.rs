//! Pass 11 — the probe (flight recorder / black box / sentinel) checker.
//!
//! `alya-probe` is allowed to be always-on only because it is provably
//! inert: recording must not change a single assembled bit, retention
//! must stay bounded, and the post-mortem machinery must actually tell
//! the story when something wedges. This pass holds all three claims:
//!
//! * **recorder transparency** — a pipelined distributed assembly runs
//!   twice, recorder on then off, and the two RHS vectors must be
//!   bitwise identical (`f64::to_bits`, not a tolerance) with identical
//!   comm accounting. The on-run must also have recorded real events —
//!   a silently-dead recorder is a violation, not a pass;
//! * **bounded retention** — after the on-run, no per-thread ring holds
//!   more than [`alya_probe::RING_CAP`] events: the flight recorder
//!   forgets, it never grows;
//! * **black-box dump** — a seeded [`HaloFault`] trips the `alya-sched`
//!   watchdog, and the automatic dump must name every stalled stage,
//!   diagnose who was blocked on whom (`waiting on rank N`), and export
//!   a chrome trace that parses;
//! * **regression sentinel** — the committed `BENCH_drivers.json` /
//!   `BENCH_comm.json` baselines, held against themselves and the
//!   closed-form halo predictions, must keep the sentinel quiet. The
//!   same pair list, skewed, drives `audit --seed-violation
//!   perf-regression` to prove the sentinel fires.
//!
//! The sentinel half is workspace-gated like the other bench-auditing
//! passes; the recorder and dump halves always run on the live fixture.

use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use alya_core::{AssemblyInput, DistributedDriver, HaloFault, Variant};
use alya_probe as probe;
use alya_telemetry::export;

/// Rank count of the pass's distributed runs (matches the audit shard
/// count's spirit: enough ranks that every rank really exchanges halos).
pub const PROBE_RANKS: usize = 4;

/// Watchdog window for the seeded-stall dump check — long enough that a
/// healthy exchange never trips it, short enough to keep the audit fast.
pub const STALL_WINDOW: Duration = Duration::from_millis(150);

/// Variants the transparency check sweeps (one spilling, one
/// register-resident — the instrumented paths differ, the bits may not).
pub const PROBE_VARIANTS: [Variant; 2] = [Variant::Rsp, Variant::Rspr];

/// Serializes probe-global state (the enabled gate, the last-dump slot)
/// across concurrent checks in one process: a parallel test run toggling
/// the recorder off mid-stall-check would starve the dump of events.
static PROBE_GATE: Mutex<()> = Mutex::new(());

/// One `(key, baseline, live)` cell the sentinel audits.
#[derive(Debug, Clone)]
pub struct SentinelPair {
    /// Sentinel key, e.g. `melem_per_s/serial/RSPR/1t`.
    pub key: String,
    /// Committed baseline (or closed-form prediction) for the key.
    pub expected: f64,
    /// The value observed against it.
    pub measured: f64,
}

/// Outcome of checking the probe contract.
#[derive(Debug, Clone, Default)]
pub struct ProbeContractReport {
    /// Whether the recorder-transparency half ran.
    pub recorder_checked: bool,
    /// Variants whose on/off runs compared bitwise equal.
    pub transparent_variants: usize,
    /// Whether the seeded-stall dump half ran.
    pub dump_checked: bool,
    /// Whether the workspace-gated sentinel half ran (false: no
    /// committed bench reports to audit).
    pub sentinel_checked: bool,
    /// Baselines the sentinel was armed with.
    pub sentinel_baselines: usize,
    /// Every contract breach found (empty when clean).
    pub violations: Vec<String>,
}

impl ProbeContractReport {
    /// Whether the probe honored its contract (the skipped sentinel
    /// half is vacuously clean, like the other workspace-gated passes).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ProbeContractReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_clean() {
            return write!(f, "PROBE VIOLATION: {}", self.violations.join("; "));
        }
        write!(
            f,
            "probe-clean: recorder bitwise-transparent over {} variant(s); \
             seeded stall dumped and diagnosed",
            self.transparent_variants
        )?;
        if self.sentinel_checked {
            write!(
                f,
                "; sentinel quiet over {} committed baseline(s)",
                self.sentinel_baselines
            )
        } else {
            write!(f, "; sentinel skipped (no committed bench reports)")
        }
    }
}

/// Runs the full pass: transparency + retention + stall dump on the live
/// fixture, sentinel quietness against the committed bench reports when
/// `workspace_root` carries them.
pub fn check_probe(input: &AssemblyInput, workspace_root: Option<&Path>) -> ProbeContractReport {
    let _gate = PROBE_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    probe::init();
    let mut report = ProbeContractReport::default();
    check_recorder(input, &mut report);
    check_stall_dump(input, &mut report);
    if let Some(pairs) = workspace_root.and_then(sentinel_pairs_from_workspace) {
        report.sentinel_checked = true;
        let (baselines, violations) = check_sentinel_pairs(&pairs);
        report.sentinel_baselines = baselines;
        if baselines == 0 {
            report.violations.push(
                "committed bench reports yielded no sentinel baselines — \
                 the regression sentinel is unarmed"
                    .into(),
            );
        }
        report.violations.extend(violations);
    }
    report
}

/// Recorder on/off bitwise transparency + bounded ring retention.
fn check_recorder(input: &AssemblyInput, report: &mut ProbeContractReport) {
    report.recorder_checked = true;
    let driver = DistributedDriver::new(input.mesh, PROBE_RANKS);
    for variant in PROBE_VARIANTS {
        probe::set_enabled(true);
        let before = probe::total_events();
        let on = driver.assemble_sched(variant, input, None);
        let recorded = probe::total_events() - before;
        probe::set_enabled(false);
        let off = driver.assemble_sched(variant, input, None);
        probe::set_enabled(true);
        let (Ok((a, ra, _)), Ok((b, rb, _))) = (on, off) else {
            report.violations.push(format!(
                "{variant}: fault-free pipelined assembly stalled during the recorder check"
            ));
            continue;
        };
        if recorded == 0 {
            report.violations.push(format!(
                "{variant}: the recorder-on pipelined assembly recorded no events — \
                 the flight recorder is dead"
            ));
        }
        let (xs, ys) = (a.as_slice(), b.as_slice());
        let bits_equal =
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| x.to_bits() == y.to_bits());
        if !bits_equal {
            report.violations.push(format!(
                "{variant}: recorder on/off changed an RHS bit — recording is not observer-only"
            ));
        } else {
            report.transparent_variants += 1;
        }
        if ra != rb {
            report.violations.push(format!(
                "{variant}: recorder on/off changed the comm accounting"
            ));
        }
    }
    for log in &probe::snapshot("pass-11 retention check").threads {
        if log.events.len() > probe::RING_CAP {
            report.violations.push(format!(
                "thread '{}' retained {} events, past the {}-slot ring bound — \
                 the recorder is growing, not forgetting",
                log.label,
                log.events.len(),
                probe::RING_CAP
            ));
        }
    }
}

/// A seeded [`HaloFault`] must trip the watchdog *and* leave a black-box
/// dump that names the stalled stage and the rank it waited on.
fn check_stall_dump(input: &AssemblyInput, report: &mut ProbeContractReport) {
    report.dump_checked = true;
    probe::set_enabled(true);
    probe::clear_last_dump();
    let driver = DistributedDriver::new(input.mesh, PROBE_RANKS).stall_timeout(STALL_WINDOW);
    // Withhold a message that is really owed, so exactly one rank starves.
    let plan = driver.exchange_plan();
    let Some((from, to)) = (0..PROBE_RANKS as u32)
        .find_map(|r| plan.rank(r as usize).sends.first().map(|&(to, _)| (r, to)))
    else {
        report.violations.push(format!(
            "a {PROBE_RANKS}-rank decomposition of the fixture exchanges nothing — \
             no channel to fault"
        ));
        return;
    };
    let Err(stall) = driver.assemble_sched(Variant::Rsp, input, Some(HaloFault { from, to }))
    else {
        report.violations.push(format!(
            "withholding the rank {from}→{to} halo message did not trip the watchdog"
        ));
        return;
    };
    let Some(dump) = probe::last_dump() else {
        report
            .violations
            .push("the watchdog stall produced no black-box dump".into());
        return;
    };
    // Every unretired stage is named somewhere in the dump (stages that
    // never began only appear in the capture reason), and at least one —
    // the drain the starved rank is actually sitting in — carries a full
    // per-thread diagnosis line.
    for stage in &stall.stalled {
        if !dump.contains(stage) {
            report.violations.push(format!(
                "the black-box dump does not name stalled stage \"{stage}\""
            ));
        }
    }
    if !stall
        .stalled
        .iter()
        .any(|s| dump.contains(&format!("stalled in \"{s}\"")))
    {
        report.violations.push(
            "the black-box dump diagnosed no stalled stage — \
             the open-stage narrative is missing"
                .into(),
        );
    }
    if !dump.contains(&format!("waiting on rank {from}")) {
        report.violations.push(format!(
            "the black-box dump does not blame rank {from}, \
             whose halo message was withheld"
        ));
    }
    // The machine-readable export of the same snapshot must parse.
    let trace = probe::snapshot("pass-11 trace check").chrome_trace();
    if let Err(e) = export::validate_json(&trace) {
        report
            .violations
            .push(format!("the black-box chrome trace does not parse: {e}"));
    }
}

/// Scrapes sentinel `(key, baseline, live)` pairs from the committed
/// bench reports: every throughput row held against itself (drift-free
/// by construction — the quietness the pass asserts), every halo-byte
/// measurement held against its closed-form prediction, and each rank
/// row's blocked-wait fraction held against the committed overlap run.
/// `None` when neither report exists (pass skips, like pass 8).
pub fn sentinel_pairs_from_workspace(root: &Path) -> Option<Vec<SentinelPair>> {
    let drivers = std::fs::read_to_string(root.join("BENCH_drivers.json")).ok();
    let comm = std::fs::read_to_string(root.join("BENCH_comm.json")).ok();
    if drivers.is_none() && comm.is_none() {
        return None;
    }
    let mut pairs = Vec::new();
    for obj in drivers.as_deref().unwrap_or_default().split('{').skip(1) {
        let (Some(strategy), Some(threads), Some(melem)) = (
            str_field(obj, "strategy"),
            num_field(obj, "threads"),
            num_field(obj, "melem_per_s"),
        ) else {
            continue;
        };
        let variant = str_field(obj, "variant").unwrap_or_default();
        pairs.push(SentinelPair {
            key: format!("melem_per_s/{strategy}/{variant}/{}t", threads as usize),
            expected: melem,
            measured: melem,
        });
    }
    for obj in comm.as_deref().unwrap_or_default().split('{').skip(1) {
        let (Some(ranks), Some(halo), Some(predicted)) = (
            num_field(obj, "ranks"),
            num_field(obj, "halo_bytes"),
            num_field(obj, "predicted_halo_bytes"),
        ) else {
            continue;
        };
        if predicted > 0.0 {
            pairs.push(SentinelPair {
                key: format!("halo_bytes/{}r", ranks as usize),
                expected: predicted,
                measured: halo,
            });
        }
        if let (Some(wait), Some(median)) = (
            num_field(obj, "blocked_wait_on_s"),
            num_field(obj, "overlap_median_s"),
        ) {
            if median > 0.0 && wait > 0.0 {
                let frac = wait / median;
                pairs.push(SentinelPair {
                    key: format!("blocked_wait_frac/{}r", ranks as usize),
                    expected: frac,
                    measured: frac,
                });
            }
        }
    }
    Some(pairs)
}

/// Arms a [`probe::Sentinel`] with every pair's baseline, feeds it every
/// pair's live value, and returns `(baselines, drift violations)`. Pure
/// over its input — the `perf-regression` seeded audit skews the same
/// pair list and re-runs this to prove the sentinel fires.
pub fn check_sentinel_pairs(pairs: &[SentinelPair]) -> (usize, Vec<String>) {
    let mut sentinel = probe::Sentinel::new();
    for p in pairs {
        sentinel.baseline(&p.key, p.expected);
    }
    for p in pairs {
        sentinel.observe(&p.key, p.measured);
    }
    let violations = sentinel
        .drifts()
        .iter()
        .map(|d| format!("perf sentinel: {d}"))
        .collect();
    (sentinel.num_baselines(), violations)
}

/// Extracts a quoted string field from a JSON object fragment.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a numeric field from a JSON object fragment.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(key: &str, expected: f64, measured: f64) -> SentinelPair {
        SentinelPair {
            key: key.into(),
            expected,
            measured,
        }
    }

    #[test]
    fn committed_workspace_reports_arm_a_quiet_sentinel() {
        let root = crate::sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
        let pairs = sentinel_pairs_from_workspace(&root)
            .expect("the workspace commits BENCH_drivers.json and BENCH_comm.json");
        // Throughput rows, halo-byte rows, and blocked-wait fractions
        // all made it in.
        assert!(pairs.iter().any(|p| p.key.starts_with("melem_per_s/")));
        assert!(pairs.iter().any(|p| p.key.starts_with("halo_bytes/")));
        assert!(pairs
            .iter()
            .any(|p| p.key.starts_with("blocked_wait_frac/")));
        let (baselines, violations) = check_sentinel_pairs(&pairs);
        assert_eq!(baselines, pairs.len());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_skewed_pair_list_trips_the_sentinel() {
        let pairs = vec![
            pair("melem_per_s/serial/RSPR/1t", 7.2, 7.2 * 0.5),
            pair("halo_bytes/4r", 31892.0, 31892.0),
        ];
        let (baselines, violations) = check_sentinel_pairs(&pairs);
        assert_eq!(baselines, 2);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("melem_per_s/serial/RSPR/1t"));
    }

    #[test]
    fn field_scrapers_read_the_bench_row_format() {
        let row = r#""strategy": "serial-packed", "variant": "RSPR", "threads": 1,
                      "melem_per_s": 9.566, "halo_bytes": 15708,
                      "predicted_halo_bytes": 15708}"#;
        assert_eq!(str_field(row, "strategy").as_deref(), Some("serial-packed"));
        assert_eq!(str_field(row, "variant").as_deref(), Some("RSPR"));
        assert_eq!(num_field(row, "threads"), Some(1.0));
        assert_eq!(num_field(row, "melem_per_s"), Some(9.566));
        // The quoted-key search must not confuse `halo_bytes` with
        // `predicted_halo_bytes`.
        assert_eq!(num_field(row, "halo_bytes"), Some(15708.0));
        assert_eq!(num_field(row, "missing"), None);
    }
}
