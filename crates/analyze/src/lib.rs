//! # alya-analyze — static verification of the kernel contracts
//!
//! The instrumented kernels in `alya-core` don't just feed the performance
//! models — their event streams, the modelled address-space layout, and
//! the coloring infrastructure together make the paper's optimization
//! claims *mechanically checkable*. This crate runs eleven passes:
//!
//! 1. **Contract checker** ([`contracts`]) — per variant, captures element
//!    traces under **both** addressing conventions (`Layout::gpu` and
//!    `Layout::cpu`) plus whole CPU packs, and verifies them against the
//!    declarative [`alya_core::KernelContract`]: exact FP-op totals, exact
//!    traffic per address region (RSP/RSPR: zero global intermediate
//!    stores besides the RHS scatter; pack streams scale every count by
//!    `CPU_VECTOR_DIM`), the closed-form workspace formulas of the B/P and
//!    RS kernels, and the register story at the 128-register budget (RSPR:
//!    zero spills; RSP: must spill — single-element streams only; pack
//!    streams have per-lane `Def` ids and carry no register story).
//! 2. **Race detector** ([`races`]) — proves the invariants the `unsafe`
//!    scatter sites rest on: no two same-color elements share a node
//!    (colored scatter), and shard-interior nodes are exclusive to their
//!    shard with mutually consistent compact maps (sharded writeback).
//! 3. **Source lints** ([`sources`]) — `#![forbid(unsafe_code)]` in every
//!    crate except those hosting sanctioned unsafe, `unsafe` tokens only
//!    in files on the shared `alya_lint::SANCTIONED_UNSAFE` allowlist,
//!    and workspace-lint opt-in in every manifest.
//! 4. **Comm contract** ([`comm`]) — runs a fully-traced distributed
//!    assembly and holds the live exchange accounting against the
//!    closed-form halo budget: posted bytes equal
//!    `ShardSet::halo_send_slots × HALO_ENTRY_BYTES`, every message is
//!    delivered (dual-sided counters), no self-sends, and each traced
//!    slot list matches the exchange plan exactly once (no double
//!    count). The same budget validates a committed `BENCH_comm.json`.
//! 5. **Schedule contract** ([`sched`]) — replays each rank's
//!    `alya-sched` pipeline trace from a live overlapped assembly:
//!    every stage enqueued/started/retired exactly once and only after
//!    its dependencies, no buffer read before its producer retired, and
//!    the halo combine folds senders in ascending rank order — overlap
//!    may reorder arrival, never the combine.
//! 6. **Telemetry contract** ([`telemetry`]) — runs a distributed
//!    assembly inside an `alya-telemetry` session and holds the emitted
//!    report against the same closed forms: every counter equals its
//!    kernel-contract rate × elements (live Table-I deviation is zero),
//!    halo byte counters equal the exchange plan's budget, blocked-wait
//!    matches the `CommReport` (single chokepoint, no double count),
//!    span trees nest, every rank's trace carries all five pipeline
//!    stage spans, and the chrome-trace export parses.
//! 7. **Static hot-path lints** (`alya-lint`) — lexes every workspace
//!    source, builds a name-based call graph, computes the set of
//!    functions reachable from `// alya:hot` roots by fixpoint, and
//!    enforces allocation freedom, panic freedom, hash-order freedom,
//!    and telemetry granularity on that set, plus per-site `SAFETY:`
//!    linkage for every sanctioned `unsafe` block (each comment must
//!    name the proving analyzer pass and its allowlist marker).
//! 8. **SIMD contract** ([`simd`]) — holds the committed
//!    `BENCH_drivers.json` packed-vs-scalar measurements against the
//!    lane-packed execution path's two claims: packed serial assembly
//!    beats scalar at one thread for every measured variant, and the
//!    measured speedup agrees (within a generous band) with the CPU
//!    machine model's [`alya_machine::cpu::CpuModel::packed_speedup`]
//!    prediction from the traced instruction mix.
//! 9. **Serve contract** ([`serve`]) — runs a deterministic multi-tenant
//!    pooled-service scenario (`alya-serve`: three tenants, three
//!    admission waves reusing every slot warm) and checks isolation
//!    (identical work ⇒ bitwise-identical state digests across slot
//!    reuse), conservation (per-tenant telemetry equals the closed-form
//!    element total of that tenant's sessions; bind counters balance the
//!    outcome ledger), and deficit-round-robin fairness (equally loaded
//!    tenants inside the no-starvation band). The committed
//!    `BENCH_serve.json` is held to the service floor: ≥ 512 concurrent
//!    sessions, zero steady-state cold builds, ordered latency quantiles.
//! 10. **IR-derivation checker** ([`form`]) — derives every variant's
//!     program from `alya-form`'s single symbolic base description and
//!     holds both backends to the handwritten truth: generated event
//!     streams equal to the handwritten kernels' event-for-event (sampled
//!     elements, both addressing conventions), whole-mesh serial assembly
//!     through `KernelImpl::Generated` **bitwise** identical to the
//!     handwritten path, and the trace-derived [`alya_core::KernelContract`]
//!     equal to the hand-maintained table field-for-field.
//! 11. **Probe contract** ([`probe`]) — proves the always-on `alya-probe`
//!     flight recorder is inert and useful: a pipelined distributed
//!     assembly with the recorder on is **bitwise** identical to one with
//!     it off (and actually recorded events), every per-thread ring stays
//!     inside its fixed capacity, a seeded [`alya_core::HaloFault`] stall
//!     leaves a black-box dump naming the stalled stage and the blocking
//!     rank (with a parsing chrome-trace export), and the regression
//!     sentinel armed from the committed `BENCH_drivers.json` /
//!     `BENCH_comm.json` baselines stays quiet.
//!
//! Run all passes via the audit binary:
//!
//! ```text
//! cargo run -p alya-bench --bin audit
//! ```
//!
//! or programmatically with [`run_audit`]. The passes also run as ordinary
//! `cargo test` tests of this crate.
#![forbid(unsafe_code)]

pub mod comm;
pub mod contracts;
pub mod fixture;
pub mod form;
pub mod probe;
pub mod races;
pub mod sched;
pub mod serve;
pub mod simd;
pub mod sources;
pub mod telemetry;

pub use fixture::Fixture;

use std::path::Path;

/// Shard count the audit proves the sharded-scatter invariants for (a
/// several-way decomposition exercises interior/boundary classification
/// properly; the invariants are count-independent).
pub const AUDIT_SHARDS: usize = 8;

/// Combined result of all eleven passes.
#[derive(Debug)]
pub struct AuditReport {
    /// Kernel-contract violations (pass 1).
    pub contract_violations: Vec<contracts::Violation>,
    /// Race report of the production coloring on the fixture mesh (pass 2).
    pub races: races::RaceReport,
    /// Shard-invariant report of the production shard set on the fixture
    /// mesh (pass 2, sharded scatter).
    pub shards: races::ShardReport,
    /// Source-policy violations (pass 3); empty when no root was given.
    pub source_violations: Vec<sources::SourceViolation>,
    /// Comm-contract report of a fully-traced distributed assembly on the
    /// fixture mesh (pass 4).
    pub comm: comm::CommContractReport,
    /// Schedule-contract report of an overlapped distributed assembly on
    /// the fixture mesh (pass 5).
    pub sched: sched::SchedContractReport,
    /// Telemetry-contract report of a distributed assembly run inside a
    /// telemetry session on the fixture mesh (pass 6).
    pub telemetry: telemetry::TelemetryContractReport,
    /// Static hot-path/determinism/unsafe-linkage report (pass 7); a
    /// default (empty) report when no workspace root was given or the
    /// sources could not be read.
    pub lint: alya_lint::LintReport,
    /// SIMD-contract report over the committed packed-vs-scalar bench
    /// measurements (pass 8); clean-skipped when no workspace root or no
    /// `BENCH_drivers.json` was available.
    pub simd: simd::SimdContractReport,
    /// Serve isolation + fairness report of a live pooled multi-tenant
    /// scenario, plus the committed `BENCH_serve.json` when a workspace
    /// root carried one (pass 9).
    pub serve: serve::ServeContractReport,
    /// IR-derivation report: generated kernels and derived contracts held
    /// to the handwritten truth (pass 10).
    pub form: form::FormReport,
    /// Probe-contract report: recorder transparency, bounded retention,
    /// seeded-stall black-box dump, and sentinel quietness over the
    /// committed bench baselines (pass 11; the sentinel half is
    /// clean-skipped without a workspace root).
    pub probe: probe::ProbeContractReport,
}

impl AuditReport {
    /// Whether every pass came back clean.
    pub fn is_clean(&self) -> bool {
        self.contract_violations.is_empty()
            && self.races.is_race_free()
            && self.shards.is_valid()
            && self.source_violations.is_empty()
            && self.comm.is_clean()
            && self.sched.is_clean()
            && self.telemetry.is_clean()
            && self.lint.is_clean()
            && self.simd.is_clean()
            && self.serve.is_clean()
            && self.form.is_clean()
            && self.probe.is_clean()
    }

    /// Total violation count (a race counts once, a shard violation once).
    pub fn num_violations(&self) -> usize {
        self.contract_violations.len()
            + usize::from(!self.races.is_race_free())
            + usize::from(!self.shards.is_valid())
            + self.source_violations.len()
            + self.comm.violations.len()
            + self.sched.violations.len()
            + self.telemetry.violations.len()
            + self.lint.violations.len()
            + self.simd.violations.len()
            + self.serve.violations.len()
            + self.form.violations.len()
            + self.probe.violations.len()
    }
}

/// Runs all passes on the canonical fixture. `workspace_root` enables the
/// workspace-gated passes (3, 7, 8, 9's bench half and 11's sentinel
/// half; pass it `None` when the sources aren't on disk, e.g. from an
/// installed binary).
pub fn run_audit(workspace_root: Option<&Path>) -> AuditReport {
    let fx = Fixture::new();
    let input = fx.input();
    let (comm_report, _, _) = comm::check_distributed(&input, AUDIT_SHARDS);
    let (sched_report, _, _) = sched::check_distributed_schedule(&input, AUDIT_SHARDS, true);
    let (telemetry_report, _, _) = telemetry::check_distributed_telemetry(&input, AUDIT_SHARDS);
    AuditReport {
        contract_violations: contracts::check_all(&input),
        races: races::check_mesh(&fx.mesh),
        shards: races::check_mesh_shards(&fx.mesh, AUDIT_SHARDS),
        source_violations: workspace_root
            .map(sources::check_workspace)
            .unwrap_or_default(),
        comm: comm_report,
        sched: sched_report,
        telemetry: telemetry_report,
        lint: workspace_root
            .and_then(|r| alya_lint::check_workspace(r).ok())
            .unwrap_or_default(),
        simd: simd::check_workspace_simd(workspace_root),
        serve: serve::check_serve(workspace_root),
        form: form::check_form(&input),
        probe: probe::check_probe(&input, workspace_root),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_audit_of_this_workspace_is_clean() {
        let root = sources::workspace_root_from(env!("CARGO_MANIFEST_DIR"));
        let report = run_audit(Some(&root));
        assert!(report.is_clean(), "{report:#?}");
        assert_eq!(report.num_violations(), 0);
        // Pass 7 actually ran: the workspace has hot roots and a
        // non-trivial reachable set, not a silently-empty report.
        assert!(report.lint.hot_roots > 0);
        assert!(report.lint.reachable_fns >= report.lint.hot_roots);
        assert!(report.lint.files_scanned > 50);
    }
}
