//! Randomized property tests of the FEM substrate (seeded, deterministic —
//! see `alya_mesh::rng`).

use alya_fem::element::{ElementKind, Tet4, TET4_GAUSS};
use alya_fem::geometry::{physical_gradients, tet4_gradients};
use alya_fem::turbulence::{vreman_nu_t, EddyViscosityModel, Smagorinsky, Wale};
use alya_mesh::Rng64;

/// A well-shaped random tetrahedron (perturbed unit tet).
fn arb_tet(rng: &mut Rng64) -> [[f64; 3]; 4] {
    let base = [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ];
    let mut t = base;
    for corner in &mut t {
        for x in corner.iter_mut() {
            *x += rng.range_f64(-0.2, 0.2);
        }
    }
    t
}

fn arb_grad(rng: &mut Rng64) -> [[f64; 3]; 3] {
    let mut g = [[0.0; 3]; 3];
    for row in &mut g {
        for x in row.iter_mut() {
            *x = rng.range_f64(-3.0, 3.0);
        }
    }
    g
}

#[test]
fn tet_gradients_reproduce_affine_fields() {
    let mut rng = Rng64::new(0xFE301);
    let mut cases = 0;
    while cases < 64 {
        let t = arb_tet(&mut rng);
        let c = [
            rng.range_f64(-2.0, 2.0),
            rng.range_f64(-2.0, 2.0),
            rng.range_f64(-2.0, 2.0),
        ];
        let c0 = rng.range_f64(-1.0, 1.0);
        let (grads, vol) = tet4_gradients(&t);
        if vol <= 1e-4 {
            continue; // skip degenerate draws, like prop_assume
        }
        cases += 1;
        let mut g = [0.0; 3];
        for a in 0..4 {
            let u = c[0] * t[a][0] + c[1] * t[a][1] + c[2] * t[a][2] + c0;
            for d in 0..3 {
                g[d] += u * grads[a][d];
            }
        }
        for d in 0..3 {
            assert!(
                (g[d] - c[d]).abs() < 1e-9,
                "dir {}: {} vs {}",
                d,
                g[d],
                c[d]
            );
        }
    }
}

#[test]
fn gradient_rows_always_sum_to_zero() {
    let mut rng = Rng64::new(0xFE302);
    let mut cases = 0;
    while cases < 64 {
        let t = arb_tet(&mut rng);
        let (grads, vol) = tet4_gradients(&t);
        if vol.abs() <= 1e-6 {
            continue;
        }
        cases += 1;
        for d in 0..3 {
            let s: f64 = (0..4).map(|a| grads[a][d]).sum();
            assert!(s.abs() < 1e-9);
        }
    }
}

#[test]
fn generic_and_specialized_geometry_agree() {
    let mut rng = Rng64::new(0xFE303);
    let mut cases = 0;
    while cases < 64 {
        let t = arb_tet(&mut rng);
        let (gs, vol) = tet4_gradients(&t);
        if vol <= 1e-4 {
            continue;
        }
        cases += 1;
        for g in 0..4 {
            let (gg, det) = physical_gradients(ElementKind::Tet4, g, &t);
            assert!((det / 6.0 - vol).abs() < 1e-10);
            for a in 0..4 {
                for d in 0..3 {
                    assert!((gg[a][d] - gs[a][d]).abs() < 1e-8);
                }
            }
        }
    }
}

#[test]
fn quadrature_integrates_quadratics_exactly_on_random_tets() {
    let mut rng = Rng64::new(0xFE304);
    let mut cases = 0;
    while cases < 64 {
        let t = arb_tet(&mut rng);
        let c = [
            rng.range_f64(-1.0, 1.0),
            rng.range_f64(-1.0, 1.0),
            rng.range_f64(-1.0, 1.0),
        ];
        // f(x) = (c·x)^2 is quadratic: the 4-point rule is exact, so the
        // integral via the rule equals the closed form computed from nodal
        // interpolation of the *linear* field squared at Gauss points.
        let (_, vol) = tet4_gradients(&t);
        if vol <= 1e-4 {
            continue;
        }
        cases += 1;
        // Value of c·x at the nodes.
        let nodal: Vec<f64> = (0..4)
            .map(|a| c[0] * t[a][0] + c[1] * t[a][1] + c[2] * t[a][2])
            .collect();
        // Rule-based integral of (c·x)^2.
        let mut rule = 0.0;
        for g in 0..4 {
            let mut v = 0.0;
            for a in 0..4 {
                v += Tet4::SHAPE[g][a] * nodal[a];
            }
            rule += (vol / 4.0) * v * v;
        }
        // Exact: for linear v with nodal values v_a on a tet,
        // ∫ v² = V/10 (Σ v_a² + Σ_{a<b} v_a v_b).
        let mut sum_sq = 0.0;
        let mut sum_cross = 0.0;
        for a in 0..4 {
            sum_sq += nodal[a] * nodal[a];
            for b in (a + 1)..4 {
                sum_cross += nodal[a] * nodal[b];
            }
        }
        let exact = vol / 10.0 * (sum_sq + sum_cross);
        assert!(
            (rule - exact).abs() < 1e-9 * (1.0 + exact.abs()),
            "rule {rule} vs exact {exact}"
        );
    }
}

#[test]
fn gauss_points_lie_inside_the_reference_tet() {
    for g in 0..4 {
        let p = TET4_GAUSS[g];
        assert!(p.iter().all(|&x| x > 0.0));
        assert!(p.iter().sum::<f64>() < 1.0);
    }
}

#[test]
fn eddy_viscosities_are_nonnegative_and_finite() {
    let mut rng = Rng64::new(0xFE305);
    for _ in 0..64 {
        let grad = arb_grad(&mut rng);
        let delta = rng.range_f64(0.01, 1.0);
        let models: [&dyn EddyViscosityModel; 2] = [&Smagorinsky::default(), &Wale::default()];
        for m in models {
            let nu = m.nu_t(&grad, delta);
            assert!(nu.is_finite() && nu >= 0.0, "{}: {}", m.name(), nu);
        }
        let nu = vreman_nu_t(&grad, delta);
        assert!(nu.is_finite() && nu >= 0.0);
    }
}

#[test]
fn vreman_is_galilean_invariant_in_gradient() {
    let mut rng = Rng64::new(0xFE306);
    for _ in 0..64 {
        let grad = arb_grad(&mut rng);
        let delta = rng.range_f64(0.05, 0.5);
        // nu_t depends on the gradient only — identical gradients, any
        // velocity offset: trivially invariant. The meaningful invariance:
        // transposing alpha changes the result in general, but scaling by
        // -1 (flow reversal) must not.
        let neg = grad.map(|r| r.map(|v| -v));
        let a = vreman_nu_t(&grad, delta);
        let b = vreman_nu_t(&neg, delta);
        assert!((a - b).abs() < 1e-12 * (1.0 + a.abs()));
    }
}
