//! Property-based tests of the FEM substrate.

use alya_fem::element::{ElementKind, Tet4, TET4_GAUSS};
use alya_fem::geometry::{physical_gradients, tet4_gradients};
use alya_fem::turbulence::{vreman_nu_t, Smagorinsky, Wale, EddyViscosityModel};
use proptest::prelude::*;

/// Strategy: a well-shaped random tetrahedron (perturbed unit tet).
fn arb_tet() -> impl Strategy<Value = [[f64; 3]; 4]> {
    prop::array::uniform4(prop::array::uniform3(-0.2f64..0.2)).prop_map(|d| {
        let base = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let mut t = base;
        for a in 0..4 {
            for k in 0..3 {
                t[a][k] += d[a][k];
            }
        }
        t
    })
}

fn arb_grad() -> impl Strategy<Value = [[f64; 3]; 3]> {
    prop::array::uniform3(prop::array::uniform3(-3.0f64..3.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tet_gradients_reproduce_affine_fields(t in arb_tet(), c in prop::array::uniform3(-2.0f64..2.0), c0 in -1.0f64..1.0) {
        let (grads, vol) = tet4_gradients(&t);
        prop_assume!(vol > 1e-4);
        let mut g = [0.0; 3];
        for a in 0..4 {
            let u = c[0] * t[a][0] + c[1] * t[a][1] + c[2] * t[a][2] + c0;
            for d in 0..3 {
                g[d] += u * grads[a][d];
            }
        }
        for d in 0..3 {
            prop_assert!((g[d] - c[d]).abs() < 1e-9, "dir {}: {} vs {}", d, g[d], c[d]);
        }
    }

    #[test]
    fn gradient_rows_always_sum_to_zero(t in arb_tet()) {
        let (grads, vol) = tet4_gradients(&t);
        prop_assume!(vol.abs() > 1e-6);
        for d in 0..3 {
            let s: f64 = (0..4).map(|a| grads[a][d]).sum();
            prop_assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn generic_and_specialized_geometry_agree(t in arb_tet()) {
        let (gs, vol) = tet4_gradients(&t);
        prop_assume!(vol > 1e-4);
        for g in 0..4 {
            let (gg, det) = physical_gradients(ElementKind::Tet4, g, &t);
            prop_assert!((det / 6.0 - vol).abs() < 1e-10);
            for a in 0..4 {
                for d in 0..3 {
                    prop_assert!((gg[a][d] - gs[a][d]).abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn quadrature_integrates_quadratics_exactly_on_random_tets(
        t in arb_tet(),
        c in prop::array::uniform3(-1.0f64..1.0),
    ) {
        // f(x) = (c·x)^2 is quadratic: the 4-point rule is exact, so the
        // integral via the rule equals the integral via subdivision-free
        // closed form computed from nodal interpolation of the *linear*
        // field squared at Gauss points.
        let (_, vol) = tet4_gradients(&t);
        prop_assume!(vol > 1e-4);
        // Value of c·x at the nodes.
        let nodal: Vec<f64> = (0..4)
            .map(|a| c[0] * t[a][0] + c[1] * t[a][1] + c[2] * t[a][2])
            .collect();
        // Rule-based integral of (c·x)^2.
        let mut rule = 0.0;
        for g in 0..4 {
            let mut v = 0.0;
            for a in 0..4 {
                v += Tet4::SHAPE[g][a] * nodal[a];
            }
            rule += (vol / 4.0) * v * v;
        }
        // Exact: for linear v with nodal values v_a on a tet,
        // ∫ v² = V/10 (Σ v_a² + Σ_{a<b} v_a v_b).
        let mut sum_sq = 0.0;
        let mut sum_cross = 0.0;
        for a in 0..4 {
            sum_sq += nodal[a] * nodal[a];
            for b in (a + 1)..4 {
                sum_cross += nodal[a] * nodal[b];
            }
        }
        let exact = vol / 10.0 * (sum_sq + sum_cross);
        prop_assert!((rule - exact).abs() < 1e-9 * (1.0 + exact.abs()),
            "rule {} vs exact {}", rule, exact);
    }

    #[test]
    fn gauss_points_lie_inside_the_reference_tet(g in 0usize..4) {
        let p = TET4_GAUSS[g];
        prop_assert!(p.iter().all(|&x| x > 0.0));
        prop_assert!(p.iter().sum::<f64>() < 1.0);
    }

    #[test]
    fn eddy_viscosities_are_nonnegative_and_finite(grad in arb_grad(), delta in 0.01f64..1.0) {
        let models: [&dyn EddyViscosityModel; 2] = [&Smagorinsky::default(), &Wale::default()];
        for m in models {
            let nu = m.nu_t(&grad, delta);
            prop_assert!(nu.is_finite() && nu >= 0.0, "{}: {}", m.name(), nu);
        }
        let nu = vreman_nu_t(&grad, delta);
        prop_assert!(nu.is_finite() && nu >= 0.0);
    }

    #[test]
    fn vreman_is_galilean_invariant_in_gradient(grad in arb_grad(), delta in 0.05f64..0.5) {
        // nu_t depends on the gradient only — identical gradients, any
        // velocity offset: trivially invariant. The meaningful invariance:
        // transposing alpha changes the result in general, but scaling by
        // -1 (flow reversal) must not.
        let neg = grad.map(|r| r.map(|v| -v));
        let a = vreman_nu_t(&grad, delta);
        let b = vreman_nu_t(&neg, delta);
        prop_assert!((a - b).abs() < 1e-12 * (1.0 + a.abs()));
    }
}
