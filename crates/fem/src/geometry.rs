//! Element geometry: Jacobians and physical shape-function gradients.
//!
//! The generic path maps local gradients through the inverse Jacobian at each
//! Gauss point; the specialized tet path uses the closed-form constant
//! gradients ([`tet4_gradients`]) that make the paper's Specialization win
//! possible (one gradient set per element instead of one per Gauss point).

use crate::element::ElementKind;

/// 3×3 matrix as rows.
pub type Mat3 = [[f64; 3]; 3];

/// Determinant of a 3×3 matrix.
#[inline]
pub fn det3(m: &Mat3) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

/// Inverse of a 3×3 matrix; returns `None` when `|det| <= tiny`.
pub fn inv3(m: &Mat3) -> Option<Mat3> {
    let d = det3(m);
    if d.abs() <= f64::MIN_POSITIVE {
        return None;
    }
    let inv_d = 1.0 / d;
    Some([
        [
            (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_d,
            (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_d,
            (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_d,
        ],
        [
            (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_d,
            (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_d,
            (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_d,
        ],
        [
            (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_d,
            (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_d,
            (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_d,
        ],
    ])
}

/// Closed-form physical gradients and volume for a linear tetrahedron.
///
/// Returns `(grads, volume)` with `grads[a] = ∇N_a` (constant over the
/// element) and the signed volume. This is the core of the specialized path:
/// no Jacobian inversion per Gauss point, just one 3×3 solve per element.
#[inline]
pub fn tet4_gradients(coords: &[[f64; 3]; 4]) -> ([[f64; 3]; 4], f64) {
    // Jacobian rows: edge vectors from node 0.
    let j: Mat3 = [
        [
            coords[1][0] - coords[0][0],
            coords[1][1] - coords[0][1],
            coords[1][2] - coords[0][2],
        ],
        [
            coords[2][0] - coords[0][0],
            coords[2][1] - coords[0][1],
            coords[2][2] - coords[0][2],
        ],
        [
            coords[3][0] - coords[0][0],
            coords[3][1] - coords[0][1],
            coords[3][2] - coords[0][2],
        ],
    ];
    let det = det3(&j);
    let volume = det / 6.0;
    // ∇N_a = J^{-T} ∇ξ N_a; for P1 tets ∇ξ N_{1..3} are the unit axes so the
    // physical gradients are the columns of J^{-1}; node 0 closes the sum.
    let inv = inv3(&j).expect("degenerate tetrahedron");
    let mut grads = [[0.0; 3]; 4];
    for d in 0..3 {
        grads[1][d] = inv[d][0];
        grads[2][d] = inv[d][1];
        grads[3][d] = inv[d][2];
        grads[0][d] = -(inv[d][0] + inv[d][1] + inv[d][2]);
    }
    (grads, volume)
}

/// Jacobian matrix at one Gauss point of a generic element:
/// `J[d][e] = Σ_a x_a[d] · ∂N_a/∂ξ_e`.
pub fn jacobian(coords: &[[f64; 3]], local_grads: &[[f64; 3]]) -> Mat3 {
    let mut j = [[0.0; 3]; 3];
    for (x, g) in coords.iter().zip(local_grads) {
        for d in 0..3 {
            for e in 0..3 {
                j[d][e] += x[d] * g[e];
            }
        }
    }
    j
}

/// Physical shape gradients and integration measure at Gauss point `g` of a
/// generic element — the per-Gauss-point work the baseline path performs.
///
/// Returns `(grads, jac_det)`; the integration weight is
/// `kind.gauss_weight(g) * jac_det`.
pub fn physical_gradients(
    kind: ElementKind,
    g: usize,
    coords: &[[f64; 3]],
) -> (Vec<[f64; 3]>, f64) {
    let local = kind.local_gradients(g);
    let j = jacobian(coords, &local);
    let det = det3(&j);
    let inv = inv3(&j).expect("degenerate element");
    let mut grads = vec![[0.0; 3]; kind.num_nodes()];
    for (a, lg) in local.iter().enumerate() {
        for d in 0..3 {
            // ∇N_a = J^{-T} ∇ξ N_a  (inv indexed as inv[row][col] of J^{-1}).
            grads[a][d] = inv[0][d] * lg[0] + inv[1][d] * lg[1] + inv[2][d] * lg[2];
        }
    }
    (grads, det)
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT_TET: [[f64; 3]; 4] = [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
    ];

    fn random_tet(seed: u64) -> [[f64; 3]; 4] {
        // Cheap deterministic scrambling, guaranteed positive volume by
        // construction (perturbed unit tet).
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.4
        };
        let mut t = UNIT_TET;
        for p in &mut t {
            for d in 0..3 {
                p[d] += next();
            }
        }
        t
    }

    #[test]
    fn det_and_inv_roundtrip() {
        let m: Mat3 = [[2.0, 1.0, 0.5], [0.1, 3.0, 0.2], [0.4, 0.3, 1.5]];
        let inv = inv3(&m).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let id: f64 = (0..3).map(|k| m[r][k] * inv[k][c]).sum();
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((id - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inv3_rejects_singular() {
        let m: Mat3 = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]];
        assert!(inv3(&m).is_none());
    }

    #[test]
    fn unit_tet_gradients() {
        let (g, v) = tet4_gradients(&UNIT_TET);
        assert!((v - 1.0 / 6.0).abs() < 1e-15);
        assert_eq!(g[1], [1.0, 0.0, 0.0]);
        assert_eq!(g[2], [0.0, 1.0, 0.0]);
        assert_eq!(g[3], [0.0, 0.0, 1.0]);
        assert_eq!(g[0], [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn gradients_reproduce_linear_fields_exactly() {
        // For u(x) = a·x + b, Σ_a u(x_a) ∇N_a must equal a.
        let coef = [0.7, -1.3, 2.1];
        for seed in 0..10 {
            let t = random_tet(seed);
            let (g, v) = tet4_gradients(&t);
            assert!(v > 0.0, "seed {seed} inverted");
            let mut grad_u = [0.0; 3];
            for a in 0..4 {
                let u = coef[0] * t[a][0] + coef[1] * t[a][1] + coef[2] * t[a][2] + 0.5;
                for d in 0..3 {
                    grad_u[d] += u * g[a][d];
                }
            }
            for d in 0..3 {
                assert!((grad_u[d] - coef[d]).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        for seed in 0..10 {
            let (g, _) = tet4_gradients(&random_tet(seed));
            for d in 0..3 {
                let s: f64 = (0..4).map(|a| g[a][d]).sum();
                assert!(s.abs() < 1e-11);
            }
        }
    }

    #[test]
    fn generic_path_matches_specialized_on_tets() {
        for seed in 0..5 {
            let t = random_tet(seed);
            let (gs, v) = tet4_gradients(&t);
            for g in 0..4 {
                let (gg, det) = physical_gradients(ElementKind::Tet4, g, &t);
                assert!((det / 6.0 - v).abs() < 1e-12);
                for a in 0..4 {
                    for d in 0..3 {
                        assert!(
                            (gg[a][d] - gs[a][d]).abs() < 1e-10,
                            "seed {seed} gauss {g} node {a} dir {d}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hex_jacobian_of_unit_cube() {
        // Unit cube [0,1]^3 maps from [-1,1]^3 with J = I/2, det = 1/8.
        let corners: Vec<[f64; 3]> = (0..8)
            .map(|i| [(i & 1) as f64, ((i >> 1) & 1) as f64, ((i >> 2) & 1) as f64])
            .collect();
        // Reorder to hex convention (0,1,2,3 bottom loop; 4..7 top loop).
        let hex = [
            corners[0], corners[1], corners[3], corners[2], corners[4], corners[5], corners[7],
            corners[6],
        ];
        for g in 0..8 {
            let (_, det) = physical_gradients(ElementKind::Hex8, g, &hex);
            assert!((det - 0.125).abs() < 1e-13);
        }
        // Total integrated volume = Σ_g w_g det = 8 × 1 × 1/8 = 1.
        let vol: f64 = (0..8)
            .map(|g| {
                let (_, det) = physical_gradients(ElementKind::Hex8, g, &hex);
                ElementKind::Hex8.gauss_weight(g) * det
            })
            .sum();
        assert!((vol - 1.0).abs() < 1e-13);
    }

    #[test]
    fn hex_gradients_reproduce_linear_field() {
        let hex = [
            [0.0, 0.0, 0.0],
            [1.1, 0.0, 0.1],
            [1.2, 1.0, 0.0],
            [0.1, 1.1, 0.0],
            [0.0, 0.1, 1.0],
            [1.0, 0.0, 1.2],
            [1.1, 1.0, 1.1],
            [0.0, 1.0, 1.0],
        ];
        let coef = [0.3, -0.8, 1.4];
        for g in 0..8 {
            let (grads, _) = physical_gradients(ElementKind::Hex8, g, &hex);
            let mut grad_u = [0.0; 3];
            for a in 0..8 {
                let u = coef[0] * hex[a][0] + coef[1] * hex[a][1] + coef[2] * hex[a][2] + 2.0;
                for d in 0..3 {
                    grad_u[d] += u * grads[a][d];
                }
            }
            for d in 0..3 {
                assert!((grad_u[d] - coef[d]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn prism_gradients_reproduce_linear_field() {
        let prism = [
            [0.0, 0.0, 0.0],
            [1.0, 0.1, 0.0],
            [0.0, 1.0, 0.1],
            [0.1, 0.0, 1.0],
            [1.1, 0.0, 1.1],
            [0.0, 1.1, 1.0],
        ];
        let coef = [1.0, 0.5, -0.25];
        for g in 0..6 {
            let (grads, det) = physical_gradients(ElementKind::Prism6, g, &prism);
            assert!(det > 0.0);
            let mut grad_u = [0.0; 3];
            for a in 0..6 {
                let u = coef[0] * prism[a][0] + coef[1] * prism[a][1] + coef[2] * prism[a][2];
                for d in 0..3 {
                    grad_u[d] += u * grads[a][d];
                }
            }
            for d in 0..3 {
                assert!((grad_u[d] - coef[d]).abs() < 1e-10);
            }
        }
    }
}
