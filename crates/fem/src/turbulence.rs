//! Vreman eddy-viscosity LES model.
//!
//! Vreman (Phys. Fluids 16, 2004): with the velocity-gradient tensor
//! `α_ij = ∂u_j / ∂x_i`, `β_ij = Δ² α_mi α_mj` and
//! `B_β = β11 β22 − β12² + β11 β33 − β13² + β22 β33 − β23²`,
//! the eddy viscosity is `ν_t = c √(B_β / (α_ij α_ij))`, zero for vanishing
//! gradients. The model is algebraic and local — precisely why the paper can
//! fold it into the assembly (compute it "on the fly") and, for linear
//! tetrahedra with constant velocity gradients, evaluate it **once per
//! element** instead of once per Gauss point.

/// The Vreman model constant `c ≈ 2.5 C_s²` with the Smagorinsky constant
/// `C_s ≈ 0.17`, giving the commonly used 0.07.
pub const VREMAN_C: f64 = 0.07;

/// Vreman model with configurable constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VremanModel {
    /// Model constant `c`.
    pub c: f64,
}

impl Default for VremanModel {
    fn default() -> Self {
        Self { c: VREMAN_C }
    }
}

impl VremanModel {
    /// Eddy viscosity from a velocity-gradient tensor `grad[i][j] = ∂u_j/∂x_i`
    /// and filter width `delta` (cube root of the element volume in Alya).
    pub fn nu_t(&self, grad: &[[f64; 3]; 3], delta: f64) -> f64 {
        vreman_nu_t_with_c(grad, delta, self.c)
    }
}

/// Free-function form with the default constant (what the specialized
/// assembly kernels inline).
#[inline]
pub fn vreman_nu_t(grad: &[[f64; 3]; 3], delta: f64) -> f64 {
    vreman_nu_t_with_c(grad, delta, VREMAN_C)
}

/// Vreman eddy viscosity with explicit model constant.
#[inline]
pub fn vreman_nu_t_with_c(grad: &[[f64; 3]; 3], delta: f64, c: f64) -> f64 {
    // α_ij α_ij
    let mut alpha2 = 0.0;
    for row in grad {
        for &g in row {
            alpha2 += g * g;
        }
    }
    if alpha2 <= f64::MIN_POSITIVE {
        return 0.0;
    }
    // β_ij = Δ² Σ_m α_mi α_mj  (symmetric 3×3)
    let d2 = delta * delta;
    let mut beta = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in i..3 {
            let mut s = 0.0;
            for m in grad {
                s += m[i] * m[j];
            }
            beta[i][j] = d2 * s;
            beta[j][i] = beta[i][j];
        }
    }
    let b_beta = beta[0][0] * beta[1][1] - beta[0][1] * beta[0][1] + beta[0][0] * beta[2][2]
        - beta[0][2] * beta[0][2]
        + beta[1][1] * beta[2][2]
        - beta[1][2] * beta[1][2];
    // Numerical noise can push B_β slightly negative; clamp.
    if b_beta <= 0.0 {
        return 0.0;
    }
    c * (b_beta / alpha2).sqrt()
}

// --- The generality catalogue -----------------------------------------------
//
// Alya's unspecialized assembly lets the user pick among several eddy-
// viscosity models at run time — exactly the kind of flexibility the
// paper's Specialization trades away (it keeps only Vreman). The other
// common algebraic models are provided here so the generic path has a
// catalogue to dispatch over (and so downstream users of this library are
// not locked to one closure).

/// A runtime-selectable algebraic eddy-viscosity model.
pub trait EddyViscosityModel: Send + Sync {
    /// ν_t from the velocity-gradient tensor (`grad[i][j] = ∂u_j/∂x_i`)
    /// and filter width `delta`.
    fn nu_t(&self, grad: &[[f64; 3]; 3], delta: f64) -> f64;
    /// Model name for reports.
    fn name(&self) -> &'static str;
}

impl EddyViscosityModel for VremanModel {
    fn nu_t(&self, grad: &[[f64; 3]; 3], delta: f64) -> f64 {
        VremanModel::nu_t(self, grad, delta)
    }
    fn name(&self) -> &'static str {
        "Vreman"
    }
}

/// Classic Smagorinsky: `ν_t = (C_s Δ)² |S|`, `|S| = √(2 S_ij S_ij)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Smagorinsky {
    /// Smagorinsky constant (≈ 0.17 for isotropic turbulence).
    pub cs: f64,
}

impl Default for Smagorinsky {
    fn default() -> Self {
        Self { cs: 0.17 }
    }
}

impl EddyViscosityModel for Smagorinsky {
    fn nu_t(&self, grad: &[[f64; 3]; 3], delta: f64) -> f64 {
        let mut s2 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let s = 0.5 * (grad[i][j] + grad[j][i]);
                s2 += s * s;
            }
        }
        let s_mag = (2.0 * s2).sqrt();
        (self.cs * delta).powi(2) * s_mag
    }
    fn name(&self) -> &'static str {
        "Smagorinsky"
    }
}

/// WALE (Wall-Adapting Local Eddy-viscosity, Nicoud & Ducros 1999):
/// `ν_t = (C_w Δ)² (S^d:S^d)^{3/2} / ((S:S)^{5/2} + (S^d:S^d)^{5/4})`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wale {
    /// WALE constant (≈ 0.5).
    pub cw: f64,
}

impl Default for Wale {
    fn default() -> Self {
        Self { cw: 0.5 }
    }
}

impl EddyViscosityModel for Wale {
    fn nu_t(&self, grad: &[[f64; 3]; 3], delta: f64) -> f64 {
        // g2 = grad · grad
        let mut g2 = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    g2[i][j] += grad[i][k] * grad[k][j];
                }
            }
        }
        let tr = (g2[0][0] + g2[1][1] + g2[2][2]) / 3.0;
        let mut sd2 = 0.0;
        let mut ss = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let sd = 0.5 * (g2[i][j] + g2[j][i]) - if i == j { tr } else { 0.0 };
                sd2 += sd * sd;
                let s = 0.5 * (grad[i][j] + grad[j][i]);
                ss += s * s;
            }
        }
        let denom = ss.powf(2.5) + sd2.powf(1.25);
        if denom <= f64::MIN_POSITIVE {
            return 0.0;
        }
        (self.cw * delta).powi(2) * sd2.powf(1.5) / denom
    }
    fn name(&self) -> &'static str {
        "WALE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_gradient_gives_zero_viscosity() {
        let grad = [[0.0; 3]; 3];
        assert_eq!(vreman_nu_t(&grad, 0.1), 0.0);
    }

    /// Solid-body rotation: B_β = ω⁴Δ⁴ ≠ 0, so Vreman stays positive there
    /// (unlike for pure shear, the model's designed zero-dissipation state).
    #[test]
    fn solid_body_rotation_gives_finite_viscosity() {
        let omega = 3.0;
        // u = ω × x with ω = (0,0,ω): u = (-ω y, ω x, 0);
        // grad[i][j] = ∂u_j/∂x_i.
        let grad = [[0.0, omega, 0.0], [-omega, 0.0, 0.0], [0.0, 0.0, 0.0]];
        let delta = 0.5;
        let nu = vreman_nu_t(&grad, delta);
        // B_β = ω⁴Δ⁴, α² = 2ω² -> ν_t = c Δ² ω / √2.
        let expect = VREMAN_C * delta * delta * omega / 2.0f64.sqrt();
        assert!((nu - expect).abs() < 1e-12, "nu_t = {nu}, expect {expect}");
    }

    /// For a simple shear du/dy = S: Vreman gives ν_t = 0 (one of the model's
    /// designed no-dissipation states for pure shear aligned flows).
    #[test]
    fn pure_shear_gives_zero_viscosity() {
        let s = 2.0;
        // u = (S y, 0, 0): grad[1][0] = S, rest 0.
        let mut grad = [[0.0; 3]; 3];
        grad[1][0] = s;
        let nu = vreman_nu_t(&grad, 1.0);
        assert!(nu.abs() < 1e-12, "nu_t = {nu}");
    }

    /// Axisymmetric strain produces positive eddy viscosity.
    #[test]
    fn strain_gives_positive_viscosity() {
        let grad = [[2.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, -1.0]];
        let nu = vreman_nu_t(&grad, 0.1);
        assert!(nu > 0.0);
    }

    #[test]
    fn nu_t_scales_with_delta() {
        let grad = [[2.0, 0.3, 0.0], [0.1, -1.0, 0.2], [0.0, 0.4, -1.0]];
        let nu1 = vreman_nu_t(&grad, 0.1);
        let nu2 = vreman_nu_t(&grad, 0.2);
        // β ∝ Δ², B_β ∝ Δ⁴, ν_t ∝ Δ².
        assert!((nu2 / nu1 - 4.0).abs() < 1e-10);
    }

    #[test]
    fn nu_t_is_scale_invariant_in_strain_times_delta_squared() {
        // ν_t(k·grad, Δ) = k · ν_t(grad, Δ): B_β ∝ k⁴, α² ∝ k².
        let grad = [[1.0, 0.5, 0.0], [0.2, -0.7, 0.1], [0.3, 0.0, -0.3]];
        let scaled = grad.map(|r| r.map(|v| 3.0 * v));
        let a = vreman_nu_t(&grad, 0.25);
        let b = vreman_nu_t(&scaled, 0.25);
        assert!((b / a - 3.0).abs() < 1e-10);
    }

    #[test]
    fn custom_constant_scales_linearly() {
        let grad = [[2.0, 0.0, 0.0], [0.0, -1.0, 0.0], [0.0, 0.0, -1.0]];
        let a = vreman_nu_t_with_c(&grad, 0.1, 0.07);
        let b = vreman_nu_t_with_c(&grad, 0.1, 0.14);
        assert!((b / a - 2.0).abs() < 1e-12);
        let model = VremanModel { c: 0.14 };
        assert!((model.nu_t(&grad, 0.1) - b).abs() < 1e-15);
    }

    #[test]
    fn default_model_uses_standard_constant() {
        assert_eq!(VremanModel::default().c, VREMAN_C);
    }

    // --- the generality catalogue ---

    fn all_models() -> Vec<Box<dyn EddyViscosityModel>> {
        vec![
            Box::new(VremanModel::default()),
            Box::new(Smagorinsky::default()),
            Box::new(Wale::default()),
        ]
    }

    #[test]
    fn all_models_vanish_at_rest_and_are_nonnegative() {
        let zero = [[0.0; 3]; 3];
        let strained = [[2.0, 0.3, 0.0], [0.1, -1.0, 0.2], [0.0, 0.4, -1.0]];
        for m in all_models() {
            assert_eq!(m.nu_t(&zero, 0.1), 0.0, "{} at rest", m.name());
            assert!(m.nu_t(&strained, 0.1) >= 0.0, "{} negative", m.name());
        }
    }

    #[test]
    fn smagorinsky_matches_closed_form_on_pure_shear() {
        // du/dy = S: |S| = S, nu_t = (Cs d)^2 S. (Smagorinsky does NOT
        // vanish in pure shear — the defect Vreman and WALE fix.)
        let s = 2.0;
        let mut grad = [[0.0; 3]; 3];
        grad[1][0] = s;
        let m = Smagorinsky { cs: 0.17 };
        let expect = (0.17f64 * 0.1).powi(2) * s;
        assert!((m.nu_t(&grad, 0.1) - expect).abs() < 1e-14);
        // Vreman vanishes there.
        assert!(VremanModel::default().nu_t(&grad, 0.1).abs() < 1e-14);
    }

    #[test]
    fn wale_vanishes_in_pure_shear() {
        // WALE's wall-adapting property: S^d = 0 for pure shear.
        let mut grad = [[0.0; 3]; 3];
        grad[1][0] = 3.0;
        let nu = Wale::default().nu_t(&grad, 0.2);
        assert!(nu.abs() < 1e-14, "WALE in pure shear: {nu}");
    }

    #[test]
    fn wale_active_under_rotation_plus_strain() {
        let grad = [[1.0, 2.0, 0.0], [-2.0, -0.5, 0.3], [0.1, 0.0, -0.5]];
        assert!(Wale::default().nu_t(&grad, 0.1) > 0.0);
    }

    #[test]
    fn all_models_scale_as_delta_squared() {
        let grad = [[2.0, 0.3, 0.1], [0.1, -1.0, 0.2], [0.3, 0.4, -1.0]];
        for m in all_models() {
            let a = m.nu_t(&grad, 0.1);
            let b = m.nu_t(&grad, 0.2);
            if a > 0.0 {
                assert!((b / a - 4.0).abs() < 1e-10, "{}: {}", m.name(), b / a);
            }
        }
    }
}
