//! Constitutive (density / viscosity) models.
//!
//! Alya's default assembly supports property laws that depend on other
//! unknowns (e.g. temperature), evaluated by dedicated subroutines selected
//! from the input file at run time. The paper's Specialization replaces this
//! with compile-time constants. Both paths exist here:
//!
//! * [`ConstitutiveModel`] — the runtime-dispatched generality the baseline
//!   **B** variant drags through the assembly;
//! * [`ConstantProperties`] — the specialized constants the **S** variants
//!   bake in.

/// Runtime-selected property law, evaluated per Gauss point.
pub trait ConstitutiveModel: Send + Sync {
    /// Density at the given temperature.
    fn density(&self, temperature: f64) -> f64;
    /// Dynamic viscosity at the given temperature.
    fn viscosity(&self, temperature: f64) -> f64;

    /// True when the law ignores the temperature (lets callers hoist).
    fn is_constant(&self) -> bool {
        false
    }
}

/// Constant density and viscosity — the overwhelmingly common case the paper
/// specializes for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantProperties {
    /// Density ρ.
    pub density: f64,
    /// Dynamic viscosity μ.
    pub viscosity: f64,
}

impl ConstantProperties {
    /// Air-like defaults (ρ = 1.2 kg/m³, μ = 1.8e-5 Pa·s), the Bolund
    /// atmospheric-boundary-layer setting.
    pub const AIR: Self = Self {
        density: 1.2,
        viscosity: 1.8e-5,
    };

    /// Water-like properties.
    pub const WATER: Self = Self {
        density: 1000.0,
        viscosity: 1.0e-3,
    };

    /// Unit properties (useful in tests).
    pub const UNIT: Self = Self {
        density: 1.0,
        viscosity: 1.0,
    };

    /// Kinematic viscosity ν = μ/ρ.
    pub fn kinematic_viscosity(&self) -> f64 {
        self.viscosity / self.density
    }
}

impl ConstitutiveModel for ConstantProperties {
    fn density(&self, _temperature: f64) -> f64 {
        self.density
    }

    fn viscosity(&self, _temperature: f64) -> f64 {
        self.viscosity
    }

    fn is_constant(&self) -> bool {
        true
    }
}

/// Ideal-gas density with Sutherland viscosity — a representative
/// temperature-dependent law exercising the generic path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SutherlandAir {
    /// Reference pressure over the gas constant, `p / R` (so ρ = pR⁻¹ / T).
    pub p_over_r: f64,
    /// Sutherland reference viscosity μ₀ at T₀.
    pub mu0: f64,
    /// Sutherland reference temperature T₀.
    pub t0: f64,
    /// Sutherland constant S.
    pub s: f64,
}

impl SutherlandAir {
    /// Standard air coefficients at atmospheric pressure.
    pub fn standard() -> Self {
        Self {
            p_over_r: 101_325.0 / 287.05,
            mu0: 1.716e-5,
            t0: 273.15,
            s: 110.4,
        }
    }
}

impl ConstitutiveModel for SutherlandAir {
    fn density(&self, temperature: f64) -> f64 {
        self.p_over_r / temperature
    }

    fn viscosity(&self, temperature: f64) -> f64 {
        self.mu0 * (temperature / self.t0).powf(1.5) * (self.t0 + self.s) / (temperature + self.s)
    }
}

/// Linear-in-temperature law (Boussinesq-style), another generic-path case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearTemperature {
    /// Density at the reference temperature.
    pub rho_ref: f64,
    /// Viscosity at the reference temperature.
    pub mu_ref: f64,
    /// Reference temperature.
    pub t_ref: f64,
    /// Thermal expansion coefficient β (ρ = ρ_ref (1 − β (T − T_ref))).
    pub beta: f64,
}

impl ConstitutiveModel for LinearTemperature {
    fn density(&self, temperature: f64) -> f64 {
        self.rho_ref * (1.0 - self.beta * (temperature - self.t_ref))
    }

    fn viscosity(&self, _temperature: f64) -> f64 {
        self.mu_ref
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_properties_ignore_temperature() {
        let m = ConstantProperties::AIR;
        assert_eq!(m.density(250.0), m.density(350.0));
        assert_eq!(m.viscosity(250.0), m.viscosity(350.0));
        assert!(m.is_constant());
    }

    #[test]
    fn kinematic_viscosity() {
        let m = ConstantProperties {
            density: 2.0,
            viscosity: 3.0,
        };
        assert!((m.kinematic_viscosity() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn sutherland_matches_reference_point() {
        let m = SutherlandAir::standard();
        assert!((m.viscosity(273.15) - 1.716e-5).abs() < 1e-9);
        // Viscosity of gases increases with temperature.
        assert!(m.viscosity(350.0) > m.viscosity(273.15));
        // Ideal-gas density decreases with temperature.
        assert!(m.density(350.0) < m.density(273.15));
        assert!(!m.is_constant());
    }

    #[test]
    fn sutherland_air_density_near_1_2() {
        let m = SutherlandAir::standard();
        let rho = m.density(293.15);
        assert!((rho - 1.204).abs() < 0.01, "rho = {rho}");
    }

    #[test]
    fn linear_temperature_density_slope() {
        let m = LinearTemperature {
            rho_ref: 1000.0,
            mu_ref: 1e-3,
            t_ref: 300.0,
            beta: 2e-4,
        };
        assert!((m.density(300.0) - 1000.0).abs() < 1e-12);
        assert!((m.density(310.0) - 998.0).abs() < 1e-9);
        assert_eq!(m.viscosity(500.0), 1e-3);
    }

    #[test]
    fn trait_objects_dispatch() {
        let models: Vec<Box<dyn ConstitutiveModel>> = vec![
            Box::new(ConstantProperties::UNIT),
            Box::new(SutherlandAir::standard()),
        ];
        assert_eq!(models[0].density(300.0), 1.0);
        assert!(models[1].density(300.0) > 1.0);
    }
}
