//! Dirichlet boundary conditions.
//!
//! The LES examples need walls (no-slip), inflow profiles and free-slip
//! lids. A [`DirichletBc`] marks constrained nodes with their prescribed
//! values; applying it to a field sets the values, applying it to an RHS
//! zeroes the constrained entries (strong imposition for explicit stepping).

use alya_mesh::TetMesh;

use crate::fields::{ScalarField, VectorField};

/// A set of per-node vector constraints (componentwise).
#[derive(Debug, Clone, Default)]
pub struct DirichletBc {
    /// `(node, component, value)` triplets, deduplicated on build.
    constraints: Vec<(u32, u8, f64)>,
}

impl DirichletBc {
    /// Empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Constrains component `component` of node `node` to `value`.
    pub fn fix(&mut self, node: usize, component: usize, value: f64) {
        debug_assert!(component < 3);
        self.constraints.push((node as u32, component as u8, value));
    }

    /// Constrains all three components of `node` to `value`.
    pub fn fix_vector(&mut self, node: usize, value: [f64; 3]) {
        for d in 0..3 {
            self.fix(node, d, value[d]);
        }
    }

    /// Marks every node selected by `pred` (on its coordinates) with the
    /// value produced by `value`.
    pub fn fix_where(
        &mut self,
        mesh: &TetMesh,
        pred: impl Fn([f64; 3]) -> bool,
        value: impl Fn([f64; 3]) -> [f64; 3],
    ) {
        for (n, &p) in mesh.coords().iter().enumerate() {
            if pred(p) {
                self.fix_vector(n, value(p));
            }
        }
    }

    /// No-slip (zero velocity) on all nodes with `z` below `z_tol`.
    pub fn no_slip_ground(mesh: &TetMesh, z_tol: f64) -> Self {
        let mut bc = Self::new();
        bc.fix_where(mesh, |p| p[2] <= z_tol, |_| [0.0; 3]);
        bc
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraint is set.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Writes the prescribed values into the field.
    pub fn apply_to_field(&self, field: &mut VectorField) {
        for &(node, comp, value) in &self.constraints {
            let n = node as usize;
            let mut v = field.get(n);
            v[comp as usize] = value;
            field.set(n, v);
        }
    }

    /// Zeroes constrained entries of an assembled RHS (their equations are
    /// replaced by the constraint).
    pub fn zero_rhs(&self, rhs: &mut VectorField) {
        for &(node, comp, _) in &self.constraints {
            let n = node as usize;
            let mut v = rhs.get(n);
            v[comp as usize] = 0.0;
            rhs.set(n, v);
        }
    }

    /// Zeroes constrained nodes of a scalar RHS (pressure fixes).
    pub fn zero_scalar_rhs(&self, rhs: &mut ScalarField) {
        for &(node, _, _) in &self.constraints {
            rhs.set(node as usize, 0.0);
        }
    }

    /// Iterates over `(node, component, value)` constraints.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.constraints
            .iter()
            .map(|&(n, c, v)| (n as usize, c as usize, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_mesh::BoxMeshBuilder;

    #[test]
    fn fix_and_apply() {
        let mut bc = DirichletBc::new();
        bc.fix(2, 1, 5.0);
        let mut f = VectorField::zeros(4);
        bc.apply_to_field(&mut f);
        assert_eq!(f.get(2), [0.0, 5.0, 0.0]);
        assert_eq!(bc.len(), 1);
    }

    #[test]
    fn no_slip_ground_selects_bottom_nodes() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        let bc = DirichletBc::no_slip_ground(&mesh, 1e-9);
        // Bottom plane of a 3×3×3-box mesh has 4×4 nodes, 3 components each.
        assert_eq!(bc.len(), 16 * 3);
        let mut f = VectorField::from_fn(&mesh, |_| [1.0, 1.0, 1.0]);
        bc.apply_to_field(&mut f);
        for (n, &p) in mesh.coords().iter().enumerate() {
            if p[2] <= 1e-9 {
                assert_eq!(f.get(n), [0.0, 0.0, 0.0]);
            } else {
                assert_eq!(f.get(n), [1.0, 1.0, 1.0]);
            }
        }
    }

    #[test]
    fn zero_rhs_only_touches_constrained_components() {
        let mut bc = DirichletBc::new();
        bc.fix(1, 0, 9.0);
        let mut rhs = VectorField::zeros(2);
        rhs.set(1, [3.0, 4.0, 5.0]);
        bc.zero_rhs(&mut rhs);
        assert_eq!(rhs.get(1), [0.0, 4.0, 5.0]);
    }

    #[test]
    fn fix_where_with_profile() {
        let mesh = BoxMeshBuilder::new(2, 2, 2).build();
        let mut bc = DirichletBc::new();
        // Inflow at x = 0 with a z-dependent profile.
        bc.fix_where(&mesh, |p| p[0] <= 1e-12, |p| [p[2] * 2.0, 0.0, 0.0]);
        let mut f = VectorField::zeros(mesh.num_nodes());
        bc.apply_to_field(&mut f);
        for (n, &p) in mesh.coords().iter().enumerate() {
            if p[0] <= 1e-12 {
                assert!((f.get(n)[0] - 2.0 * p[2]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn scalar_rhs_zeroing() {
        let mut bc = DirichletBc::new();
        bc.fix(0, 0, 1.0);
        let mut rhs = ScalarField::from_values(vec![7.0, 8.0]);
        bc.zero_scalar_rhs(&mut rhs);
        assert_eq!(rhs.get(0), 0.0);
        assert_eq!(rhs.get(1), 8.0);
    }
}
