//! # alya-fem — finite-element substrate
//!
//! Everything the Navier–Stokes RHS assembly consumes: reference elements and
//! shape functions, Gauss quadrature, element geometry (Jacobians and
//! physical shape-function gradients), nodal field containers, the Vreman
//! eddy-viscosity LES model, constitutive (density/viscosity) models, and
//! Dirichlet boundary conditions.
//!
//! Two parallel APIs mirror the paper's *Specialization* axis:
//!
//! * a **generic** path — runtime element kinds ([`element::ElementKind`]),
//!   per-Gauss-point shape gradients, constitutive models evaluated through
//!   [`material::ConstitutiveModel`], turbulence evaluated per Gauss point —
//!   this is what the **B**aseline assembly variant uses, paying the paper's
//!   "generality tax";
//! * a **specialized** path — compile-time linear tetrahedra
//!   ([`element::Tet4`]) with constant shape gradients
//!   ([`geometry::tet4_gradients`]), constant material properties, and the
//!   per-element Vreman evaluation ([`turbulence::vreman_nu_t`]) — what the
//!   **S** variants use.
//!
//! ```
//! use alya_fem::geometry::tet4_gradients;
//!
//! let coords = [
//!     [0.0, 0.0, 0.0],
//!     [1.0, 0.0, 0.0],
//!     [0.0, 1.0, 0.0],
//!     [0.0, 0.0, 1.0],
//! ];
//! let (grads, volume) = tet4_gradients(&coords);
//! assert!((volume - 1.0 / 6.0).abs() < 1e-14);
//! // Shape-gradient rows sum to zero (partition of unity differentiated).
//! for d in 0..3 {
//!     let s: f64 = (0..4).map(|a| grads[a][d]).sum();
//!     assert!(s.abs() < 1e-12);
//! }
//! ```

#![forbid(unsafe_code)]

pub mod bc;
pub mod element;
pub mod fields;
pub mod geometry;
pub mod material;
pub mod quadrature;
pub mod turbulence;

pub use element::{ElementKind, Tet4};
pub use fields::{ScalarField, VectorField};
pub use geometry::tet4_gradients;
pub use material::{ConstantProperties, ConstitutiveModel};
pub use turbulence::VremanModel;
