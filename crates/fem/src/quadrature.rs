//! Quadrature rules.
//!
//! The element tables in [`crate::element`] hard-wire the rules Alya uses
//! (4-point tet, 2×2×2 hex, 6-point wedge); this module provides the general
//! rule families those tables are drawn from, used for validation and by the
//! pressure-Poisson assembly in `alya-solver`.

/// A quadrature rule on some reference domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Quadrature {
    /// Point locations in reference coordinates.
    pub points: Vec<[f64; 3]>,
    /// Weights (sum to the reference-domain measure).
    pub weights: Vec<f64>,
}

impl Quadrature {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the rule has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Integrates `f` over the reference domain.
    pub fn integrate(&self, mut f: impl FnMut([f64; 3]) -> f64) -> f64 {
        self.points
            .iter()
            .zip(&self.weights)
            .map(|(&p, &w)| w * f(p))
            .sum()
    }
}

/// Gauss–Legendre rule with `n` points on `[-1, 1]` (exact to degree 2n−1).
/// Supports `n` in `1..=4`.
pub fn gauss_legendre_1d(n: usize) -> (Vec<f64>, Vec<f64>) {
    match n {
        1 => (vec![0.0], vec![2.0]),
        2 => {
            let q = 1.0 / 3.0f64.sqrt();
            (vec![-q, q], vec![1.0, 1.0])
        }
        3 => {
            let q = (3.0f64 / 5.0).sqrt();
            (vec![-q, 0.0, q], vec![5.0 / 9.0, 8.0 / 9.0, 5.0 / 9.0])
        }
        4 => {
            let a = (3.0 / 7.0 - 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let b = (3.0 / 7.0 + 2.0 / 7.0 * (6.0f64 / 5.0).sqrt()).sqrt();
            let wa = (18.0 + 30.0f64.sqrt()) / 36.0;
            let wb = (18.0 - 30.0f64.sqrt()) / 36.0;
            (vec![-b, -a, a, b], vec![wb, wa, wa, wb])
        }
        _ => panic!("gauss_legendre_1d supports 1..=4 points, got {n}"),
    }
}

/// Tensor-product Gauss rule on the reference hex `[-1, 1]^3`.
pub fn hex_rule(n: usize) -> Quadrature {
    let (x, w) = gauss_legendre_1d(n);
    let mut points = Vec::with_capacity(n * n * n);
    let mut weights = Vec::with_capacity(n * n * n);
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                points.push([x[i], x[j], x[k]]);
                weights.push(w[i] * w[j] * w[k]);
            }
        }
    }
    Quadrature { points, weights }
}

/// Symmetric rules on the reference tetrahedron (measure 1/6),
/// exact to the given polynomial `degree` (supports 1..=3).
pub fn tet_rule(degree: usize) -> Quadrature {
    match degree {
        0 | 1 => Quadrature {
            points: vec![[0.25, 0.25, 0.25]],
            weights: vec![1.0 / 6.0],
        },
        2 => {
            let a = (5.0 + 3.0 * 5.0f64.sqrt()) / 20.0;
            let b = (5.0 - 5.0f64.sqrt()) / 20.0;
            Quadrature {
                points: vec![[b, b, b], [a, b, b], [b, a, b], [b, b, a]],
                weights: vec![1.0 / 24.0; 4],
            }
        }
        3 => {
            // 5-point rule: centroid (negative weight) + 4 symmetric points.
            let a = 0.5;
            let b = 1.0 / 6.0;
            Quadrature {
                points: vec![
                    [0.25, 0.25, 0.25],
                    [b, b, b],
                    [a, b, b],
                    [b, a, b],
                    [b, b, a],
                ],
                weights: vec![
                    -4.0 / 30.0,
                    9.0 / 120.0,
                    9.0 / 120.0,
                    9.0 / 120.0,
                    9.0 / 120.0,
                ],
            }
        }
        _ => panic!("tet_rule supports degree 1..=3, got {degree}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact monomial integrals over the reference tet:
    /// ∫ ξ^p η^q ζ^r dV = p! q! r! / (p+q+r+3)!.
    fn tet_monomial(p: u32, q: u32, r: u32) -> f64 {
        fn fact(n: u32) -> f64 {
            (1..=n).map(|k| k as f64).product()
        }
        fact(p) * fact(q) * fact(r) / fact(p + q + r + 3)
    }

    #[test]
    fn gauss_legendre_integrates_polynomials() {
        for n in 1..=4 {
            let (x, w) = gauss_legendre_1d(n);
            assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-14);
            // Exact through degree 2n-1.
            for degree in 0..(2 * n) {
                let num: f64 = x
                    .iter()
                    .zip(&w)
                    .map(|(&xi, &wi)| wi * xi.powi(degree as i32))
                    .sum();
                let exact = if degree % 2 == 1 {
                    0.0
                } else {
                    2.0 / (degree as f64 + 1.0)
                };
                assert!(
                    (num - exact).abs() < 1e-13,
                    "n={n} degree={degree}: {num} != {exact}"
                );
            }
        }
    }

    #[test]
    fn hex_rule_volume_and_counts() {
        for n in 1..=3 {
            let rule = hex_rule(n);
            assert_eq!(rule.len(), n * n * n);
            assert!((rule.weights.iter().sum::<f64>() - 8.0).abs() < 1e-13);
        }
    }

    #[test]
    fn hex_rule_integrates_mixed_polynomial() {
        let rule = hex_rule(2);
        // ∫ x² y² z² over [-1,1]³ = (2/3)³.
        let val = rule.integrate(|p| p[0] * p[0] * p[1] * p[1] * p[2] * p[2]);
        assert!((val - (2.0f64 / 3.0).powi(3)).abs() < 1e-13);
    }

    #[test]
    fn tet_rules_exact_to_their_degree() {
        for degree in 1..=3usize {
            let rule = tet_rule(degree);
            for p in 0..=degree as u32 {
                for q in 0..=(degree as u32 - p) {
                    for r in 0..=(degree as u32 - p - q) {
                        let num = rule.integrate(|x| {
                            x[0].powi(p as i32) * x[1].powi(q as i32) * x[2].powi(r as i32)
                        });
                        let exact = tet_monomial(p, q, r);
                        assert!(
                            (num - exact).abs() < 1e-14,
                            "degree {degree} monomial ({p},{q},{r}): {num} != {exact}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn degree2_tet_rule_matches_element_table() {
        let rule = tet_rule(2);
        assert_eq!(rule.len(), 4);
        for (g, p) in rule.points.iter().enumerate() {
            for d in 0..3 {
                assert!((p[d] - crate::element::TET4_GAUSS[g][d]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "supports")]
    fn unsupported_rule_panics() {
        let _ = gauss_legendre_1d(9);
    }
}
