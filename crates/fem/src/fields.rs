//! Nodal field containers.
//!
//! Velocity, pressure and the assembled RHS live on mesh nodes. Vector
//! fields are stored component-blocked (`[all-x, all-y, all-z]`), matching
//! the layout the assembly kernels gather from and scatter to.

use alya_mesh::TetMesh;

/// A scalar field with one value per node.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarField {
    values: Vec<f64>,
}

impl ScalarField {
    /// Zero field on `n` nodes.
    pub fn zeros(n: usize) -> Self {
        Self {
            values: vec![0.0; n],
        }
    }

    /// Builds from raw values.
    pub fn from_values(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Field defined by a function of the node position.
    pub fn from_fn(mesh: &TetMesh, f: impl Fn([f64; 3]) -> f64) -> Self {
        Self::from_coords(mesh.coords(), f)
    }

    /// Field defined over an explicit coordinate list (mixed meshes etc.).
    pub fn from_coords(coords: &[[f64; 3]], f: impl Fn([f64; 3]) -> f64) -> Self {
        Self {
            values: coords.iter().map(|&p| f(p)).collect(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the field has no nodes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Value at node `n`.
    #[inline]
    pub fn get(&self, n: usize) -> f64 {
        self.values[n]
    }

    /// Sets the value at node `n`.
    #[inline]
    pub fn set(&mut self, n: usize, v: f64) {
        self.values[n] = v;
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute value.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

/// A 3-component vector field, component-blocked: component `d` of node `n`
/// is stored at `d * num_nodes + n`.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorField {
    values: Vec<f64>,
    num_nodes: usize,
}

impl VectorField {
    /// Zero field on `n` nodes.
    pub fn zeros(n: usize) -> Self {
        Self {
            values: vec![0.0; 3 * n],
            num_nodes: n,
        }
    }

    /// Field defined by a function of the node position.
    pub fn from_fn(mesh: &TetMesh, f: impl Fn([f64; 3]) -> [f64; 3]) -> Self {
        Self::from_coords(mesh.coords(), f)
    }

    /// Field defined over an explicit coordinate list (mixed meshes etc.).
    pub fn from_coords(coords: &[[f64; 3]], f: impl Fn([f64; 3]) -> [f64; 3]) -> Self {
        let mut field = Self::zeros(coords.len());
        for (i, &p) in coords.iter().enumerate() {
            field.set(i, f(p));
        }
        field
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The full component-blocked storage (length `3 × num_nodes`).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable full storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The block of component `d` (length `num_nodes`).
    #[inline]
    pub fn component(&self, d: usize) -> &[f64] {
        &self.values[d * self.num_nodes..(d + 1) * self.num_nodes]
    }

    /// Mutable component block.
    #[inline]
    pub fn component_mut(&mut self, d: usize) -> &mut [f64] {
        &mut self.values[d * self.num_nodes..(d + 1) * self.num_nodes]
    }

    /// Vector value at node `n`.
    #[inline]
    pub fn get(&self, n: usize) -> [f64; 3] {
        [
            self.values[n],
            self.values[self.num_nodes + n],
            self.values[2 * self.num_nodes + n],
        ]
    }

    /// Sets the vector value at node `n`.
    #[inline]
    pub fn set(&mut self, n: usize, v: [f64; 3]) {
        self.values[n] = v[0];
        self.values[self.num_nodes + n] = v[1];
        self.values[2 * self.num_nodes + n] = v[2];
    }

    /// Adds `v` to node `n`.
    #[inline]
    pub fn add(&mut self, n: usize, v: [f64; 3]) {
        self.values[n] += v[0];
        self.values[self.num_nodes + n] += v[1];
        self.values[2 * self.num_nodes + n] += v[2];
    }

    /// Fills the field with zeros (reusing the allocation).
    pub fn fill_zero(&mut self) {
        self.values.fill(0.0);
    }

    /// Euclidean norm over all components.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute component value.
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute difference to another field.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.num_nodes, other.num_nodes);
        self.values
            .iter()
            .zip(&other.values)
            .fold(0.0, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Total kinetic energy `½ Σ |u|²` (nodal, unweighted).
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.values.iter().map(|v| v * v).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_mesh::BoxMeshBuilder;

    #[test]
    fn scalar_field_roundtrip() {
        let mut f = ScalarField::zeros(5);
        assert_eq!(f.len(), 5);
        f.set(3, 2.5);
        assert_eq!(f.get(3), 2.5);
        assert_eq!(f.max_abs(), 2.5);
    }

    #[test]
    fn scalar_from_fn_samples_coordinates() {
        let mesh = BoxMeshBuilder::new(2, 2, 2).build();
        let f = ScalarField::from_fn(&mesh, |p| p[0] + 2.0 * p[1]);
        for (n, &p) in mesh.coords().iter().enumerate() {
            assert!((f.get(n) - (p[0] + 2.0 * p[1])).abs() < 1e-15);
        }
    }

    #[test]
    fn vector_field_blocked_layout() {
        let mut v = VectorField::zeros(4);
        v.set(1, [1.0, 2.0, 3.0]);
        assert_eq!(v.get(1), [1.0, 2.0, 3.0]);
        assert_eq!(v.component(0)[1], 1.0);
        assert_eq!(v.component(1)[1], 2.0);
        assert_eq!(v.component(2)[1], 3.0);
        assert_eq!(v.as_slice().len(), 12);
    }

    #[test]
    fn vector_add_accumulates() {
        let mut v = VectorField::zeros(2);
        v.add(0, [1.0, 0.0, -1.0]);
        v.add(0, [0.5, 2.0, 1.0]);
        assert_eq!(v.get(0), [1.5, 2.0, 0.0]);
    }

    #[test]
    fn norms_and_diffs() {
        let mut a = VectorField::zeros(2);
        let mut b = VectorField::zeros(2);
        a.set(0, [3.0, 0.0, 4.0]);
        b.set(0, [3.0, 1.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-15);
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-15);
        assert!((a.kinetic_energy() - 12.5).abs() < 1e-15);
    }

    #[test]
    fn fill_zero_resets() {
        let mut v = VectorField::zeros(3);
        v.set(2, [1.0, 1.0, 1.0]);
        v.fill_zero();
        assert_eq!(v.norm(), 0.0);
    }
}
