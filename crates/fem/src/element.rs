//! Reference elements and shape functions.
//!
//! Alya's original assembly takes the element kind, node count and Gauss
//! point count as *runtime* parameters ([`ElementKind`]); the paper's
//! Specialization fixes them at compile time for linear tetrahedra
//! ([`Tet4`], four nodes, four Gauss points, constant shape gradients).

/// Runtime description of an element type — the generic path the paper's
/// baseline pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// Linear tetrahedron: 4 nodes, 4 Gauss points.
    Tet4,
    /// Trilinear hexahedron: 8 nodes, 8 Gauss points.
    Hex8,
    /// Linear prism (wedge): 6 nodes, 6 Gauss points.
    Prism6,
}

impl ElementKind {
    /// Number of nodes.
    pub fn num_nodes(self) -> usize {
        match self {
            ElementKind::Tet4 => 4,
            ElementKind::Hex8 => 8,
            ElementKind::Prism6 => 6,
        }
    }

    /// Number of Gauss integration points used by Alya for this element.
    pub fn num_gauss(self) -> usize {
        match self {
            ElementKind::Tet4 => 4,
            ElementKind::Hex8 => 8,
            ElementKind::Prism6 => 6,
        }
    }

    /// Whether shape-function gradients are constant over the element
    /// (true only for simplices with linear shape functions).
    pub fn constant_gradients(self) -> bool {
        matches!(self, ElementKind::Tet4)
    }

    /// Shape-function values at Gauss point `g` (length `num_nodes`).
    pub fn shape_values(self, g: usize) -> Vec<f64> {
        match self {
            ElementKind::Tet4 => {
                let p = TET4_GAUSS[g];
                tet4_shape(p).to_vec()
            }
            ElementKind::Hex8 => {
                let p = hex8_gauss(g);
                hex8_shape(p).to_vec()
            }
            ElementKind::Prism6 => {
                let p = PRISM6_GAUSS[g];
                prism6_shape(p).to_vec()
            }
        }
    }

    /// Local (reference-space) shape-function gradients at Gauss point `g`:
    /// `num_nodes` rows of `[d/dξ, d/dη, d/dζ]`.
    pub fn local_gradients(self, g: usize) -> Vec<[f64; 3]> {
        match self {
            ElementKind::Tet4 => TET4_LOCAL_GRADS.to_vec(),
            ElementKind::Hex8 => hex8_local_grads(hex8_gauss(g)).to_vec(),
            ElementKind::Prism6 => prism6_local_grads(PRISM6_GAUSS[g]).to_vec(),
        }
    }

    /// Quadrature weight at Gauss point `g` (reference-element measure).
    pub fn gauss_weight(self, g: usize) -> f64 {
        match self {
            ElementKind::Tet4 => 1.0 / 24.0,
            ElementKind::Hex8 => {
                let _ = g;
                1.0
            }
            // Triangle midpoint rule (1/6 each) × 2-point Gauss in ζ (1 each).
            ElementKind::Prism6 => 1.0 / 6.0,
        }
    }
}

/// Compile-time linear tetrahedron — the specialized path.
///
/// Everything is a `const`: node count, Gauss count, Gauss locations and
/// weights, and the local gradients. This is what lets the S-variants keep
/// all loop trip counts known to the compiler (the Rust analogue of the
/// paper's Fortran `parameter` specialization).
#[derive(Debug, Clone, Copy, Default)]
pub struct Tet4;

impl Tet4 {
    /// Nodes per element.
    pub const NUM_NODES: usize = 4;
    /// Gauss points per element (Alya uses the 4-point rule).
    pub const NUM_GAUSS: usize = 4;
    /// Quadrature weight per Gauss point (reference tet volume 1/6 over 4).
    pub const GAUSS_WEIGHT: f64 = 1.0 / 24.0;

    /// Shape values at all Gauss points: `SHAPE[g][a]`.
    pub const SHAPE: [[f64; 4]; 4] = tet4_shape_table();

    /// Local gradients (constant for P1 tets): `LOCAL_GRADS[a] = ∇ξ N_a`.
    pub const LOCAL_GRADS: [[f64; 3]; 4] = TET4_LOCAL_GRADS;
}

/// 4-point Gauss rule on the reference tetrahedron (degree-2 exact),
/// barycentric parameters (a, b) = ((5+3√5)/20, (5−√5)/20).
pub const TET4_GAUSS: [[f64; 3]; 4] = {
    const A: f64 = 0.585_410_196_624_968_5; // (5 + 3 sqrt 5)/20
    const B: f64 = 0.138_196_601_125_010_5; // (5 - sqrt 5)/20
    [[B, B, B], [A, B, B], [B, A, B], [B, B, A]]
};

/// P1 tet shape functions at reference point `(ξ, η, ζ)`.
#[inline]
pub const fn tet4_shape(p: [f64; 3]) -> [f64; 4] {
    [1.0 - p[0] - p[1] - p[2], p[0], p[1], p[2]]
}

const fn tet4_shape_table() -> [[f64; 4]; 4] {
    [
        tet4_shape(TET4_GAUSS[0]),
        tet4_shape(TET4_GAUSS[1]),
        tet4_shape(TET4_GAUSS[2]),
        tet4_shape(TET4_GAUSS[3]),
    ]
}

/// Constant local gradients of the P1 tet shape functions.
pub const TET4_LOCAL_GRADS: [[f64; 3]; 4] = [
    [-1.0, -1.0, -1.0],
    [1.0, 0.0, 0.0],
    [0.0, 1.0, 0.0],
    [0.0, 0.0, 1.0],
];

// --- Hex8 (trilinear hexahedron on [-1, 1]^3) ------------------------------

/// Reference-corner signs of the 8 hex nodes.
const HEX8_SIGNS: [[f64; 3]; 8] = [
    [-1.0, -1.0, -1.0],
    [1.0, -1.0, -1.0],
    [1.0, 1.0, -1.0],
    [-1.0, 1.0, -1.0],
    [-1.0, -1.0, 1.0],
    [1.0, -1.0, 1.0],
    [1.0, 1.0, 1.0],
    [-1.0, 1.0, 1.0],
];

/// 2×2×2 Gauss point `g` of the reference hex.
pub fn hex8_gauss(g: usize) -> [f64; 3] {
    let q = 1.0 / 3.0f64.sqrt();
    [
        if g & 1 == 0 { -q } else { q },
        if g & 2 == 0 { -q } else { q },
        if g & 4 == 0 { -q } else { q },
    ]
}

/// Trilinear shape functions at `(ξ, η, ζ)`.
pub fn hex8_shape(p: [f64; 3]) -> [f64; 8] {
    let mut n = [0.0; 8];
    for (a, s) in HEX8_SIGNS.iter().enumerate() {
        n[a] = 0.125 * (1.0 + s[0] * p[0]) * (1.0 + s[1] * p[1]) * (1.0 + s[2] * p[2]);
    }
    n
}

/// Local gradients of the trilinear shape functions at `(ξ, η, ζ)`.
pub fn hex8_local_grads(p: [f64; 3]) -> [[f64; 3]; 8] {
    let mut g = [[0.0; 3]; 8];
    for (a, s) in HEX8_SIGNS.iter().enumerate() {
        g[a] = [
            0.125 * s[0] * (1.0 + s[1] * p[1]) * (1.0 + s[2] * p[2]),
            0.125 * (1.0 + s[0] * p[0]) * s[1] * (1.0 + s[2] * p[2]),
            0.125 * (1.0 + s[0] * p[0]) * (1.0 + s[1] * p[1]) * s[2],
        ];
    }
    g
}

// --- Prism6 (linear wedge: triangle × line) --------------------------------

/// 6-point rule: the 3 triangle midside-ish points × 2 Gauss points in ζ.
pub const PRISM6_GAUSS: [[f64; 3]; 6] = {
    const Q: f64 = 0.577_350_269_189_625_8; // 1/sqrt(3)
    [
        [2.0 / 3.0, 1.0 / 6.0, -Q],
        [1.0 / 6.0, 2.0 / 3.0, -Q],
        [1.0 / 6.0, 1.0 / 6.0, -Q],
        [2.0 / 3.0, 1.0 / 6.0, Q],
        [1.0 / 6.0, 2.0 / 3.0, Q],
        [1.0 / 6.0, 1.0 / 6.0, Q],
    ]
};

/// Wedge shape functions: triangle barycentric × linear in ζ ∈ [-1, 1].
pub fn prism6_shape(p: [f64; 3]) -> [f64; 6] {
    let (r, s, t) = (p[0], p[1], p[2]);
    let lam = [1.0 - r - s, r, s];
    let lo = 0.5 * (1.0 - t);
    let hi = 0.5 * (1.0 + t);
    [
        lam[0] * lo,
        lam[1] * lo,
        lam[2] * lo,
        lam[0] * hi,
        lam[1] * hi,
        lam[2] * hi,
    ]
}

/// Local gradients of the wedge shape functions.
pub fn prism6_local_grads(p: [f64; 3]) -> [[f64; 3]; 6] {
    let (r, s, t) = (p[0], p[1], p[2]);
    let lam = [1.0 - r - s, r, s];
    let dlam = [[-1.0, -1.0], [1.0, 0.0], [0.0, 1.0]];
    let lo = 0.5 * (1.0 - t);
    let hi = 0.5 * (1.0 + t);
    let mut g = [[0.0; 3]; 6];
    for a in 0..3 {
        g[a] = [dlam[a][0] * lo, dlam[a][1] * lo, -0.5 * lam[a]];
        g[a + 3] = [dlam[a][0] * hi, dlam[a][1] * hi, 0.5 * lam[a]];
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> [ElementKind; 3] {
        [ElementKind::Tet4, ElementKind::Hex8, ElementKind::Prism6]
    }

    #[test]
    fn partition_of_unity_at_all_gauss_points() {
        for kind in all_kinds() {
            for g in 0..kind.num_gauss() {
                let sum: f64 = kind.shape_values(g).iter().sum();
                assert!((sum - 1.0).abs() < 1e-14, "{kind:?} gauss {g}: {sum}");
            }
        }
    }

    #[test]
    fn local_gradients_sum_to_zero() {
        for kind in all_kinds() {
            for g in 0..kind.num_gauss() {
                let grads = kind.local_gradients(g);
                for d in 0..3 {
                    let sum: f64 = grads.iter().map(|r| r[d]).sum();
                    assert!(sum.abs() < 1e-14, "{kind:?} gauss {g} dir {d}: {sum}");
                }
            }
        }
    }

    #[test]
    fn gauss_weights_integrate_reference_volume() {
        // Tet: 1/6. Hex: 8. Prism: 1 (triangle 1/2 × length 2).
        let expect = [1.0 / 6.0, 8.0, 1.0];
        for (kind, &v) in all_kinds().iter().zip(&expect) {
            let total: f64 = (0..kind.num_gauss()).map(|g| kind.gauss_weight(g)).sum();
            assert!((total - v).abs() < 1e-14, "{kind:?}: {total} != {v}");
        }
    }

    #[test]
    fn tet4_tables_match_runtime_path() {
        for g in 0..4 {
            let rt = ElementKind::Tet4.shape_values(g);
            for a in 0..4 {
                assert!((rt[a] - Tet4::SHAPE[g][a]).abs() < 1e-15);
            }
            let gr = ElementKind::Tet4.local_gradients(g);
            assert_eq!(gr, Tet4::LOCAL_GRADS.to_vec());
        }
        assert_eq!(ElementKind::Tet4.gauss_weight(0), Tet4::GAUSS_WEIGHT);
    }

    #[test]
    fn tet4_gauss_rule_integrates_linear_exactly() {
        // ∫_T ξ dV over reference tet = 1/24; rule must hit it exactly.
        let integral: f64 = (0..4).map(|g| Tet4::GAUSS_WEIGHT * TET4_GAUSS[g][0]).sum();
        assert!((integral - 1.0 / 24.0).abs() < 1e-15);
    }

    #[test]
    fn tet4_gauss_rule_integrates_quadratic_exactly() {
        // ∫_T ξ² dV = 1/60 over the reference tet; 4-point rule is degree-2.
        let integral: f64 = (0..4)
            .map(|g| Tet4::GAUSS_WEIGHT * TET4_GAUSS[g][0] * TET4_GAUSS[g][0])
            .sum();
        assert!((integral - 1.0 / 60.0).abs() < 1e-15, "{integral}");
    }

    #[test]
    fn shape_values_are_kronecker_at_nodes() {
        // Tet nodes in reference space.
        let nodes = [
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        for (a, &p) in nodes.iter().enumerate() {
            let n = tet4_shape(p);
            for b in 0..4 {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((n[b] - expect).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn hex8_shape_kronecker_at_corners() {
        for (a, s) in HEX8_SIGNS.iter().enumerate() {
            let n = hex8_shape(*s);
            for b in 0..8 {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((n[b] - expect).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn hex8_gradients_match_finite_differences() {
        let p = [0.3, -0.2, 0.55];
        let g = hex8_local_grads(p);
        let h = 1e-6;
        for d in 0..3 {
            let mut pp = p;
            let mut pm = p;
            pp[d] += h;
            pm[d] -= h;
            let np = hex8_shape(pp);
            let nm = hex8_shape(pm);
            for a in 0..8 {
                let fd = (np[a] - nm[a]) / (2.0 * h);
                assert!((fd - g[a][d]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn prism6_gradients_match_finite_differences() {
        let p = [0.25, 0.3, 0.1];
        let g = prism6_local_grads(p);
        let h = 1e-6;
        for d in 0..3 {
            let mut pp = p;
            let mut pm = p;
            pp[d] += h;
            pm[d] -= h;
            let np = prism6_shape(pp);
            let nm = prism6_shape(pm);
            for a in 0..6 {
                let fd = (np[a] - nm[a]) / (2.0 * h);
                assert!((fd - g[a][d]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn only_tet4_has_constant_gradients() {
        assert!(ElementKind::Tet4.constant_gradients());
        assert!(!ElementKind::Hex8.constant_gradients());
        assert!(!ElementKind::Prism6.constant_gradients());
    }
}
