//! # alya-solver — fractional-step incompressible-flow substrate
//!
//! The paper's kernel lives inside an explicit fractional-step LES solver:
//! the momentum RHS assembly (the optimized kernel, `alya-core`) plus a
//! pressure-Poisson solve (which the paper delegates to external libraries
//! and names as future work). This crate supplies the rest of that loop so
//! the examples can run an actual simulation end to end:
//!
//! * [`csr`] — compressed sparse row matrices with thread-parallel SpMV;
//! * [`cg`] — Jacobi-preconditioned conjugate gradients;
//! * [`poisson`] — the pressure-Poisson operator (P1 Laplacian), lumped
//!   mass matrix, and weak divergence/gradient operators;
//! * [`step`] — the fractional-step integrator: explicit momentum
//!   prediction with the assembly variant of your choice, pressure
//!   projection, velocity correction.
//!
//! ```
//! use alya_solver::step::{FractionalStep, StepConfig};
//! use alya_core::Variant;
//! use alya_mesh::BoxMeshBuilder;
//!
//! let mesh = BoxMeshBuilder::new(4, 4, 4).build();
//! let mut solver = FractionalStep::new(&mesh, StepConfig::default());
//! solver.set_velocity(|p| [0.1 * p[2], 0.0, 0.0]);
//! let stats = solver.step(Variant::Rsp);
//! assert!(stats.divergence_after <= stats.divergence_before + 1e-12);
//! ```

#![forbid(unsafe_code)]

pub mod cg;
pub mod csr;
pub mod halo;
pub mod multigrid;
pub mod poisson;
pub mod step;
pub mod vtk;

pub use cg::{solve_cg, solve_cg_with, CgResult, CgScratch};
pub use csr::CsrMatrix;
pub use step::{CaseParts, FractionalStep, StepConfig, StepStats, TimeScheme};
pub use vtk::VtkWriter;
