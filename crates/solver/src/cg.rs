//! Jacobi-preconditioned conjugate gradients.
//!
//! The pressure Poisson system is symmetric positive (semi-)definite; CG
//! with diagonal preconditioning is the classic workhorse (the paper's
//! production setting points at AMG-preconditioned solvers as future work —
//! Jacobi-PCG is the honest laptop-scale stand-in).

use crate::csr::CsrMatrix;

/// A symmetric positive (semi-)definite linear operator.
pub trait LinOp {
    /// `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// Problem size.
    fn dim(&self) -> usize;
    /// Approximate diagonal for Jacobi preconditioning (ones disable it).
    fn precond_diagonal(&self) -> Vec<f64>;
}

impl LinOp for CsrMatrix {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.par_spmv(x, y);
    }

    fn dim(&self) -> usize {
        self.num_rows()
    }

    fn precond_diagonal(&self) -> Vec<f64> {
        self.diagonal()
    }
}

/// Convergence report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Solves `A x = b` in place of `x` (the initial guess).
///
/// Stops when `‖r‖₂ ≤ rel_tol · ‖b‖₂ + 1e-300` or after `max_iters`.
pub fn solve_cg(
    a: &impl LinOp,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
) -> CgResult {
    let n = b.len();
    assert_eq!(a.dim(), n);
    assert_eq!(x.len(), n);

    let diag = a.precond_diagonal();
    let precond = |r: &[f64], z: &mut [f64]| {
        for i in 0..n {
            z[i] = if diag[i].abs() > 0.0 {
                r[i] / diag[i]
            } else {
                r[i]
            };
        }
    };

    let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let tol = rel_tol * norm_b + 1e-300;

    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    precond(&r, &mut z);
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let mut ap = vec![0.0; n];

    let mut residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if residual <= tol {
        return CgResult {
            iterations: 0,
            residual,
            converged: true,
        };
    }

    for it in 1..=max_iters {
        a.apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-300 {
            return CgResult {
                iterations: it,
                residual,
                converged: false,
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if residual <= tol {
            return CgResult {
                iterations: it,
                residual,
                converged: true,
            };
        }
        precond(&r, &mut z);
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    CgResult {
        iterations: max_iters,
        residual,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1D Laplacian tridiagonal SPD matrix.
    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n as u32 {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if (i as usize) < n - 1 {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn solves_small_spd_system() {
        let a = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        let b = [1.0, 2.0];
        let mut x = [0.0, 0.0];
        let res = solve_cg(&a, &b, &mut x, 1e-12, 100);
        assert!(res.converged);
        // Exact: x = (1/11, 7/11).
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-10);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-10);
    }

    #[test]
    fn solves_laplacian_to_tolerance() {
        let n = 200;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let res = solve_cg(&a, &b, &mut x, 1e-10, 2000);
        assert!(res.converged, "residual {}", res.residual);
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let res = solve_cg(&a, &b, &mut x, 1e-10, 100);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 100;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut cold = vec![0.0; n];
        let cold_res = solve_cg(&a, &b, &mut cold, 1e-10, 2000);
        let mut warm = x_true.clone();
        for w in &mut warm {
            *w += 1e-6;
        }
        let warm_res = solve_cg(&a, &b, &mut warm, 1e-10, 2000);
        assert!(warm_res.iterations < cold_res.iterations);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = laplacian_1d(500);
        let b = vec![1.0; 500];
        let mut x = vec![0.0; 500];
        let res = solve_cg(&a, &b, &mut x, 1e-14, 3);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }
}
