//! Jacobi-preconditioned conjugate gradients.
//!
//! The pressure Poisson system is symmetric positive (semi-)definite; CG
//! with diagonal preconditioning is the classic workhorse (the paper's
//! production setting points at AMG-preconditioned solvers as future work —
//! Jacobi-PCG is the honest laptop-scale stand-in).

use alya_telemetry as telemetry;

use crate::csr::CsrMatrix;

/// A symmetric positive (semi-)definite linear operator.
pub trait LinOp {
    /// `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// Problem size.
    fn dim(&self) -> usize;
    /// Approximate diagonal for Jacobi preconditioning (ones disable it).
    fn precond_diagonal(&self) -> Vec<f64>;
    /// Writes the preconditioner diagonal into `out` (length `dim()`)
    /// without allocating — the scratch-reusing solve path calls this
    /// every solve. The default falls back to [`Self::precond_diagonal`].
    fn precond_diagonal_into(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.precond_diagonal());
    }
    /// Floating-point operations one [`Self::apply`] performs (1 FMA = 2),
    /// used for telemetry accounting only. 0 = unknown.
    fn apply_flops(&self) -> u64 {
        0
    }
}

impl LinOp for CsrMatrix {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        // `par_spmv` runs over `par::par_chunks_mut`, which respects the
        // active worker cap and adopts the caller's telemetry context in
        // every worker — a solve inside a serve session stays attributed
        // to that session's tenant.
        self.par_spmv(x, y);
    }

    fn dim(&self) -> usize {
        self.num_rows()
    }

    fn precond_diagonal(&self) -> Vec<f64> {
        self.diagonal()
    }

    fn precond_diagonal_into(&self, out: &mut [f64]) {
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.get(r, r);
        }
    }

    fn apply_flops(&self) -> u64 {
        // One multiply + one add per stored nonzero.
        2 * self.nnz() as u64
    }
}

/// Convergence report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Reusable CG work vectors: a solve allocates nothing once its scratch
/// reached the problem size, so a pooled serve session pays zero
/// steady-state allocation per pressure solve.
#[derive(Debug, Default)]
pub struct CgScratch {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    diag: Vec<f64>,
}

impl CgScratch {
    /// Empty scratch (grows on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
        self.diag.resize(n, 0.0);
    }
}

/// Solves `A x = b` in place of `x` (the initial guess).
///
/// Stops when `‖r‖₂ ≤ rel_tol · ‖b‖₂ + 1e-300` or after `max_iters`.
pub fn solve_cg(
    a: &impl LinOp,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
) -> CgResult {
    solve_cg_with(a, b, x, rel_tol, max_iters, &mut CgScratch::new())
}

/// [`solve_cg`] with caller-owned scratch: bitwise identical results (the
/// floating-point statement order is unchanged — every work vector is
/// fully overwritten before it is read), but repeat solves allocate
/// nothing. Opens a `solve-cg` telemetry span and tallies the solve's
/// flops into [`Scope::GLOBAL`](alya_telemetry::Scope::GLOBAL) — batch
/// granularity, one add per solve — so solver steps inside serve sessions
/// are accounted to the adopting tenant.
pub fn solve_cg_with(
    a: &impl LinOp,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
    scratch: &mut CgScratch,
) -> CgResult {
    let n = b.len();
    assert_eq!(a.dim(), n);
    assert_eq!(x.len(), n);
    let _sp = telemetry::span("solve-cg");

    scratch.ensure(n);
    let CgScratch { r, z, p, ap, diag } = scratch;
    a.precond_diagonal_into(diag);
    let precond = |r: &[f64], z: &mut [f64], diag: &[f64]| {
        for i in 0..n {
            z[i] = if diag[i].abs() > 0.0 {
                r[i] / diag[i]
            } else {
                r[i]
            };
        }
    };

    // Vector-op flops per iteration: pap (2n) + x/r updates (4n) +
    // residual (2n) + precond (n) + rz (2n) + p update (2n) = 13n; the
    // setup adds ~8n; each `apply` contributes the operator's own count.
    let vec_flops = |iters: u64| 8 * n as u64 + 13 * n as u64 * iters;
    let tally = |iters: usize| {
        telemetry::add(
            telemetry::Scope::GLOBAL,
            telemetry::Metric::Flops,
            vec_flops(iters as u64) + (iters as u64 + 1) * a.apply_flops(),
        );
    };

    let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let tol = rel_tol * norm_b + 1e-300;

    a.apply(x, r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    precond(r, z, diag);
    p.copy_from_slice(z);
    let mut rz: f64 = r.iter().zip(&*z).map(|(a, b)| a * b).sum();

    let mut residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if residual <= tol {
        tally(0);
        return CgResult {
            iterations: 0,
            residual,
            converged: true,
        };
    }

    for it in 1..=max_iters {
        a.apply(p, ap);
        let pap: f64 = p.iter().zip(&*ap).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-300 {
            tally(it);
            return CgResult {
                iterations: it,
                residual,
                converged: false,
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if residual <= tol {
            tally(it);
            return CgResult {
                iterations: it,
                residual,
                converged: true,
            };
        }
        precond(r, z, diag);
        let rz_new: f64 = r.iter().zip(&*z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    tally(max_iters);
    CgResult {
        iterations: max_iters,
        residual,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1D Laplacian tridiagonal SPD matrix.
    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n as u32 {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if (i as usize) < n - 1 {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, t)
    }

    #[test]
    fn solves_small_spd_system() {
        let a = CsrMatrix::from_triplets(
            2,
            2,
            vec![(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
        );
        let b = [1.0, 2.0];
        let mut x = [0.0, 0.0];
        let res = solve_cg(&a, &b, &mut x, 1e-12, 100);
        assert!(res.converged);
        // Exact: x = (1/11, 7/11).
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-10);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-10);
    }

    #[test]
    fn solves_laplacian_to_tolerance() {
        let n = 200;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let res = solve_cg(&a, &b, &mut x, 1e-10, 2000);
        assert!(res.converged, "residual {}", res.residual);
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian_1d(10);
        let b = vec![0.0; 10];
        let mut x = vec![0.0; 10];
        let res = solve_cg(&a, &b, &mut x, 1e-10, 100);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 100;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut cold = vec![0.0; n];
        let cold_res = solve_cg(&a, &b, &mut cold, 1e-10, 2000);
        let mut warm = x_true.clone();
        for w in &mut warm {
            *w += 1e-6;
        }
        let warm_res = solve_cg(&a, &b, &mut warm, 1e-10, 2000);
        assert!(warm_res.iterations < cold_res.iterations);
    }

    #[test]
    fn dirty_scratch_reuse_is_bitwise_identical() {
        let n = 120;
        let a = laplacian_1d(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut fresh = vec![0.0; n];
        let r1 = solve_cg(&a, &b, &mut fresh, 1e-10, 500);
        // Dirty the scratch on an unrelated, larger system first.
        let mut scratch = CgScratch::new();
        let big = laplacian_1d(2 * n);
        let bb = vec![1.0; 2 * n];
        let mut xb = vec![0.0; 2 * n];
        solve_cg_with(&big, &bb, &mut xb, 1e-8, 50, &mut scratch);
        let mut reused = vec![0.0; n];
        let r2 = solve_cg_with(&a, &b, &mut reused, 1e-10, 500, &mut scratch);
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.residual.to_bits(), r2.residual.to_bits());
        for (u, v) in fresh.iter().zip(&reused) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn csr_linop_accounting_hooks() {
        let a = laplacian_1d(10);
        assert_eq!(a.apply_flops(), 2 * a.nnz() as u64);
        let mut out = vec![0.0; 10];
        a.precond_diagonal_into(&mut out);
        assert_eq!(out, a.precond_diagonal());
    }

    #[test]
    fn solve_inside_session_tallies_flops() {
        let a = laplacian_1d(50);
        let b = vec![1.0; 50];
        let mut x = vec![0.0; 50];
        let s = alya_telemetry::scoped_session();
        s.adopt();
        let res = solve_cg(&a, &b, &mut x, 1e-10, 500);
        let report = s.finish();
        assert!(res.converged);
        let flops = report.counter(alya_telemetry::Scope::GLOBAL, alya_telemetry::Metric::Flops);
        let n = 50u64;
        let expected =
            8 * n + 13 * n * res.iterations as u64 + (res.iterations as u64 + 1) * a.apply_flops();
        assert_eq!(flops, expected);
        assert_eq!(report.spans_named("solve-cg").count(), 1);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let a = laplacian_1d(500);
        let b = vec![1.0; 500];
        let mut x = vec![0.0; 500];
        let res = solve_cg(&a, &b, &mut x, 1e-14, 3);
        assert!(!res.converged);
        assert_eq!(res.iterations, 3);
    }
}
