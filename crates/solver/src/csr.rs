//! Compressed-sparse-row matrices.

use alya_machine::par;

/// A CSR matrix over `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    num_rows: usize,
    num_cols: usize,
    row_offsets: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from (row, col, value) triplets; duplicate entries are summed.
    pub fn from_triplets(
        num_rows: usize,
        num_cols: usize,
        triplets: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Self {
        let mut items: Vec<(u32, u32, f64)> = triplets.into_iter().collect();
        items.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_offsets = Vec::with_capacity(num_rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0u32);
        let mut it = items.into_iter().peekable();
        for r in 0..num_rows as u32 {
            while let Some(&(ri, c, v)) = it.peek() {
                if ri != r {
                    break;
                }
                assert!((c as usize) < num_cols, "column {c} out of range");
                let row_start = *row_offsets.last().unwrap() as usize;
                if col_indices.len() > row_start && *col_indices.last().unwrap() == c {
                    *values.last_mut().unwrap() += v; // merge duplicate
                } else {
                    col_indices.push(c);
                    values.push(v);
                }
                it.next();
            }
            row_offsets.push(col_indices.len() as u32);
        }
        assert!(it.peek().is_none(), "row index out of range");
        Self {
            num_rows,
            num_cols,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(columns, values)` of row `r`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_offsets[r] as usize;
        let hi = self.row_offsets[r + 1] as usize;
        (&self.col_indices[lo..hi], &self.values[lo..hi])
    }

    /// Entry `(r, c)`, zero when not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Serial matrix-vector product `y = A x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_cols);
        assert_eq!(y.len(), self.num_rows);
        for r in 0..self.num_rows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            y[r] = acc;
        }
    }

    /// Thread-parallel matrix-vector product (contiguous row ranges per
    /// worker, disjoint output slices).
    pub fn par_spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.num_cols);
        assert_eq!(y.len(), self.num_rows);
        par::par_chunks_mut(y, |row0, out| {
            for (i, o) in out.iter_mut().enumerate() {
                let (cols, vals) = self.row(row0 + i);
                let mut acc = 0.0;
                for (c, v) in cols.iter().zip(vals) {
                    acc += v * x[*c as usize];
                }
                *o = acc;
            }
        });
    }

    /// The main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.num_rows.min(self.num_cols))
            .map(|r| self.get(r, r))
            .collect()
    }

    /// Maximum asymmetry `|A - Aᵀ|∞` (cheap structural check for tests).
    pub fn max_asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for r in 0..self.num_rows {
            let (cols, vals) = self.row(r);
            for (c, v) in cols.iter().zip(vals) {
                worst = worst.max((v - self.get(*c as usize, r)).abs());
            }
        }
        worst
    }

    /// Replaces row `r` by the identity row (Dirichlet elimination; the
    /// symmetric column sweep is the caller's business).
    pub fn set_identity_row(&mut self, r: usize) {
        let lo = self.row_offsets[r] as usize;
        let hi = self.row_offsets[r + 1] as usize;
        for i in lo..hi {
            self.values[i] = if self.col_indices[i] as usize == r {
                1.0
            } else {
                0.0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [2 1 0]
        // [1 3 1]
        // [0 1 4]
        CsrMatrix::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 4.0),
            ],
        )
    }

    #[test]
    fn build_and_query() {
        let a = small();
        assert_eq!(a.num_rows(), 3);
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(1, 2), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert_eq!(a.diagonal(), vec![2.0, 3.0, 4.0]);
        assert_eq!(a.max_asymmetry(), 0.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn empty_rows_are_fine() {
        let a = CsrMatrix::from_triplets(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]);
        assert_eq!(a.row(1).0.len(), 0);
        assert_eq!(a.row(2).0.len(), 0);
        assert_eq!(a.get(3, 3), 2.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, [4.0, 10.0, 14.0]);
        let mut yp = [0.0; 3];
        a.par_spmv(&x, &mut yp);
        assert_eq!(y, yp);
    }

    #[test]
    fn identity_row_elimination() {
        let mut a = small();
        a.set_identity_row(1);
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y[1], 2.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        let _ = CsrMatrix::from_triplets(2, 2, vec![(5, 0, 1.0)]);
    }
}
