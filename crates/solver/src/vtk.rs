//! Legacy-VTK output of meshes and solution fields.
//!
//! Writes ASCII `UNSTRUCTURED_GRID` files readable by ParaView/VisIt —
//! the practical exit point for anyone running the examples (the paper's
//! Figure 1 is exactly such a volume rendering).

use std::io::{self, Write};

use alya_fem::{ScalarField, VectorField};
use alya_mesh::TetMesh;

/// VTK cell type id for linear tetrahedra.
const VTK_TETRA: u8 = 10;

/// A VTK dataset under construction: a mesh plus named point fields.
pub struct VtkWriter<'a> {
    mesh: &'a TetMesh,
    scalars: Vec<(String, &'a ScalarField)>,
    vectors: Vec<(String, &'a VectorField)>,
}

impl<'a> VtkWriter<'a> {
    /// Starts a dataset for `mesh`.
    pub fn new(mesh: &'a TetMesh) -> Self {
        Self {
            mesh,
            scalars: Vec::new(),
            vectors: Vec::new(),
        }
    }

    /// Attaches a nodal scalar field.
    pub fn scalar(mut self, name: &str, field: &'a ScalarField) -> Self {
        assert_eq!(field.len(), self.mesh.num_nodes(), "field size mismatch");
        self.scalars.push((name.to_string(), field));
        self
    }

    /// Attaches a nodal vector field.
    pub fn vector(mut self, name: &str, field: &'a VectorField) -> Self {
        assert_eq!(
            field.num_nodes(),
            self.mesh.num_nodes(),
            "field size mismatch"
        );
        self.vectors.push((name.to_string(), field));
        self
    }

    /// Writes the dataset to any sink.
    pub fn write(&self, mut w: impl Write) -> io::Result<()> {
        let mesh = self.mesh;
        writeln!(w, "# vtk DataFile Version 3.0")?;
        writeln!(w, "alya-rs output")?;
        writeln!(w, "ASCII")?;
        writeln!(w, "DATASET UNSTRUCTURED_GRID")?;
        writeln!(w, "POINTS {} double", mesh.num_nodes())?;
        for p in mesh.coords() {
            writeln!(w, "{} {} {}", p[0], p[1], p[2])?;
        }
        let ne = mesh.num_elements();
        writeln!(w, "CELLS {} {}", ne, 5 * ne)?;
        for conn in mesh.connectivity() {
            writeln!(w, "4 {} {} {} {}", conn[0], conn[1], conn[2], conn[3])?;
        }
        writeln!(w, "CELL_TYPES {ne}")?;
        for _ in 0..ne {
            writeln!(w, "{VTK_TETRA}")?;
        }
        if !self.scalars.is_empty() || !self.vectors.is_empty() {
            writeln!(w, "POINT_DATA {}", mesh.num_nodes())?;
        }
        for (name, field) in &self.scalars {
            writeln!(w, "SCALARS {name} double 1")?;
            writeln!(w, "LOOKUP_TABLE default")?;
            for v in field.as_slice() {
                writeln!(w, "{v}")?;
            }
        }
        for (name, field) in &self.vectors {
            writeln!(w, "VECTORS {name} double")?;
            for n in 0..field.num_nodes() {
                let v = field.get(n);
                writeln!(w, "{} {} {}", v[0], v[1], v[2])?;
            }
        }
        Ok(())
    }

    /// Writes the dataset to a file path.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write(io::BufWriter::new(file))
    }

    /// Renders to a string (tests, small meshes).
    pub fn to_string_lossy(&self) -> String {
        let mut buf = Vec::new();
        self.write(&mut buf).expect("in-memory write cannot fail");
        String::from_utf8(buf).expect("VTK output is ASCII")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_mesh::BoxMeshBuilder;

    fn sample() -> (TetMesh, ScalarField, VectorField) {
        let mesh = BoxMeshBuilder::new(1, 1, 1).build();
        let p = ScalarField::from_fn(&mesh, |q| q[0]);
        let v = VectorField::from_fn(&mesh, |q| [q[2], 0.0, -q[0]]);
        (mesh, p, v)
    }

    #[test]
    fn header_and_counts() {
        let (mesh, p, v) = sample();
        let s = VtkWriter::new(&mesh)
            .scalar("pressure", &p)
            .vector("velocity", &v)
            .to_string_lossy();
        assert!(s.starts_with("# vtk DataFile Version 3.0"));
        assert!(s.contains("POINTS 8 double"));
        assert!(s.contains("CELLS 6 30"));
        assert!(s.contains("CELL_TYPES 6"));
        assert!(s.contains("POINT_DATA 8"));
        assert!(s.contains("SCALARS pressure double 1"));
        assert!(s.contains("VECTORS velocity double"));
    }

    #[test]
    fn every_cell_is_a_tet_with_valid_nodes() {
        let (mesh, _, _) = sample();
        let s = VtkWriter::new(&mesh).to_string_lossy();
        let cells: Vec<&str> = s
            .lines()
            .skip_while(|l| !l.starts_with("CELLS"))
            .skip(1)
            .take(6)
            .collect();
        for c in cells {
            let ids: Vec<usize> = c.split_whitespace().map(|t| t.parse().unwrap()).collect();
            assert_eq!(ids[0], 4);
            assert!(ids[1..].iter().all(|&n| n < 8));
        }
    }

    #[test]
    fn mesh_only_dataset_skips_point_data() {
        let (mesh, _, _) = sample();
        let s = VtkWriter::new(&mesh).to_string_lossy();
        assert!(!s.contains("POINT_DATA"));
    }

    #[test]
    fn file_roundtrip() {
        let (mesh, p, _) = sample();
        let dir = std::env::temp_dir().join("alya_vtk_test.vtk");
        VtkWriter::new(&mesh)
            .scalar("p", &p)
            .write_file(&dir)
            .unwrap();
        let content = std::fs::read_to_string(&dir).unwrap();
        assert!(content.contains("SCALARS p double 1"));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_mismatch_panics() {
        let (mesh, _, _) = sample();
        let wrong = ScalarField::zeros(3);
        let _ = VtkWriter::new(&mesh).scalar("bad", &wrong);
    }
}
