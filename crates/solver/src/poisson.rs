//! Pressure-Poisson operator and companion FEM operators on P1 tets.
//!
//! * [`laplacian`] — the stiffness matrix `L[a][b] = Σ_e V_e ∇N_a·∇N_b`;
//! * [`lumped_mass`] — row-sum lumped mass (`V_e/4` per node);
//! * [`weak_divergence`] — `b_a = ∫ N_a ∇·u` (constant per element);
//! * [`nodal_gradient`] — lumped-mass-weighted nodal pressure gradient,
//!   the correction operator of the fractional step.

use alya_fem::geometry::tet4_gradients;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::TetMesh;

use crate::csr::CsrMatrix;

/// Assembles the P1 Laplacian (stiffness) matrix.
pub fn laplacian(mesh: &TetMesh) -> CsrMatrix {
    let n = mesh.num_nodes();
    let mut triplets = Vec::with_capacity(mesh.num_elements() * 16);
    for e in 0..mesh.num_elements() {
        let conn = mesh.element(e);
        let (grads, vol) = tet4_gradients(&mesh.element_coords(e));
        for a in 0..4 {
            for b in 0..4 {
                let k = vol
                    * (grads[a][0] * grads[b][0]
                        + grads[a][1] * grads[b][1]
                        + grads[a][2] * grads[b][2]);
                triplets.push((conn[a], conn[b], k));
            }
        }
    }
    CsrMatrix::from_triplets(n, n, triplets)
}

/// Lumped mass: `m_a = Σ_e V_e / 4` over elements containing `a`.
pub fn lumped_mass(mesh: &TetMesh) -> Vec<f64> {
    let mut m = vec![0.0; mesh.num_nodes()];
    for e in 0..mesh.num_elements() {
        let vol = mesh.element_volume(e);
        for &n in &mesh.element(e) {
            m[n as usize] += vol * 0.25;
        }
    }
    m
}

/// Weak divergence of a velocity field: `b_a = ∫ N_a (∇·u) dV`
/// (`∇·u` is constant per P1 element, `∫ N_a = V/4`).
pub fn weak_divergence(mesh: &TetMesh, u: &VectorField) -> ScalarField {
    let mut b = ScalarField::zeros(mesh.num_nodes());
    for e in 0..mesh.num_elements() {
        let conn = mesh.element(e);
        let (grads, vol) = tet4_gradients(&mesh.element_coords(e));
        let mut div = 0.0;
        for (a, &n) in conn.iter().enumerate() {
            let v = u.get(n as usize);
            div += grads[a][0] * v[0] + grads[a][1] * v[1] + grads[a][2] * v[2];
        }
        let w = vol * 0.25 * div;
        for &n in &conn {
            b.set(n as usize, b.get(n as usize) + w);
        }
    }
    b
}

/// L2 norm of the elementwise divergence, `√(Σ_e V_e (∇·u)²)`.
pub fn divergence_norm(mesh: &TetMesh, u: &VectorField) -> f64 {
    let mut acc = 0.0;
    for e in 0..mesh.num_elements() {
        let conn = mesh.element(e);
        let (grads, vol) = tet4_gradients(&mesh.element_coords(e));
        let mut div = 0.0;
        for (a, &n) in conn.iter().enumerate() {
            let v = u.get(n as usize);
            div += grads[a][0] * v[0] + grads[a][1] * v[1] + grads[a][2] * v[2];
        }
        acc += vol * div * div;
    }
    acc.sqrt()
}

/// Lumped nodal gradient of a scalar field:
/// `g_a = (Σ_e V_e/4 … ∇p|_e) / m_a` with `∇p` constant per element.
pub fn nodal_gradient(mesh: &TetMesh, p: &ScalarField, mass: &[f64]) -> VectorField {
    let mut g = VectorField::zeros(mesh.num_nodes());
    for e in 0..mesh.num_elements() {
        let conn = mesh.element(e);
        let (grads, vol) = tet4_gradients(&mesh.element_coords(e));
        let mut gp = [0.0; 3];
        for (a, &n) in conn.iter().enumerate() {
            let pv = p.get(n as usize);
            for d in 0..3 {
                gp[d] += grads[a][d] * pv;
            }
        }
        let w = vol * 0.25;
        for &n in &conn {
            g.add(n as usize, [w * gp[0], w * gp[1], w * gp[2]]);
        }
    }
    for n in 0..mesh.num_nodes() {
        let m = mass[n].max(1e-300);
        let v = g.get(n);
        g.set(n, [v[0] / m, v[1] / m, v[2] / m]);
    }
    g
}

/// The exact transpose of the weak divergence:
/// `(Dᵀ p)_a = Σ_e V_e p̄_e ∇N_a` with `p̄` the element-mean pressure —
/// i.e. the weak pressure force `∫ p ∇N_a` (which differs from `∫ N_a ∇p`
/// by the boundary term).
pub fn weak_gradient_adjoint(mesh: &TetMesh, p: &[f64]) -> VectorField {
    let mut g = VectorField::zeros(mesh.num_nodes());
    for e in 0..mesh.num_elements() {
        let conn = mesh.element(e);
        let (grads, vol) = tet4_gradients(&mesh.element_coords(e));
        let mut pbar = 0.0;
        for &n in &conn {
            pbar += p[n as usize];
        }
        pbar *= 0.25;
        let w = vol * pbar;
        for (a, &n) in conn.iter().enumerate() {
            g.add(
                n as usize,
                [w * grads[a][0], w * grads[a][1], w * grads[a][2]],
            );
        }
    }
    g
}

/// The compatible discrete projection operator `A = D M⁻¹ Dᵀ`
/// (weak divergence ∘ lumped-mass inverse ∘ weak gradient) — symmetric
/// positive semidefinite with the constant null space, and *exactly* the
/// operator whose solve makes the velocity correction annihilate the weak
/// divergence.
pub struct ProjectionOp<'a> {
    /// The mesh.
    pub mesh: &'a TetMesh,
    /// Lumped mass.
    pub mass: &'a [f64],
    /// Preconditioner diagonal (typically the stiffness diagonal).
    /// Borrowed when the caller already owns it (the fractional-step
    /// solver keeps one per case and allocates nothing per step), owned
    /// when built via [`ProjectionOp::new`].
    pub diag: std::borrow::Cow<'a, [f64]>,
}

impl<'a> ProjectionOp<'a> {
    /// Builds the operator (uses the P1 stiffness diagonal as Jacobi
    /// preconditioner — spectrally equivalent).
    pub fn new(mesh: &'a TetMesh, mass: &'a [f64]) -> Self {
        let diag = std::borrow::Cow::Owned(laplacian(mesh).diagonal());
        Self { mesh, mass, diag }
    }
}

impl crate::cg::LinOp for ProjectionOp<'_> {
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let mut g = weak_gradient_adjoint(self.mesh, x);
        for n in 0..self.mesh.num_nodes() {
            let m = self.mass[n].max(1e-300);
            let v = g.get(n);
            g.set(n, [v[0] / m, v[1] / m, v[2] / m]);
        }
        let div = weak_divergence(self.mesh, &g);
        y.copy_from_slice(div.as_slice());
    }

    fn dim(&self) -> usize {
        self.mesh.num_nodes()
    }

    fn precond_diagonal(&self) -> Vec<f64> {
        self.diag.to_vec()
    }

    fn precond_diagonal_into(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.diag);
    }

    fn apply_flops(&self) -> u64 {
        // Algebraic work only (the per-element geometry recomputation in
        // `tet4_gradients` is excluded): Dᵀ (~30/elem) + M⁻¹ scale (6/node)
        // + D (~30/elem), per apply.
        60 * self.mesh.num_elements() as u64 + 6 * self.mesh.num_nodes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_mesh::BoxMeshBuilder;

    #[test]
    fn laplacian_is_symmetric_with_zero_row_sums() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).jitter(0.1).seed(5).build();
        let l = laplacian(&mesh);
        assert!(l.max_asymmetry() < 1e-12);
        // Row sums vanish: L * 1 = 0 (constants in the null space).
        let ones = vec![1.0; mesh.num_nodes()];
        let mut y = vec![0.0; mesh.num_nodes()];
        l.spmv(&ones, &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn laplacian_diag_positive() {
        let mesh = BoxMeshBuilder::new(2, 2, 2).build();
        let l = laplacian(&mesh);
        assert!(l.diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn lumped_mass_sums_to_volume() {
        let mesh = BoxMeshBuilder::new(3, 2, 4).extent(2.0, 1.0, 1.0).build();
        let m = lumped_mass(&mesh);
        let total: f64 = m.iter().sum();
        assert!((total - mesh.total_volume()).abs() < 1e-12);
        assert!(m.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn divergence_of_solenoidal_field_is_zero() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        // u = (y, z, x) is divergence-free and linear (exact for P1).
        let u = VectorField::from_fn(&mesh, |p| [p[1], p[2], p[0]]);
        assert!(divergence_norm(&mesh, &u) < 1e-12);
        let b = weak_divergence(&mesh, &u);
        assert!(b.max_abs() < 1e-13);
    }

    #[test]
    fn divergence_of_linear_expansion_matches() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        // u = (x, y, z): div = 3 everywhere.
        let u = VectorField::from_fn(&mesh, |p| [p[0], p[1], p[2]]);
        let norm = divergence_norm(&mesh, &u);
        // sqrt(sum_e V * 9) = 3 sqrt(volume).
        assert!((norm - 3.0 * mesh.total_volume().sqrt()).abs() < 1e-12);
        // Weak divergence integrates to 3 * V in total.
        let b = weak_divergence(&mesh, &u);
        let total: f64 = b.as_slice().iter().sum();
        assert!((total - 3.0 * mesh.total_volume()).abs() < 1e-12);
    }

    #[test]
    fn nodal_gradient_of_linear_field_is_exact_inside() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build();
        let p = ScalarField::from_fn(&mesh, |q| 2.0 * q[0] - q[1] + 0.5 * q[2]);
        let mass = lumped_mass(&mesh);
        let g = nodal_gradient(&mesh, &p, &mass);
        // Exact gradient everywhere (it is constant and the lumped average
        // of a constant is that constant).
        for n in 0..mesh.num_nodes() {
            let v = g.get(n);
            assert!((v[0] - 2.0).abs() < 1e-11, "node {n}: {v:?}");
            assert!((v[1] + 1.0).abs() < 1e-11);
            assert!((v[2] - 0.5).abs() < 1e-11);
        }
    }
}
