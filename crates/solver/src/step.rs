//! Explicit fractional-step integrator.
//!
//! One time step, the structure the paper's kernel lives in:
//!
//! 1. **Momentum prediction** — assemble the RHS with any of the paper's
//!    variants (`alya-core`) and advance `u* = u + Δt M⁻¹ R(u)`;
//! 2. **Pressure Poisson** — solve `L p = (ρ/Δt) ∫ N ∇·u*`;
//! 3. **Correction** — `u = u* − (Δt/ρ) ∇p` (lumped nodal gradient);
//! 4. **Boundary conditions** — strong Dirichlet re-imposition.
//!
//! The projection reduces the discrete divergence every step (asserted by
//! tests), which is the property a fractional-step scheme must deliver.

use std::borrow::Cow;
use std::sync::Arc;

use alya_core::{assemble_parallel, assemble_serial, AssemblyInput, ParallelStrategy, Variant};
use alya_fem::bc::DirichletBc;
use alya_fem::material::ConstantProperties;
use alya_fem::{ScalarField, VectorField};
use alya_mesh::TetMesh;
use alya_telemetry as telemetry;

use crate::cg::{solve_cg_with, CgResult, CgScratch};
use crate::poisson;

/// Explicit time-integration scheme for the momentum prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeScheme {
    /// One RHS evaluation per step.
    #[default]
    ForwardEuler,
    /// Three-stage SSP Runge–Kutta — three RHS evaluations per step, the
    /// structure behind the paper's runtime convention (the RHS assembly
    /// is evaluated three times per reported "runtime").
    SspRk3,
}

impl TimeScheme {
    /// RHS assemblies performed per step.
    pub fn rhs_evals(self) -> usize {
        match self {
            TimeScheme::ForwardEuler => 1,
            TimeScheme::SspRk3 => 3,
        }
    }
}

/// Integrator configuration.
#[derive(Debug, Clone)]
pub struct StepConfig {
    /// Time-step size.
    pub dt: f64,
    /// Time scheme for the momentum prediction.
    pub scheme: TimeScheme,
    /// Fluid properties.
    pub props: ConstantProperties,
    /// Uniform body force.
    pub body_force: [f64; 3],
    /// Vreman constant.
    pub vreman_c: f64,
    /// CG relative tolerance for the pressure solve.
    pub cg_tol: f64,
    /// CG iteration cap.
    pub cg_max_iters: usize,
    /// Rayon-parallel assembly (serial otherwise).
    pub parallel: bool,
}

impl Default for StepConfig {
    fn default() -> Self {
        Self {
            dt: 1e-3,
            scheme: TimeScheme::default(),
            props: ConstantProperties::UNIT,
            body_force: [0.0; 3],
            vreman_c: alya_fem::turbulence::VREMAN_C,
            cg_tol: 1e-8,
            cg_max_iters: 500,
            parallel: false,
        }
    }
}

/// Per-step diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct StepStats {
    /// `‖∇·u‖` before the projection.
    pub divergence_before: f64,
    /// `‖∇·u‖` after the projection.
    pub divergence_after: f64,
    /// Pressure-solve convergence.
    pub cg: CgResult,
    /// Kinetic energy after the step.
    pub kinetic_energy: f64,
}

/// How a solver holds its mesh: borrowed for the classic standalone use,
/// `Arc`-shared when many pooled sessions of the same case share one
/// immutable mesh copy-on-write (they only ever read it, so "write" never
/// happens and the Arc is never cloned deeply).
enum MeshHandle<'m> {
    Borrowed(&'m TetMesh),
    Shared(Arc<TetMesh>),
}

impl MeshHandle<'_> {
    fn get(&self) -> &TetMesh {
        match self {
            MeshHandle::Borrowed(m) => m,
            MeshHandle::Shared(m) => m,
        }
    }
}

/// The immutable per-case data every session of the same case shares:
/// the Poisson preconditioner diagonal, the lumped mass, and the
/// coloring-based parallel strategy. Built once per case, `Arc`-cloned
/// into each [`FractionalStep`] (the serve pool's copy-on-write story).
#[derive(Clone)]
pub struct CaseParts {
    /// Jacobi diagonal for the projection operator (P1 stiffness diagonal).
    pub proj_diag: Arc<Vec<f64>>,
    /// Lumped mass.
    pub mass: Arc<Vec<f64>>,
    /// Parallel assembly strategy (element coloring).
    pub strategy: Arc<ParallelStrategy>,
}

impl CaseParts {
    /// Assembles the shared parts for `mesh`.
    pub fn build(mesh: &TetMesh) -> Self {
        Self {
            proj_diag: Arc::new(poisson::laplacian(mesh).diagonal()),
            mass: Arc::new(poisson::lumped_mass(mesh)),
            strategy: Arc::new(ParallelStrategy::colored(mesh)),
        }
    }
}

/// The fractional-step solver state.
pub struct FractionalStep<'m> {
    mesh: MeshHandle<'m>,
    config: StepConfig,
    velocity: VectorField,
    pressure: ScalarField,
    temperature: ScalarField,
    bc: DirichletBc,
    parts: CaseParts,
    cg_scratch: CgScratch,
    pressure_scratch: Vec<f64>,
    time: f64,
}

impl<'m> FractionalStep<'m> {
    /// Builds the solver (assembles the Poisson preconditioner once).
    pub fn new(mesh: &'m TetMesh, config: StepConfig) -> Self {
        // The Neumann projection operator is singular (constants); CG
        // handles the semidefinite system as long as the RHS is de-meaned,
        // and the solution is de-meaned afterwards.
        let parts = CaseParts::build(mesh);
        Self::assemble_state(MeshHandle::Borrowed(mesh), config, parts)
    }

    /// Builds a solver over shared immutable case data: the mesh and
    /// [`CaseParts`] are `Arc`s owned by the case, so N pooled sessions
    /// of the same case cost one mesh + one preconditioner, not N.
    pub fn from_shared_parts(
        mesh: Arc<TetMesh>,
        config: StepConfig,
        parts: CaseParts,
    ) -> FractionalStep<'static> {
        FractionalStep::assemble_state(MeshHandle::Shared(mesh), config, parts)
    }

    fn assemble_state(
        mesh: MeshHandle<'_>,
        config: StepConfig,
        parts: CaseParts,
    ) -> FractionalStep<'_> {
        let n = mesh.get().num_nodes();
        FractionalStep {
            mesh,
            config,
            velocity: VectorField::zeros(n),
            pressure: ScalarField::zeros(n),
            temperature: ScalarField::zeros(n),
            bc: DirichletBc::new(),
            parts,
            cg_scratch: CgScratch::new(),
            pressure_scratch: Vec::new(),
            time: 0.0,
        }
    }

    /// The mesh this solver integrates on.
    pub fn mesh(&self) -> &TetMesh {
        self.mesh.get()
    }

    /// Rewinds the solver to `t = 0` with the given initial velocity,
    /// zero pressure/temperature and the current boundary conditions —
    /// without allocating, which is what lets a pooled slot re-admit a
    /// session warm. The CG/pressure scratch is deliberately kept: every
    /// work vector is fully overwritten before it is read, so a reused
    /// slot is bitwise identical to a fresh one (pinned by tests).
    pub fn reset(&mut self, velocity: &VectorField) {
        self.velocity
            .as_mut_slice()
            .copy_from_slice(velocity.as_slice());
        for v in self.pressure.as_mut_slice() {
            *v = 0.0;
        }
        for v in self.temperature.as_mut_slice() {
            *v = 0.0;
        }
        self.time = 0.0;
        self.bc.apply_to_field(&mut self.velocity);
    }

    /// Replaces the integrator configuration (a warm re-admission may
    /// carry a different time step or scheme for the same case).
    pub fn set_config(&mut self, config: StepConfig) {
        self.config = config;
    }

    /// Sets the velocity from a function of position.
    pub fn set_velocity(&mut self, f: impl Fn([f64; 3]) -> [f64; 3]) {
        self.velocity = VectorField::from_fn(self.mesh.get(), f);
        self.bc.apply_to_field(&mut self.velocity);
    }

    /// Installs Dirichlet boundary conditions (applied every step).
    pub fn set_bc(&mut self, bc: DirichletBc) {
        self.bc = bc;
        self.bc.apply_to_field(&mut self.velocity);
    }

    /// Current velocity.
    pub fn velocity(&self) -> &VectorField {
        &self.velocity
    }

    /// Current pressure.
    pub fn pressure(&self) -> &ScalarField {
        &self.pressure
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// CFL number for the current state (`max |u| Δt / h_min`).
    pub fn cfl(&self) -> f64 {
        let mesh = self.mesh.get();
        let umax = self.velocity.max_abs();
        let mut h_min = f64::INFINITY;
        for e in 0..mesh.num_elements() {
            let q = alya_mesh::quality::tet_quality(&mesh.element_coords(e));
            h_min = h_min.min(q.min_edge);
        }
        umax * self.config.dt / h_min
    }

    /// Advances one time step using `variant` for the momentum assembly.
    pub fn step(&mut self, variant: Variant) -> StepStats {
        let _sp = telemetry::span("fractional-step");
        let mesh = self.mesh.get();
        let cfg = &self.config;
        let n = mesh.num_nodes();
        let rho = cfg.props.density;
        let mass = self.parts.mass.as_slice();

        // One explicit stage: w + dt * M⁻¹ R(u_stage), BCs re-imposed.
        let euler_stage = |state: &VectorField, dt: f64| -> VectorField {
            let stage_input = AssemblyInput::new(mesh, state, &self.pressure, &self.temperature)
                .props(cfg.props)
                .body_force(cfg.body_force)
                .vreman_c(cfg.vreman_c);
            let rhs = if cfg.parallel {
                assemble_parallel(variant, &stage_input, &self.parts.strategy)
            } else {
                assemble_serial(variant, &stage_input)
            };
            let mut out = state.clone();
            for node in 0..n {
                let m = (mass[node] * rho).max(1e-300);
                let r = rhs.get(node);
                let mut v = out.get(node);
                for d in 0..3 {
                    v[d] += dt * r[d] / m;
                }
                out.set(node, v);
            }
            self.bc.apply_to_field(&mut out);
            out
        };

        // 1. Momentum prediction (one or three RHS assemblies).
        let mut u_star = match cfg.scheme {
            TimeScheme::ForwardEuler => euler_stage(&self.velocity, cfg.dt),
            TimeScheme::SspRk3 => {
                // Shu–Osher form: u1 = u + dt L(u);
                // u2 = 3/4 u + 1/4 (u1 + dt L(u1));
                // u* = 1/3 u + 2/3 (u2 + dt L(u2)).
                let u1 = euler_stage(&self.velocity, cfg.dt);
                let mut u2 = euler_stage(&u1, cfg.dt);
                for (w, u0) in u2.as_mut_slice().iter_mut().zip(self.velocity.as_slice()) {
                    *w = 0.75 * u0 + 0.25 * *w;
                }
                self.bc.apply_to_field(&mut u2);
                let mut us = euler_stage(&u2, cfg.dt);
                for (w, u0) in us.as_mut_slice().iter_mut().zip(self.velocity.as_slice()) {
                    *w = *u0 / 3.0 + 2.0 / 3.0 * *w;
                }
                us
            }
        };
        self.bc.apply_to_field(&mut u_star);
        // The projection controls the *weak* divergence D u (what the
        // pressure equation sees); report its norm.
        let divergence_before = poisson::weak_divergence(mesh, &u_star).norm();

        // 2. Pressure projection: solve the *compatible* discrete operator
        // (D M⁻¹ Dᵀ) p = (ρ/Δt) D u*, so the subsequent correction
        // annihilates the weak divergence exactly (up to CG tolerance).
        // The RHS is consistent by construction: ⟨D u*, q⟩ = ⟨u*, Dᵀ q⟩ = 0
        // for every null vector q of Dᵀ — do NOT de-mean (constants are not
        // in this operator's null space; subtracting the mean would inject
        // an inconsistent component that CG amplifies without bound).
        let op = poisson::ProjectionOp {
            mesh,
            mass,
            diag: Cow::Borrowed(self.parts.proj_diag.as_slice()),
        };
        let mut b = poisson::weak_divergence(mesh, &u_star);
        for v in b.as_mut_slice() {
            *v *= rho / cfg.dt;
        }
        // Warm start from the previous step's pressure; the scratch keeps
        // its capacity, so repeat steps allocate nothing.
        self.pressure_scratch.clear();
        self.pressure_scratch
            .extend_from_slice(self.pressure.as_slice());
        let cg = solve_cg_with(
            &op,
            b.as_slice(),
            &mut self.pressure_scratch,
            cfg.cg_tol,
            cfg.cg_max_iters,
            &mut self.cg_scratch,
        );
        self.pressure
            .as_mut_slice()
            .copy_from_slice(&self.pressure_scratch);

        // 3. Velocity correction with the same Dᵀ the projection operator
        // used: u = u* − (Δt/ρ) M⁻¹ Dᵀ p.
        let grad_p = poisson::weak_gradient_adjoint(mesh, self.pressure.as_slice());
        for node in 0..n {
            let g = grad_p.get(node);
            let m = mass[node].max(1e-300);
            let mut v = u_star.get(node);
            for d in 0..3 {
                v[d] -= cfg.dt / rho * g[d] / m;
            }
            u_star.set(node, v);
        }

        // 4. Boundary conditions.
        self.bc.apply_to_field(&mut u_star);
        self.velocity = u_star;
        self.time += cfg.dt;

        StepStats {
            divergence_before,
            divergence_after: poisson::weak_divergence(mesh, &self.velocity).norm(),
            cg,
            kinetic_energy: self.velocity.kinetic_energy(),
        }
    }

    /// Runs `n` steps, returning the last stats.
    pub fn run(&mut self, variant: Variant, n: usize) -> Option<StepStats> {
        let mut last = None;
        for _ in 0..n {
            last = Some(self.step(variant));
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_mesh::BoxMeshBuilder;

    fn solver(mesh: &TetMesh) -> FractionalStep<'_> {
        let mut cfg = StepConfig::default();
        cfg.dt = 5e-4;
        cfg.props = ConstantProperties {
            density: 1.0,
            viscosity: 1e-2,
        };
        FractionalStep::new(mesh, cfg)
    }

    #[test]
    fn projection_reduces_divergence() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build();
        let mut s = solver(&mesh);
        // Strongly divergent initial field with zero net boundary flux
        // (u_x = sin(2πx) vanishes on both x faces), so the Neumann
        // projection problem is globally solvable.
        s.set_velocity(|p| [(2.0 * std::f64::consts::PI * p[0]).sin(), 0.0, 0.0]);
        let stats = s.step(Variant::Rsp);
        assert!(stats.cg.converged, "pressure solve failed: {:?}", stats.cg);
        assert!(
            stats.divergence_after < 0.05 * stats.divergence_before,
            "projection too weak: {} -> {}",
            stats.divergence_before,
            stats.divergence_after
        );
    }

    #[test]
    fn rest_state_stays_at_rest() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        let mut s = solver(&mesh);
        s.set_velocity(|_| [0.0; 3]);
        let stats = s.step(Variant::Rs);
        assert!(stats.kinetic_energy < 1e-24);
        assert!(stats.divergence_after < 1e-12);
    }

    #[test]
    fn viscosity_decays_kinetic_energy() {
        let mesh = BoxMeshBuilder::new(4, 4, 4).build();
        let mut cfg = StepConfig::default();
        cfg.dt = 1e-3;
        cfg.props = ConstantProperties {
            density: 1.0,
            viscosity: 0.5, // very viscous
        };
        let mut s = FractionalStep::new(&mesh, cfg);
        s.set_bc(DirichletBc::no_slip_ground(&mesh, 1e-9));
        // Divergence-free shear-like initial condition.
        s.set_velocity(|p| [(std::f64::consts::PI * p[2]).sin() * 0.1, 0.0, 0.0]);
        let e0 = s.velocity().kinetic_energy();
        let stats = s.run(Variant::Rsp, 5).unwrap();
        assert!(
            stats.kinetic_energy < e0,
            "energy grew: {e0} -> {}",
            stats.kinetic_energy
        );
    }

    #[test]
    fn variants_give_identical_trajectories() {
        let mesh = BoxMeshBuilder::new(3, 3, 2).build();
        let init = |p: [f64; 3]| [0.1 * p[2] * p[2], -0.05 * p[0], 0.02 * p[1]];
        let mut energies = Vec::new();
        for variant in [Variant::B, Variant::Rs, Variant::Rspr] {
            let mut s = solver(&mesh);
            s.set_velocity(init);
            let stats = s.run(variant, 3).unwrap();
            energies.push(stats.kinetic_energy);
        }
        for w in energies.windows(2) {
            assert!(
                (w[0] - w[1]).abs() < 1e-12 * w[0].max(1e-30),
                "{energies:?}"
            );
        }
    }

    #[test]
    fn parallel_assembly_path_runs() {
        let mesh = BoxMeshBuilder::new(3, 3, 3).build();
        let mut cfg = StepConfig::default();
        cfg.parallel = true;
        let mut s = FractionalStep::new(&mesh, cfg);
        s.set_velocity(|p| [0.05 * p[2], 0.0, 0.0]);
        let stats = s.step(Variant::Rspr);
        assert!(stats.cg.converged);
    }

    #[test]
    fn rk3_performs_three_rhs_evals() {
        assert_eq!(TimeScheme::ForwardEuler.rhs_evals(), 1);
        assert_eq!(TimeScheme::SspRk3.rhs_evals(), 3);
    }

    #[test]
    fn rk3_is_more_accurate_on_viscous_decay() {
        // u = (sin(pi z), 0, 0) under pure diffusion (its self-advection is
        // identically zero). The temporal error of each scheme is isolated
        // by comparing against a small-dt reference run on the *same*
        // spatial discretization.
        let mesh = BoxMeshBuilder::new(3, 3, 6).build();
        let nu = 0.5;
        let t_end = 0.04;

        let run = |scheme: TimeScheme, steps: usize| -> f64 {
            let mut cfg = StepConfig::default();
            cfg.dt = t_end / steps as f64;
            cfg.scheme = scheme;
            cfg.props = ConstantProperties {
                density: 1.0,
                viscosity: nu,
            };
            cfg.vreman_c = 0.0; // laminar
            let mut s = FractionalStep::new(&mesh, cfg);
            let mut bc = DirichletBc::new();
            bc.fix_where(&mesh, |p| p[2] < 1e-9 || p[2] > 1.0 - 1e-9, |_| [0.0; 3]);
            s.set_bc(bc);
            s.set_velocity(|p| [(std::f64::consts::PI * p[2]).sin(), 0.0, 0.0]);
            s.run(Variant::Rsp, steps);
            s.velocity().kinetic_energy()
        };

        let reference = run(TimeScheme::SspRk3, 160);
        let fe = (run(TimeScheme::ForwardEuler, 8) - reference).abs();
        let rk3 = (run(TimeScheme::SspRk3, 8) - reference).abs();
        assert!(
            rk3 < 0.2 * fe,
            "RK3 temporal error {rk3} not well below forward-Euler {fe}"
        );
    }

    #[test]
    fn shared_parts_reset_matches_fresh_solver_bitwise() {
        let mesh = Arc::new(BoxMeshBuilder::new(3, 3, 3).build());
        let parts = CaseParts::build(&mesh);
        let init = |p: [f64; 3]| [(2.0 * std::f64::consts::PI * p[0]).sin(), 0.0, 0.05 * p[1]];
        let mut cfg = StepConfig::default();
        cfg.dt = 5e-4;
        let mut fresh = FractionalStep::new(&mesh, cfg.clone());
        fresh.set_velocity(init);
        fresh.run(Variant::Rsp, 3);
        // Shared-parts solver: dirty it with a different run, then reset —
        // the replay must be bitwise identical to the fresh solver.
        let mut pooled = FractionalStep::from_shared_parts(Arc::clone(&mesh), cfg, parts);
        pooled.set_velocity(|p| [0.2 * p[1], -0.1 * p[0], 0.0]);
        pooled.run(Variant::Rspr, 2);
        let u0 = VectorField::from_fn(&mesh, init);
        pooled.reset(&u0);
        pooled.run(Variant::Rsp, 3);
        for (a, b) in fresh
            .velocity()
            .as_slice()
            .iter()
            .zip(pooled.velocity().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fresh
            .pressure()
            .as_slice()
            .iter()
            .zip(pooled.pressure().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(pooled.time(), fresh.time());
    }

    #[test]
    fn time_and_cfl_accounting() {
        let mesh = BoxMeshBuilder::new(2, 2, 2).build();
        let mut s = solver(&mesh);
        s.set_velocity(|_| [1.0, 0.0, 0.0]);
        assert!(s.cfl() > 0.0);
        s.run(Variant::Rsp, 4);
        assert!((s.time() - 4.0 * 5e-4).abs() < 1e-15);
    }
}
