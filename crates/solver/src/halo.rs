//! Distributed-memory assembly: partitions, halos and exchange.
//!
//! Alya parallelizes with one MPI rank per core; the RHS assembly is
//! embarrassingly parallel *except* for interface nodes shared by several
//! ranks, whose contributions must be exchanged and summed. This module
//! simulates that structure in-process: each rank owns the elements of one
//! RCB partition, assembles into a local vector over its *local* node set,
//! and an explicit halo exchange reduces interface contributions — with
//! message-volume accounting, since communication is what the paper's
//! future-work section worries about at exascale.

use std::collections::BTreeMap;

use alya_core::drivers::assemble_element;
use alya_core::gather::ScatterSink;
use alya_core::layout::Layout;
use alya_core::{AssemblyInput, Variant};
use alya_fem::VectorField;
use alya_machine::{NoRecord, Recorder};
use alya_mesh::{Partition, ShardSet, TetMesh};

/// One rank's view of the distributed mesh.
#[derive(Debug, Clone)]
pub struct RankTopology {
    /// Global ids of the nodes this rank touches (owned first, then halo).
    pub local_to_global: Vec<u32>,
    /// Number of *owned* nodes (prefix of `local_to_global`).
    pub num_owned: usize,
    /// For each neighbour rank: `(rank, shared local node ids)`.
    pub neighbours: Vec<(u32, Vec<u32>)>,
    /// Elements (global ids) assigned to this rank.
    pub elements: Vec<u32>,
}

/// The full distributed topology.
#[derive(Debug, Clone)]
pub struct DistributedMesh {
    /// Per-rank topology.
    pub ranks: Vec<RankTopology>,
    /// Owner rank of every global node.
    pub node_owner: Vec<u32>,
}

impl DistributedMesh {
    /// Decomposes a mesh over `num_ranks` ranks by RCB. Node ownership goes
    /// to the lowest-numbered rank touching the node (Alya-style).
    ///
    /// The touched/interior/shared classification is **not** re-derived
    /// here: it comes from [`alya_mesh::ShardSet`] — the same compact
    /// decomposition the sharded and distributed drivers use — so there is
    /// exactly one implementation of that sweep in the workspace. A node
    /// interior to shard `r` is touched only by rank `r` (hence owned by
    /// it); interface ownership follows the shard set's lowest-toucher
    /// convention ([`ShardSet::boundary_touch_map`]).
    pub fn build(mesh: &TetMesh, num_ranks: usize) -> Self {
        let partition = Partition::rcb(mesh, num_ranks);
        let set = ShardSet::build(mesh, &partition);
        let nn = mesh.num_nodes();

        let mut node_owner = vec![u32::MAX; nn];
        for (r, shard) in set.shards().enumerate() {
            for &g in &shard.global_nodes()[..shard.num_interior()] {
                node_owner[g as usize] = r as u32;
            }
        }
        // Ranks touching each interface node (sorted; lowest owns).
        let mut boundary_touchers: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (g, touchers) in set.boundary_touch_map() {
            node_owner[g as usize] = touchers[0];
            boundary_touchers.insert(g, touchers);
        }

        let mut ranks = Vec::with_capacity(num_ranks);
        for r in 0..num_ranks as u32 {
            let shard = set.shard(r as usize);
            // Local node set: owned nodes first (interior plus the
            // interface nodes this rank owns), halo after; both blocks
            // ascending by global id.
            let mut owned: Vec<u32> = Vec::with_capacity(shard.num_local_nodes());
            let mut halo: Vec<u32> = Vec::new();
            for &g in shard.global_nodes() {
                if node_owner[g as usize] == r {
                    owned.push(g);
                } else {
                    halo.push(g);
                }
            }
            owned.sort_unstable();
            halo.sort_unstable();
            let num_owned = owned.len();
            let mut local_to_global = owned;
            local_to_global.append(&mut halo);

            // Neighbour lists: every other rank sharing one of my nodes —
            // only interface nodes have co-touchers, by definition.
            let mut neighbours: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for (local, &g) in local_to_global.iter().enumerate() {
                let Some(touchers) = boundary_touchers.get(&g) else {
                    continue;
                };
                for &other in touchers {
                    if other != r {
                        neighbours.entry(other).or_default().push(local as u32);
                    }
                }
            }

            ranks.push(RankTopology {
                local_to_global,
                num_owned,
                neighbours: neighbours.into_iter().collect(),
                elements: partition.part(r as usize).to_vec(),
            });
        }
        Self { ranks, node_owner }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }
}

/// Communication statistics of one exchange.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExchangeStats {
    /// Point-to-point messages sent.
    pub messages: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Largest single message in bytes.
    pub max_message_bytes: u64,
}

/// Sink accumulating into a rank-local vector through a global→local map.
struct LocalSink<'a> {
    global_to_local: &'a [u32],
    values: &'a mut [f64], // 3 * local nodes, blocked
    num_local: usize,
}

impl ScatterSink for LocalSink<'_> {
    #[inline]
    fn add<R: Recorder>(&mut self, n: u32, d: usize, v: f64, _lay: &Layout, rec: &mut R) {
        rec.flop(1);
        let local = self.global_to_local[n as usize];
        debug_assert_ne!(local, u32::MAX, "scatter to non-local node");
        self.values[d * self.num_local + local as usize] += v;
    }
}

/// Distributed RHS assembly: per-rank local assembly + halo reduction.
///
/// Returns the assembled global RHS (equal to the serial assembly up to
/// summation order) and the communication statistics.
pub fn assemble_distributed(
    variant: Variant,
    input: &AssemblyInput,
    dist: &DistributedMesh,
) -> (VectorField, ExchangeStats) {
    let nn = input.mesh.num_nodes();
    let nval = variant.nvalues().max(1);

    // The nu_t pass for baseline variants (each rank would run its slice;
    // done once here).
    let nut;
    let mut input = *input;
    if variant.needs_nut_pass() && input.nu_t.is_none() {
        nut = alya_core::nut::compute_nu_t(&input);
        input.nu_t = Some(&nut);
    }

    // Per-rank local assembly.
    let mut locals: Vec<Vec<f64>> = Vec::with_capacity(dist.num_ranks());
    for rank in &dist.ranks {
        let num_local = rank.local_to_global.len();
        let mut global_to_local = vec![u32::MAX; nn];
        for (l, &g) in rank.local_to_global.iter().enumerate() {
            global_to_local[g as usize] = l as u32;
        }
        let mut values = vec![0.0; 3 * num_local];
        let mut ws_buf = vec![0.0; nval];
        {
            let mut sink = LocalSink {
                global_to_local: &global_to_local,
                values: &mut values,
                num_local,
            };
            for &e in &rank.elements {
                let lay = Layout::cpu(e as usize, 16, nn);
                assemble_element(
                    variant,
                    &input,
                    e as usize,
                    &lay,
                    &mut ws_buf,
                    1,
                    0,
                    &mut sink,
                    &mut NoRecord,
                );
            }
        }
        locals.push(values);
    }

    // Halo exchange: every rank sends its contributions on non-owned
    // shared nodes to the owner; owners accumulate. (In-process stand-in
    // for the MPI_Isend/Irecv + sum pattern.)
    let mut stats = ExchangeStats::default();
    let mut global = VectorField::zeros(nn);
    for (r, rank) in dist.ranks.iter().enumerate() {
        // Messages: one per neighbour owning any of my halo nodes.
        for &(nb, ref shared) in &rank.neighbours {
            let payload: Vec<u32> = shared
                .iter()
                .copied()
                .filter(|&l| {
                    let g = rank.local_to_global[l as usize];
                    dist.node_owner[g as usize] == nb
                })
                .collect();
            if payload.is_empty() {
                continue;
            }
            let bytes = payload.len() as u64 * 3 * 8;
            stats.messages += 1;
            stats.bytes += bytes;
            stats.max_message_bytes = stats.max_message_bytes.max(bytes);
        }
        // Deposit every local contribution into the global vector (owned
        // directly, halo "via the message").
        let num_local = rank.local_to_global.len();
        for (l, &g) in rank.local_to_global.iter().enumerate() {
            let v = [
                locals[r][l],
                locals[r][num_local + l],
                locals[r][2 * num_local + l],
            ];
            global.add(g as usize, v);
        }
    }

    (global, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alya_core::assemble_serial;
    use alya_fem::{ConstantProperties, ScalarField};
    use alya_mesh::BoxMeshBuilder;

    fn setup(mesh: &TetMesh) -> (VectorField, ScalarField, ScalarField) {
        let v = VectorField::from_fn(mesh, |p| [p[2] * p[2], 0.4 * p[0], -0.2 * p[1]]);
        let p = ScalarField::from_fn(mesh, |q| q[0] - q[1] * q[2]);
        let t = ScalarField::zeros(mesh.num_nodes());
        (v, p, t)
    }

    #[test]
    fn topology_covers_every_node_and_element() {
        let mesh = BoxMeshBuilder::new(4, 4, 3).build();
        let dist = DistributedMesh::build(&mesh, 6);
        // Every element appears exactly once.
        let mut elem_seen = vec![false; mesh.num_elements()];
        for rank in &dist.ranks {
            for &e in &rank.elements {
                assert!(!elem_seen[e as usize]);
                elem_seen[e as usize] = true;
            }
        }
        assert!(elem_seen.iter().all(|&s| s));
        // Every node has exactly one owner, and that owner lists it as owned.
        for n in 0..mesh.num_nodes() {
            let owner = dist.node_owner[n];
            assert!(owner != u32::MAX);
            let rank = &dist.ranks[owner as usize];
            let pos = rank
                .local_to_global
                .iter()
                .position(|&g| g == n as u32)
                .expect("owner must hold the node locally");
            assert!(pos < rank.num_owned, "owned node listed as halo");
        }
    }

    #[test]
    fn distributed_assembly_matches_serial() {
        let mesh = BoxMeshBuilder::new(4, 3, 3).jitter(0.1).seed(9).build();
        let (v, p, t) = setup(&mesh);
        let input = AssemblyInput::new(&mesh, &v, &p, &t).props(ConstantProperties::AIR);
        let serial = assemble_serial(Variant::Rsp, &input);
        for ranks in [1, 2, 5, 8] {
            let dist = DistributedMesh::build(&mesh, ranks);
            let (rhs, stats) = assemble_distributed(Variant::Rsp, &input, &dist);
            let dev = rhs.max_abs_diff(&serial) / serial.max_abs();
            assert!(dev < 1e-12, "{ranks} ranks deviate by {dev}");
            if ranks > 1 {
                assert!(stats.messages > 0, "no halo traffic at {ranks} ranks");
            } else {
                assert_eq!(stats.messages, 0);
            }
        }
    }

    #[test]
    fn distributed_works_for_all_variants() {
        let mesh = BoxMeshBuilder::new(3, 3, 2).build();
        let (v, p, t) = setup(&mesh);
        let input = AssemblyInput::new(&mesh, &v, &p, &t);
        let dist = DistributedMesh::build(&mesh, 4);
        let serial = assemble_serial(Variant::B, &input);
        for variant in Variant::ALL {
            let (rhs, _) = assemble_distributed(variant, &input, &dist);
            let dev = rhs.max_abs_diff(&serial) / serial.max_abs();
            assert!(dev < 1e-11, "{variant} deviates by {dev}");
        }
    }

    #[test]
    fn communication_volume_scales_with_interface_not_volume() {
        // Doubling the mesh in one direction roughly doubles the work but
        // the bisection interface stays the same size: bytes per element
        // must fall.
        let small = BoxMeshBuilder::new(4, 4, 4).build();
        let large = BoxMeshBuilder::new(8, 4, 4).extent(2.0, 1.0, 1.0).build();
        let per_elem = |mesh: &TetMesh| {
            let (v, p, t) = setup(mesh);
            let input = AssemblyInput::new(mesh, &v, &p, &t);
            let dist = DistributedMesh::build(mesh, 2);
            let (_, stats) = assemble_distributed(Variant::Rsp, &input, &dist);
            stats.bytes as f64 / mesh.num_elements() as f64
        };
        let s = per_elem(&small);
        let l = per_elem(&large);
        assert!(l < 0.75 * s, "surface-to-volume not visible: {s} vs {l}");
    }

    #[test]
    fn message_sizes_are_bounded_by_interface() {
        let mesh = BoxMeshBuilder::new(6, 6, 3).build();
        let dist = DistributedMesh::build(&mesh, 4);
        let (v, p, t) = setup(&mesh);
        let input = AssemblyInput::new(&mesh, &v, &p, &t);
        let (_, stats) = assemble_distributed(Variant::Rspr, &input, &dist);
        let interface = Partition::rcb(&mesh, 4).num_interface_nodes(&mesh);
        assert!(stats.max_message_bytes <= interface as u64 * 24);
        assert!(stats.bytes <= 2 * interface as u64 * 24 * 4);
    }
}
