//! Two-level aggregation multigrid preconditioner.
//!
//! The paper's production pressure solver is AMG-preconditioned
//! ("AMG4PSBLAS … towards extreme scale"), and its future-work section is
//! explicitly about solvers "with the correct algorithmic scalability for
//! exascale hardware". This module is the laptop-scale embodiment of that
//! substitution: a symmetric V(1,1) cycle over a piecewise-constant
//! aggregation hierarchy, usable as a CG preconditioner. Its defining
//! property — iteration counts that stay (nearly) flat as the mesh grows,
//! where Jacobi-PCG counts climb — is asserted by the tests.
//!
//! Construction:
//! * **aggregates** — nodes are grouped by the RCB element partition
//!   (each node joins the part owning its first incident element);
//! * **prolongation** — piecewise constant over aggregates;
//! * **coarse operator** — the Galerkin product `Pᵀ A P`, built directly;
//! * **smoother** — weighted Jacobi (ω = 2/3), one pre- and one post-sweep
//!   (symmetric, so the cycle is a valid SPD preconditioner);
//! * **coarse solve** — dense Cholesky with a tiny diagonal shift (also
//!   absorbs the Neumann null space).

use alya_mesh::{NodeToElements, Partition, TetMesh};

use crate::cg::{CgResult, LinOp};
use crate::csr::CsrMatrix;

/// Preconditioner interface for [`solve_pcg`].
pub trait Preconditioner {
    /// `z ≈ A⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// Plain Jacobi (diagonal) preconditioning.
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// From an operator's diagonal.
    pub fn new(diag: &[f64]) -> Self {
        Self {
            inv_diag: diag
                .iter()
                .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
                .collect(),
        }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((z, r), d) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *z = r * d;
        }
    }
}

/// Two-level aggregation multigrid V(1,1) cycle.
pub struct TwoLevelMg {
    a: CsrMatrix,
    /// Aggregate id of every fine node.
    aggregate_of: Vec<u32>,
    /// Dense Cholesky factor (lower) of the shifted coarse operator.
    coarse_l: Vec<f64>,
    num_coarse: usize,
    inv_diag: Vec<f64>,
    omega: f64,
}

impl TwoLevelMg {
    /// Builds the hierarchy for the P1 stiffness matrix `a` on `mesh`,
    /// with roughly `num_aggregates` coarse unknowns.
    pub fn new(mesh: &TetMesh, a: CsrMatrix, num_aggregates: usize) -> Self {
        let nn = mesh.num_nodes();
        assert_eq!(a.num_rows(), nn);
        let num_aggregates = num_aggregates.clamp(1, nn);

        // Node aggregates from the element partition.
        let partition = Partition::rcb(mesh, num_aggregates);
        let n2e = NodeToElements::build(mesh);
        let mut aggregate_of = vec![0u32; nn];
        for n in 0..nn {
            let elems = n2e.elements_of(n);
            let e = elems.first().copied().unwrap_or(0);
            aggregate_of[n] = partition.part_of(e as usize);
        }

        // Galerkin coarse operator (dense — the coarse level is small).
        let nc = num_aggregates;
        let mut coarse = vec![0.0; nc * nc];
        for r in 0..nn {
            let (cols, vals) = a.row(r);
            let cr = aggregate_of[r] as usize;
            for (c, v) in cols.iter().zip(vals) {
                let cc = aggregate_of[*c as usize] as usize;
                coarse[cr * nc + cc] += v;
            }
        }
        // Tiny SPD shift: absorbs the Neumann null space and roundoff.
        let scale = (0..nc)
            .map(|i| coarse[i * nc + i].abs())
            .fold(0.0, f64::max);
        let shift = (scale * 1e-8).max(1e-300);
        for i in 0..nc {
            coarse[i * nc + i] += shift;
        }
        // Dense Cholesky.
        let coarse_l = cholesky(coarse, nc);

        let inv_diag = a
            .diagonal()
            .iter()
            .map(|&d| if d.abs() > 0.0 { 1.0 / d } else { 1.0 })
            .collect();

        Self {
            a,
            aggregate_of,
            coarse_l,
            num_coarse: nc,
            inv_diag,
            omega: 2.0 / 3.0,
        }
    }

    fn smooth(&self, b: &[f64], x: &mut [f64], scratch: &mut [f64]) {
        // x += omega * D^{-1} (b - A x)
        self.a.par_spmv(x, scratch);
        for i in 0..x.len() {
            x[i] += self.omega * self.inv_diag[i] * (b[i] - scratch[i]);
        }
    }
}

impl Preconditioner for TwoLevelMg {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        let nc = self.num_coarse;
        z.fill(0.0);
        let mut scratch = vec![0.0; n];

        // Pre-smooth from zero: z = omega D^{-1} r, then one full sweep.
        for i in 0..n {
            z[i] = self.omega * self.inv_diag[i] * r[i];
        }

        // Coarse correction on the smoothed residual.
        self.a.par_spmv(z, &mut scratch);
        let mut rc = vec![0.0; nc];
        for i in 0..n {
            rc[self.aggregate_of[i] as usize] += r[i] - scratch[i];
        }
        let xc = cholesky_solve(&self.coarse_l, nc, &rc);
        for i in 0..n {
            z[i] += xc[self.aggregate_of[i] as usize];
        }

        // Post-smooth (symmetric counterpart).
        self.smooth(r, z, &mut scratch);
    }
}

/// Preconditioned conjugate gradients with an arbitrary SPD preconditioner.
pub fn solve_pcg(
    a: &impl LinOp,
    m: &impl Preconditioner,
    b: &[f64],
    x: &mut [f64],
    rel_tol: f64,
    max_iters: usize,
) -> CgResult {
    let n = b.len();
    assert_eq!(a.dim(), n);
    let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let tol = rel_tol * norm_b + 1e-300;

    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
    let mut ap = vec![0.0; n];

    let mut residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    if residual <= tol {
        return CgResult {
            iterations: 0,
            residual,
            converged: true,
        };
    }
    for it in 1..=max_iters {
        a.apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-300 {
            return CgResult {
                iterations: it,
                residual,
                converged: false,
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        residual = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        if residual <= tol {
            return CgResult {
                iterations: it,
                residual,
                converged: true,
            };
        }
        m.apply(&r, &mut z);
        let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    CgResult {
        iterations: max_iters,
        residual,
        converged: false,
    }
}

/// Dense Cholesky factorization (lower triangular, row-major).
fn cholesky(mut a: Vec<f64>, n: usize) -> Vec<f64> {
    for j in 0..n {
        for k in 0..j {
            let l_jk = a[j * n + k];
            for i in j..n {
                a[i * n + j] -= a[i * n + k] * l_jk;
            }
        }
        let d = a[j * n + j];
        assert!(d > 0.0, "coarse operator not SPD (pivot {d} at {j})");
        let inv = 1.0 / d.sqrt();
        for i in j..n {
            a[i * n + j] *= inv;
        }
    }
    // Zero the strict upper triangle for hygiene.
    for i in 0..n {
        for j in (i + 1)..n {
            a[i * n + j] = 0.0;
        }
    }
    a
}

/// Solves `L Lᵀ x = b` from a [`cholesky`] factor.
fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * y[k];
        }
        y[i] = s / l[i * n + i];
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::laplacian;
    use alya_mesh::BoxMeshBuilder;

    /// Shifted Laplacian (SPD, nonsingular): L + c M_lumped.
    fn shifted_system(mesh: &TetMesh, c: f64) -> CsrMatrix {
        let l = laplacian(mesh);
        let mass = crate::poisson::lumped_mass(mesh);
        let mut triplets = Vec::new();
        for r in 0..l.num_rows() {
            let (cols, vals) = l.row(r);
            for (col, v) in cols.iter().zip(vals) {
                triplets.push((r as u32, *col, *v));
            }
            triplets.push((r as u32, r as u32, c * mass[r]));
        }
        CsrMatrix::from_triplets(l.num_rows(), l.num_cols(), triplets)
    }

    #[test]
    fn cholesky_roundtrip() {
        // SPD 3x3.
        let a = vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0];
        let l = cholesky(a.clone(), 3);
        let b = vec![1.0, 2.0, 3.0];
        let x = cholesky_solve(&l, 3, &b);
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a[i * 3 + j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn mg_preconditioner_is_consistent() {
        // M applied to A x roughly recovers x for smooth x (sanity, not a
        // sharp bound): check the preconditioned residual shrinks.
        let mesh = BoxMeshBuilder::new(6, 6, 6).build();
        let a = shifted_system(&mesh, 1.0);
        let mg = TwoLevelMg::new(&mesh, a.clone(), 16);
        let n = mesh.num_nodes();
        let x_true: Vec<f64> = mesh.coords().iter().map(|p| p[0] + 0.5 * p[1]).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        let mut z = vec![0.0; n];
        mg.apply(&b, &mut z);
        // One V-cycle from zero must reduce the error vs doing nothing.
        let err0: f64 = x_true.iter().map(|v| v * v).sum::<f64>().sqrt();
        let err1: f64 = x_true
            .iter()
            .zip(&z)
            .map(|(t, z)| (t - z) * (t - z))
            .sum::<f64>()
            .sqrt();
        assert!(err1 < err0, "V-cycle did not reduce the error");
    }

    #[test]
    fn mg_pcg_beats_jacobi_pcg() {
        let mesh = BoxMeshBuilder::new(8, 8, 8).build();
        let a = shifted_system(&mesh, 0.1);
        let n = mesh.num_nodes();
        let b: Vec<f64> = mesh
            .coords()
            .iter()
            .map(|p| (3.0 * p[0]).sin() * (2.0 * p[1]).cos())
            .collect();

        let jacobi = Jacobi::new(&a.diagonal());
        let mut x1 = vec![0.0; n];
        let r1 = solve_pcg(&a, &jacobi, &b, &mut x1, 1e-8, 2000);
        assert!(r1.converged);

        let mg = TwoLevelMg::new(&mesh, a.clone(), 32);
        let mut x2 = vec![0.0; n];
        let r2 = solve_pcg(&a, &mg, &b, &mut x2, 1e-8, 2000);
        assert!(r2.converged);

        assert!(
            r2.iterations * 2 < r1.iterations,
            "MG {} vs Jacobi {} iterations",
            r2.iterations,
            r1.iterations
        );
        // Same answer.
        let dev = x1
            .iter()
            .zip(&x2)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(dev < 1e-5, "solutions differ by {dev}");
    }

    #[test]
    fn mg_iterations_scale_better_with_mesh_size() {
        // The algorithmic-scalability claim: Jacobi-PCG iteration counts
        // grow markedly with refinement; MG-PCG counts grow much slower.
        let mut jacobi_iters = Vec::new();
        let mut mg_iters = Vec::new();
        for n in [4usize, 8, 12] {
            let mesh = BoxMeshBuilder::new(n, n, n).build();
            let a = shifted_system(&mesh, 0.01);
            let nn = mesh.num_nodes();
            let b: Vec<f64> = mesh.coords().iter().map(|p| p[0] * p[1] - p[2]).collect();

            let jac = Jacobi::new(&a.diagonal());
            let mut x = vec![0.0; nn];
            jacobi_iters.push(solve_pcg(&a, &jac, &b, &mut x, 1e-8, 4000).iterations);

            let mg = TwoLevelMg::new(&mesh, a.clone(), (nn / 24).max(8));
            let mut x = vec![0.0; nn];
            mg_iters.push(solve_pcg(&a, &mg, &b, &mut x, 1e-8, 4000).iterations);
        }
        let jac_growth = jacobi_iters[2] as f64 / jacobi_iters[0] as f64;
        let mg_growth = mg_iters[2] as f64 / mg_iters[0] as f64;
        assert!(
            mg_growth < 0.8 * jac_growth,
            "MG growth {mg_growth:.2} ({mg_iters:?}) vs Jacobi {jac_growth:.2} ({jacobi_iters:?})"
        );
    }

    #[test]
    fn jacobi_preconditioner_matches_diagonal_scaling() {
        let diag = vec![2.0, 4.0, 0.0];
        let j = Jacobi::new(&diag);
        let mut z = vec![0.0; 3];
        j.apply(&[2.0, 4.0, 5.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0, 5.0]);
    }
}
