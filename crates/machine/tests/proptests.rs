//! Randomized property tests of the performance-machine substrate
//! (seeded, deterministic — see `alya_mesh::rng`).

use alya_machine::cache::{AccessKind, CacheSim, Replacement};
use alya_machine::trace::estimate_mlp;
use alya_machine::{Event, RegisterAllocator};
use alya_mesh::Rng64;

/// A random (address, is_store) access stream.
fn arb_stream(rng: &mut Rng64) -> Vec<(u64, bool)> {
    let len = rng.range_usize(1, 600);
    (0..len)
        .map(|_| (rng.next_u64() % 4096, rng.bool()))
        .collect()
}

#[test]
fn cache_stats_are_conserved() {
    let mut rng = Rng64::new(0xCAC4E01);
    for _ in 0..24 {
        let stream = arb_stream(&mut rng);
        let assoc = rng.range_usize(1, 8);
        let mut c = CacheSim::new(64 * assoc * 4, 64, assoc);
        let mut writebacks_seen = 0u64;
        for &(addr, is_store) in &stream {
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let out = c.access(addr * 8, kind, None);
            if out.writeback.is_some() {
                writebacks_seen += 1;
            }
            // A hit never fills or writes back.
            if out.hit {
                assert!(out.fill.is_none() && out.writeback.is_none());
            } else {
                assert!(out.fill.is_some());
            }
        }
        let s = c.stats();
        assert_eq!(s.accesses(), stream.len() as u64);
        assert_eq!(s.hits() + s.misses(), stream.len() as u64);
        assert_eq!(s.fills, s.misses());
        assert_eq!(s.writebacks, writebacks_seen);
        // Flushing returns each remaining dirty line exactly once.
        let dirty = c.flush();
        let mut uniq = dirty.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), dirty.len());
    }
}

#[test]
fn fully_associative_lru_is_inclusion_monotone() {
    let mut rng = Rng64::new(0xCAC4E02);
    for _ in 0..12 {
        let stream = arb_stream(&mut rng);
        // Bigger fully-associative LRU caches never miss more.
        let mut prev = u64::MAX;
        for ways in [4usize, 8, 16, 32] {
            let mut c = CacheSim::new(64 * ways, 64, ways);
            for &(addr, _) in &stream {
                c.access(addr * 8, AccessKind::Load, None);
            }
            let misses = c.stats().misses();
            assert!(misses <= prev, "ways {ways}: {misses} > {prev}");
            prev = misses;
        }
    }
}

#[test]
fn cold_misses_lower_bound() {
    let mut rng = Rng64::new(0xCAC4E03);
    for _ in 0..12 {
        let stream = arb_stream(&mut rng);
        // Any cache must miss at least once per distinct line.
        let mut c = CacheSim::new(1 << 16, 64, 8);
        let mut lines: Vec<u64> = stream.iter().map(|&(a, _)| a * 8 / 64).collect();
        for &(addr, _) in &stream {
            c.access(addr * 8, AccessKind::Load, None);
        }
        lines.sort_unstable();
        lines.dedup();
        assert!(c.stats().misses() >= lines.len() as u64);
    }
}

#[test]
fn random_replacement_preserves_conservation() {
    let mut rng = Rng64::new(0xCAC4E04);
    for _ in 0..12 {
        let stream = arb_stream(&mut rng);
        let mut c = CacheSim::new(2048, 64, 4).with_replacement(Replacement::Random);
        for &(addr, is_store) in &stream {
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            c.access(addr * 8, kind, None);
        }
        let s = c.stats();
        assert_eq!(s.hits() + s.misses(), stream.len() as u64);
    }
}

#[test]
fn owner_invalidation_never_writes_back() {
    let mut rng = Rng64::new(0xCAC4E05);
    for _ in 0..12 {
        let len = rng.range_usize(1, 200);
        let stream: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.next_u64() % 512, (rng.next_u64() % 4) as u32))
            .collect();
        let mut c = CacheSim::new(1 << 16, 64, 8);
        for &(slot, owner) in &stream {
            // Give each owner a disjoint address range.
            let addr = ((owner as u64) << 20) | (slot * 64);
            c.access(addr, AccessKind::Store, Some(owner));
        }
        let wb_before = c.stats().writebacks;
        for owner in 0..4 {
            c.invalidate_owner(owner);
        }
        assert_eq!(c.stats().writebacks, wb_before);
        // Everything local is gone: flush returns nothing dirty.
        assert!(c.flush().is_empty());
    }
}

#[test]
fn regalloc_never_spills_under_budget() {
    let mut rng = Rng64::new(0x4E6A01);
    for _ in 0..16 {
        let n_values = (rng.next_u64() % 39 + 1) as u32;
        let uses_per_value = rng.range_usize(1, 4);
        // Sequential, non-overlapping lifetimes: pressure 1.
        let mut events = Vec::new();
        for v in 0..n_values {
            events.push(Event::Def(v));
            for _ in 0..uses_per_value {
                events.push(Event::Use(v));
            }
        }
        let r = RegisterAllocator::new(2).allocate(&events);
        assert_eq!(r.max_pressure, 1);
        assert_eq!(r.spilled_values, 0);
        assert!(r.events.is_empty());
    }
}

#[test]
fn regalloc_pressure_capped_by_budget() {
    let mut rng = Rng64::new(0x4E6A02);
    for _ in 0..24 {
        let live = (rng.next_u64() % 62 + 2) as u32;
        let budget = (rng.next_u64() % 31 + 1) as u32;
        // `live` simultaneously-live values.
        let mut events = Vec::new();
        for v in 0..live {
            events.push(Event::Def(v));
        }
        for v in 0..live {
            events.push(Event::Use(v));
        }
        let r = RegisterAllocator::new(budget).allocate(&events);
        assert!(r.max_pressure <= budget.max(1));
        let expected_spills = live.saturating_sub(budget);
        assert_eq!(r.spilled_values, expected_spills);
        // The rewritten stream has only local traffic left.
        assert!(r
            .events
            .iter()
            .all(|e| matches!(e, Event::LLoad(_) | Event::LStore(_))));
        assert_eq!(r.spill_stores, expected_spills as u64);
    }
}

#[test]
fn regalloc_is_deterministic() {
    let mut rng = Rng64::new(0x4E6A03);
    for _ in 0..16 {
        let len = rng.range_usize(0, 100);
        let events: Vec<Event> = (0..len)
            .map(|_| {
                let v = (rng.next_u64() % 16) as u32;
                if rng.bool() {
                    Event::Def(v)
                } else {
                    Event::Use(v)
                }
            })
            .collect();
        let a = RegisterAllocator::new(4).allocate(&events);
        let b = RegisterAllocator::new(4).allocate(&events);
        assert_eq!(a.events, b.events);
        assert_eq!(a.spilled_values, b.spilled_values);
    }
}

#[test]
fn mlp_estimate_is_bounded() {
    let mut rng = Rng64::new(0x41704);
    for _ in 0..16 {
        let len = rng.range_usize(0, 300);
        // Random mix of loads, stores and flops.
        let mut events = Vec::new();
        let mut max_run = 1u64;
        let mut run = 0u64;
        for i in 0..len {
            match rng.next_u64() % 5 {
                0 => {
                    events.push(Event::GLoad(i as u64 * 8 + (1 << 30)));
                    run += 1;
                    max_run = max_run.max(run);
                }
                1 => {
                    events.push(Event::GStore(i as u64 * 8));
                }
                _ => {
                    events.push(Event::Fma(1));
                    run = 0;
                }
            }
        }
        let mlp = estimate_mlp(&events);
        assert!(mlp >= 1.0 - 1e-12);
        assert!(mlp <= max_run as f64 + 1e-12, "mlp {mlp} max_run {max_run}");
    }
}
