//! Property-based tests of the performance-machine substrate.

use alya_machine::cache::{AccessKind, CacheSim, Replacement};
use alya_machine::trace::estimate_mlp;
use alya_machine::{Event, RegisterAllocator};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..4096, any::<bool>()), 1..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_stats_are_conserved(stream in arb_stream(), assoc in 1usize..8) {
        let mut c = CacheSim::new(64 * assoc * 4, 64, assoc);
        let mut writebacks_seen = 0u64;
        for &(addr, is_store) in &stream {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            let out = c.access(addr * 8, kind, None);
            if out.writeback.is_some() {
                writebacks_seen += 1;
            }
            // A hit never fills or writes back.
            if out.hit {
                prop_assert!(out.fill.is_none() && out.writeback.is_none());
            } else {
                prop_assert!(out.fill.is_some());
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), stream.len() as u64);
        prop_assert_eq!(s.hits() + s.misses(), stream.len() as u64);
        prop_assert_eq!(s.fills, s.misses());
        prop_assert_eq!(s.writebacks, writebacks_seen);
        // Flushing returns each remaining dirty line exactly once.
        let dirty = c.flush();
        let mut uniq = dirty.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), dirty.len());
    }

    #[test]
    fn fully_associative_lru_is_inclusion_monotone(stream in arb_stream()) {
        // Bigger fully-associative LRU caches never miss more.
        let mut prev = u64::MAX;
        for ways in [4usize, 8, 16, 32] {
            let mut c = CacheSim::new(64 * ways, 64, ways);
            for &(addr, _) in &stream {
                c.access(addr * 8, AccessKind::Load, None);
            }
            let misses = c.stats().misses();
            prop_assert!(misses <= prev, "ways {}: {} > {}", ways, misses, prev);
            prev = misses;
        }
    }

    #[test]
    fn cold_misses_lower_bound(stream in arb_stream()) {
        // Any cache must miss at least once per distinct line.
        let mut c = CacheSim::new(1 << 16, 64, 8);
        let mut lines: Vec<u64> = stream.iter().map(|&(a, _)| a * 8 / 64).collect();
        for &(addr, _) in &stream {
            c.access(addr * 8, AccessKind::Load, None);
        }
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(c.stats().misses() >= lines.len() as u64);
    }

    #[test]
    fn random_replacement_preserves_conservation(stream in arb_stream()) {
        let mut c = CacheSim::new(2048, 64, 4).with_replacement(Replacement::Random);
        for &(addr, is_store) in &stream {
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            c.access(addr * 8, kind, None);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits() + s.misses(), stream.len() as u64);
    }

    #[test]
    fn owner_invalidation_never_writes_back(
        stream in prop::collection::vec((0u64..512, 0u32..4), 1..200),
    ) {
        let mut c = CacheSim::new(1 << 16, 64, 8);
        for &(slot, owner) in &stream {
            // Give each owner a disjoint address range.
            let addr = ((owner as u64) << 20) | (slot * 64);
            c.access(addr, AccessKind::Store, Some(owner));
        }
        let wb_before = c.stats().writebacks;
        for owner in 0..4 {
            c.invalidate_owner(owner);
        }
        prop_assert_eq!(c.stats().writebacks, wb_before);
        // Everything local is gone: flush returns nothing dirty.
        prop_assert!(c.flush().is_empty());
    }

    #[test]
    fn regalloc_never_spills_under_budget(
        n_values in 1u32..40,
        uses_per_value in 1usize..4,
    ) {
        // Sequential, non-overlapping lifetimes: pressure 1.
        let mut events = Vec::new();
        for v in 0..n_values {
            events.push(Event::Def(v));
            for _ in 0..uses_per_value {
                events.push(Event::Use(v));
            }
        }
        let r = RegisterAllocator::new(2).allocate(&events);
        prop_assert_eq!(r.max_pressure, 1);
        prop_assert_eq!(r.spilled_values, 0);
        prop_assert!(r.events.is_empty());
    }

    #[test]
    fn regalloc_pressure_capped_by_budget(
        live in 2u32..64,
        budget in 1u32..32,
    ) {
        // `live` simultaneously-live values.
        let mut events = Vec::new();
        for v in 0..live {
            events.push(Event::Def(v));
        }
        for v in 0..live {
            events.push(Event::Use(v));
        }
        let r = RegisterAllocator::new(budget).allocate(&events);
        prop_assert!(r.max_pressure <= budget.max(1));
        let expected_spills = live.saturating_sub(budget);
        prop_assert_eq!(r.spilled_values, expected_spills);
        // The rewritten stream has only local traffic left.
        prop_assert!(r.events.iter().all(|e| matches!(e, Event::LLoad(_) | Event::LStore(_))));
        prop_assert_eq!(r.spill_stores, expected_spills as u64);
    }

    #[test]
    fn regalloc_is_deterministic(events_raw in prop::collection::vec((0u32..16, any::<bool>()), 0..100)) {
        let events: Vec<Event> = events_raw
            .iter()
            .map(|&(v, d)| if d { Event::Def(v) } else { Event::Use(v) })
            .collect();
        let a = RegisterAllocator::new(4).allocate(&events);
        let b = RegisterAllocator::new(4).allocate(&events);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.spilled_values, b.spilled_values);
    }

    #[test]
    fn mlp_estimate_is_bounded(events_raw in prop::collection::vec(0u8..5, 0..300)) {
        // Random mix of loads, stores and flops.
        let mut events = Vec::new();
        let mut max_run = 1u64;
        let mut run = 0u64;
        for (i, &k) in events_raw.iter().enumerate() {
            match k {
                0 => {
                    events.push(Event::GLoad(i as u64 * 8 + (1 << 30)));
                    run += 1;
                    max_run = max_run.max(run);
                }
                1 => {
                    events.push(Event::GStore(i as u64 * 8));
                }
                _ => {
                    events.push(Event::Fma(1));
                    run = 0;
                }
            }
        }
        let mlp = estimate_mlp(&events);
        prop_assert!(mlp >= 1.0 - 1e-12);
        prop_assert!(mlp <= max_run as f64 + 1e-12, "mlp {} max_run {}", mlp, max_run);
    }
}
