//! CPU execution model (Table I, Figure 2).
//!
//! One core runs the vectorized assembly over packs of `VECTOR_DIM`
//! elements; its 8-byte lane operations stream through a private
//! L1/L2 + socket-shared L3 simulation. Timing follows the empirical
//! behaviour the paper's three CPU variants share: for this latency-bound
//! FEM code the per-element cycle count tracks the executed instruction
//! count (SIMD ops ÷ lane width at ~1 sustained IPC), floored by the
//! load/store-port and FMA throughput limits, plus the DRAM transfer term.
//!
//! Multi-core scaling (Figure 2): the work is perfectly parallel (one mesh
//! partition per worker), so time scales as `1/n` — modulated by the turbo
//! frequency bin for `n` active cores and floored by the socket DRAM
//! bandwidth shared by that socket's workers.

use crate::cache::{AccessKind, CacheSim};
use crate::spec::CpuSpec;
use crate::trace::{Event, TraceCounts};

/// Table I for one kernel variant, per-element where applicable.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuReport {
    /// Variant label.
    pub label: String,
    /// Load/store lane operations per element.
    pub ldst_ops: f64,
    /// Floating-point operations per element (1 FMA = 2).
    pub flops: f64,
    /// Floating-point *instructions* per element at one lane per
    /// instruction (1 FMA = 1) — the scalar-execution issue count the
    /// packed-speedup prediction divides by the lane width.
    pub fp_instr: f64,
    /// Load instructions per element at one lane per instruction.
    pub ld_instr: f64,
    /// Store instructions per element at one lane per instruction.
    pub st_instr: f64,
    /// L1 volume per element in bytes (8 × lane load/store ops).
    pub l1_volume: f64,
    /// Fraction of L1 traffic served by L1.
    pub l1_effectiveness: f64,
    /// Combined L2/L3 volume per element in bytes.
    pub l23_volume: f64,
    /// Fraction of L2/L3 traffic served within L2+L3.
    pub l23_effectiveness: f64,
    /// DRAM volume per element in bytes.
    pub dram_volume: f64,
    /// Predicted single-core cycles per element.
    pub cycles_per_elem: f64,
    /// Predicted single-core runtime for `num_elements`, seconds.
    pub runtime_1c: f64,
    /// Single-core GFlop/s.
    pub gflops_1c: f64,
    /// Single-core DRAM bandwidth, B/s.
    pub dram_bw_1c: f64,
}

/// Single-core CPU model.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Hardware description.
    pub spec: CpuSpec,
    /// Packs simulated for the cache study (default 256; the stream loops
    /// over a window of the mesh large enough to exceed L2).
    pub sample_packs: usize,
}

impl CpuModel {
    /// Model over `spec` with default sampling.
    pub fn new(spec: CpuSpec) -> Self {
        Self {
            spec,
            sample_packs: 256,
        }
    }

    /// Runs the single-core simulation.
    ///
    /// * `num_elements` — full problem size runtimes are scaled to;
    /// * `vector_dim` — elements per pack;
    /// * `pack_trace(p)` — the lane-level event stream of pack `p`
    ///   (`Def`/`Use` already lowered by the register allocator).
    pub fn execute(
        &self,
        label: &str,
        num_elements: usize,
        vector_dim: usize,
        mut pack_trace: impl FnMut(usize) -> Vec<Event>,
    ) -> CpuReport {
        let spec = &self.spec;
        let mut l1 = CacheSim::new(spec.l1_bytes, spec.line_bytes, spec.l1_assoc);
        let mut l2 = CacheSim::new(spec.l2_bytes, spec.line_bytes, spec.l2_assoc);
        let mut l3 = CacheSim::new(spec.l3_bytes, spec.line_bytes, spec.l3_assoc);

        let mut dram_bytes = 0u64;
        let mut l23_accesses = 0u64; // line-granularity traffic into L2
        let mut l23_misses = 0u64; // ... that fell through L3
        let mut counts = TraceCounts::default();

        // The per-core stack/spill frame: slot -> fixed address. Reused for
        // every pack, exactly like a Fortran routine's local arrays.
        let stack_base = 1u64 << 40;

        let line_of = |addr: u64| addr / spec.line_bytes as u64 * spec.line_bytes as u64;
        let mut elems = 0usize;

        for p in 0..self.sample_packs {
            let trace = pack_trace(p);
            let c = TraceCounts::from_events(&trace);
            assert_eq!(c.defs, 0, "CPU model received unlowered Def/Use");
            counts.global_loads += c.global_loads;
            counts.global_stores += c.global_stores;
            counts.local_loads += c.local_loads;
            counts.local_stores += c.local_stores;
            counts.plain_flops += c.plain_flops;
            counts.fmas += c.fmas;
            elems += vector_dim;

            for e in &trace {
                let (addr, kind) = match *e {
                    Event::GLoad(a) => (a, AccessKind::Load),
                    Event::GStore(a) => (a, AccessKind::Store),
                    Event::LLoad(slot) => (stack_base + slot as u64 * 8, AccessKind::Load),
                    Event::LStore(slot) => (stack_base + slot as u64 * 8, AccessKind::Store),
                    _ => continue,
                };
                let line = line_of(addr);
                let out1 = l1.access(line, kind, None);
                // Dirty evictions ripple down.
                if let Some(wb) = out1.writeback {
                    l23_accesses += 1;
                    let o2 = l2.access(wb, AccessKind::Store, None);
                    if let Some(wb2) = o2.writeback {
                        let o3 = l3.access(wb2, AccessKind::Store, None);
                        if o3.writeback.is_some() {
                            dram_bytes += spec.line_bytes as u64;
                        }
                    }
                    if !o2.hit {
                        let o3 = l3.access(wb, AccessKind::Store, None);
                        if o3.writeback.is_some() {
                            dram_bytes += spec.line_bytes as u64;
                        }
                        if !o3.hit {
                            l23_misses += 1;
                            // CPU caches do read-for-ownership on stores.
                            dram_bytes += spec.line_bytes as u64;
                        }
                    }
                }
                if !out1.hit {
                    l23_accesses += 1;
                    let o2 = l2.access(line, kind, None);
                    if let Some(wb2) = o2.writeback {
                        let o3 = l3.access(wb2, AccessKind::Store, None);
                        if o3.writeback.is_some() {
                            dram_bytes += spec.line_bytes as u64;
                        }
                    }
                    if !o2.hit {
                        let o3 = l3.access(line, kind, None);
                        if let Some(_wb3) = o3.writeback {
                            dram_bytes += spec.line_bytes as u64;
                        }
                        if !o3.hit {
                            l23_misses += 1;
                            dram_bytes += spec.line_bytes as u64;
                        }
                    }
                }
            }
        }
        // End-of-run accounting: whatever is still dirty eventually reaches
        // DRAM once (RHS results etc.).
        let mut l2_flush = l2.flush();
        for wb in l1.flush() {
            l2_flush.push(wb);
        }
        for wb in l2_flush {
            let o3 = l3.access(wb, AccessKind::Store, None);
            if o3.writeback.is_some() {
                dram_bytes += spec.line_bytes as u64;
            }
        }
        dram_bytes += l3.flush().len() as u64 * spec.line_bytes as u64;

        let elems_f = elems.max(1) as f64;
        let per = |x: u64| x as f64 / elems_f;

        let ldst_ops = per(counts.global_ldst() + counts.local_ldst());
        let flops = per(counts.flops());
        let l1_stats = l1.stats();
        let l1_volume = ldst_ops * 8.0;
        let l1_eff = l1_stats.effectiveness();
        let l23_volume = per(l23_accesses * spec.line_bytes as u64);
        let l23_eff = if l23_accesses == 0 {
            0.0
        } else {
            1.0 - l23_misses as f64 / l23_accesses as f64
        };
        let dram_volume = per(dram_bytes);

        // ---- Timing (per element, single core) ----
        // Table-I assumes the kernel is vectorized at the full SIMD width
        // (the paper's Fortran loops are); the lanes-parameterized helper
        // also serves the packed-vs-scalar speedup prediction.
        let fp_instr = per(counts.fp_instructions());
        let ld_instr = per(counts.global_loads + counts.local_loads);
        let st_instr = per(counts.global_stores + counts.local_stores);
        let clock_1c = spec.clock_for(1);
        let time_per_elem = self.time_per_elem(
            fp_instr,
            ld_instr,
            st_instr,
            l23_volume,
            dram_volume,
            spec.simd_lanes as f64,
        );

        let n = num_elements as f64;
        let runtime_1c = time_per_elem * n;

        CpuReport {
            label: label.to_string(),
            ldst_ops,
            flops,
            fp_instr,
            ld_instr,
            st_instr,
            l1_volume,
            l1_effectiveness: l1_eff,
            l23_volume,
            l23_effectiveness: l23_eff,
            dram_volume,
            cycles_per_elem: time_per_elem * clock_1c,
            runtime_1c,
            gflops_1c: flops * n / runtime_1c,
            dram_bw_1c: dram_volume * n / runtime_1c,
        }
    }

    /// Single-core seconds per element when the kernel retires `lanes`
    /// elements per instruction. The issue and port terms divide by the
    /// lane count; the L2-refill and DRAM terms are line-granularity
    /// traffic and do **not** vectorize — which is exactly why the packed
    /// speedup saturates below the lane width.
    fn time_per_elem(
        &self,
        fp_instr: f64,
        ld_instr: f64,
        st_instr: f64,
        l23_volume: f64,
        dram_volume: f64,
        lanes: f64,
    ) -> f64 {
        let spec = &self.spec;
        let fp = fp_instr / lanes;
        let ld = ld_instr / lanes;
        let st = st_instr / lanes;
        // Sustained-IPC issue model (latency-bound FEM code).
        let t_issue = (fp + ld + st) / spec.sustained_ipc;
        // Port throughput floors.
        let t_ports = (fp / spec.fma_units as f64)
            .max(ld / spec.load_ports as f64)
            .max(st / spec.store_ports as f64);
        // L2 refill throughput.
        let t_l2 = l23_volume / spec.l2_bytes_per_cycle;
        let cycles = t_issue.max(t_ports).max(t_l2);
        let t_dram = dram_volume / spec.core_dram_bw; // seconds
        cycles / spec.clock_for(1) + t_dram
    }

    /// Predicted speedup of the lane-packed execution path over the scalar
    /// path for the kernel `report` describes, at `lanes` elements per
    /// pack (clamped to the hardware SIMD width — wider packs retire in
    /// multiple instructions and gain nothing).
    ///
    /// The scalar path issues one element per instruction; the packed path
    /// retires `min(lanes, simd_lanes)`. Cache refill and DRAM transfer
    /// time are unchanged by packing, so memory-bound kernels are
    /// predicted to gain far less than the lane width — the measured
    /// packed rows in `BENCH_drivers.json` are audited against exactly
    /// this prediction by the analyzer's SIMD contract.
    pub fn packed_speedup(&self, report: &CpuReport, lanes: usize) -> f64 {
        let l = (lanes.max(1) as f64).min(self.spec.simd_lanes as f64);
        let t = |lanes: f64| {
            self.time_per_elem(
                report.fp_instr,
                report.ld_instr,
                report.st_instr,
                report.l23_volume,
                report.dram_volume,
                lanes,
            )
        };
        t(1.0) / t(l)
    }

    /// Figure-2 strong scaling: runtime with `workers` active cores spread
    /// evenly over the sockets, starting from a single-core report.
    pub fn scale(&self, report: &CpuReport, num_elements: usize, workers: u32) -> f64 {
        assert!(workers >= 1);
        let spec = &self.spec;
        let clock_1c = spec.clock_for(1);
        let clock_n = spec.clock_for(workers);
        // Frequency-scaled compute time, perfectly parallel.
        let n = num_elements as f64;
        let t_dram_1c = report.dram_volume / spec.core_dram_bw * n;
        let t_cpu_1c = report.runtime_1c - t_dram_1c;
        let t_compute = t_cpu_1c * (clock_1c / clock_n) / workers as f64;
        // DRAM floor: workers share their socket's bandwidth.
        let per_socket = workers.div_ceil(spec.sockets).max(1);
        let socket_elems = n * per_socket as f64 / workers as f64;
        let bw = spec
            .socket_dram_bw
            .min(per_socket as f64 * spec.core_dram_bw);
        let t_dram = report.dram_volume * socket_elems / bw;
        t_compute.max(t_dram)
    }

    /// Throughput in mega-elements per second at a worker count.
    pub fn melems_per_s(&self, report: &CpuReport, num_elements: usize, workers: u32) -> f64 {
        num_elements as f64 / self.scale(report, num_elements, workers) / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CpuSpec;

    fn model() -> CpuModel {
        let mut m = CpuModel::new(CpuSpec::icelake_8360y());
        m.sample_packs = 64;
        m
    }

    /// Streaming pack kernel: per lane, load input, fma, store output.
    fn stream_pack(p: usize, vector_dim: usize) -> Vec<Event> {
        let mut ev = Vec::new();
        for lane in 0..vector_dim {
            let e = (p * vector_dim + lane) as u64;
            ev.push(Event::GLoad(0x1000_0000 + e * 8));
            ev.push(Event::Fma(2));
            ev.push(Event::GStore(0x2000_0000 + e * 8));
        }
        ev
    }

    #[test]
    fn streaming_moves_24_bytes_per_element() {
        // 8 B read + 8 B read-for-ownership + 8 B writeback: CPU caches do
        // RFO on store misses (no non-temporal stores modelled).
        let m = model();
        let r = m.execute("stream", 1 << 20, 16, |p| stream_pack(p, 16));
        assert!((r.dram_volume - 24.0).abs() < 2.0, "dram {}", r.dram_volume);
        assert_eq!(r.ldst_ops, 2.0);
        assert_eq!(r.flops, 4.0);
    }

    #[test]
    fn stack_reuse_stays_in_l1() {
        // A kernel hammering a 1 KiB stack frame: after the first pack,
        // everything hits L1 and DRAM stays quiet.
        let m = model();
        let r = m.execute("stack", 1 << 20, 16, |_| {
            let mut ev = Vec::new();
            for lane in 0..16u32 {
                for slot in 0..8 {
                    ev.push(Event::LStore(slot * 16 + lane));
                }
                for slot in 0..8 {
                    ev.push(Event::LLoad(slot * 16 + lane));
                }
                ev.push(Event::Fma(8));
            }
            ev
        });
        assert!(r.l1_effectiveness > 0.95, "l1 eff {}", r.l1_effectiveness);
        // Only the cold fill + final flush of the 1 KiB frame reaches DRAM.
        assert!(r.dram_volume < 4.0, "dram {}", r.dram_volume);
    }

    #[test]
    fn issue_model_tracks_instruction_count() {
        let m = model();
        let r = m.execute("stream", 1 << 20, 16, |p| stream_pack(p, 16));
        // 3 lane ops per element (2 ldst + 1 fma): instr = 3/8 per element,
        // plus the DRAM transfer term at the single-core bandwidth.
        let expect_cycles = (3.0 / 8.0) + r.dram_volume / 13.0e9 * 3.4e9;
        assert!(
            (r.cycles_per_elem - expect_cycles).abs() < 0.5,
            "cycles {} vs {expect_cycles}",
            r.cycles_per_elem
        );
    }

    #[test]
    fn scaling_is_linear_until_turbo_bins() {
        let m = model();
        let n = 1 << 22;
        let r = m.execute("stack-ish", n, 16, |_| {
            // Compute-heavy kernel so DRAM never floors the scaling.
            let mut ev = Vec::new();
            for _ in 0..16 {
                ev.push(Event::Fma(64));
            }
            ev
        });
        let t1 = m.scale(&r, n, 1);
        let t17 = m.scale(&r, n, 17);
        let t18 = m.scale(&r, n, 18);
        // Linear to 17 at the same clock.
        assert!((t1 / t17 - 17.0).abs() < 0.2, "speedup {}", t1 / t17);
        // The 18th worker drops the clock to 3.1 GHz: speedup < 18.
        let s18 = t1 / t18;
        assert!(s18 < 17.5, "speedup at 18 cores {s18}");
        assert!(s18 > 15.0, "speedup at 18 cores {s18}");
    }

    #[test]
    fn memory_bound_kernel_hits_socket_bandwidth_floor() {
        let m = model();
        let n = 1 << 22;
        let r = m.execute("stream", n, 16, |p| stream_pack(p, 16));
        // With all 72 cores, per-socket BW limits: t >= bytes/socket / bw.
        let t72 = m.scale(&r, n, 72);
        let bytes_per_socket = r.dram_volume * (n as f64) / 2.0;
        assert!(t72 >= bytes_per_socket / m.spec.socket_dram_bw * 0.99);
    }

    #[test]
    fn melems_metric_matches_scale() {
        let m = model();
        let n = 1 << 20;
        let r = m.execute("stream", n, 16, |p| stream_pack(p, 16));
        let me = m.melems_per_s(&r, n, 4);
        let t = m.scale(&r, n, 4);
        assert!((me - n as f64 / t / 1e6).abs() < 1e-9);
    }

    #[test]
    fn packed_speedup_divides_issue_but_not_memory() {
        let m = model();
        let r = m.execute("stream", 1 << 20, 16, |p| stream_pack(p, 16));
        // One lane is by definition the scalar path.
        assert!((m.packed_speedup(&r, 1) - 1.0).abs() < 1e-12);
        // The streaming kernel is DRAM-bound: packing helps, but nowhere
        // near 8x — the transfer term does not vectorize.
        let s8 = m.packed_speedup(&r, 8);
        assert!(s8 > 1.0, "speedup {s8}");
        assert!(s8 < 2.0, "speedup {s8} should be memory-capped");
        // Wider than the hardware is clamped to the hardware.
        assert_eq!(m.packed_speedup(&r, 8), m.packed_speedup(&r, 64));
        // Hand-check against the issue model. The stream kernel costs
        // fp + ld + st issue slots per element scalar; packing divides the
        // instruction terms by 8 but leaves the L2/L3 and DRAM transfer
        // terms untouched.
        let clock = m.spec.clock_for(1);
        let issue = r.fp_instr + r.ld_instr + r.st_instr;
        let l2 = r.l23_volume / m.spec.l2_bytes_per_cycle;
        let ports = |l: f64| {
            (r.fp_instr / l / m.spec.fma_units as f64)
                .max(r.ld_instr / l / m.spec.load_ports as f64)
                .max(r.st_instr / l / m.spec.store_ports as f64)
        };
        let dram = r.dram_volume / m.spec.core_dram_bw;
        let t1 = issue.max(ports(1.0)).max(l2) / clock + dram;
        let t8 = (issue / 8.0).max(ports(8.0)).max(l2) / clock + dram;
        assert!((s8 - t1 / t8).abs() < 1e-9, "{s8} vs {}", t1 / t8);
    }

    #[test]
    fn packed_speedup_of_a_compute_bound_kernel_tracks_the_ports() {
        let m = model();
        // Pure-FMA kernel: no memory terms at all. Scalar issues 64 FMA
        // instructions per element; packed divides by 8 but then the two
        // FMA ports floor at 64/8/2 = 4 cycles vs issue 64/8 = 8 cycles —
        // issue dominates, so the predicted speedup is exactly 8.
        let r = m.execute("fma", 1 << 20, 16, |_| {
            (0..16).map(|_| Event::Fma(64)).collect()
        });
        let s8 = m.packed_speedup(&r, 8);
        assert!((s8 - 8.0).abs() < 1e-9, "speedup {s8}");
    }

    #[test]
    #[should_panic(expected = "unlowered")]
    fn unlowered_defs_panic() {
        let m = model();
        let _ = m.execute("bad", 16, 16, |_| vec![Event::Def(0)]);
    }
}
