//! Machine descriptions.
//!
//! Presets correspond to the paper's two systems and are built exclusively
//! from public data: the A100 whitepaper plus the measured STREAM-like rates
//! the paper itself quotes (1381 GB/s Scale bandwidth, 9.7 TFlop/s FP64,
//! machine intensity 7 Flop/B) and the Fritz/Icelake figures (179 GB/s
//! socket load bandwidth, 2705 GFlop/s AVX-512 peak, intensity 15 Flop/B,
//! turbo bins 3.4 / 3.1 / 2.6 GHz).

/// GPU hardware model (SIMT).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Threads per warp.
    pub warp_size: u32,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// 32-bit registers per SM register file.
    pub registers_per_sm: u32,
    /// Hard per-thread register limit.
    pub max_registers_per_thread: u32,
    /// Register allocation granularity per thread.
    pub register_granularity: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Threads per block used for occupancy math.
    pub threads_per_block: u32,
    /// L1/SMEM capacity per SM in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// Device-wide L2 capacity in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Cache line / sector size in bytes (A100 manages 32-byte sectors).
    pub line_bytes: usize,
    /// Peak DRAM bandwidth in bytes/s (measured Scale kernel).
    pub dram_bw: f64,
    /// Peak L2 bandwidth in bytes/s.
    pub l2_bw: f64,
    /// L1 bandwidth per SM in bytes/cycle.
    pub l1_bytes_per_cycle_per_sm: f64,
    /// Average DRAM access latency in cycles.
    pub dram_latency_cycles: f64,
    /// Average L2 access latency in cycles.
    pub l2_latency_cycles: f64,
    /// Peak FP64 rate in Flop/s (FMA counted as 2).
    pub peak_fp64: f64,
    /// Warp instructions issued per cycle per SM (4 schedulers).
    pub issue_width: f64,
    /// Average issue-to-issue latency of a dependent instruction chain, in
    /// cycles — calibrates the low-occupancy issue model.
    pub dependent_issue_latency: f64,
}

impl GpuSpec {
    /// NVIDIA A100-SXM4-40GB as in the NHR@FAU "Alex" cluster.
    pub fn a100_40gb() -> Self {
        Self {
            name: "NVIDIA A100-SXM4-40GB",
            warp_size: 32,
            num_sms: 108,
            clock_hz: 1.41e9,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_granularity: 8,
            max_threads_per_sm: 2048,
            threads_per_block: 128,
            // 192 KB unified L1/shared per SM, but the *cache* portion
            // available to an OpenACC kernel after the shared-memory
            // carveout and tag/sector overheads is far smaller — the
            // paper's 0%-L1-effectiveness gathers pin it down to a few
            // tens of KB.
            l1_bytes: 48 * 1024,
            l1_assoc: 8,
            l2_bytes: 40 * 1024 * 1024,
            l2_assoc: 16,
            line_bytes: 32,
            dram_bw: 1381.0e9,
            l2_bw: 4500.0e9,
            l1_bytes_per_cycle_per_sm: 128.0,
            dram_latency_cycles: 500.0,
            l2_latency_cycles: 220.0,
            peak_fp64: 9.7e12,
            issue_width: 4.0,
            dependent_issue_latency: 8.0,
        }
    }

    /// NVIDIA V100-SXM2-32GB (the A100's predecessor) — public datasheet
    /// values with a measured-style ~92 % bandwidth derate.
    pub fn v100_32gb() -> Self {
        Self {
            name: "NVIDIA V100-SXM2-32GB",
            warp_size: 32,
            num_sms: 80,
            clock_hz: 1.53e9,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_granularity: 8,
            max_threads_per_sm: 2048,
            threads_per_block: 128,
            l1_bytes: 32 * 1024, // cache share of the 128 KB L1/shmem
            l1_assoc: 8,
            l2_bytes: 6 * 1024 * 1024,
            l2_assoc: 16,
            line_bytes: 32,
            dram_bw: 830.0e9,
            l2_bw: 2200.0e9,
            l1_bytes_per_cycle_per_sm: 128.0,
            dram_latency_cycles: 450.0,
            l2_latency_cycles: 200.0,
            peak_fp64: 7.8e12,
            issue_width: 4.0,
            dependent_issue_latency: 8.0,
        }
    }

    /// NVIDIA H100-SXM5-80GB — public datasheet values (vector FP64),
    /// HBM3 with a measured-style derate.
    pub fn h100_sxm() -> Self {
        Self {
            name: "NVIDIA H100-SXM5-80GB",
            warp_size: 32,
            num_sms: 132,
            clock_hz: 1.98e9,
            registers_per_sm: 65_536,
            max_registers_per_thread: 255,
            register_granularity: 8,
            max_threads_per_sm: 2048,
            threads_per_block: 128,
            l1_bytes: 64 * 1024, // cache share of the 256 KB L1/shmem
            l1_assoc: 8,
            l2_bytes: 50 * 1024 * 1024,
            l2_assoc: 16,
            line_bytes: 32,
            dram_bw: 3000.0e9,
            l2_bw: 7500.0e9,
            l1_bytes_per_cycle_per_sm: 128.0,
            dram_latency_cycles: 550.0,
            l2_latency_cycles: 240.0,
            peak_fp64: 33.5e12,
            issue_width: 4.0,
            dependent_issue_latency: 8.0,
        }
    }

    /// Machine arithmetic intensity (Flop/B), ≈ 7 for the A100.
    pub fn machine_intensity(&self) -> f64 {
        self.peak_fp64 / self.dram_bw
    }

    /// Resident threads per SM for a per-thread register demand, honouring
    /// allocation granularity, the per-thread cap and block granularity.
    pub fn resident_threads_per_sm(&self, regs_per_thread: u32) -> u32 {
        let regs = regs_per_thread
            .clamp(1, self.max_registers_per_thread)
            .div_ceil(self.register_granularity)
            * self.register_granularity;
        let by_regs = self.registers_per_sm / regs;
        let blocks = (by_regs / self.threads_per_block).max(1);
        (blocks * self.threads_per_block).min(self.max_threads_per_sm)
    }

    /// Occupancy fraction in `(0, 1]` for a register demand.
    pub fn occupancy(&self, regs_per_thread: u32) -> f64 {
        self.resident_threads_per_sm(regs_per_thread) as f64 / self.max_threads_per_sm as f64
    }
}

/// One turbo bin: up to `max_active_cores`, the part sustains `clock_hz`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurboBin {
    /// Largest active-core count for this bin.
    pub max_active_cores: u32,
    /// Sustained clock in Hz.
    pub clock_hz: f64,
}

/// CPU hardware model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Sockets per node.
    pub sockets: u32,
    /// SIMD lanes for f64 (8 for AVX-512).
    pub simd_lanes: u32,
    /// FMA units per core.
    pub fma_units: u32,
    /// Load ports per core (512-bit each).
    pub load_ports: u32,
    /// Store ports per core (512-bit each).
    pub store_ports: u32,
    /// Turbo frequency bins, ascending `max_active_cores`.
    pub turbo_bins: Vec<TurboBin>,
    /// L1D size per core in bytes.
    pub l1_bytes: usize,
    /// L1D associativity.
    pub l1_assoc: usize,
    /// L2 size per core in bytes.
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// L3 size per socket in bytes.
    pub l3_bytes: usize,
    /// L3 associativity.
    pub l3_assoc: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Sustained DRAM load bandwidth per socket in bytes/s.
    pub socket_dram_bw: f64,
    /// Sustained DRAM bandwidth achievable by a single core in bytes/s.
    pub core_dram_bw: f64,
    /// Sustained instructions per cycle for latency-bound FEM code —
    /// calibrated so the per-element cycle count tracks the instruction
    /// count, which is what the paper's three CPU variants exhibit.
    pub sustained_ipc: f64,
    /// L2-to-L1 bandwidth per core, bytes/cycle.
    pub l2_bytes_per_cycle: f64,
}

impl CpuSpec {
    /// Dual-socket Intel Xeon Platinum 8360Y node ("Fritz" at NHR@FAU).
    pub fn icelake_8360y() -> Self {
        Self {
            name: "2x Intel Xeon Platinum 8360Y (Icelake)",
            cores_per_socket: 36,
            sockets: 2,
            simd_lanes: 8,
            fma_units: 2,
            load_ports: 2,
            store_ports: 1,
            // Figure 2: full turbo to 17 workers, then 3.1, then 2.6 GHz.
            turbo_bins: vec![
                TurboBin {
                    max_active_cores: 17,
                    clock_hz: 3.4e9,
                },
                TurboBin {
                    max_active_cores: 32,
                    clock_hz: 3.1e9,
                },
                TurboBin {
                    max_active_cores: 72,
                    clock_hz: 2.6e9,
                },
            ],
            l1_bytes: 48 * 1024,
            l1_assoc: 12,
            l2_bytes: 1280 * 1024,
            l2_assoc: 20,
            l3_bytes: 54 * 1024 * 1024,
            l3_assoc: 12,
            line_bytes: 64,
            socket_dram_bw: 179.0e9,
            core_dram_bw: 13.0e9,
            sustained_ipc: 1.0,
            l2_bytes_per_cycle: 48.0,
        }
    }

    /// Dual-socket Intel Xeon Platinum 8480+ (Sapphire Rapids) — a
    /// newer-generation node for the cross-hardware projection.
    pub fn sapphire_rapids_8480() -> Self {
        Self {
            name: "2x Intel Xeon Platinum 8480+ (Sapphire Rapids)",
            cores_per_socket: 56,
            sockets: 2,
            simd_lanes: 8,
            fma_units: 2,
            load_ports: 2,
            store_ports: 1,
            turbo_bins: vec![
                TurboBin {
                    max_active_cores: 8,
                    clock_hz: 3.8e9,
                },
                TurboBin {
                    max_active_cores: 32,
                    clock_hz: 3.4e9,
                },
                TurboBin {
                    max_active_cores: 112,
                    clock_hz: 3.0e9,
                },
            ],
            l1_bytes: 48 * 1024,
            l1_assoc: 12,
            l2_bytes: 2048 * 1024,
            l2_assoc: 16,
            l3_bytes: 105 * 1024 * 1024,
            l3_assoc: 15,
            line_bytes: 64,
            socket_dram_bw: 250.0e9,
            core_dram_bw: 15.0e9,
            sustained_ipc: 1.0,
            l2_bytes_per_cycle: 64.0,
        }
    }

    /// Total cores on the node.
    pub fn total_cores(&self) -> u32 {
        self.cores_per_socket * self.sockets
    }

    /// Peak FP64 rate of `n` cores at the turbo clock for `n` active cores.
    pub fn peak_fp64(&self, active_cores: u32) -> f64 {
        let per_cycle = (self.simd_lanes * self.fma_units * 2) as f64;
        active_cores as f64 * per_cycle * self.clock_for(active_cores)
    }

    /// Sustained clock when `active_cores` cores are busy.
    pub fn clock_for(&self, active_cores: u32) -> f64 {
        for bin in &self.turbo_bins {
            if active_cores <= bin.max_active_cores {
                return bin.clock_hz;
            }
        }
        self.turbo_bins.last().map(|b| b.clock_hz).unwrap_or(2.0e9)
    }

    /// Machine arithmetic intensity of one socket (Flop/B), ≈ 15 for Fritz.
    pub fn machine_intensity(&self) -> f64 {
        self.peak_fp64(self.cores_per_socket) / self.socket_dram_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_machine_intensity_matches_paper() {
        let gpu = GpuSpec::a100_40gb();
        let ai = gpu.machine_intensity();
        assert!((ai - 7.0).abs() < 0.1, "intensity {ai}");
    }

    #[test]
    fn a100_occupancy_at_255_regs_is_low() {
        let gpu = GpuSpec::a100_40gb();
        // 255 regs -> 256 after granularity -> 256 threads/SM = 12.5%.
        assert_eq!(gpu.resident_threads_per_sm(255), 256);
        assert!((gpu.occupancy(255) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn a100_occupancy_at_128_regs_doubles() {
        let gpu = GpuSpec::a100_40gb();
        assert_eq!(gpu.resident_threads_per_sm(128), 512);
        assert!((gpu.occupancy(128) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn occupancy_monotone_in_register_pressure() {
        let gpu = GpuSpec::a100_40gb();
        let mut prev = f64::INFINITY;
        for regs in [32, 64, 96, 128, 148, 184, 255] {
            let occ = gpu.occupancy(regs);
            assert!(occ <= prev + 1e-12, "occupancy not monotone at {regs}");
            prev = occ;
        }
    }

    #[test]
    fn occupancy_capped_at_full() {
        let gpu = GpuSpec::a100_40gb();
        assert!((gpu.occupancy(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn icelake_machine_intensity_matches_paper() {
        // Paper measures 15 Flop/B from likwid-bench peakflops (2705 GF/s);
        // the theoretical 36-core peak is a little higher, so allow the gap.
        let cpu = CpuSpec::icelake_8360y();
        let ai = cpu.machine_intensity();
        assert!((14.0..18.0).contains(&ai), "intensity {ai}");
    }

    #[test]
    fn icelake_peak_matches_likwid_measurement() {
        // Paper: 2705 GFlop/s single socket with AVX-512 FMA.
        let cpu = CpuSpec::icelake_8360y();
        // At full 36-core turbo (2.6 GHz): 36 * 32 * 2.6e9 = 2995 GF/s; the
        // measured 2705 sits slightly below this ceiling.
        let peak = cpu.peak_fp64(36);
        assert!(peak > 2.6e12 && peak < 3.2e12, "peak {peak}");
    }

    #[test]
    fn turbo_bins_select_paper_frequencies() {
        let cpu = CpuSpec::icelake_8360y();
        assert_eq!(cpu.clock_for(1), 3.4e9);
        assert_eq!(cpu.clock_for(17), 3.4e9);
        assert_eq!(cpu.clock_for(18), 3.1e9);
        assert_eq!(cpu.clock_for(40), 2.6e9);
        assert_eq!(cpu.clock_for(72), 2.6e9);
        assert_eq!(cpu.clock_for(100), 2.6e9);
    }

    #[test]
    fn total_cores_is_node_size() {
        assert_eq!(CpuSpec::icelake_8360y().total_cores(), 72);
        assert_eq!(CpuSpec::sapphire_rapids_8480().total_cores(), 112);
    }

    #[test]
    fn gpu_generations_order_sanely() {
        let v100 = GpuSpec::v100_32gb();
        let a100 = GpuSpec::a100_40gb();
        let h100 = GpuSpec::h100_sxm();
        assert!(v100.peak_fp64 < a100.peak_fp64 && a100.peak_fp64 < h100.peak_fp64);
        assert!(v100.dram_bw < a100.dram_bw && a100.dram_bw < h100.dram_bw);
        // Machine intensity rises across generations (compute outpaces
        // bandwidth) — the "towards exascale" pressure the paper's
        // optimizations anticipate.
        assert!(h100.machine_intensity() > a100.machine_intensity());
    }

    #[test]
    fn v100_occupancy_math_matches_a100_register_file() {
        // Same 64K-register file: occupancy at 255 regs identical.
        assert_eq!(
            GpuSpec::v100_32gb().resident_threads_per_sm(255),
            GpuSpec::a100_40gb().resident_threads_per_sm(255)
        );
    }
}
