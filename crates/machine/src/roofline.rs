//! Roofline model bookkeeping (Figure 3).
//!
//! The paper plots each GPU variant at its DRAM and L2 arithmetic
//! intensities against four roofs: FP64 peak (9.7 TFlop/s), an
//! instruction-mix roof (7.4 TFlop/s — the FP rate achievable with the
//! kernel's FMA fraction), DRAM bandwidth (1381 GB/s) and L2 bandwidth.
//! This module computes intensities, bounds, classifications and the plot
//! series the `fig3` reproduction binary prints.

/// Memory-bound vs compute-bound, per Williams et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RooflineClass {
    /// Code intensity below the machine knee: bandwidth limits performance.
    MemoryBound,
    /// Code intensity above the knee: compute limits performance.
    ComputeBound,
}

/// A roofline chart: one compute roof (optionally with a lower
/// instruction-mix roof) and one bandwidth roof per memory level.
#[derive(Debug, Clone, PartialEq)]
pub struct Roofline {
    /// Peak floating-point rate in Flop/s (all-FMA).
    pub peak_flops: f64,
    /// Lower compute roof from the application instruction mix, Flop/s.
    pub mix_roof: f64,
    /// DRAM bandwidth in B/s.
    pub dram_bw: f64,
    /// L2 bandwidth in B/s.
    pub l2_bw: f64,
}

/// One measured kernel placed on the chart.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Variant label ("B", "P", "RS", "RSP", "RSPR").
    pub label: String,
    /// Flop per DRAM byte.
    pub dram_intensity: f64,
    /// Flop per L2 byte.
    pub l2_intensity: f64,
    /// Achieved floating-point rate in Flop/s.
    pub flops: f64,
}

impl Roofline {
    /// Builds the A100 chart used in the paper's Figure 3.
    pub fn a100(spec: &crate::spec::GpuSpec) -> Self {
        Self {
            peak_flops: spec.peak_fp64,
            // Paper: "a lower roof of 7.4 TFlop/s due to the application
            // instruction mix".
            mix_roof: 7.4e12,
            dram_bw: spec.dram_bw,
            l2_bw: spec.l2_bw,
        }
    }

    /// The DRAM knee: the intensity where bandwidth and compute roofs meet.
    pub fn dram_knee(&self) -> f64 {
        self.mix_roof / self.dram_bw
    }

    /// Attainable Flop/s at a DRAM intensity.
    pub fn dram_bound(&self, intensity: f64) -> f64 {
        (intensity * self.dram_bw).min(self.mix_roof)
    }

    /// Attainable Flop/s at an L2 intensity.
    pub fn l2_bound(&self, intensity: f64) -> f64 {
        (intensity * self.l2_bw).min(self.mix_roof)
    }

    /// Classification against the DRAM roof.
    pub fn classify(&self, intensity: f64) -> RooflineClass {
        if intensity < self.dram_knee() {
            RooflineClass::MemoryBound
        } else {
            RooflineClass::ComputeBound
        }
    }

    /// Fraction of the applicable DRAM-roofline bound actually achieved.
    pub fn dram_roof_fraction(&self, point: &RooflinePoint) -> f64 {
        point.flops / self.dram_bound(point.dram_intensity)
    }

    /// Sampled `(intensity, bound)` series for plotting the DRAM roof on a
    /// log-log chart between `lo` and `hi` Flop/B.
    pub fn dram_series(&self, lo: f64, hi: f64, samples: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo && samples >= 2);
        let step = (hi / lo).powf(1.0 / (samples - 1) as f64);
        (0..samples)
            .map(|i| {
                let ai = lo * step.powi(i as i32);
                (ai, self.dram_bound(ai))
            })
            .collect()
    }
}

/// Builds a point from per-element counters.
pub fn point_from_counters(
    label: &str,
    flops_per_elem: f64,
    dram_bytes_per_elem: f64,
    l2_bytes_per_elem: f64,
    achieved_flops: f64,
) -> RooflinePoint {
    RooflinePoint {
        label: label.to_string(),
        dram_intensity: flops_per_elem / dram_bytes_per_elem.max(1.0e-30),
        l2_intensity: flops_per_elem / l2_bytes_per_elem.max(1.0e-30),
        flops: achieved_flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn chart() -> Roofline {
        Roofline::a100(&GpuSpec::a100_40gb())
    }

    #[test]
    fn knee_matches_machine_intensity() {
        let r = chart();
        // Knee with the mix roof: 7.4e12 / 1381e9 ≈ 5.36 Flop/B.
        assert!((r.dram_knee() - 5.36).abs() < 0.05);
    }

    #[test]
    fn bound_is_linear_then_flat() {
        let r = chart();
        assert!((r.dram_bound(1.0) - 1381.0e9).abs() < 1.0);
        assert_eq!(r.dram_bound(100.0), 7.4e12);
    }

    #[test]
    fn baseline_variant_is_memory_bound() {
        // Paper: B has ~1/3.7 Flop/B — far below the knee.
        let r = chart();
        assert_eq!(r.classify(6293.0 / 23331.0), RooflineClass::MemoryBound);
    }

    #[test]
    fn final_variant_is_past_the_knee() {
        // Paper: RSPR reaches 1333/150 ≈ 8.9 Flop/B, past the knee.
        let r = chart();
        assert_eq!(r.classify(1333.0 / 150.0), RooflineClass::ComputeBound);
    }

    #[test]
    fn roof_fraction_of_paper_rspr() {
        // RSPR: 2575 GF/s at compute-bound intensity -> ~35% of mix roof.
        let r = chart();
        let p = point_from_counters("RSPR", 1333.0, 150.0, 968.0, 2.575e12);
        let frac = r.dram_roof_fraction(&p);
        assert!(frac > 0.3 && frac < 0.4, "fraction {frac}");
    }

    #[test]
    fn l2_bound_uses_l2_bandwidth() {
        let r = chart();
        assert!((r.l2_bound(0.5) - 0.5 * r.l2_bw).abs() < 1.0);
    }

    #[test]
    fn series_is_monotone_and_bounded() {
        let r = chart();
        let s = r.dram_series(0.1, 100.0, 50);
        assert_eq!(s.len(), 50);
        for w in s.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!(s.last().unwrap().1 <= r.mix_roof + 1.0);
    }

    #[test]
    fn point_guards_zero_bytes() {
        let p = point_from_counters("X", 100.0, 0.0, 0.0, 1.0);
        assert!(p.dram_intensity.is_finite());
    }
}
