//! # alya-machine — performance-machine substrate
//!
//! The paper measures the Alya RHS assembly with hardware performance
//! counters on an NVIDIA A100 GPU (Nsight Compute) and a dual-socket Intel
//! Icelake node (LIKWID). Neither the hardware nor the directive-based
//! compilers exist in this Rust reproduction, so this crate rebuilds the
//! measurement apparatus as an explicit, testable model:
//!
//! * [`trace`] — the instruction/memory event stream emitted by the
//!   instrumented assembly kernels in `alya-core` (the software stand-in for
//!   the hardware counters), plus stream analyses such as the memory-level
//!   parallelism estimate;
//! * [`cache`] — set-associative write-allocate/write-back cache simulation
//!   with the GPU's *local memory* semantics (lines owned by retired thread
//!   blocks are invalidated without write-back — the mechanism behind the
//!   paper's Table III);
//! * [`regalloc`] — register allocation over recorded value lifetimes,
//!   reproducing the compiler behaviour that decides which privatized
//!   intermediates live in registers and which spill to local memory;
//! * [`gpu`] — the SIMT execution model: warp-interleaved cache simulation,
//!   occupancy from register pressure, and a Little's-law latency/bandwidth
//!   timing model (Table II, Figure 3);
//! * [`cpu`] — the per-core execution model plus the multi-core scaling
//!   model with Intel turbo-frequency bins (Table I, Figure 2);
//! * [`roofline`] — arithmetic-intensity/roofline bookkeeping (Figure 3);
//! * [`energy`] — the Section VI energy-per-assembly estimates;
//! * [`spec`] — machine descriptions with presets for the paper's two
//!   systems (A100-40GB "Alex" GPU, Xeon 8360Y "Fritz" node).
//!
//! The models are calibrated with public spec-sheet data only; the
//! reproduction targets the paper's *shape* (variant orderings, speedup
//! factors, roofline migration), not its absolute milliseconds.

#![forbid(unsafe_code)]

pub mod cache;
pub mod cpu;
pub mod energy;
pub mod gpu;
pub mod par;
pub mod regalloc;
pub mod reuse;
pub mod roofline;
pub mod spec;
pub mod trace;

pub use cache::{AccessKind, CacheSim, CacheStats};
pub use regalloc::{RegAllocResult, RegisterAllocator};
pub use spec::{CpuSpec, GpuSpec};
pub use trace::{Event, NoRecord, Recorder, Space, TraceRecorder};
