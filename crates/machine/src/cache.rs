//! Set-associative cache simulation.
//!
//! A single cache level with LRU replacement, write-allocate and
//! write-back — the configuration of every level the models care about
//! (A100 L1/L2, Icelake L1/L2/L3). Levels are composed by the GPU/CPU
//! models: a miss here becomes an access to the level below, a dirty
//! eviction becomes a write.
//!
//! The one GPU-specific extension is **local-line ownership**: a line
//! holding thread-private local memory is tagged with the owning thread
//! block. When that block retires, [`CacheSim::invalidate_owner`] drops its
//! lines *without* writing them back — dead threads' spill space need never
//! reach DRAM. A dirty local line evicted *by capacity before* the block
//! retires is written back like any other. That asymmetry is exactly what
//! the paper's Table III measures (72 B vs 8 B DRAM store volume).

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

/// What one access did, and what the level below must absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The access hit in this cache.
    pub hit: bool,
    /// A miss that must be filled from below (line-aligned address).
    pub fill: Option<u64>,
    /// A dirty line evicted to make room (line-aligned address).
    pub writeback: Option<u64>,
    /// Local-memory owner of the evicted line, if any (so the level below
    /// can keep the block tag for retirement invalidation).
    pub writeback_owner: Option<u32>,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Thread block owning this local-memory line, if it is local.
    local_owner: Option<u32>,
    last_use: u64,
}

const EMPTY_LINE: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    local_owner: None,
    last_use: 0,
};

/// Hit/miss statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load accesses.
    pub loads: u64,
    /// Store accesses.
    pub stores: u64,
    /// Load accesses that hit.
    pub load_hits: u64,
    /// Store accesses that hit.
    pub store_hits: u64,
    /// Lines filled from below (== misses with write-allocate).
    pub fills: u64,
    /// Dirty lines evicted by capacity/conflict.
    pub writebacks: u64,
    /// Lines dropped by owner invalidation (no writeback).
    pub invalidated: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.load_hits + self.store_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Fraction of accesses served by this level (the paper's
    /// "cache effectiveness").
    pub fn effectiveness(&self) -> f64 {
        if self.accesses() == 0 {
            return 0.0;
        }
        self.hits() as f64 / self.accesses() as f64
    }
}

/// Victim selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least-recently-used (exact).
    #[default]
    Lru,
    /// Uniform random way (deterministic xorshift) — approximates the
    /// streaming-resistant / partitioned behaviour of big GPU L2s, which
    /// true LRU flatters on write-through streaming workloads.
    Random,
}

/// One set-associative, write-allocate, write-back cache level.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line_bytes: u64,
    num_sets: u64,
    assoc: usize,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
    replacement: Replacement,
    rng: u64,
}

impl CacheSim {
    /// Builds a cache of `size_bytes` capacity with `line_bytes` lines and
    /// `assoc`-way sets. `size_bytes` must be a multiple of
    /// `line_bytes × assoc`; all three must be nonzero and `line_bytes` a
    /// power of two.
    pub fn new(size_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(assoc > 0, "associativity must be positive");
        let set_bytes = line_bytes * assoc;
        assert!(
            size_bytes >= set_bytes && size_bytes % set_bytes == 0,
            "capacity {size_bytes} not a multiple of line*assoc {set_bytes}"
        );
        let num_sets = (size_bytes / set_bytes) as u64;
        Self {
            line_bytes: line_bytes as u64,
            num_sets,
            assoc,
            lines: vec![EMPTY_LINE; (num_sets as usize) * assoc],
            clock: 0,
            stats: CacheStats::default(),
            replacement: Replacement::Lru,
            rng: 0x9E3779B97F4A7C15,
        }
    }

    /// Switches the victim-selection policy (builder style).
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Cache capacity in bytes.
    pub fn capacity(&self) -> usize {
        (self.num_sets * self.line_bytes) as usize * self.assoc
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (keeps contents — useful for warmup phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Set index with XOR-folded upper bits — the index hashing real
    /// caches use to break power-of-two stride resonance (without it, an
    /// interleaved array with a 2^k·line stride camps on a single set).
    #[inline]
    fn set_of(&self, line_addr: u64) -> usize {
        (((line_addr)
            ^ (line_addr / self.num_sets)
            ^ (line_addr / (self.num_sets * self.num_sets)))
            % self.num_sets) as usize
    }

    /// Simulates one access of at most one line. `local_owner` tags the
    /// line as local memory belonging to a thread block.
    pub fn access(
        &mut self,
        addr: u64,
        kind: AccessKind,
        local_owner: Option<u32>,
    ) -> AccessOutcome {
        self.clock += 1;
        let line_addr = addr / self.line_bytes;
        let set = self.set_of(line_addr);
        // Lines are identified by their full line address (the hashed set
        // index is not invertible, so no tag/set split).
        let tag = line_addr;
        let base = set * self.assoc;

        match kind {
            AccessKind::Load => self.stats.loads += 1,
            AccessKind::Store => self.stats.stores += 1,
        }

        // Hit?
        let clock = self.clock;
        let mut hit = false;
        for line in &mut self.lines[base..base + self.assoc] {
            if line.valid && line.tag == tag {
                line.last_use = clock;
                if kind == AccessKind::Store {
                    line.dirty = true;
                }
                hit = true;
                // Ownership sticks with the most recent toucher.
                if local_owner.is_some() {
                    line.local_owner = local_owner;
                }
                break;
            }
        }
        if hit {
            if kind == AccessKind::Store {
                self.stats.store_hits += 1;
            } else {
                self.stats.load_hits += 1;
            }
            return AccessOutcome {
                hit: true,
                fill: None,
                writeback: None,
                writeback_owner: None,
            };
        }

        // Miss: pick victim — invalid first, else by policy.
        let ways_ro = &self.lines[base..base + self.assoc];
        let victim = match ways_ro.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => match self.replacement {
                Replacement::Lru => ways_ro
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.last_use)
                    .map(|(i, _)| i)
                    .expect("assoc > 0"),
                Replacement::Random => {
                    // xorshift64*
                    self.rng ^= self.rng >> 12;
                    self.rng ^= self.rng << 25;
                    self.rng ^= self.rng >> 27;
                    (self.rng.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as usize % self.assoc
                }
            },
        };
        let ways = &mut self.lines[base..base + self.assoc];
        let evicted = ways[victim];
        let writeback = if evicted.valid && evicted.dirty {
            self.stats.writebacks += 1;
            Some(evicted.tag * self.line_bytes)
        } else {
            None
        };

        ways[victim] = Line {
            tag,
            valid: true,
            dirty: kind == AccessKind::Store,
            local_owner,
            last_use: self.clock,
        };
        self.stats.fills += 1;

        AccessOutcome {
            hit: false,
            fill: Some(line_addr * self.line_bytes),
            writeback,
            writeback_owner: if writeback.is_some() {
                evicted.local_owner
            } else {
                None
            },
        }
    }

    /// Write-through, no-write-allocate store (the A100's global-store L1
    /// policy): updates the line if present (without dirtying it — the
    /// level below receives the data anyway), never allocates. Returns
    /// whether the line was present.
    pub fn write_through(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.stores += 1;
        let line_addr = addr / self.line_bytes;
        let set = self.set_of(line_addr);
        let tag = line_addr;
        let base = set * self.assoc;
        for line in &mut self.lines[base..base + self.assoc] {
            if line.valid && line.tag == tag {
                line.last_use = self.clock;
                self.stats.store_hits += 1;
                return true;
            }
        }
        false
    }

    /// Drops every line owned by thread block `owner` without writing it
    /// back — the local-memory retirement semantics. Returns the number of
    /// lines dropped.
    pub fn invalidate_owner(&mut self, owner: u32) -> u64 {
        let mut dropped = 0;
        for line in &mut self.lines {
            if line.valid && line.local_owner == Some(owner) {
                *line = EMPTY_LINE;
                dropped += 1;
            }
        }
        self.stats.invalidated += dropped;
        dropped
    }

    /// Evicts everything, returning the line addresses of dirty lines that
    /// must be written to the level below (end-of-kernel accounting).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        for line in &mut self.lines {
            if line.valid && line.dirty {
                dirty.push(line.tag * self.line_bytes);
                self.stats.writebacks += 1;
            }
            *line = EMPTY_LINE;
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_geometry() {
        let r = std::panic::catch_unwind(|| CacheSim::new(100, 32, 4));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| CacheSim::new(1024, 24, 2));
        assert!(r.is_err());
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = CacheSim::new(1024, 32, 2);
        let first = c.access(0x40, AccessKind::Load, None);
        assert!(!first.hit);
        assert_eq!(first.fill, Some(0x40));
        let second = c.access(0x48, AccessKind::Load, None); // same 32B line
        assert!(second.hit);
        assert_eq!(c.stats().accesses(), 2);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        let mut c = CacheSim::new(512, 32, 2);
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = (x >> 20) % 4096;
            let kind = if x & 1 == 0 {
                AccessKind::Load
            } else {
                AccessKind::Store
            };
            c.access(addr, kind, None);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 10_000);
        assert_eq!(s.hits() + s.misses(), 10_000);
        assert_eq!(s.fills, s.misses());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // A single 2-way set (hash-independent): any three distinct lines
        // conflict.
        let mut c = CacheSim::new(64, 32, 2); // 1 set
        let a = 0u64;
        let b = 32u64;
        let d = 64u64;
        c.access(a, AccessKind::Load, None);
        c.access(b, AccessKind::Load, None);
        c.access(a, AccessKind::Load, None); // refresh a; b is now LRU
        let out = c.access(d, AccessKind::Load, None); // evicts b
        assert!(!out.hit);
        assert!(c.access(a, AccessKind::Load, None).hit);
        assert!(!c.access(b, AccessKind::Load, None).hit); // b was evicted
    }

    #[test]
    fn store_miss_allocates_and_marks_dirty() {
        let mut c = CacheSim::new(64, 32, 2); // 1 set
        let out = c.access(0, AccessKind::Store, None);
        assert!(!out.hit);
        assert_eq!(out.fill, Some(0)); // write-allocate
                                       // Fill the set and push the dirty line out.
        c.access(32, AccessKind::Load, None);
        let evict = c.access(64, AccessKind::Load, None);
        assert_eq!(evict.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = CacheSim::new(128, 32, 2);
        c.access(0, AccessKind::Load, None);
        c.access(64, AccessKind::Load, None);
        let evict = c.access(128, AccessKind::Load, None);
        assert!(evict.writeback.is_none());
    }

    #[test]
    fn owner_invalidation_drops_without_writeback() {
        let mut c = CacheSim::new(1024, 32, 4);
        c.access(0, AccessKind::Store, Some(7));
        c.access(32, AccessKind::Store, Some(7));
        c.access(64, AccessKind::Store, Some(8));
        assert_eq!(c.invalidate_owner(7), 2);
        // Only block 8's line stays, and no writebacks happened.
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().invalidated, 2);
        assert!(!c.access(0, AccessKind::Load, None).hit);
        assert!(c.access(64, AccessKind::Load, None).hit);
    }

    #[test]
    fn capacity_eviction_of_local_line_still_writes_back() {
        // 1 set x 2 ways: two local stores then a third line forces eviction
        // BEFORE the owner retires -> must write back.
        let mut c = CacheSim::new(64, 32, 2);
        c.access(0, AccessKind::Store, Some(1));
        c.access(32, AccessKind::Store, Some(1));
        let out = c.access(64, AccessKind::Load, None);
        assert!(out.writeback.is_some());
    }

    #[test]
    fn flush_returns_all_dirty_lines() {
        let mut c = CacheSim::new(256, 32, 2);
        c.access(0, AccessKind::Store, None);
        c.access(32, AccessKind::Load, None);
        c.access(96, AccessKind::Store, None);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 96]);
        // After flush the cache is cold.
        assert!(!c.access(0, AccessKind::Load, None).hit);
    }

    #[test]
    fn effectiveness_matches_hit_fraction() {
        let mut c = CacheSim::new(4096, 64, 4);
        for i in 0..100u64 {
            c.access(i * 8, AccessKind::Load, None); // 8 accesses per 64B line
        }
        let s = c.stats();
        // 100 accesses, 13 lines touched (800B/64B = 12.5 -> 13 fills).
        assert_eq!(s.fills, 13);
        assert!((s.effectiveness() - 0.87).abs() < 1e-12);
    }

    #[test]
    fn volumes_monotone_in_cache_size() {
        // Larger caches never miss more on the same LRU-friendly stream.
        let stream: Vec<u64> = (0..5000u64)
            .map(|i| (i * 7919) % 16384) // pseudo-random in 16 KiB
            .collect();
        let mut prev_misses = u64::MAX;
        for size in [512, 1024, 2048, 4096, 8192, 16384] {
            let mut c = CacheSim::new(size, 64, size / 64); // fully assoc LRU
            for &a in &stream {
                c.access(a, AccessKind::Load, None);
            }
            let m = c.stats().misses();
            assert!(m <= prev_misses, "size {size}: {m} > {prev_misses}");
            prev_misses = m;
        }
    }

    #[test]
    fn capacity_accessor() {
        let c = CacheSim::new(192 * 1024, 32, 8);
        assert_eq!(c.capacity(), 192 * 1024);
        assert_eq!(c.line_bytes(), 32);
    }
}
