//! Register allocation over recorded value lifetimes.
//!
//! The paper's Privatization story is a register-pressure story: turning
//! interleaved global intermediate arrays into thread-private scalars lets
//! the compiler map them to registers, spilling to local memory only when
//! the register budget is exceeded (255 on the A100, and spilling is what
//! separates variant **P** from **RSP** from **RSPR**).
//!
//! This module replays that compiler decision mechanically. The kernels
//! emit `Def`/`Use` events for private scalars; [`RegisterAllocator`] runs a
//! linear-scan allocation over the resulting live intervals (first `Def` to
//! last touch) with furthest-end spilling, and rewrites the event stream:
//! registers disappear, spilled values become local stores (at their
//! definitions) and local loads (at their uses) on compactly reused spill
//! slots — exactly the traffic the cache models then observe.

use std::collections::HashMap;

use crate::trace::Event;

/// Outcome of allocating one thread's private values.
#[derive(Debug, Clone)]
pub struct RegAllocResult {
    /// Peak number of simultaneously register-resident values.
    pub max_pressure: u32,
    /// Number of distinct values spilled to local memory.
    pub spilled_values: u32,
    /// Distinct local slots used by spills (slots are reused).
    pub spill_slots: u32,
    /// Local stores inserted (one per spilled definition/update).
    pub spill_stores: u64,
    /// Local loads inserted (one per spilled use).
    pub spill_loads: u64,
    /// The rewritten event stream: `Def`/`Use` of register-resident values
    /// removed, spilled touches turned into `LStore`/`LLoad`.
    pub events: Vec<Event>,
}

/// Linear-scan register allocator with furthest-end spilling.
#[derive(Debug, Clone, Copy)]
pub struct RegisterAllocator {
    /// Number of (f64) registers available for private values.
    pub num_regs: u32,
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    start: usize,
    end: usize,
}

impl RegisterAllocator {
    /// Allocator with a budget of `num_regs` f64 values.
    pub fn new(num_regs: u32) -> Self {
        assert!(num_regs > 0, "need at least one register");
        Self { num_regs }
    }

    /// Runs the allocation over one thread's event stream.
    ///
    /// A value's live interval spans from its first `Def` to its last `Def`
    /// or `Use` (accumulators that are repeatedly updated stay live across
    /// all updates, matching how a compiler treats a running sum).
    pub fn allocate(&self, events: &[Event]) -> RegAllocResult {
        // Pass 1: live intervals.
        let mut intervals: HashMap<u32, Interval> = HashMap::new();
        for (pos, e) in events.iter().enumerate() {
            match *e {
                Event::Def(v) | Event::Use(v) => {
                    intervals
                        .entry(v)
                        .and_modify(|iv| iv.end = pos)
                        .or_insert(Interval {
                            start: pos,
                            end: pos,
                        });
                }
                _ => {}
            }
        }

        // Pass 2: linear scan over intervals sorted by start.
        let mut order: Vec<(u32, Interval)> = intervals.iter().map(|(&v, &iv)| (v, iv)).collect();
        order.sort_unstable_by_key(|&(v, iv)| (iv.start, v));

        let mut active: Vec<(u32, Interval)> = Vec::new(); // register-resident
        let mut spilled: HashMap<u32, u32> = HashMap::new(); // value -> slot
        let mut max_pressure = 0u32;

        // Spill-slot reuse: a slot frees when its value's interval ends.
        let mut slot_free: Vec<u32> = Vec::new();
        let mut slot_release: Vec<(usize, u32)> = Vec::new(); // (end, slot)
        let mut next_slot = 0u32;

        for &(v, iv) in &order {
            // Expire finished register intervals.
            active.retain(|&(_, a)| a.end >= iv.start);
            // Release spill slots whose value died.
            slot_release.retain(|&(end, slot)| {
                if end < iv.start {
                    slot_free.push(slot);
                    false
                } else {
                    true
                }
            });

            if (active.len() as u32) < self.num_regs {
                active.push((v, iv));
                max_pressure = max_pressure.max(active.len() as u32);
                continue;
            }

            // Pressure exceeded: spill the interval (new or active) with the
            // furthest end — the linear-scan heuristic.
            let (far_idx, far_end) = active
                .iter()
                .enumerate()
                .map(|(i, &(_, a))| (i, a.end))
                .max_by_key(|&(_, end)| end)
                .expect("active nonempty at pressure limit");
            let victim = if far_end > iv.end {
                let (vv, viv) = active[far_idx];
                active[far_idx] = (v, iv);
                (vv, viv)
            } else {
                (v, iv)
            };
            let slot = slot_free.pop().unwrap_or_else(|| {
                let s = next_slot;
                next_slot += 1;
                s
            });
            spilled.insert(victim.0, slot);
            slot_release.push((victim.1.end, slot));
            max_pressure = max_pressure.max(active.len() as u32);
        }

        // Pass 3: rewrite the stream.
        let mut out = Vec::with_capacity(events.len());
        let mut spill_stores = 0u64;
        let mut spill_loads = 0u64;
        for e in events {
            match *e {
                Event::Def(v) => {
                    if let Some(&slot) = spilled.get(&v) {
                        out.push(Event::LStore(slot));
                        spill_stores += 1;
                    }
                }
                Event::Use(v) => {
                    if let Some(&slot) = spilled.get(&v) {
                        out.push(Event::LLoad(slot));
                        spill_loads += 1;
                    }
                }
                other => out.push(other),
            }
        }

        RegAllocResult {
            max_pressure,
            spilled_values: spilled.len() as u32,
            spill_slots: next_slot,
            spill_stores,
            spill_loads,
            events: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def(v: u32) -> Event {
        Event::Def(v)
    }
    fn use_(v: u32) -> Event {
        Event::Use(v)
    }

    #[test]
    fn no_spill_when_pressure_fits() {
        let events = vec![def(0), def(1), use_(0), use_(1)];
        let r = RegisterAllocator::new(2).allocate(&events);
        assert_eq!(r.max_pressure, 2);
        assert_eq!(r.spilled_values, 0);
        assert_eq!(r.spill_stores, 0);
        assert!(r.events.is_empty()); // all register ops vanish
    }

    #[test]
    fn disjoint_lifetimes_reuse_registers() {
        // 10 values, each dead before the next is born: pressure 1.
        let mut events = Vec::new();
        for v in 0..10 {
            events.push(def(v));
            events.push(use_(v));
        }
        let r = RegisterAllocator::new(1).allocate(&events);
        assert_eq!(r.max_pressure, 1);
        assert_eq!(r.spilled_values, 0);
    }

    #[test]
    fn overlapping_lifetimes_spill() {
        // 3 values all live at once, 2 registers.
        let events = vec![def(0), def(1), def(2), use_(0), use_(1), use_(2)];
        let r = RegisterAllocator::new(2).allocate(&events);
        assert_eq!(r.spilled_values, 1);
        assert_eq!(r.spill_stores, 1);
        assert_eq!(r.spill_loads, 1);
        // Rewritten stream holds exactly the spill traffic.
        assert_eq!(r.events.len(), 2);
        assert!(matches!(r.events[0], Event::LStore(_)));
        assert!(matches!(r.events[1], Event::LLoad(_)));
    }

    #[test]
    fn furthest_end_is_spilled() {
        // v0 lives to the far end; v1, v2 are short. With 2 regs, v0 is the
        // spill victim so the short-lived values stay in registers.
        let events = vec![
            def(0),
            def(1),
            def(2),
            use_(1),
            use_(2),
            use_(0), // far use of v0
        ];
        let r = RegisterAllocator::new(2).allocate(&events);
        // v0 spilled: one store at def, one load at use.
        assert_eq!(r.spilled_values, 1);
        assert_eq!(r.events, vec![Event::LStore(0), Event::LLoad(0)]);
    }

    #[test]
    fn accumulator_updates_count_as_touches() {
        // def, then repeated def/use updates: one value, pressure 1, and if
        // spilled every update would hit local memory.
        let events = vec![def(0), use_(0), def(0), use_(0), def(0), use_(0)];
        let r = RegisterAllocator::new(4).allocate(&events);
        assert_eq!(r.max_pressure, 1);
        assert_eq!(r.spilled_values, 0);
    }

    #[test]
    fn spilled_accumulator_generates_traffic_per_update() {
        // Two long-lived accumulators + 1 register: one spills; its three
        // defs and three uses all become local traffic.
        let mut events = vec![def(0), def(1)];
        for _ in 0..3 {
            events.push(use_(0));
            events.push(def(0));
            events.push(use_(1));
            events.push(def(1));
        }
        let r = RegisterAllocator::new(1).allocate(&events);
        assert_eq!(r.spilled_values, 1);
        assert_eq!(r.spill_stores + r.spill_loads, 7); // 4 defs + 3 uses
    }

    #[test]
    fn spill_slots_are_reused_across_disjoint_spills() {
        // Two phases; in each phase 3 overlapping values vs 2 registers.
        // The spilled value of phase 2 reuses phase 1's slot.
        let events = vec![
            def(0),
            def(1),
            def(2),
            use_(0),
            use_(1),
            use_(2),
            // phase 2 (all phase-1 values dead)
            def(10),
            def(11),
            def(12),
            use_(10),
            use_(11),
            use_(12),
        ];
        let r = RegisterAllocator::new(2).allocate(&events);
        assert_eq!(r.spilled_values, 2);
        assert_eq!(r.spill_slots, 1, "slot should be reused");
    }

    #[test]
    fn non_private_events_pass_through() {
        let events = vec![
            Event::GLoad(8),
            def(0),
            Event::Fma(2),
            use_(0),
            Event::GStore(16),
        ];
        let r = RegisterAllocator::new(4).allocate(&events);
        assert_eq!(
            r.events,
            vec![Event::GLoad(8), Event::Fma(2), Event::GStore(16)]
        );
    }

    #[test]
    fn pressure_reported_even_without_spills() {
        let events = vec![def(0), def(1), def(2), use_(2), use_(1), use_(0)];
        let r = RegisterAllocator::new(8).allocate(&events);
        assert_eq!(r.max_pressure, 3);
    }

    #[test]
    fn massive_pressure_spills_down_to_budget() {
        // 100 simultaneously live values, 16 registers.
        let mut events = Vec::new();
        for v in 0..100 {
            events.push(def(v));
        }
        for v in 0..100 {
            events.push(use_(v));
        }
        let r = RegisterAllocator::new(16).allocate(&events);
        assert_eq!(r.max_pressure, 16);
        assert_eq!(r.spilled_values, 84);
        assert_eq!(r.spill_stores, 84);
        assert_eq!(r.spill_loads, 84);
    }
}
