//! Energy-per-assembly estimates (Section VI).
//!
//! The paper estimates power from the TOP500 entries of the two systems by
//! dividing the total system power by the GPU count (Alex) or node count
//! (Fritz): 421 W per A100 including its host share, 683 W per Fritz node.
//! Energy is simply power × kernel runtime; the headline result is the ~4×
//! GPU advantage for the optimized variants — and the *inversion* of that
//! advantage for the baseline, where the GPU was 4–5× slower.

/// Per-device power figures from the TOP500-based estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSpec {
    /// Watts drawn by one A100 including its host-system share.
    pub gpu_watts: f64,
    /// Watts drawn by one dual-socket CPU node.
    pub cpu_node_watts: f64,
}

impl PowerSpec {
    /// The paper's Alex / Fritz estimates.
    pub fn alex_fritz() -> Self {
        Self {
            gpu_watts: 421.0,
            cpu_node_watts: 683.0,
        }
    }
}

/// Energy consumed by a kernel of duration `runtime_s` on the GPU, joules.
pub fn gpu_energy(spec: &PowerSpec, runtime_s: f64) -> f64 {
    spec.gpu_watts * runtime_s
}

/// Energy consumed by a kernel of duration `runtime_s` on the CPU node.
pub fn cpu_energy(spec: &PowerSpec, runtime_s: f64) -> f64 {
    spec.cpu_node_watts * runtime_s
}

/// Energy-efficiency ratio CPU/GPU (> 1 means the GPU wins).
pub fn efficiency_ratio(spec: &PowerSpec, gpu_runtime_s: f64, cpu_runtime_s: f64) -> f64 {
    cpu_energy(spec, cpu_runtime_s) / gpu_energy(spec, gpu_runtime_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        // 51 ms GPU at 421 W -> ~21 J; 122 ms node at 683 W -> ~83 J.
        let p = PowerSpec::alex_fritz();
        let gpu_j = gpu_energy(&p, 0.051);
        let cpu_j = cpu_energy(&p, 0.122);
        assert!((gpu_j - 21.5).abs() < 0.5, "gpu {gpu_j} J");
        assert!((cpu_j - 83.3).abs() < 0.5, "cpu {cpu_j} J");
        let ratio = efficiency_ratio(&p, 0.051, 0.122);
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn baseline_inverts_the_advantage() {
        // B: 3773 ms GPU vs 785 ms CPU node — CPU is the efficient option.
        let p = PowerSpec::alex_fritz();
        let ratio = efficiency_ratio(&p, 3.773, 0.785);
        assert!(ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let p = PowerSpec::alex_fritz();
        assert!((gpu_energy(&p, 2.0) - 2.0 * gpu_energy(&p, 1.0)).abs() < 1e-9);
    }
}
