//! Minimal structured-parallelism helpers over `std::thread::scope`.
//!
//! The workspace builds without third-party crates, so the parallel
//! drivers (`alya-core::drivers`, `alya-solver::csr`) use these helpers
//! instead of rayon. The model is deliberately simple: an index range is
//! split into one contiguous chunk per worker, each worker owns a
//! per-thread state built by `init` (the reused workspace buffer pattern),
//! and threads are joined before returning. Work stealing is not needed —
//! every call site here distributes near-uniform work.
//!
//! Small inputs take a serial fast path so tests and tiny meshes do not
//! pay thread-spawn latency.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Work items below this threshold run serially.
const SERIAL_CUTOFF: usize = 256;

/// Number of worker threads used by the helpers (the hardware parallelism).
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn worker_count(n: usize) -> usize {
    num_threads().min(n.div_ceil(SERIAL_CUTOFF)).max(1)
}

/// Maps `f` over `0..n` in parallel, preserving order. Each worker thread
/// builds one private state with `init` and threads it through its calls —
/// the rayon `map_init` pattern.
pub fn par_map_init<T, W, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 {
        let mut w = init();
        return (0..n).map(|i| f(&mut w, i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                let init = &init;
                let f = &f;
                s.spawn(move || {
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Runs `f` over the items of `items` in parallel with per-worker state.
/// Items are claimed in small batches from a shared atomic cursor, so
/// imbalanced per-item cost (e.g. color classes of uneven element cost)
/// still spreads across workers.
pub fn par_for_each_init<A, W, I, F>(items: &[A], init: I, f: F)
where
    A: Sync,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, &A) + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        let mut w = init();
        for a in items {
            f(&mut w, a);
        }
        return;
    }
    const BATCH: usize = 64;
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            s.spawn(move || {
                let mut state = init();
                loop {
                    let lo = cursor.fetch_add(BATCH, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for a in &items[lo..(lo + BATCH).min(n)] {
                        f(&mut state, a);
                    }
                }
            });
        }
    });
}

/// Splits `data` into one contiguous chunk per worker and calls
/// `f(offset, chunk)` for each in parallel — the disjoint-output pattern
/// (e.g. row ranges of an SpMV destination).
pub fn par_chunks_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let workers = worker_count(n);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut offset = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            s.spawn(move || f(offset, head));
            offset += take;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_covers_range() {
        // Above the serial cutoff so threads actually spawn.
        let out = par_map_init(10_000, || 0u64, |_, i| i * 2);
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn map_small_input_matches_serial() {
        let out = par_map_init(7, || (), |(), i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let items: Vec<usize> = (0..5000).collect();
        let sum = AtomicU64::new(0);
        par_for_each_init(
            &items,
            || (),
            |(), &i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.load(Ordering::Relaxed), 5000 * 4999 / 2);
    }

    #[test]
    fn init_runs_per_worker_not_per_item() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let _ = par_map_init(4096, || inits.fetch_add(1, Ordering::Relaxed), |_, i| i);
        assert!(inits.load(Ordering::Relaxed) <= num_threads());
    }

    #[test]
    fn chunks_cover_disjointly() {
        let mut data = vec![0u32; 9173];
        par_chunks_mut(&mut data, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (offset + i) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
