//! Minimal structured-parallelism helpers over `std::thread::scope`.
//!
//! The workspace builds without third-party crates, so the parallel
//! drivers (`alya-core::drivers`, `alya-solver::csr`) use these helpers
//! instead of rayon. The model is deliberately simple: an index range is
//! split into one contiguous chunk per worker, each worker owns a
//! per-thread state built by `init` (the reused workspace buffer pattern),
//! and threads are joined before returning. Work stealing is not needed —
//! every call site here distributes near-uniform work.
//!
//! Small inputs take a serial fast path so tests and tiny meshes do not
//! pay thread-spawn latency.
//!
//! Every helper propagates the spawner's [`alya_telemetry::Context`] into
//! the threads it creates, so counters tallied inside worker closures land
//! in the live telemetry session exactly when the spawning thread
//! participates in one — and never otherwise.

use std::sync::atomic::{AtomicUsize, Ordering};

use alya_telemetry as telemetry;

/// Work items below this threshold run serially.
const SERIAL_CUTOFF: usize = 256;

/// Optional process-wide worker cap (0 = uncapped). Set by benchmark
/// harnesses sweeping thread counts; see [`set_thread_cap`].
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Caps the worker count every helper in this module will use. `None`
/// lifts the cap. The cap is process-global and meant for single-threaded
/// harnesses (the driver-throughput benchmark sweeps it); it never raises
/// parallelism above the hardware.
pub fn set_thread_cap(cap: Option<usize>) {
    THREAD_CAP.store(cap.map_or(0, |c| c.max(1)), Ordering::Relaxed);
}

/// Worker threads the machine offers, ignoring any [`set_thread_cap`].
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of worker threads used by the helpers (the hardware parallelism,
/// lowered by [`set_thread_cap`] when one is active).
pub fn num_threads() -> usize {
    let hw = hardware_threads();
    match THREAD_CAP.load(Ordering::Relaxed) {
        0 => hw,
        cap => hw.min(cap),
    }
}

fn worker_count(n: usize) -> usize {
    num_threads().min(n.div_ceil(SERIAL_CUTOFF)).max(1)
}

/// Maps `f` over `0..n` in parallel, preserving order. Each worker thread
/// builds one private state with `init` and threads it through its calls —
/// the rayon `map_init` pattern.
pub fn par_map_init<T, W, I, F>(n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    let workers = worker_count(n);
    if workers <= 1 {
        let mut w = init();
        return (0..n).map(|i| f(&mut w, i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let ctx = telemetry::current_context();
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(n);
                let init = &init;
                let f = &f;
                s.spawn(move || {
                    telemetry::adopt_context(ctx);
                    let mut state = init();
                    (lo..hi).map(|i| f(&mut state, i)).collect::<Vec<T>>()
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Runs `f` over the items of `items` in parallel with per-worker state.
/// Items are claimed in small batches from a shared atomic cursor, so
/// imbalanced per-item cost (e.g. color classes of uneven element cost)
/// still spreads across workers.
pub fn par_for_each_init<A, W, I, F>(items: &[A], init: I, f: F)
where
    A: Sync,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, &A) + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        let mut w = init();
        for a in items {
            f(&mut w, a);
        }
        return;
    }
    const BATCH: usize = 64;
    let cursor = AtomicUsize::new(0);
    let ctx = telemetry::current_context();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            s.spawn(move || {
                telemetry::adopt_context(ctx);
                let mut state = init();
                loop {
                    let lo = cursor.fetch_add(BATCH, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for a in &items[lo..(lo + BATCH).min(n)] {
                        f(&mut state, a);
                    }
                }
            });
        }
    });
}

/// Runs `f` over `items` in parallel with **one item = one unit of coarse
/// work** (a whole solver step, a whole session dispatch). Unlike
/// [`par_for_each_init`], which assumes cheap per-item cost and runs
/// serially below [`SERIAL_CUTOFF`] items, this helper spawns
/// `min(num_threads(), items.len())` workers for any batch of two or more
/// items and claims items one at a time from a shared cursor. Respects
/// [`set_thread_cap`] and propagates the spawner's telemetry context like
/// every helper here.
pub fn par_for_each_coarse<A, F>(items: &[A], f: F)
where
    A: Sync,
    F: Fn(&A) + Sync,
{
    let n = items.len();
    let workers = num_threads().min(n);
    if workers <= 1 {
        for a in items {
            f(a);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let ctx = telemetry::current_context();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || {
                telemetry::adopt_context(ctx);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    f(&items[i]);
                }
            });
        }
    });
}

/// Splits `data` into one contiguous chunk per worker and calls
/// `f(offset, chunk)` for each in parallel — the disjoint-output pattern
/// (e.g. row ranges of an SpMV destination).
pub fn par_chunks_mut<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let workers = worker_count(n);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let chunk = n.div_ceil(workers);
    let ctx = telemetry::current_context();
    std::thread::scope(|s| {
        let mut rest = data;
        let mut offset = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let f = &f;
            s.spawn(move || {
                telemetry::adopt_context(ctx);
                f(offset, head);
            });
            offset += take;
            rest = tail;
        }
    });
}

/// Spawns **exactly one dedicated OS thread per item**, moves each item
/// into its thread, and joins them all — the rank-parallel execution model
/// of `alya-comm`, where every item is one rank's private state.
///
/// Unlike the worker helpers above, this deliberately ignores
/// [`set_thread_cap`]: the cap models *worker* parallelism within a rank,
/// while ranks stand in for distributed processes whose count is fixed by
/// the decomposition, not by the host. Capping ranks would deadlock a
/// blocking message exchange (a rank that never runs can never send).
/// A single item runs on the calling thread.
pub fn dedicated_threads<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(|t| f(0, t)).collect();
    }
    let ctx = telemetry::current_context();
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let f = &f;
                s.spawn(move || {
                    telemetry::adopt_context(ctx);
                    f(i, t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dedicated rank thread panicked"))
            .collect()
    })
}

/// Reduces `items` to one value by **pairwise tree combination**: at every
/// level adjacent pairs are combined concurrently, halving the item count,
/// until one value remains. Compared with the serial left fold the old
/// drivers used, the critical path shrinks from `n − 1` sequential
/// combines to `⌈log₂ n⌉` parallel levels — the reduction shape multi-GPU
/// and distributed assembly will reuse across devices/ranks.
///
/// The combine order is a deterministic function of `items.len()` alone
/// (pairs in order, an odd tail item carried to the next level), so
/// floating-point reassociation is reproducible run to run. Returns `None`
/// for an empty input.
pub fn tree_reduce<T, F>(mut items: Vec<T>, combine: F) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    while items.len() > 1 {
        let odd = (items.len() % 2 == 1).then(|| items.pop().expect("non-empty"));
        let mut pairs: Vec<(T, T)> = Vec::with_capacity(items.len() / 2);
        let mut it = items.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            pairs.push((a, b));
        }
        let mut next: Vec<T> = Vec::with_capacity(pairs.len() + 1);
        if num_threads() <= 1 || pairs.len() < 2 {
            next.extend(pairs.into_iter().map(|(a, b)| combine(a, b)));
        } else {
            let ctx = telemetry::current_context();
            std::thread::scope(|s| {
                let combine = &combine;
                let handles: Vec<_> = pairs
                    .into_iter()
                    .map(|(a, b)| {
                        s.spawn(move || {
                            telemetry::adopt_context(ctx);
                            combine(a, b)
                        })
                    })
                    .collect();
                for h in handles {
                    next.push(h.join().expect("tree-reduce worker panicked"));
                }
            });
        }
        if let Some(x) = odd {
            next.push(x);
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_covers_range() {
        // Above the serial cutoff so threads actually spawn.
        let out = par_map_init(10_000, || 0u64, |_, i| i * 2);
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn map_small_input_matches_serial() {
        let out = par_map_init(7, || (), |(), i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let items: Vec<usize> = (0..5000).collect();
        let sum = AtomicU64::new(0);
        par_for_each_init(
            &items,
            || (),
            |(), &i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.load(Ordering::Relaxed), 5000 * 4999 / 2);
    }

    #[test]
    fn init_runs_per_worker_not_per_item() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let _ = par_map_init(4096, || inits.fetch_add(1, Ordering::Relaxed), |_, i| i);
        // Bound by the *hardware* parallelism: a concurrently running test
        // may hold a lower thread cap, which only shrinks worker counts.
        assert!(inits.load(Ordering::Relaxed) <= hardware_threads());
    }

    #[test]
    fn tree_reduce_combines_everything_deterministically() {
        for n in [0usize, 1, 2, 3, 7, 8, 33, 1000] {
            let items: Vec<u64> = (0..n as u64).collect();
            let got = tree_reduce(items, |a, b| a + b);
            match n {
                0 => assert_eq!(got, None),
                _ => assert_eq!(got, Some((n as u64) * (n as u64 - 1) / 2)),
            }
        }
        // Deterministic combine structure: string concatenation exposes the
        // association order; two runs must agree exactly.
        let words = || (0..13).map(|i| format!("[{i}]")).collect::<Vec<_>>();
        let a = tree_reduce(words(), |x, y| x + &y).unwrap();
        let b = tree_reduce(words(), |x, y| x + &y).unwrap();
        assert_eq!(a, b);
        for i in 0..13 {
            assert!(a.contains(&format!("[{i}]")));
        }
    }

    #[test]
    fn thread_cap_lowers_but_never_raises() {
        set_thread_cap(Some(1));
        assert_eq!(num_threads(), 1);
        set_thread_cap(Some(1_000_000));
        assert_eq!(num_threads(), hardware_threads());
        set_thread_cap(None);
        assert_eq!(num_threads(), hardware_threads());
    }

    #[test]
    fn chunks_cover_disjointly() {
        let mut data = vec![0u32; 9173];
        par_chunks_mut(&mut data, |offset, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (offset + i) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn coarse_for_each_visits_every_item_even_tiny_batches() {
        use std::sync::atomic::AtomicU64;
        // Small batches must still run (and in parallel when threads allow)
        // — coarse items are whole solver steps, not loop iterations.
        for n in [0usize, 1, 2, 7, 64] {
            let items: Vec<u64> = (0..n as u64).collect();
            let sum = AtomicU64::new(0);
            par_for_each_coarse(&items, |&i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            let expect = if n == 0 {
                0
            } else {
                (n as u64) * (n as u64 - 1) / 2
            };
            assert_eq!(sum.load(Ordering::Relaxed), expect);
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn dedicated_threads_run_every_item_despite_a_cap() {
        // A thread cap must not reduce rank parallelism: all four ranks
        // run (under a cap of 1 a capped pool would stall a blocking
        // exchange; here we just prove every item executes and results
        // come back in item order).
        set_thread_cap(Some(1));
        let items: Vec<u64> = (0..4).collect();
        let out = dedicated_threads(items, |i, x| {
            assert_eq!(i as u64, x);
            x * 10
        });
        set_thread_cap(None);
        assert_eq!(out, vec![0, 10, 20, 30]);
        // Degenerate sizes.
        assert_eq!(dedicated_threads(Vec::<u8>::new(), |_, x| x), vec![]);
        assert_eq!(dedicated_threads(vec![7u8], |i, x| x + i as u8), vec![7]);
    }
}
