//! GPU SIMT execution model (Table II, Table III, Figure 3).
//!
//! Replays per-thread event traces through a scaled-down A100:
//!
//! * **Sampling.** Simulating 32 M threads is neither necessary nor useful;
//!   cache pressure is governed by the *resident* threads. The model runs a
//!   few SMs (default 4) with the device L2 scaled proportionally
//!   (40 MB × 4/108), for several waves of resident blocks — the standard
//!   sampled-simulation setup that preserves per-SM and per-thread pressure.
//! * **Warp execution.** Threads are grouped 32 to a warp,
//!   `threads_per_block` to a block; blocks are dealt round-robin to SMs.
//!   Warps on one SM issue in round-robin; a memory instruction coalesces
//!   its threads' 8-byte accesses into unique 32-byte sectors before they
//!   reach the per-SM L1. Local-memory slots are interleaved across the
//!   block's threads exactly like CUDA local memory, so per-thread spill
//!   arrays produce coalesced traffic.
//! * **Local-memory semantics.** Local lines are tagged with the owning
//!   block; when the block retires they are invalidated without write-back
//!   (capacity evictions before retirement do write back) — Table III.
//! * **Timing.** Runtime is the max of five bottleneck terms: DRAM
//!   bandwidth (capped by a Little's-law latency limit driven by occupancy
//!   and the trace's memory-level parallelism), L2 bandwidth, L1
//!   throughput, FP64 throughput (scaled by the kernel's FMA mix), and
//!   instruction issue (occupancy-limited at low warp counts).

use crate::cache::{AccessKind, CacheSim};
use crate::spec::GpuSpec;
use crate::trace::{estimate_mlp, Event, TraceCounts};

/// How the compiler sizes the register allocation for a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegisterDemand {
    /// Vectorized array-style kernel (paper variants B, P, RS): the
    /// compiler schedules a huge flat loop body holding `values_per_elem`
    /// array intermediates and allocates registers in proportion, up to the
    /// hard cap. The affine coefficients are calibrated on the paper's two
    /// observations (430 values → 255 capped, 130 values → 184).
    ArrayStyle {
        /// Intermediate values per element in the source.
        values_per_elem: u32,
    },
    /// Privatized scalar kernel (RSP, RSPR): pressure measured by the
    /// register allocator over the recorded def/use lifetimes.
    Measured {
        /// Peak simultaneously-live f64 values from `RegisterAllocator`.
        pressure: u32,
    },
}

/// Base registers (addresses, indices, control) every kernel needs.
pub const REG_OVERHEAD: u32 = 26;
/// Calibrated slope/intercept of the array-style register model.
const ARRAY_STYLE_INTERCEPT: f64 = 153.0;
const ARRAY_STYLE_SLOPE: f64 = 0.2367;

impl RegisterDemand {
    /// 32-bit registers per thread the compiler would allocate.
    pub fn registers(&self, spec: &GpuSpec) -> u32 {
        let raw = match *self {
            RegisterDemand::ArrayStyle { values_per_elem } => {
                (ARRAY_STYLE_INTERCEPT + ARRAY_STYLE_SLOPE * values_per_elem as f64).round() as u32
            }
            // Each f64 value occupies two 32-bit registers.
            RegisterDemand::Measured { pressure } => REG_OVERHEAD + 2 * pressure,
        };
        raw.clamp(32, spec.max_registers_per_thread)
    }
}

/// Table II for one kernel variant, per-element where applicable.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuReport {
    /// Variant label.
    pub label: String,
    /// Global load/store operations per element.
    pub global_ldst: f64,
    /// Local load/store operations per element (post register allocation).
    pub local_ldst: f64,
    /// Floating-point operations per element (1 FMA = 2).
    pub flops: f64,
    /// L1 volume per element in bytes (8 × load/store operations).
    pub l1_volume: f64,
    /// Fraction of L1 traffic served by the L1.
    pub l1_effectiveness: f64,
    /// L2 volume per element in bytes (traffic arriving at L2).
    pub l2_volume: f64,
    /// Fraction of L2 traffic served by the L2.
    pub l2_effectiveness: f64,
    /// DRAM volume per element in bytes.
    pub dram_volume: f64,
    /// Allocated 32-bit registers per thread.
    pub registers: u32,
    /// Occupancy fraction.
    pub occupancy: f64,
    /// Estimated memory-level parallelism of the thread stream.
    pub mlp: f64,
    /// Predicted kernel time for `num_elements`, seconds.
    pub runtime: f64,
    /// Achieved FP rate, Flop/s.
    pub gflops: f64,
    /// Achieved DRAM bandwidth, B/s.
    pub dram_bw: f64,
    /// Which term limited the runtime.
    pub bottleneck: &'static str,
}

/// Sampled-simulation configuration.
#[derive(Debug, Clone)]
pub struct GpuModel {
    /// Hardware description.
    pub spec: GpuSpec,
    /// SMs simulated (device is scaled down to this; default 4).
    pub sample_sms: u32,
    /// Waves of resident blocks simulated per SM (default 2; the first
    /// wave warms the caches, all waves are measured).
    pub waves: u32,
}

impl GpuModel {
    /// Model over `spec` with default sampling.
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            sample_sms: 4,
            waves: 2,
        }
    }

    /// Number of elements (threads) the sampled simulation consumes for a
    /// given register demand. Callers must supply traces for element
    /// indices `0..sim_elements(...)`.
    pub fn sim_elements(&self, registers: u32) -> usize {
        let resident = self.spec.resident_threads_per_sm(registers);
        (resident * self.sample_sms * self.waves) as usize
    }

    /// Runs the sampled simulation.
    ///
    /// * `label` — variant name for the report;
    /// * `demand` — register model (decides occupancy and, for `Measured`,
    ///   assumes the traces already contain spill traffic);
    /// * `num_elements` — full problem size the runtime is scaled to;
    /// * `thread_trace(e)` — the event stream of the thread assembling
    ///   element `e` (`Def`/`Use` must already be lowered by the register
    ///   allocator).
    pub fn execute(
        &self,
        label: &str,
        demand: RegisterDemand,
        num_elements: usize,
        mut thread_trace: impl FnMut(usize) -> Vec<Event>,
    ) -> GpuReport {
        let spec = &self.spec;
        let registers = demand.registers(spec);
        let occupancy = spec.occupancy(registers);
        let resident_per_sm = spec.resident_threads_per_sm(registers);
        let sms = self.sample_sms as usize;
        let tpb = spec.threads_per_block as usize;
        let warp = spec.warp_size as usize;
        let blocks_per_sm_resident = (resident_per_sm as usize / tpb).max(1);

        // Scaled-down L2: keep associativity, shrink sets.
        let l2_size =
            (spec.l2_bytes * sms / spec.num_sms as usize).max(spec.line_bytes * spec.l2_assoc);
        let l2_size = l2_size - l2_size % (spec.line_bytes * spec.l2_assoc);
        // The device L2 uses streaming-resistant (non-LRU) replacement;
        // random selection is the classic approximation.
        let mut l2 = CacheSim::new(l2_size, spec.line_bytes, spec.l2_assoc)
            .with_replacement(crate::cache::Replacement::Random);
        let mut l1s: Vec<CacheSim> = (0..sms)
            .map(|_| CacheSim::new(spec.l1_bytes, spec.line_bytes, spec.l1_assoc))
            .collect();

        let mut dram_bytes = 0u64;
        let mut counts = TraceCounts::default();
        let mut mlp_sum = 0.0;
        let mut mlp_n = 0usize;
        let mut mem_instructions = 0u64; // warp-level memory instructions
        let mut sector_sum = 0u64; // unique sectors over those instructions

        // Local-memory layout: block-contiguous, slot-interleaved.
        let local_base = 1u64 << 48;
        let local_bytes_per_block = 64 * 1024 * tpb as u64; // generous frame

        let total_sim_elems = self.sim_elements(registers).min(num_elements.max(1));
        let mut next_block_id = 0u32;
        let mut next_elem = 0usize;

        // Per-SM resident block queues.
        struct WarpState {
            cursor: usize,
            threads: Vec<Vec<Event>>, // one stream per lane
            base_elem: usize,
            block_id: u32,
        }

        let mut scratch_lines: Vec<u64> = Vec::with_capacity(warp);

        for _wave in 0..self.waves {
            // Deal one wave of blocks to each SM.
            let mut sm_warps: Vec<Vec<WarpState>> = (0..sms).map(|_| Vec::new()).collect();
            let mut block_warp_count: Vec<(u32, usize, usize)> = Vec::new(); // (block, sm, warps)
            for sm in 0..sms {
                for _ in 0..blocks_per_sm_resident {
                    if next_elem >= total_sim_elems {
                        break;
                    }
                    let block_id = next_block_id;
                    next_block_id += 1;
                    let mut warps_in_block = 0;
                    let mut t = 0;
                    while t < tpb && next_elem < total_sim_elems {
                        let base_elem = next_elem;
                        let mut threads = Vec::with_capacity(warp);
                        for _lane in 0..warp {
                            if next_elem < total_sim_elems {
                                let tr = thread_trace(next_elem);
                                mlp_sum += estimate_mlp(&tr);
                                mlp_n += 1;
                                let c = TraceCounts::from_events(&tr);
                                counts.global_loads += c.global_loads;
                                counts.global_stores += c.global_stores;
                                counts.local_loads += c.local_loads;
                                counts.local_stores += c.local_stores;
                                counts.plain_flops += c.plain_flops;
                                counts.fmas += c.fmas;
                                threads.push(tr);
                                next_elem += 1;
                            }
                        }
                        sm_warps[sm].push(WarpState {
                            cursor: 0,
                            threads,
                            base_elem,
                            block_id,
                        });
                        warps_in_block += 1;
                        t += warp;
                    }
                    block_warp_count.push((block_id, sm, warps_in_block));
                }
            }

            // Round-robin issue across warps of each SM until all drain.
            // SMs interleave at instruction granularity via the outer loop.
            let mut live = true;
            while live {
                live = false;
                for (sm, warps) in sm_warps.iter_mut().enumerate() {
                    for w in warps.iter_mut() {
                        // Issue one instruction from this warp if any left.
                        let Some(first) = w.threads.first() else {
                            continue;
                        };
                        if w.cursor >= first.len() {
                            continue;
                        }
                        live = true;
                        let cursor = w.cursor;
                        w.cursor += 1;
                        // Warp-synchronous: lane 0 gives the op kind; lanes
                        // give addresses.
                        let kind = w.threads[0][cursor];
                        match kind {
                            Event::Flop(_) | Event::Fma(_) => {
                                // Arithmetic: already counted via counts.
                            }
                            Event::GLoad(_)
                            | Event::GStore(_)
                            | Event::LLoad(_)
                            | Event::LStore(_) => {
                                scratch_lines.clear();
                                let is_store = matches!(kind, Event::GStore(_) | Event::LStore(_));
                                let mut owner = None;
                                for (lane, tr) in w.threads.iter().enumerate() {
                                    let Some(e) = tr.get(cursor) else { continue };
                                    let addr = match *e {
                                        Event::GLoad(a) | Event::GStore(a) => a,
                                        Event::LLoad(slot) | Event::LStore(slot) => {
                                            owner = Some(w.block_id);
                                            let tid = (w.base_elem + lane) % tpb;
                                            local_base
                                                + w.block_id as u64 * local_bytes_per_block
                                                + (slot as u64 * tpb as u64 + tid as u64) * 8
                                        }
                                        _ => continue, // divergent shapes: skip
                                    };
                                    let line =
                                        addr / spec.line_bytes as u64 * spec.line_bytes as u64;
                                    if !scratch_lines.contains(&line) {
                                        scratch_lines.push(line);
                                    }
                                }
                                mem_instructions += 1;
                                sector_sum += scratch_lines.len() as u64;
                                let akind = if is_store {
                                    AccessKind::Store
                                } else {
                                    AccessKind::Load
                                };
                                // A100 L1 policy: global stores are
                                // write-through / no-write-allocate (they
                                // always reach L2); global loads and all
                                // local traffic use the L1 normally (local
                                // memory is cached write-back in L1).
                                let global_store = is_store && owner.is_none();
                                for &line in &scratch_lines {
                                    if global_store {
                                        l1s[sm].write_through(line);
                                        let o2 = l2.access(line, AccessKind::Store, None);
                                        if o2.writeback.is_some() {
                                            dram_bytes += spec.line_bytes as u64;
                                        }
                                        continue;
                                    }
                                    let out = l1s[sm].access(line, akind, owner);
                                    if let Some(wb) = out.writeback {
                                        // L1 dirty eviction lands in L2
                                        // (keeping any local-block tag); if
                                        // the L2 in turn evicts dirty data,
                                        // that reaches DRAM. A store miss
                                        // does NOT read DRAM (sectored
                                        // caches skip read-for-ownership).
                                        let o2 =
                                            l2.access(wb, AccessKind::Store, out.writeback_owner);
                                        if o2.writeback.is_some() {
                                            dram_bytes += spec.line_bytes as u64;
                                        }
                                    }
                                    if !out.hit {
                                        let o2 = l2.access(line, akind, owner);
                                        if o2.writeback.is_some() {
                                            dram_bytes += spec.line_bytes as u64;
                                        }
                                        if !o2.hit && akind == AccessKind::Load {
                                            dram_bytes += spec.line_bytes as u64;
                                        }
                                    }
                                }
                            }
                            Event::Def(_) | Event::Use(_) => {
                                panic!(
                                    "GPU model received unlowered Def/Use — \
                                     run RegisterAllocator first"
                                );
                            }
                        }
                    }
                }
            }

            // Wave complete: retire blocks, invalidating their local lines.
            for &(block_id, sm, _) in &block_warp_count {
                l1s[sm].invalidate_owner(block_id);
                l2.invalidate_owner(block_id);
            }
        }

        // Drain: dirty global lines eventually reach DRAM.
        for l1 in &mut l1s {
            for wb in l1.flush() {
                let o2 = l2.access(wb, AccessKind::Store, None);
                if o2.writeback.is_some() {
                    dram_bytes += spec.line_bytes as u64;
                }
            }
        }
        dram_bytes += l2.flush().len() as u64 * spec.line_bytes as u64;

        let sim_elems = next_elem.max(1) as f64;
        let per = |x: u64| x as f64 / sim_elems;

        let l1_stats = l1s
            .iter()
            .fold(crate::cache::CacheStats::default(), |mut acc, c| {
                let s = c.stats();
                acc.loads += s.loads;
                acc.stores += s.stores;
                acc.load_hits += s.load_hits;
                acc.store_hits += s.store_hits;
                acc.fills += s.fills;
                acc.writebacks += s.writebacks;
                acc
            });
        let l2_stats = l2.stats();

        let ldst_ops = counts.global_ldst() + counts.local_ldst();
        let l1_volume = per(ldst_ops * 8);
        let l1_eff = l1_stats.effectiveness();
        // Traffic arriving at L2 (fills + writebacks from L1), bytes.
        let l2_volume = per((l2_stats.loads + l2_stats.stores) * spec.line_bytes as u64);
        let l2_eff = l2_stats.effectiveness();
        let dram_volume = per(dram_bytes);

        let mlp = if mlp_n == 0 {
            1.0
        } else {
            mlp_sum / mlp_n as f64
        };
        let avg_sectors = if mem_instructions == 0 {
            1.0
        } else {
            sector_sum as f64 / mem_instructions as f64
        };

        // ---- Timing ----
        let n = num_elements as f64;
        let flops_pe = per(counts.flops());
        let fp_instr_pe = per(counts.fp_instructions());
        let total_flops = flops_pe * n;

        // FP roof scaled by FMA fraction (all-FMA -> peak, no-FMA -> half).
        let mix = if fp_instr_pe > 0.0 {
            (flops_pe / (2.0 * fp_instr_pe)).clamp(0.5, 1.0)
        } else {
            1.0
        };
        let t_fp = total_flops / (spec.peak_fp64 * mix);

        // DRAM: Little's law ceiling from resident warps × MLP × coalesced
        // sector bytes per instruction.
        let warps_resident = (resident_per_sm as f64 / warp as f64) * spec.num_sms as f64;
        let latency_s = spec.dram_latency_cycles / spec.clock_hz;
        let outstanding_bytes = warps_resident * mlp * avg_sectors * spec.line_bytes as f64;
        let bw_latency = outstanding_bytes / latency_s;
        let dram_bw_eff = spec.dram_bw.min(bw_latency);
        let t_dram = dram_volume * n / dram_bw_eff;

        // L2 bandwidth is latency-limited at low occupancy too.
        let l2_latency_s = spec.l2_latency_cycles / spec.clock_hz;
        let l2_bw_eff = spec.l2_bw.min(outstanding_bytes / l2_latency_s);
        let t_l2 = l2_volume * n / l2_bw_eff;
        let t_l1 =
            l1_volume * n / (spec.num_sms as f64 * spec.l1_bytes_per_cycle_per_sm * spec.clock_hz);

        // Issue: thread instructions / warp = warp instructions; cap IPC by
        // occupancy-driven latency hiding.
        let instr_pe = per(ldst_ops) + fp_instr_pe;
        let warp_instr_total = instr_pe * n / warp as f64;
        let warps_per_sm = resident_per_sm as f64 / warp as f64;
        let ipc = (warps_per_sm / spec.dependent_issue_latency).min(spec.issue_width);
        let t_issue = warp_instr_total / (spec.num_sms as f64 * ipc * spec.clock_hz);

        let (runtime, bottleneck) = [
            (t_dram, "dram"),
            (t_l2, "l2"),
            (t_fp, "fp64"),
            (t_l1, "l1"),
            (t_issue, "issue"),
        ]
        .into_iter()
        .fold((0.0, "none"), |acc, x| if x.0 > acc.0 { x } else { acc });

        GpuReport {
            label: label.to_string(),
            global_ldst: per(counts.global_ldst()),
            local_ldst: per(counts.local_ldst()),
            flops: flops_pe,
            l1_volume,
            l1_effectiveness: l1_eff,
            l2_volume,
            l2_effectiveness: l2_eff,
            dram_volume,
            registers,
            occupancy,
            mlp,
            runtime,
            gflops: total_flops / runtime,
            dram_bw: dram_volume * n / runtime,
            bottleneck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn model() -> GpuModel {
        let mut m = GpuModel::new(GpuSpec::a100_40gb());
        m.sample_sms = 2;
        m.waves = 1;
        m
    }

    /// A streaming kernel: read one value, fma, write one value.
    fn stream_trace(e: usize) -> Vec<Event> {
        vec![
            Event::GLoad(0x1000_0000 + e as u64 * 8),
            Event::Fma(4),
            Event::GStore(0x2000_0000 + e as u64 * 8),
        ]
    }

    #[test]
    fn streaming_kernel_moves_16_bytes_per_element() {
        let m = model();
        let demand = RegisterDemand::Measured { pressure: 8 };
        let n = m.sim_elements(demand.registers(&m.spec));
        let r = m.execute("stream", demand, n, stream_trace);
        // 8 B in + 8 B out, perfectly coalesced, no reuse.
        assert!(
            (r.dram_volume - 16.0).abs() < 1.5,
            "dram volume {}",
            r.dram_volume
        );
        assert_eq!(r.global_ldst, 2.0);
        assert_eq!(r.flops, 8.0);
        assert_eq!(r.bottleneck, "dram");
    }

    #[test]
    fn repeated_access_hits_cache() {
        let m = model();
        let demand = RegisterDemand::Measured { pressure: 8 };
        let n = m.sim_elements(demand.registers(&m.spec));
        // Every thread hammers the same small table: after warmup, pure hits.
        let r = m.execute("table", demand, n, |e| {
            let mut ev = Vec::new();
            for k in 0..16u64 {
                ev.push(Event::GLoad(0x3000_0000 + (k % 4) * 8));
                ev.push(Event::Fma(1));
            }
            let _ = e;
            ev
        });
        assert!(r.l1_effectiveness > 0.9, "l1 eff {}", r.l1_effectiveness);
        assert!(r.dram_volume < 2.0, "dram {}", r.dram_volume);
    }

    #[test]
    fn local_spill_traffic_is_invalidated_not_written_back() {
        let m = model();
        let demand = RegisterDemand::Measured { pressure: 8 };
        let n = m.sim_elements(demand.registers(&m.spec));
        // Threads write 4 local slots, read them back, produce one result.
        let r = m.execute("spill", demand, n, |e| {
            let mut ev = Vec::new();
            for s in 0..4 {
                ev.push(Event::LStore(s));
            }
            for s in 0..4 {
                ev.push(Event::LLoad(s));
            }
            ev.push(Event::Fma(4));
            ev.push(Event::GStore(0x4000_0000 + e as u64 * 8));
            ev
        });
        assert_eq!(r.local_ldst, 8.0);
        // Local lines die in cache: DRAM sees only the 8 B result.
        assert!(r.dram_volume < 16.0, "dram {}", r.dram_volume);
    }

    #[test]
    fn unlowered_defs_panic() {
        let m = model();
        let demand = RegisterDemand::Measured { pressure: 1 };
        let n = m.sim_elements(demand.registers(&m.spec));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.execute("bad", demand, n, |_| vec![Event::Def(0)])
        }));
        assert!(res.is_err());
    }

    #[test]
    fn register_demand_models() {
        let spec = GpuSpec::a100_40gb();
        // Paper calibration points.
        assert_eq!(
            RegisterDemand::ArrayStyle {
                values_per_elem: 430
            }
            .registers(&spec),
            255
        );
        let rs = RegisterDemand::ArrayStyle {
            values_per_elem: 130,
        }
        .registers(&spec);
        assert!((180..=188).contains(&rs), "RS registers {rs}");
        // Measured: 61 live f64 -> 26 + 122 = 148 (the paper's RSP).
        assert_eq!(
            RegisterDemand::Measured { pressure: 61 }.registers(&spec),
            148
        );
    }

    #[test]
    fn occupancy_improves_latency_bound_bandwidth() {
        // Same traces, different register demand: more resident warps must
        // never reduce the effective DRAM bandwidth.
        let m = model();
        let lo = RegisterDemand::Measured { pressure: 100 }; // 226 regs
        let hi = RegisterDemand::Measured { pressure: 20 }; // 66 regs
        let n = 1 << 20; // same problem size for both
        let r_lo = m.execute("lo", lo, n, stream_trace);
        let r_hi = m.execute("hi", hi, n, stream_trace);
        assert!(r_hi.occupancy > r_lo.occupancy);
        assert!(r_hi.runtime <= r_lo.runtime * 1.01);
    }

    #[test]
    fn sim_elements_scales_with_occupancy() {
        let m = model();
        let few = m.sim_elements(255);
        let many = m.sim_elements(32);
        assert!(many > few);
    }

    #[test]
    fn compute_kernel_is_fp_bound() {
        let m = model();
        let demand = RegisterDemand::Measured { pressure: 8 };
        let n = m.sim_elements(demand.registers(&m.spec));
        let r = m.execute("fp", demand, n, |e| {
            vec![
                Event::GLoad(0x5000_0000 + e as u64 * 8),
                Event::Fma(4000),
                Event::GStore(0x6000_0000 + e as u64 * 8),
            ]
        });
        assert_eq!(r.bottleneck, "fp64");
        // All-FMA kernel approaches peak.
        assert!(r.gflops > 0.9 * m.spec.peak_fp64);
    }
}
