//! Stack-reuse-distance analysis of memory traces.
//!
//! The classic Mattson stack algorithm: for every access, the *reuse
//! distance* is the number of distinct lines touched since the previous
//! access to the same line (∞ for cold accesses). A fully-associative LRU
//! cache of `C` lines misses exactly the accesses with distance ≥ `C` —
//! which makes the histogram an *analytic* miss-ratio curve for every
//! capacity at once, and an independent oracle for validating
//! [`crate::cache::CacheSim`] (the tests do exactly that cross-check).
//!
//! The models use it for diagnosis: the paper's baseline-variant story is,
//! in these terms, "privatization removes the short-distance mass and
//! specialization removes the long tail".

use std::collections::HashMap;

use crate::trace::Event;

/// Reuse-distance histogram over line-granularity accesses.
#[derive(Debug, Clone)]
pub struct ReuseHistogram {
    /// `counts[k]` = accesses with reuse distance in `[2^k-1, 2^{k+1}-1)`
    /// (power-of-two buckets; bucket 0 holds distance 0).
    pub counts: Vec<u64>,
    /// Cold (first-touch) accesses.
    pub cold: u64,
    /// Total line accesses analysed.
    pub total: u64,
    /// Exact distances (kept for precise miss-ratio queries).
    distances: Vec<u64>,
}

/// Computes the histogram for a trace's global accesses, at `line_bytes`
/// granularity. Loads and stores both count (write-allocate world).
pub fn analyze(events: &[Event], line_bytes: u64) -> ReuseHistogram {
    // Mattson via "time of last access" + counting distinct lines since:
    // an O(N log N)-ish approach with a BIT over access times.
    let mut accesses: Vec<u64> = Vec::new();
    for e in events {
        if let Event::GLoad(a) | Event::GStore(a) = *e {
            accesses.push(a / line_bytes);
        }
    }
    let n = accesses.len();
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    // BIT (Fenwick) marking the positions of the most-recent access of
    // each line; prefix sums count distinct lines in a window.
    let mut bit = vec![0i64; n + 1];
    let add = |bit: &mut Vec<i64>, mut i: usize, v: i64| {
        i += 1;
        while i <= n {
            bit[i] += v;
            i += i & i.wrapping_neg();
        }
    };
    let sum = |bit: &Vec<i64>, mut i: usize| -> i64 {
        let mut s = 0;
        i += 1;
        let mut j = i;
        while j > 0 {
            s += bit[j];
            j -= j & j.wrapping_neg();
        }
        s
    };

    let mut distances = Vec::with_capacity(n);
    let mut cold = 0u64;
    for (t, &line) in accesses.iter().enumerate() {
        match last_seen.get(&line) {
            Some(&prev) => {
                // Distinct lines touched strictly between prev and t:
                let between = sum(&bit, t - 1) - sum(&bit, prev);
                distances.push(between as u64);
                add(&mut bit, prev, -1);
            }
            None => {
                cold += 1;
                distances.push(u64::MAX);
            }
        }
        add(&mut bit, t, 1);
        last_seen.insert(line, t);
    }

    let mut counts = vec![0u64; 33];
    for &d in &distances {
        if d == u64::MAX {
            continue;
        }
        let bucket = (64 - (d + 1).leading_zeros()).saturating_sub(1) as usize;
        counts[bucket.min(32)] += 1;
    }
    ReuseHistogram {
        counts,
        cold,
        total: n as u64,
        distances,
    }
}

impl ReuseHistogram {
    /// Analytic miss count of a fully-associative LRU cache with
    /// `capacity_lines` lines: cold accesses plus every reuse with
    /// distance ≥ capacity.
    pub fn lru_misses(&self, capacity_lines: u64) -> u64 {
        self.cold
            + self
                .distances
                .iter()
                .filter(|&&d| d != u64::MAX && d >= capacity_lines)
                .count() as u64
    }

    /// Analytic miss *ratio* for a capacity.
    pub fn lru_miss_ratio(&self, capacity_lines: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.lru_misses(capacity_lines) as f64 / self.total as f64
    }

    /// The capacity (in lines) needed to reach a target miss ratio —
    /// the working-set question ("how much cache would fix this kernel?").
    pub fn capacity_for_miss_ratio(&self, target: f64) -> u64 {
        let mut sorted: Vec<u64> = self
            .distances
            .iter()
            .copied()
            .filter(|&d| d != u64::MAX)
            .collect();
        sorted.sort_unstable();
        // Find the smallest capacity C with miss ratio <= target.
        let mut lo = 1u64;
        let mut hi = sorted.last().map(|&d| d + 2).unwrap_or(1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.lru_miss_ratio(mid) <= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Mean finite reuse distance (∞ excluded).
    pub fn mean_distance(&self) -> f64 {
        let finite: Vec<u64> = self
            .distances
            .iter()
            .copied()
            .filter(|&d| d != u64::MAX)
            .collect();
        if finite.is_empty() {
            return 0.0;
        }
        finite.iter().sum::<u64>() as f64 / finite.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessKind, CacheSim};

    fn loads(addrs: &[u64]) -> Vec<Event> {
        addrs.iter().map(|&a| Event::GLoad(a * 64)).collect()
    }

    #[test]
    fn simple_distances() {
        // a b a: reuse of `a` at distance 1 (only b in between).
        let h = analyze(&loads(&[1, 2, 1]), 64);
        assert_eq!(h.cold, 2);
        assert_eq!(h.total, 3);
        assert_eq!(h.lru_misses(2), 2); // distance 1 < 2: hit
        assert_eq!(h.lru_misses(1), 3); // distance 1 >= 1: miss
    }

    #[test]
    fn repeated_access_has_distance_zero() {
        let h = analyze(&loads(&[5, 5, 5, 5]), 64);
        assert_eq!(h.cold, 1);
        assert_eq!(h.lru_misses(1), 1);
        assert_eq!(h.mean_distance(), 0.0);
    }

    #[test]
    fn matches_cache_sim_on_random_streams() {
        // The analytic LRU oracle and the simulator must agree exactly for
        // fully-associative LRU caches.
        let mut s = 0xC0FFEEu64;
        let addrs: Vec<u64> = (0..3000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 24) % 700
            })
            .collect();
        let h = analyze(&loads(&addrs), 64);
        for ways in [16usize, 64, 256] {
            let mut sim = CacheSim::new(64 * ways, 64, ways); // fully assoc
            for &a in &addrs {
                sim.access(a * 64, AccessKind::Load, None);
            }
            assert_eq!(
                sim.stats().misses(),
                h.lru_misses(ways as u64),
                "capacity {ways} lines"
            );
        }
    }

    #[test]
    fn miss_ratio_is_monotone_in_capacity() {
        let addrs: Vec<u64> = (0..2000u64).map(|i| (i * 37) % 300).collect();
        let h = analyze(&loads(&addrs), 64);
        let mut prev = f64::INFINITY;
        for cap in [1u64, 4, 16, 64, 256, 1024] {
            let r = h.lru_miss_ratio(cap);
            assert!(r <= prev + 1e-12);
            prev = r;
        }
    }

    #[test]
    fn capacity_query_inverts_miss_ratio() {
        let addrs: Vec<u64> = (0..1000u64).map(|i| i % 100).collect();
        let h = analyze(&loads(&addrs), 64);
        // Working set of 100 lines: capacity 100 makes everything but cold
        // misses hit.
        let cap = h.capacity_for_miss_ratio(0.11);
        assert!(cap <= 100, "cap {cap}");
        assert!(h.lru_miss_ratio(cap) <= 0.11);
        if cap > 1 {
            assert!(h.lru_miss_ratio(cap - 1) > 0.11);
        }
    }

    #[test]
    fn stores_count_like_loads() {
        let ev = vec![Event::GStore(0), Event::GLoad(0)];
        let h = analyze(&ev, 64);
        assert_eq!(h.total, 2);
        assert_eq!(h.cold, 1);
        assert_eq!(h.lru_misses(4), 1);
    }

    #[test]
    fn histogram_buckets_cover_all_reuses() {
        let addrs: Vec<u64> = (0..500u64).map(|i| (i * 13) % 97).collect();
        let h = analyze(&loads(&addrs), 64);
        let bucketed: u64 = h.counts.iter().sum();
        assert_eq!(bucketed + h.cold, h.total);
    }
}
