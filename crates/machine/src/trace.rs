//! Instruction/memory event traces — the software performance counters.
//!
//! The assembly kernels in `alya-core` are generic over a [`Recorder`].
//! With [`NoRecord`] every hook is a no-op that monomorphizes away, so the
//! numeric path used by the solver and the wall-clock benchmarks pays
//! nothing. With [`TraceRecorder`] the exact same kernel code emits one
//! [`Event`] per modelled machine operation, which the GPU/CPU models then
//! replay. Counters and physics can therefore never drift apart: they come
//! from the same monomorphized source.
//!
//! Addressing conventions (all values are `f64`, 8 bytes):
//!
//! * **global** events carry byte addresses; `alya-core` assigns each global
//!   array a disjoint region (array id in the high bits);
//! * **local** events carry per-thread *slots*; the GPU model interleaves
//!   slots across the threads of a block exactly like CUDA local memory,
//!   the CPU model maps them to a per-core stack frame;
//! * **def/use** events name SSA-like private scalar values; the register
//!   allocator decides which become registers and which spill (appearing as
//!   extra local traffic).

/// Memory space of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device/global memory (nodal arrays, interleaved intermediates).
    Global,
    /// Thread-private local memory (privatized arrays, register spills).
    Local,
}

/// One modelled machine operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// 8-byte load from a global byte address.
    GLoad(u64),
    /// 8-byte store to a global byte address.
    GStore(u64),
    /// 8-byte load from a per-thread local slot.
    LLoad(u32),
    /// 8-byte store to a per-thread local slot.
    LStore(u32),
    /// Definition of a private scalar value.
    Def(u32),
    /// Use of a private scalar value.
    Use(u32),
    /// `n` plain floating-point operations (adds/muls counted singly).
    Flop(u32),
    /// `n` fused multiply-adds (each counts as 2 Flop in the tables).
    Fma(u32),
}

/// Instrumentation hooks threaded through the assembly kernels.
///
/// All methods have empty defaults so [`NoRecord`] is a zero-cost plug.
/// `ENABLED` lets kernels skip address computation for the recorder when
/// tracing is off (`if R::ENABLED { ... }` folds to nothing).
pub trait Recorder {
    /// Whether this recorder observes anything.
    const ENABLED: bool;

    /// 8-byte global load.
    #[inline]
    fn gload(&mut self, addr: u64) {
        let _ = addr;
    }
    /// 8-byte global store.
    #[inline]
    fn gstore(&mut self, addr: u64) {
        let _ = addr;
    }
    /// 8-byte local (thread-private) load of `slot`.
    #[inline]
    fn lload(&mut self, slot: u32) {
        let _ = slot;
    }
    /// 8-byte local store of `slot`.
    #[inline]
    fn lstore(&mut self, slot: u32) {
        let _ = slot;
    }
    /// Definition of private scalar `v`.
    #[inline]
    fn def(&mut self, v: u32) {
        let _ = v;
    }
    /// Use of private scalar `v`.
    #[inline]
    fn use_(&mut self, v: u32) {
        let _ = v;
    }
    /// `n` plain floating-point operations.
    #[inline]
    fn flop(&mut self, n: u32) {
        let _ = n;
    }
    /// `n` fused multiply-adds.
    #[inline]
    fn fma(&mut self, n: u32) {
        let _ = n;
    }
}

/// The zero-cost recorder used by the production numeric path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRecord;

impl Recorder for NoRecord {
    const ENABLED: bool = false;
}

/// Records every event into a vector for replay by the machine models.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    /// The recorded event stream, in program order.
    pub events: Vec<Event>,
}

impl TraceRecorder {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the trace, keeping the allocation.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Summary counts of the recorded stream.
    pub fn counts(&self) -> TraceCounts {
        TraceCounts::from_events(&self.events)
    }
}

// alya:cold: trace capture is instrumentation-only — production assembly
// monomorphizes kernels with `NoRecord` (`R::ENABLED = false` folds every
// recorder call to nothing), so these bodies never run on the hot path.
impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    fn gload(&mut self, addr: u64) {
        self.events.push(Event::GLoad(addr));
    }
    fn gstore(&mut self, addr: u64) {
        self.events.push(Event::GStore(addr));
    }
    fn lload(&mut self, slot: u32) {
        self.events.push(Event::LLoad(slot));
    }
    fn lstore(&mut self, slot: u32) {
        self.events.push(Event::LStore(slot));
    }
    fn def(&mut self, v: u32) {
        self.events.push(Event::Def(v));
    }
    fn use_(&mut self, v: u32) {
        self.events.push(Event::Use(v));
    }
    fn flop(&mut self, n: u32) {
        if n > 0 {
            self.events.push(Event::Flop(n));
        }
    }
    fn fma(&mut self, n: u32) {
        if n > 0 {
            self.events.push(Event::Fma(n));
        }
    }
}

/// Aggregate operation counts of a trace (before register allocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Global 8-byte loads.
    pub global_loads: u64,
    /// Global 8-byte stores.
    pub global_stores: u64,
    /// Local 8-byte loads (explicit, pre-spill).
    pub local_loads: u64,
    /// Local 8-byte stores (explicit, pre-spill).
    pub local_stores: u64,
    /// Private value definitions.
    pub defs: u64,
    /// Private value uses.
    pub uses: u64,
    /// Plain floating-point operations.
    pub plain_flops: u64,
    /// Fused multiply-add operations.
    pub fmas: u64,
}

impl TraceCounts {
    /// Scans an event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut c = Self::default();
        for e in events {
            match *e {
                Event::GLoad(_) => c.global_loads += 1,
                Event::GStore(_) => c.global_stores += 1,
                Event::LLoad(_) => c.local_loads += 1,
                Event::LStore(_) => c.local_stores += 1,
                Event::Def(_) => c.defs += 1,
                Event::Use(_) => c.uses += 1,
                Event::Flop(n) => c.plain_flops += n as u64,
                Event::Fma(n) => c.fmas += n as u64,
            }
        }
        c
    }

    /// Total floating-point operations with the paper's convention
    /// (1 FMA = 2 Flop).
    pub fn flops(&self) -> u64 {
        self.plain_flops + 2 * self.fmas
    }

    /// Total floating-point *instructions* (an FMA is one instruction).
    pub fn fp_instructions(&self) -> u64 {
        self.plain_flops + self.fmas
    }

    /// Global load/store operations.
    pub fn global_ldst(&self) -> u64 {
        self.global_loads + self.global_stores
    }

    /// Local load/store operations (pre-spill).
    pub fn local_ldst(&self) -> u64 {
        self.local_loads + self.local_stores
    }
}

/// Estimated memory-level parallelism of a thread's event stream.
///
/// Loads issued back-to-back (without an intervening floating-point
/// operation that would consume them) can have their latencies overlapped;
/// a load directly followed by arithmetic exposes its full latency. The
/// estimate is the average length of maximal load runs, weighted by run
/// length — the quantity that feeds the Little's-law bandwidth model.
///
/// Two dependence rules:
/// * stores are fire-and-forget and neither extend nor break a run, **but**
/// * a load that re-reads an address this thread previously *stored*
///   (the baseline's store-intermediate-then-reload pattern) is a
///   store-to-load dependence that must round-trip the cache hierarchy —
///   it terminates the running burst and counts as a burst of one. This is
///   what collapses the baseline's memory parallelism in the paper
///   ("the short load/compute/store cycles offer little memory ILP").
pub fn estimate_mlp(events: &[Event]) -> f64 {
    use std::collections::HashSet;
    let mut weighted = 0u64;
    let mut total = 0u64;
    let mut run = 0u64;
    let mut stored: HashSet<u64> = HashSet::new();
    // Local slots share the key space via a high tag bit.
    const LOCAL_TAG: u64 = 1 << 63;
    let flush = |run: &mut u64, weighted: &mut u64, total: &mut u64| {
        if *run > 0 {
            *weighted += *run * *run;
            *total += *run;
            *run = 0;
        }
    };
    for e in events {
        match *e {
            Event::GLoad(a) => {
                if stored.contains(&a) {
                    // Dependent reload: exposed latency, burst of one.
                    flush(&mut run, &mut weighted, &mut total);
                    weighted += 1;
                    total += 1;
                } else {
                    run += 1;
                }
            }
            Event::LLoad(s) => {
                if stored.contains(&(LOCAL_TAG | s as u64)) {
                    flush(&mut run, &mut weighted, &mut total);
                    weighted += 1;
                    total += 1;
                } else {
                    run += 1;
                }
            }
            Event::GStore(a) => {
                stored.insert(a);
            }
            Event::LStore(s) => {
                stored.insert(LOCAL_TAG | s as u64);
            }
            Event::Flop(_) | Event::Fma(_) | Event::Use(_) => {
                flush(&mut run, &mut weighted, &mut total);
            }
            _ => {}
        }
    }
    flush(&mut run, &mut weighted, &mut total);
    if total == 0 {
        1.0
    } else {
        weighted as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel<R: Recorder>(rec: &mut R) {
        // A miniature kernel exercising every hook.
        rec.gload(0x100);
        rec.gload(0x108);
        rec.fma(3);
        rec.def(0);
        rec.use_(0);
        rec.lstore(2);
        rec.lload(2);
        rec.flop(5);
        rec.gstore(0x200);
    }

    #[test]
    fn no_record_is_inert() {
        let mut rec = NoRecord;
        kernel(&mut rec); // must compile and do nothing
        assert!(!NoRecord::ENABLED);
    }

    #[test]
    fn trace_recorder_captures_program_order() {
        let mut rec = TraceRecorder::new();
        kernel(&mut rec);
        assert_eq!(rec.events.len(), 9);
        assert_eq!(rec.events[0], Event::GLoad(0x100));
        assert_eq!(rec.events[8], Event::GStore(0x200));
    }

    #[test]
    fn counts_aggregate_correctly() {
        let mut rec = TraceRecorder::new();
        kernel(&mut rec);
        let c = rec.counts();
        assert_eq!(c.global_loads, 2);
        assert_eq!(c.global_stores, 1);
        assert_eq!(c.local_loads, 1);
        assert_eq!(c.local_stores, 1);
        assert_eq!(c.defs, 1);
        assert_eq!(c.uses, 1);
        assert_eq!(c.plain_flops, 5);
        assert_eq!(c.fmas, 3);
        assert_eq!(c.flops(), 11);
        assert_eq!(c.fp_instructions(), 8);
        assert_eq!(c.global_ldst(), 3);
        assert_eq!(c.local_ldst(), 2);
    }

    #[test]
    fn zero_flop_events_are_dropped() {
        let mut rec = TraceRecorder::new();
        rec.flop(0);
        rec.fma(0);
        assert!(rec.events.is_empty());
    }

    #[test]
    fn clear_keeps_reusing() {
        let mut rec = TraceRecorder::new();
        rec.gload(1);
        rec.clear();
        assert!(rec.events.is_empty());
        rec.gload(2);
        assert_eq!(rec.events, vec![Event::GLoad(2)]);
    }

    #[test]
    fn mlp_of_dependent_chain_is_one() {
        // load, fp, load, fp, ... — classic baseline pattern.
        let mut ev = Vec::new();
        for i in 0..10 {
            ev.push(Event::GLoad(i * 8));
            ev.push(Event::Fma(1));
        }
        assert!((estimate_mlp(&ev) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_of_gather_burst_is_high() {
        // 12 loads then compute — the RSP gather pattern.
        let mut ev = Vec::new();
        for i in 0..12 {
            ev.push(Event::GLoad(i * 8));
        }
        ev.push(Event::Fma(30));
        assert!((estimate_mlp(&ev) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_weights_by_run_length() {
        // One run of 9 and one run of 1: (81 + 1) / 10 = 8.2 — dominated by
        // where the bytes move, not by the run count.
        let mut ev = Vec::new();
        for i in 0..9 {
            ev.push(Event::GLoad(i));
        }
        ev.push(Event::Flop(1));
        ev.push(Event::GLoad(99));
        ev.push(Event::Flop(1));
        assert!((estimate_mlp(&ev) - 8.2).abs() < 1e-12);
    }

    #[test]
    fn stores_do_not_break_load_runs() {
        let ev = vec![
            Event::GLoad(0),
            Event::GStore(64),
            Event::GLoad(8),
            Event::Fma(1),
        ];
        assert!((estimate_mlp(&ev) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_unit_mlp() {
        assert_eq!(estimate_mlp(&[]), 1.0);
    }
}
