//! The lint rules applied to the hot-reachable set, plus the workspace-wide
//! unsafe-linkage audit.

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnId};
use crate::items::FileModel;
use crate::lexer::{Token, TokenKind};
use crate::UnsafeSanction;

/// The lint families pass 7 enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintKind {
    /// Allocation in a hot function (`push`/`collect`/`to_vec`/`Box::new`/
    /// `format!`/`vec!`/`String` construction).
    HotAlloc,
    /// Panic path in a hot function (`unwrap`/`expect`/`panic!`/`assert!`;
    /// `debug_assert!` is allowed).
    HotPanic,
    /// `HashMap`/`HashSet` in a hot function — iteration order would feed
    /// nondeterminism into numeric accumulation.
    HashIter,
    /// Per-element telemetry in a hot function (`tally_*` or span creation;
    /// the batch-rate policy keeps those at driver granularity).
    HotTelemetry,
    /// `unsafe` without a `SAFETY:` comment linking it to the analyzer pass
    /// that proves its invariant, or outside the sanctioned allowlist.
    MissingSafety,
    /// Malformed `alya:` marker comment.
    BadMarker,
}

impl LintKind {
    /// The name used in reports and in `alya:allow(<name>)`.
    pub fn name(self) -> &'static str {
        match self {
            Self::HotAlloc => "hot-alloc",
            Self::HotPanic => "hot-panic",
            Self::HashIter => "hash-iter",
            Self::HotTelemetry => "hot-telemetry",
            Self::MissingSafety => "missing-safety",
            Self::BadMarker => "bad-marker",
        }
    }
}

/// One finding, carrying file:line and the lint name.
#[derive(Debug)]
pub struct Violation {
    pub lint: LintKind,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.name(),
            self.message
        )
    }
}

/// Panicking macros banned on hot paths (`debug_assert*` stays legal: it
/// compiles out of release builds, which is the configuration the paper's
/// numbers are about).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Allocating macros banned on hot paths.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Allocating (or reallocating) methods banned on hot paths. Note
/// `extend_from_slice` into a pre-sized scratch buffer is the sanctioned
/// reuse pattern and is deliberately absent.
const ALLOC_METHODS: &[&str] = &["push", "collect", "to_vec", "to_string", "to_owned"];

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "VecDeque", "BTreeMap", "HashMap"];
const ALLOC_CTORS: &[&str] = &["new", "from", "with_capacity"];

/// Hash-keyed collections whose iteration order is arbitrary.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Span-creating telemetry calls (per-element spans would swamp both the
/// run and the trace; the batch-rate policy keeps them at driver scope).
const SPAN_FNS: &[&str] = &["span", "record_span_raw"];

/// Scans one hot-reachable function body for hot-path violations.
pub fn scan_hot_fn(file: &FileModel, fn_idx: usize, out: &mut Vec<Violation>) {
    let f = &file.fns[fn_idx];
    let toks = &file.tokens;
    let rng = f.body.clone();
    let mut push = |lint: LintKind, tok: &Token, what: String| {
        out.push(Violation {
            lint,
            file: file.path.clone(),
            line: tok.line,
            message: format!("{what} in hot-reachable fn `{}`", f.name),
        });
    };
    let mut i = rng.start;
    while i < rng.end {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let next = next_non_comment(toks, rng.end, i);
        let nt = next.map(|j| &toks[j]);
        // Macros.
        if nt.is_some_and(|n| n.is_punct('!')) {
            let delim = next
                .and_then(|j| next_non_comment(toks, rng.end, j))
                .map(|j| &toks[j]);
            if delim.is_some_and(|d| d.is_punct('(') || d.is_punct('[') || d.is_punct('{')) {
                if PANIC_MACROS.contains(&t.text.as_str()) {
                    push(LintKind::HotPanic, t, format!("`{}!` may panic", t.text));
                } else if ALLOC_MACROS.contains(&t.text.as_str()) {
                    push(LintKind::HotAlloc, t, format!("`{}!` allocates", t.text));
                }
            }
            i = next.unwrap_or(i + 1);
            continue;
        }
        // Hash-keyed collections anywhere in the body.
        if HASH_TYPES.contains(&t.text.as_str()) {
            push(
                LintKind::HashIter,
                t,
                format!("`{}` has arbitrary iteration order", t.text),
            );
            i += 1;
            continue;
        }
        let prev = prev_non_comment(toks, rng.start, i);
        let after_dot = prev.is_some_and(|p| toks[p].is_punct('.'));
        let callish = nt.is_some_and(|n| n.is_punct('(') || n.is_punct(':') || n.is_punct('<'));
        // Methods.
        if after_dot && callish {
            if t.text == "unwrap" || t.text == "expect" {
                push(LintKind::HotPanic, t, format!("`.{}()` may panic", t.text));
            } else if ALLOC_METHODS.contains(&t.text.as_str()) {
                push(LintKind::HotAlloc, t, format!("`.{}()` allocates", t.text));
            } else if SPAN_FNS.contains(&t.text.as_str()) {
                push(
                    LintKind::HotTelemetry,
                    t,
                    format!("`.{}()` creates a telemetry span", t.text),
                );
            }
        }
        // Associated constructors: `Vec::new(...)` etc.
        if ALLOC_TYPES.contains(&t.text.as_str()) {
            if let Some((ctor, ctor_tok)) = path_segment_after(toks, rng.end, i) {
                if ALLOC_CTORS.contains(&ctor.as_str()) {
                    push(
                        LintKind::HotAlloc,
                        ctor_tok,
                        format!("`{}::{ctor}` allocates", t.text),
                    );
                }
            }
        }
        // Telemetry calls: bare or path `span(` / `record_span_raw(` /
        // `tally_*(`.
        if !after_dot && nt.is_some_and(|n| n.is_punct('(')) {
            if SPAN_FNS.contains(&t.text.as_str()) {
                push(
                    LintKind::HotTelemetry,
                    t,
                    format!("`{}()` creates a telemetry span", t.text),
                );
            } else if t.text.starts_with("tally_") {
                push(
                    LintKind::HotTelemetry,
                    t,
                    format!("`{}()` tallies per call", t.text),
                );
            }
        }
        i += 1;
    }
}

/// If token `i` is followed by `::ident`, returns that segment.
fn path_segment_after(toks: &[Token], end: usize, i: usize) -> Option<(String, &Token)> {
    let c1 = next_non_comment(toks, end, i)?;
    let c2 = next_non_comment(toks, end, c1)?;
    let seg = next_non_comment(toks, end, c2)?;
    (toks[c1].is_punct(':') && toks[c2].is_punct(':') && toks[seg].kind == TokenKind::Ident)
        .then(|| (toks[seg].text.clone(), &toks[seg]))
}

fn next_non_comment(toks: &[Token], end: usize, i: usize) -> Option<usize> {
    let mut j = i + 1;
    while j < end {
        if !toks[j].is_comment() {
            return Some(j);
        }
        j += 1;
    }
    None
}

fn prev_non_comment(toks: &[Token], start: usize, i: usize) -> Option<usize> {
    let mut j = i;
    while j > start {
        j -= 1;
        if !toks[j].is_comment() {
            return Some(j);
        }
    }
    None
}

/// Audits every `unsafe` keyword in the workspace against the sanctioned
/// allowlist: each site must sit in an allowlisted file, carry a `SAFETY:`
/// comment naming the analyzer pass that proves its invariant, and match
/// exactly one allowlist marker. Stale allowlist entries are violations too
/// (removing an unsafe site must also be a reviewed allowlist edit).
pub fn check_unsafe_linkage(files: &[FileModel], sanctioned: &[UnsafeSanction]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut used = vec![false; sanctioned.len()];
    for file in files {
        let entries: Vec<usize> = sanctioned
            .iter()
            .enumerate()
            .filter(|(_, s)| s.file == file.path)
            .map(|(k, _)| k)
            .collect();
        for site in &file.unsafe_sites {
            let mut fail = |message: String| {
                out.push(Violation {
                    lint: LintKind::MissingSafety,
                    file: file.path.clone(),
                    line: site.line,
                    message,
                });
            };
            if entries.is_empty() {
                fail(
                    "`unsafe` in a file with no sanctioned sites (allowlist: \
                     SANCTIONED_UNSAFE in alya-lint)"
                        .to_string(),
                );
                continue;
            }
            if !site.comment_above.contains("SAFETY:") {
                fail("`unsafe` site has no `// SAFETY:` comment directly above it".to_string());
                continue;
            }
            if !site.comment_above.contains("pass") {
                fail(
                    "SAFETY comment does not name the analyzer pass that proves the invariant"
                        .to_string(),
                );
                continue;
            }
            let hit = entries
                .iter()
                .find(|&&k| !used[k] && site.comment_above.contains(sanctioned[k].marker));
            match hit {
                Some(&k) => used[k] = true,
                None => fail(format!(
                    "SAFETY comment matches no unused sanctioned marker for this file \
                     (expected one of: {})",
                    entries
                        .iter()
                        .map(|&k| format!("`{}`", sanctioned[k].marker))
                        .collect::<Vec<_>>()
                        .join(", ")
                )),
            }
        }
    }
    for (k, s) in sanctioned.iter().enumerate() {
        if !used[k] && files.iter().any(|f| f.path == s.file) {
            out.push(Violation {
                lint: LintKind::MissingSafety,
                file: s.file.to_string(),
                line: 0,
                message: format!(
                    "stale allowlist entry: no unsafe site matched marker `{}`",
                    s.marker
                ),
            });
        }
    }
    out
}

/// Drops violations covered by an `alya:allow` on the same or previous
/// line, returning the survivors and the number of allows honored.
pub fn apply_allows(files: &[FileModel], violations: Vec<Violation>) -> (Vec<Violation>, usize) {
    let mut honored = 0usize;
    let kept = violations
        .into_iter()
        .filter(|v| {
            let covered = files.iter().any(|f| {
                f.path == v.file
                    && f.allows.iter().any(|a| {
                        a.lint == v.lint.name() && (a.line == v.line || a.covers == v.line)
                    })
            });
            if covered {
                honored += 1;
            }
            !covered
        })
        .collect();
    (kept, honored)
}

/// Runs the hot-path lints over the reachable set.
pub fn scan_reachable(files: &[FileModel], reach: &BTreeSet<FnId>) -> Vec<Violation> {
    let mut out = Vec::new();
    for &(fi, ki) in reach {
        scan_hot_fn(&files[fi], ki, &mut out);
    }
    out
}

/// Builds the graph, runs reachability, and returns (reach, graph is kept
/// internal). Convenience wrapper used by `analyze`.
pub fn hot_reachable(files: &[FileModel]) -> BTreeSet<FnId> {
    CallGraph::build(files).reach(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(src: &str) -> Vec<Violation> {
        let files = vec![FileModel::build("crates/x/src/a.rs", src)];
        let reach = hot_reachable(&files);
        let raw = scan_reachable(&files, &reach);
        apply_allows(&files, raw).0
    }

    #[test]
    fn alloc_panic_hash_and_telemetry_fire() {
        let v = hot("// alya:hot\nfn k(out: &mut Vec<f64>) {\n\
             out.push(1.0);\n\
             let x: Option<u32> = None; x.unwrap();\n\
             let m: HashMap<u32, f64> = HashMap::new();\n\
             tally_elements(\"rsp\", 1);\n\
             }\n");
        let names: Vec<&str> = v.iter().map(|x| x.lint.name()).collect();
        assert!(names.contains(&"hot-alloc"));
        assert!(names.contains(&"hot-panic"));
        assert!(names.contains(&"hash-iter"));
        assert!(names.contains(&"hot-telemetry"));
    }

    #[test]
    fn debug_assert_and_extend_from_slice_are_legal() {
        let v = hot("// alya:hot\nfn k(s: &mut Vec<f64>, xs: &[f64]) {\n\
             debug_assert!(xs.len() > 0);\ns.clear();\ns.extend_from_slice(xs);\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn violations_only_fire_on_reachable_fns() {
        let v = hot("fn cold_helper(v: &mut Vec<u32>) { v.push(1); v2.unwrap(); }\n");
        assert!(v.is_empty());
    }

    #[test]
    fn allow_comment_suppresses_exactly_its_lint() {
        let v = hot("// alya:hot\nfn k(s: &mut Vec<f64>) {\n\
             // alya:allow(hot-alloc): bounded stash append, drained each batch\n\
             s.push(1.0);\n\
             s.to_vec();\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].lint, LintKind::HotAlloc);
        assert!(v[0].message.contains("to_vec"));
    }

    #[test]
    fn unsafe_linkage_wants_safety_marker_and_pass() {
        let sanction = [UnsafeSanction {
            file: "crates/x/src/a.rs",
            marker: "disjoint rows (pass 2, races::check_coloring)",
        }];
        let good = FileModel::build(
            "crates/x/src/a.rs",
            "// SAFETY: disjoint rows (pass 2, races::check_coloring).\n\
             unsafe impl Send for X {}\n",
        );
        assert!(check_unsafe_linkage(&[good], &sanction).is_empty());

        let missing = FileModel::build("crates/x/src/a.rs", "unsafe impl Send for X {}\n");
        let v = check_unsafe_linkage(&[missing], &sanction);
        assert_eq!(v.len(), 2); // no SAFETY comment + stale allowlist entry
        assert!(v.iter().all(|x| x.lint == LintKind::MissingSafety));

        let wrong_file = FileModel::build(
            "crates/x/src/b.rs",
            "// SAFETY: disjoint rows (pass 2, races::check_coloring).\n\
             unsafe impl Send for X {}\n",
        );
        let v = check_unsafe_linkage(&[wrong_file], &sanction);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no sanctioned sites"));
    }

    #[test]
    fn duplicate_sites_cannot_share_one_marker() {
        let sanction = [UnsafeSanction {
            file: "crates/x/src/a.rs",
            marker: "pass 2 proves it",
        }];
        let m = FileModel::build(
            "crates/x/src/a.rs",
            "// SAFETY: pass 2 proves it.\nunsafe impl Send for X {}\n\
             // SAFETY: pass 2 proves it.\nunsafe impl Sync for X {}\n",
        );
        let v = check_unsafe_linkage(&[m], &sanction);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no unused sanctioned marker"));
    }
}
