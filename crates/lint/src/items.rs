//! Item extraction: functions, their impl/trait containers, hot/cold
//! markers, allow comments, and unsafe sites.
//!
//! This is a structural scan over the token stream, not a parse: it tracks
//! brace depth, `impl`/`trait` headers, and `fn` signatures, and attributes
//! every token between a function's braces to that function (closures and
//! nested items included — deliberately conservative for reachability).
//!
//! Marker grammar (line comments, attached to the item whose signature
//! starts on the next non-comment, non-attribute line):
//!
//! * `// alya:hot` — the function (or every method of the `impl`) is a hot
//!   root for the reachability fixpoint.
//! * `// alya:cold: <reason>` — the function (or `impl`) is pruned from the
//!   hot-reachable set even if called from hot code; for instrumentation
//!   paths that monomorphization removes from production builds.
//! * `// alya:allow(<lint>): <reason>` — suppresses `<lint>` on this line
//!   and the next; the audited escape hatch.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::lexer::{lex, Token, TokenKind};

/// One extracted function (free fn, method, or trait default method).
#[derive(Debug)]
pub struct FnItem {
    /// Bare name (`element`, `add`, ...).
    pub name: String,
    /// Enclosing `impl`/`trait` type name, `None` for free functions.
    pub container: Option<String>,
    /// 1-based line of the `fn` token.
    pub sig_line: u32,
    /// Token-index range of the body (between the braces), empty for
    /// bodyless trait declarations.
    pub body: Range<usize>,
    /// Marked (directly or via its impl) as a hot root.
    pub hot: bool,
    /// Marked (directly or via its impl) as cold — pruned from reachability.
    pub cold: bool,
}

/// A parsed `// alya:allow(<lint>): <reason>` site.
#[derive(Debug)]
pub struct AllowSite {
    pub lint: String,
    pub reason: String,
    pub line: u32,
    /// Line of the first code token after the comment run — what the allow
    /// suppresses (multi-line allow comments cover their next code line).
    pub covers: u32,
}

/// One `unsafe` keyword occurrence (impl or block) with the comment text
/// immediately above it.
#[derive(Debug)]
pub struct UnsafeSite {
    pub line: u32,
    /// Concatenated `//` comment lines directly above the site (empty when
    /// there are none).
    pub comment_above: String,
}

/// A malformed marker comment (bad `alya:allow` grammar etc.).
#[derive(Debug)]
pub struct MarkerError {
    pub line: u32,
    pub message: String,
}

/// Everything the analyzer needs about one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub tokens: Vec<Token>,
    pub fns: Vec<FnItem>,
    pub allows: Vec<AllowSite>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub marker_errors: Vec<MarkerError>,
}

impl FileModel {
    /// Lexes and extracts `src` (a full `.rs` file) under the given
    /// workspace-relative `path`.
    pub fn build(path: &str, src: &str) -> Self {
        let tokens = lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let (hot_lines, cold_lines, allows, marker_errors) = scan_markers(&tokens);
        let fns = extract_fns(&tokens, &lines, &hot_lines, &cold_lines);
        let unsafe_sites = scan_unsafe(&tokens, &lines);
        Self {
            path: path.to_string(),
            tokens,
            fns,
            allows,
            unsafe_sites,
            marker_errors,
        }
    }
}

/// Collects marker lines and allow sites from the comment tokens.
#[allow(clippy::type_complexity)]
fn scan_markers(
    tokens: &[Token],
) -> (
    BTreeSet<u32>,
    BTreeSet<u32>,
    Vec<AllowSite>,
    Vec<MarkerError>,
) {
    let mut hot = BTreeSet::new();
    let mut cold = BTreeSet::new();
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for (ti, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(marker) = body.strip_prefix("alya:") else {
            continue;
        };
        if marker == "hot" || marker.starts_with("hot:") || marker.starts_with("hot ") {
            hot.insert(t.line);
        } else if marker == "cold" || marker.starts_with("cold:") || marker.starts_with("cold ") {
            cold.insert(t.line);
        } else if let Some(rest) = marker.strip_prefix("allow(") {
            let covers = tokens[ti + 1..]
                .iter()
                .find(|n| !n.is_comment())
                .map_or(t.line, |n| n.line);
            match parse_allow(rest) {
                Ok((lint, reason)) => allows.push(AllowSite {
                    lint,
                    reason,
                    line: t.line,
                    covers,
                }),
                Err(message) => errors.push(MarkerError {
                    line: t.line,
                    message,
                }),
            }
        } else {
            errors.push(MarkerError {
                line: t.line,
                message: format!("unknown alya marker `alya:{marker}`"),
            });
        }
    }
    (hot, cold, allows, errors)
}

/// Parses the tail of `alya:allow(<lint>): <reason>` (everything after the
/// opening paren).
fn parse_allow(rest: &str) -> Result<(String, String), String> {
    let Some(close) = rest.find(')') else {
        return Err("alya:allow is missing its closing paren".to_string());
    };
    let lint = rest[..close].trim();
    if lint.is_empty() {
        return Err("alya:allow names no lint".to_string());
    }
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("alya:allow is missing `: <reason>`".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("alya:allow has an empty reason".to_string());
    }
    Ok((lint.to_string(), reason.to_string()))
}

/// True when any marker line sits in the comment/attribute prologue
/// directly above `sig_line`.
fn marked(lines: &[&str], markers: &BTreeSet<u32>, sig_line: u32) -> bool {
    let mut l = sig_line;
    while l > 1 {
        l -= 1;
        let text = lines.get(l as usize - 1).map_or("", |s| s.trim());
        let prologue = text.starts_with("//") || text.starts_with("#[") || text.starts_with("#!");
        if !prologue {
            return false;
        }
        if markers.contains(&l) {
            return true;
        }
    }
    false
}

/// Extracts fn items, resolving container names and hot/cold markers.
fn extract_fns(
    tokens: &[Token],
    lines: &[&str],
    hot_lines: &BTreeSet<u32>,
    cold_lines: &BTreeSet<u32>,
) -> Vec<FnItem> {
    let mut fns = Vec::new();
    // (close-at-depth, container, container_hot, container_cold)
    let mut containers: Vec<(usize, String, bool, bool)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            containers.retain(|c| c.0 <= depth);
            i += 1;
            continue;
        }
        if t.is_ident("mod") && cfg_test_before(tokens, i) {
            // Skip `#[cfg(test)] mod ... { ... }` entirely: test helpers
            // legitimately unwrap/allocate and must not join the call graph.
            i = skip_braced_block(tokens, i);
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            if let Some((name, body_start)) = container_header(tokens, i) {
                let hot = marked(lines, hot_lines, t.line);
                let cold = marked(lines, cold_lines, t.line);
                containers.push((depth + 1, name, hot, cold));
                i = body_start; // lands on the `{`
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(item) = fn_item(tokens, i, lines, hot_lines, cold_lines, &containers) {
                let next = if item.body.is_empty() {
                    i + 2
                } else {
                    item.body.end + 1
                };
                fns.push(item);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parses an `impl`/`trait` header starting at token `i`; returns the
/// container type name and the index of the opening `{`.
fn container_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let is_trait = tokens[i].is_ident("trait");
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut after_for = false;
    let mut name: Option<String> = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_comment() {
            j += 1;
            continue;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('{') && angle <= 0 {
            return name.map(|n| (n, j));
        } else if t.is_punct(';') && angle <= 0 {
            return None; // `impl Trait for Type;` doesn't exist; bail.
        } else if angle == 0 && t.kind == TokenKind::Ident {
            if t.text == "for" {
                after_for = true;
                name = None;
            } else if t.text == "where" {
                // Type name is settled before the where-clause.
            } else if name.is_none() || (after_for && name.is_none()) {
                name = Some(t.text.clone());
            } else if is_trait {
                // `trait Name: Bound` — keep the first ident.
            }
        }
        j += 1;
    }
    None
}

/// True when the non-comment tokens immediately before `i` end with
/// `#[cfg(test)]`.
fn cfg_test_before(tokens: &[Token], i: usize) -> bool {
    let want = ["#", "[", "cfg", "(", "test", ")", "]"];
    let mut got: Vec<&str> = Vec::new();
    let mut j = i;
    while j > 0 && got.len() < want.len() {
        j -= 1;
        if tokens[j].is_comment() {
            continue;
        }
        got.push(tokens[j].text.as_str());
    }
    got.reverse();
    got == want
}

/// Skips from a `mod` token past its matching closing brace; returns the
/// index after the block.
fn skip_braced_block(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() && !tokens[i].is_punct('{') {
        i += 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Parses one `fn` item starting at token `i` (the `fn` keyword).
fn fn_item(
    tokens: &[Token],
    i: usize,
    lines: &[&str],
    hot_lines: &BTreeSet<u32>,
    cold_lines: &BTreeSet<u32>,
    containers: &[(usize, String, bool, bool)],
) -> Option<FnItem> {
    let name_tok = tokens.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let sig_line = tokens[i].line;
    // Find the body's `{` (or `;` for a bodyless trait method). Signatures
    // in this workspace never contain braces, so the first one wins.
    let mut j = i + 2;
    let mut body = 0..0;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct(';') && !t.is_comment() {
            break;
        }
        if t.is_punct('{') {
            let mut depth = 1usize;
            let start = j + 1;
            j += 1;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                }
                j += 1;
            }
            body = start..j - 1;
            break;
        }
        j += 1;
    }
    let enclosing = containers.last();
    let own_hot = marked(lines, hot_lines, sig_line);
    let own_cold = marked(lines, cold_lines, sig_line);
    Some(FnItem {
        name: name_tok.text.clone(),
        container: enclosing.map(|c| c.1.clone()),
        sig_line,
        body,
        hot: own_hot || enclosing.is_some_and(|c| c.2),
        cold: own_cold || enclosing.is_some_and(|c| c.3),
    })
}

/// Records every `unsafe` keyword with the comment text directly above it.
fn scan_unsafe(tokens: &[Token], lines: &[&str]) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for t in tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let mut comment = Vec::new();
        let mut l = t.line;
        while l > 1 {
            l -= 1;
            let text = lines.get(l as usize - 1).map_or("", |s| s.trim());
            if text.starts_with("//") {
                comment.push(text.trim_start_matches('/').trim().to_string());
            } else {
                break;
            }
        }
        comment.reverse();
        sites.push(UnsafeSite {
            line: t.line,
            comment_above: comment.join(" "),
        });
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fns_and_methods_get_containers() {
        let src = "fn free() { body(); }\n\
                   impl Foo {\n    fn method(&self) {}\n}\n\
                   impl Bar for Baz<'_> {\n    fn method(&self) {}\n}\n\
                   trait Tr { fn decl(&self); fn dflt(&self) { x(); } }\n";
        let m = FileModel::build("a.rs", src);
        let names: Vec<(String, Option<String>)> = m
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.container.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("Foo".into())),
                ("method".into(), Some("Baz".into())),
                ("decl".into(), Some("Tr".into())),
                ("dflt".into(), Some("Tr".into())),
            ]
        );
        assert!(m.fns[3].body.is_empty());
        assert!(!m.fns[4].body.is_empty());
    }

    #[test]
    fn hot_marker_attaches_through_attributes() {
        let src = "// alya:hot\n#[inline]\npub fn kernel() {}\n\nfn other() {}\n";
        let m = FileModel::build("a.rs", src);
        assert!(m.fns[0].hot);
        assert!(!m.fns[1].hot);
    }

    #[test]
    fn impl_level_markers_cover_all_methods() {
        let src = "// alya:cold: trace capture only\nimpl Recorder for TraceRecorder {\n\
                   fn flop(&mut self) { self.events.push(1); }\n\
                   fn fma(&mut self) {}\n}\n";
        let m = FileModel::build("a.rs", src);
        assert!(m.fns.iter().all(|f| f.cold));
    }

    #[test]
    fn cfg_test_mod_is_invisible() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n    #[test]\n    fn t() {}\n}\nfn after() {}\n";
        let m = FileModel::build("a.rs", src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real", "after"]);
    }

    #[test]
    fn allow_sites_parse_and_malformed_ones_error() {
        let src = "// alya:allow(hot-alloc): bounded trace append\nfn f() {}\n\
                   // alya:allow(hot-panic)\nfn g() {}\n\
                   // alya:frobnicate\nfn h() {}\n";
        let m = FileModel::build("a.rs", src);
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].lint, "hot-alloc");
        assert_eq!(m.allows[0].reason, "bounded trace append");
        assert_eq!(m.marker_errors.len(), 2);
    }

    #[test]
    fn unsafe_sites_capture_the_comment_above() {
        let src = "// SAFETY: proven by pass 2 (races): disjoint rows.\n\
                   // Continued explanation.\nunsafe impl Send for X {}\n\
                   unsafe impl Sync for X {}\n";
        let m = FileModel::build("a.rs", src);
        assert_eq!(m.unsafe_sites.len(), 2);
        assert!(m.unsafe_sites[0].comment_above.contains("SAFETY:"));
        assert!(m.unsafe_sites[0].comment_above.contains("Continued"));
        // The second site's walk-up stops at the first `unsafe impl` line.
        assert!(m.unsafe_sites[1].comment_above.is_empty());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_ignored() {
        let src = "fn f() { let s = \"unsafe\"; } // unsafe in prose\n";
        let m = FileModel::build("a.rs", src);
        assert!(m.unsafe_sites.is_empty());
    }
}
