//! A minimal Rust lexer: just enough token structure for the static pass.
//!
//! The analyzer must never confuse the word `unsafe` inside a string literal
//! or a doc comment with the keyword, and it must see comments (the
//! `// alya:hot` / `// SAFETY:` markers live there), so the lexer keeps
//! comments as first-class tokens instead of skipping them. It is not a
//! full lexer — no token pasting, no float/int distinction — but it handles
//! the constructs that actually appear in this workspace: nested block
//! comments, raw strings with hashes, char literals vs. lifetimes, and
//! multi-character punctuation split into single chars (the parser layers
//! above match on sequences, so `::` arriving as two `:` tokens is fine).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `push`, ...).
    Ident,
    /// Single punctuation character (`{`, `(`, `:`, `.`, `!`, ...).
    Punct,
    /// Numeric literal (integer or float, suffix included).
    Num,
    /// String literal, raw or cooked, quotes included.
    Str,
    /// Char literal, quotes included.
    Char,
    /// Lifetime (`'a`, `'static`), tick included.
    Lifetime,
    /// `// ...` comment, text included without the trailing newline.
    LineComment,
    /// `/* ... */` comment (possibly nested), delimiters included.
    BlockComment,
}

/// One lexeme with its location.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// The lexeme text (borrowing is not worth the lifetime plumbing here;
    /// the analyzer runs once per audit over ~10k lines).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Unrecognized bytes are skipped (the pass is a
/// linter, not a compiler — it must degrade gracefully on anything odd).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::LineComment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokenKind::BlockComment,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let (end, nl) = cooked_string_end(b, i + 1);
                toks.push(Token {
                    kind: TokenKind::Str,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' if raw_string_hashes(b, i).is_some() => {
                let (end, nl) = raw_string_end(b, i);
                toks.push(Token {
                    kind: TokenKind::Str,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let (end, nl) = cooked_string_end(b, i + 2);
                toks.push(Token {
                    kind: TokenKind::Str,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'\'' => {
                // Lifetime vs. char literal: a lifetime is `'` + ident with
                // no closing tick right after the ident's first char run.
                if let Some(end) = lifetime_end(b, i) {
                    toks.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                } else {
                    let end = char_literal_end(b, i + 1);
                    toks.push(Token {
                        kind: TokenKind::Char,
                        text: src[i..end].to_string(),
                        line,
                    });
                    i = end;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                    && !(b[i] == b'.' && b.get(i + 1) == Some(&b'.'))
                {
                    // Stop a numeric lexeme at `..` (range) but let `1.5`,
                    // `1e-3` style literals through; `1e-3`'s `-` splits off
                    // as punctuation, which is fine for this analyzer.
                    if b[i] == b'.' && !b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                if c.is_ascii_graphic() {
                    toks.push(Token {
                        kind: TokenKind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                }
                i += 1;
            }
        }
    }
    toks
}

/// Scans a cooked (escaped) string body starting just after the opening
/// quote; returns (index past closing quote, newlines crossed).
fn cooked_string_end(b: &[u8], mut i: usize) -> (usize, u32) {
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A line-continuation escape (`\` at end of line) still
                // crosses a newline — count it or every later token in the
                // file reports the wrong line.
                if b.get(i + 1) == Some(&b'\n') {
                    nl += 1;
                }
                i += 2;
            }
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, nl)
}

/// If `b[i..]` starts a raw string (`r"`, `r#"`, `br"`, ...), returns the
/// hash count.
fn raw_string_hashes(b: &[u8], mut i: usize) -> Option<usize> {
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    if b.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    (b.get(i) == Some(&b'"')).then_some(hashes)
}

/// Scans a raw string starting at its `r`/`br`; returns (end index,
/// newlines crossed). Assumes `raw_string_hashes` matched.
fn raw_string_end(b: &[u8], mut i: usize) -> (usize, u32) {
    let hashes = raw_string_hashes(b, i).unwrap_or(0);
    // Skip prefix + opening quote.
    while b.get(i) != Some(&b'"') {
        i += 1;
    }
    i += 1;
    let mut nl = 0u32;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
            i += 1;
        } else if b[i] == b'"' && b[i + 1..].iter().take(hashes).all(|&h| h == b'#') {
            return (i + 1 + hashes, nl);
        } else {
            i += 1;
        }
    }
    (i, nl)
}

/// If `b[i]` (a tick) starts a lifetime, returns the end index.
fn lifetime_end(b: &[u8], i: usize) -> Option<usize> {
    let first = *b.get(i + 1)?;
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return None;
    }
    let mut j = i + 2;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    // `'a'` is a char literal; `'a` followed by anything else is a lifetime.
    (b.get(j) != Some(&b'\'')).then_some(j)
}

/// Scans a char literal body starting just after the opening tick; returns
/// the index past the closing tick.
fn char_literal_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn keyword_in_string_is_not_an_ident() {
        let toks = lex(r#"let s = "unsafe fn"; let u = 1;"#);
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let toks = lex("fn a() {}\n// alya:hot\nfn b() {}\n");
        let c: Vec<_> = toks.iter().filter(|t| t.is_comment()).collect();
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].line, 2);
        assert_eq!(c[0].text, "// alya:hot");
    }

    #[test]
    fn nested_block_comment_swallows_inner_tokens() {
        let toks = lex("/* outer /* unsafe */ still */ fn f() {}");
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'z'"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = lex(r##"let s = r#"fn unsafe { panic!() }"#; let t = 2;"##);
        assert_eq!(idents(r##"let s = r#"x"#;"##), vec!["let", "s"]);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = lex(r#"let s = "a \" unsafe"; let t = 1;"#);
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let toks = lex("let s = \"a\nb\nc\";\nfn f() {}\n");
        let f = toks.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 4);
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let toks = lex("for i in 0..16u32 { let x = 1.5e-3; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert!(nums.contains(&"0"));
        assert!(nums.contains(&"16u32"));
        assert!(nums.contains(&"1.5e"));
    }
}
