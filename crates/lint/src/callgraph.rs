//! Name-based call extraction and fixpoint reachability.
//!
//! Without type information the graph is an over-approximation: a method
//! call `.add(...)` reaches *every* method named `add` in the workspace.
//! That errs exactly the right way for a hot-path lint — anything that
//! might run inside the assembly loop is held to the hot-path rules — and
//! the `// alya:cold` marker prunes the instrumentation-only impls that
//! monomorphization removes from production builds (e.g. `TraceRecorder`,
//! which is only reachable when `R::ENABLED`). Known gap: functions passed
//! as values (`tree_reduce(parts, merge_boundary)`) are not treated as
//! calls; hot paths in this workspace invoke everything directly.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::FileModel;
use crate::lexer::TokenKind;

/// One syntactic call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Call {
    /// `name(...)` — resolves to free functions named `name`.
    Bare(String),
    /// `qualifier::name(...)` — resolves to methods of type `qualifier`, or
    /// free functions of the module file named `qualifier`.
    Path(String, String),
    /// `.name(...)` — resolves to every method named `name`.
    Method(String),
    /// `name!(...)` — not resolved; lints match macros directly.
    Macro(String),
}

/// Keywords that can precede `(` without being calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "move", "ref", "mut", "fn", "impl", "trait", "pub", "use", "where", "unsafe", "dyn",
    "crate", "super", "self", "const", "static", "enum", "struct", "mod", "type", "async", "await",
    "box", "yield",
];

/// Extracts the call sites in `file.fns[fn_idx]`'s body. `self_container`
/// resolves `Self::x(...)` to the enclosing impl type.
pub fn calls_in(file: &FileModel, fn_idx: usize) -> Vec<Call> {
    let f = &file.fns[fn_idx];
    let toks = &file.tokens;
    let mut out = Vec::new();
    let rng = f.body.clone();
    let mut i = rng.start;
    while i < rng.end {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || t.is_comment() {
            i += 1;
            continue;
        }
        // Next non-comment token.
        let mut j = i + 1;
        while j < rng.end && toks[j].is_comment() {
            j += 1;
        }
        let next = toks.get(j);
        if next.is_some_and(|n| n.is_punct('!')) {
            // `name!(...)` / `name![...]` / `name! {...}`.
            let after = toks.get(j + 1);
            if after.is_some_and(|a| a.is_punct('(') || a.is_punct('[') || a.is_punct('{')) {
                out.push(Call::Macro(t.text.clone()));
            }
            i = j + 1;
            continue;
        }
        let calls_through_turbofish = |mut k: usize| {
            // Accept `name(`, `name::<T>(`; reject anything else.
            if toks.get(k).is_some_and(|n| n.is_punct('(')) {
                return true;
            }
            if toks.get(k).is_some_and(|n| n.is_punct(':'))
                && toks.get(k + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(k + 2).is_some_and(|n| n.is_punct('<'))
            {
                let mut depth = 0i32;
                k += 2;
                while let Some(n) = toks.get(k) {
                    if n.is_punct('<') {
                        depth += 1;
                    } else if n.is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            return toks.get(k + 1).is_some_and(|p| p.is_punct('('));
                        }
                    } else if n.is_punct(';') || n.is_punct('{') {
                        break;
                    }
                    k += 1;
                }
            }
            false
        };
        if !calls_through_turbofish(j) {
            i += 1;
            continue;
        }
        if NOT_CALLS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // Previous non-comment token decides the call flavor.
        let prev = prev_non_comment(toks, rng.start, i);
        let prev2 = prev.and_then(|p| prev_non_comment(toks, rng.start, p));
        let is_path = matches!((prev, prev2), (Some(p1), Some(p2))
            if toks[p1].is_punct(':') && toks[p2].is_punct(':'));
        if is_path {
            let seg = prev2
                .and_then(|p2| prev_non_comment(toks, rng.start, p2))
                .map(|q| &toks[q]);
            if let Some(q) = seg.filter(|q| q.kind == TokenKind::Ident) {
                let qual = if q.text == "Self" {
                    file.fns[fn_idx].container.clone().unwrap_or_default()
                } else {
                    q.text.clone()
                };
                out.push(Call::Path(qual, t.text.clone()));
            } else {
                out.push(Call::Bare(t.text.clone()));
            }
        } else if prev.is_some_and(|p| toks[p].is_punct('.')) {
            out.push(Call::Method(t.text.clone()));
        } else {
            out.push(Call::Bare(t.text.clone()));
        }
        i = j;
    }
    out
}

fn prev_non_comment(toks: &[crate::lexer::Token], start: usize, i: usize) -> Option<usize> {
    let mut j = i;
    while j > start {
        j -= 1;
        if !toks[j].is_comment() {
            return Some(j);
        }
    }
    None
}

/// Global function id: (file index, fn index).
pub type FnId = (usize, usize);

/// The workspace-wide call graph with its resolution indexes.
pub struct CallGraph {
    /// Free functions by name.
    free: BTreeMap<String, Vec<FnId>>,
    /// Methods (and trait default methods) by name.
    methods: BTreeMap<String, Vec<FnId>>,
    /// Functions by (container, name).
    qualified: BTreeMap<(String, String), Vec<FnId>>,
    /// Free functions by (module stem, name).
    by_module: BTreeMap<(String, String), Vec<FnId>>,
    /// Extracted calls per function.
    calls: BTreeMap<FnId, Vec<Call>>,
}

/// Module name a file's free functions are addressed by in path calls:
/// the file stem, except `lib.rs`/`mod.rs` which take their directory name
/// (with a leading `alya-` prefix dropped, matching the `use alya_x as x`
/// aliasing convention in this workspace).
pub fn module_stem(path: &str) -> String {
    let parts: Vec<&str> = path.rsplit('/').collect();
    let stem = parts[0].trim_end_matches(".rs");
    if stem != "lib" && stem != "mod" {
        return stem.to_string();
    }
    let dir = parts
        .iter()
        .skip(1)
        .find(|d| **d != "src")
        .copied()
        .unwrap_or(stem);
    dir.trim_start_matches("alya-").replace('-', "_")
}

impl CallGraph {
    pub fn build(files: &[FileModel]) -> Self {
        let mut g = Self {
            free: BTreeMap::new(),
            methods: BTreeMap::new(),
            qualified: BTreeMap::new(),
            by_module: BTreeMap::new(),
            calls: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            let module = module_stem(&file.path);
            for (ki, f) in file.fns.iter().enumerate() {
                let id: FnId = (fi, ki);
                match &f.container {
                    None => {
                        g.free.entry(f.name.clone()).or_default().push(id);
                        g.by_module
                            .entry((module.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    Some(c) => {
                        g.methods.entry(f.name.clone()).or_default().push(id);
                        g.qualified
                            .entry((c.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
                g.calls.insert(id, calls_in(file, ki));
            }
        }
        g
    }

    /// Resolves one call to candidate definitions.
    fn resolve(&self, call: &Call) -> Vec<FnId> {
        match call {
            Call::Bare(n) => self.free.get(n).cloned().unwrap_or_default(),
            Call::Method(n) => self.methods.get(n).cloned().unwrap_or_default(),
            Call::Path(q, n) => {
                let mut out = self
                    .qualified
                    .get(&(q.clone(), n.clone()))
                    .cloned()
                    .unwrap_or_default();
                out.extend(
                    self.by_module
                        .get(&(q.clone(), n.clone()))
                        .cloned()
                        .unwrap_or_default(),
                );
                out
            }
            Call::Macro(_) => Vec::new(),
        }
    }

    /// Fixpoint reachability from the hot roots, pruned at `alya:cold`
    /// functions. Returns the reachable set (roots included).
    pub fn reach(&self, files: &[FileModel]) -> BTreeSet<FnId> {
        let mut seen = BTreeSet::new();
        let mut work: VecDeque<FnId> = VecDeque::new();
        for (fi, file) in files.iter().enumerate() {
            for (ki, f) in file.fns.iter().enumerate() {
                if f.hot && !f.cold {
                    seen.insert((fi, ki));
                    work.push_back((fi, ki));
                }
            }
        }
        while let Some(id) = work.pop_front() {
            for call in self.calls.get(&id).into_iter().flatten() {
                for cand in self.resolve(call) {
                    if files[cand.0].fns[cand.1].cold || seen.contains(&cand) {
                        continue;
                    }
                    seen.insert(cand);
                    work.push_back(cand);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/x/src/a.rs", src)
    }

    #[test]
    fn extracts_bare_path_method_and_macro_calls() {
        let m = model(
            "fn f(m: &M) { helper(); gather::conn(m); m.element(3); vec![1]; \
             let v: Vec<u32> = it.collect::<Vec<u32>>(); }",
        );
        let calls = calls_in(&m, 0);
        assert!(calls.contains(&Call::Bare("helper".into())));
        assert!(calls.contains(&Call::Path("gather".into(), "conn".into())));
        assert!(calls.contains(&Call::Method("element".into())));
        assert!(calls.contains(&Call::Macro("vec".into())));
        assert!(calls.contains(&Call::Method("collect".into())));
    }

    #[test]
    fn keywords_and_tuples_are_not_calls() {
        let m = model("fn f() { if (a, b) == (c, d) { return (1, 2); } match (x) { _ => {} } }");
        let calls = calls_in(&m, 0);
        assert!(calls.is_empty());
    }

    #[test]
    fn self_paths_resolve_to_the_impl_type() {
        let m = model("impl Foo { fn a() { Self::b(); } fn b() {} }");
        let calls = calls_in(&m, 0);
        assert_eq!(calls, vec![Call::Path("Foo".into(), "b".into())]);
    }

    #[test]
    fn module_stems_for_lib_and_mod_files() {
        assert_eq!(module_stem("crates/core/src/gather.rs"), "gather");
        assert_eq!(module_stem("crates/telemetry/src/lib.rs"), "telemetry");
        assert_eq!(module_stem("crates/core/src/kernels/mod.rs"), "kernels");
        assert_eq!(module_stem("crates/core/src/kernels/rsp.rs"), "rsp");
    }

    #[test]
    fn reachability_follows_calls_and_stops_at_cold() {
        let src = "// alya:hot\nfn root() { step(); trace(); }\n\
                   fn step() { leaf(); }\n\
                   fn leaf() {}\n\
                   // alya:cold: instrumentation only\nfn trace() { expensive(); }\n\
                   fn expensive() {}\n\
                   fn unrelated() {}\n";
        let files = vec![model(src)];
        let g = CallGraph::build(&files);
        let reach = g.reach(&files);
        let names: Vec<&str> = reach
            .iter()
            .map(|&(fi, ki)| files[fi].fns[ki].name.as_str())
            .collect();
        assert_eq!(names, vec!["root", "step", "leaf"]);
    }

    #[test]
    fn method_calls_overapproximate_across_impls() {
        let src = "// alya:hot\nfn root(s: &mut S) { s.add(1); }\n\
                   impl A { fn add(&mut self, _x: u32) {} }\n\
                   impl B { fn add(&mut self, _x: u32) {} }\n";
        let files = vec![model(src)];
        let g = CallGraph::build(&files);
        let reach = g.reach(&files);
        assert_eq!(reach.len(), 3);
    }
}
