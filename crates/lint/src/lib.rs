//! `alya-lint`: static hot-path, determinism, and unsafe-linkage analyzer.
//!
//! The dynamic analyzer passes (1–6) audit *traces* against closed-form
//! contracts; this crate is the static half, auditing the *sources*. A
//! lightweight lexer ([`lexer`]) feeds an item extractor ([`items`]) and a
//! name-based call graph ([`callgraph`]); fixpoint reachability from
//! `// alya:hot` roots yields the hot set, and [`lints`] enforces on it:
//!
//! * **hot-alloc** — no allocation inside assembly inner loops;
//! * **hot-panic** — no panic paths (`debug_assert!` compiles out and is
//!   allowed);
//! * **hash-iter** — no hash-ordered collections feeding numeric work
//!   (bitwise reproducibility is a repo invariant);
//! * **hot-telemetry** — no per-element `tally_*`/span creation (the
//!   batch-rate policy keeps telemetry at driver granularity);
//! * **missing-safety** — every `unsafe` site must be on the
//!   [`SANCTIONED_UNSAFE`] allowlist and carry a `// SAFETY:` comment
//!   naming the analyzer pass that proves its invariant.
//!
//! `// alya:allow(<lint>): <reason>` is the audited escape hatch;
//! `// alya:cold: <reason>` prunes instrumentation-only code that
//! monomorphization removes from production builds. The whole crate is
//! dependency-free and runs in milliseconds over the workspace.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod lints;

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use items::FileModel;
pub use lints::{LintKind, Violation};

/// One sanctioned `unsafe` site: the workspace-relative file and the marker
/// tag its `SAFETY:` comment must carry. Adding an unsafe site anywhere in
/// the workspace requires adding an entry here — a reviewed edit, not a
/// count bump.
#[derive(Debug)]
pub struct UnsafeSanction {
    pub file: &'static str,
    pub marker: &'static str,
}

/// The complete allowlist of unsafe sites in this workspace. All four live
/// in the shared-RHS scatter machinery of `alya-core`, and each is proven
/// by analyzer pass 2 (the race detector) on every audited run.
pub const SANCTIONED_UNSAFE: &[UnsafeSanction] = &[
    UnsafeSanction {
        file: "crates/core/src/drivers.rs",
        marker: "unsafe[shared-rhs-send]",
    },
    UnsafeSanction {
        file: "crates/core/src/drivers.rs",
        marker: "unsafe[shared-rhs-sync]",
    },
    UnsafeSanction {
        file: "crates/core/src/drivers.rs",
        marker: "unsafe[colored-scatter]",
    },
    UnsafeSanction {
        file: "crates/core/src/drivers.rs",
        marker: "unsafe[sharded-writeback]",
    },
];

/// One source file handed to [`analyze`].
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub text: String,
}

/// The outcome of one static analysis run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// Functions marked `// alya:hot` (directly or via their impl).
    pub hot_roots: usize,
    /// Size of the hot-reachable set (roots included).
    pub reachable_fns: usize,
    pub files_scanned: usize,
    /// `alya:allow` sites that suppressed a violation this run.
    pub allows_honored: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the full static analysis over in-memory sources against an explicit
/// allowlist. This is the engine behind [`check_workspace`] and the
/// seeded-violation self-tests.
pub fn analyze(files: &[SourceFile], sanctioned: &[UnsafeSanction]) -> LintReport {
    let models: Vec<FileModel> = files
        .iter()
        .map(|f| FileModel::build(&f.path, &f.text))
        .collect();
    let reach = lints::hot_reachable(&models);
    let hot_roots = models
        .iter()
        .flat_map(|m| &m.fns)
        .filter(|f| f.hot && !f.cold)
        .count();
    let mut violations = lints::scan_reachable(&models, &reach);
    violations.extend(lints::check_unsafe_linkage(&models, sanctioned));
    for m in &models {
        for e in &m.marker_errors {
            violations.push(Violation {
                lint: LintKind::BadMarker,
                file: m.path.clone(),
                line: e.line,
                message: e.message.clone(),
            });
        }
    }
    let (mut violations, allows_honored) = lints::apply_allows(&models, violations);
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintReport {
        violations,
        hot_roots,
        reachable_fns: reach.len(),
        files_scanned: models.len(),
        allows_honored,
    }
}

/// Loads every `crates/*/src/**/*.rs` under `root`, sorted for determinism.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, root, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                path: rel,
                text: fs::read_to_string(&p)?,
            });
        }
    }
    Ok(())
}

/// Loads the workspace under `root` and analyzes it against
/// [`SANCTIONED_UNSAFE`]. This is analyzer pass 7.
pub fn check_workspace(root: &Path) -> io::Result<LintReport> {
    Ok(analyze(&load_workspace(root)?, SANCTIONED_UNSAFE))
}

/// Lines on which the `unsafe` keyword occurs as a token (strings, chars,
/// and comments excluded). Shared with analyzer pass 3's file policy.
pub fn unsafe_ident_lines(src: &str) -> Vec<u32> {
    lexer::lex(src)
        .iter()
        .filter(|t| t.is_ident("unsafe"))
        .map(|t| t.line)
        .collect()
}

/// The set of files allowed to contain `unsafe` at all (derived from the
/// allowlist). Shared with analyzer pass 3.
pub fn sanctioned_files() -> BTreeSet<&'static str> {
    SANCTIONED_UNSAFE.iter().map(|s| s.file).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_on_a_tiny_workspace() {
        let files = [
            SourceFile {
                path: "crates/x/src/kern.rs".into(),
                text: "// alya:hot\npub fn element(s: &mut S) { s.add(1.0); }\n".into(),
            },
            SourceFile {
                path: "crates/x/src/sink.rs".into(),
                text: "impl Sink for S {\n    fn add(&mut self, v: f64) { self.buf.push(v); }\n}\n"
                    .into(),
            },
        ];
        let report = analyze(&files, &[]);
        assert_eq!(report.hot_roots, 1);
        assert_eq!(report.reachable_fns, 2);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].lint, LintKind::HotAlloc);
        assert_eq!(report.violations[0].file, "crates/x/src/sink.rs");
        assert_eq!(report.violations[0].line, 2);
    }

    #[test]
    fn unsafe_ident_lines_sees_through_strings() {
        let lines = unsafe_ident_lines("let s = \"unsafe\";\n// unsafe prose\nunsafe { x() }\n");
        assert_eq!(lines, vec![3]);
    }

    #[test]
    fn this_workspace_loads() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        let files = load_workspace(&root).unwrap();
        assert!(files.iter().any(|f| f.path == "crates/core/src/drivers.rs"));
        assert!(files.iter().any(|f| f.path == "crates/lint/src/lexer.rs"));
    }
}
