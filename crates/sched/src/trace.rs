//! Schedule trace: the auditable record of one [`crate::Pipeline`] run.

/// Identifies a stage within one pipeline (index in creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(pub(crate) u32);

impl StageId {
    /// The stage's index in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a buffer within one pipeline (index in creation order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufId(pub(crate) u32);

impl BufId {
    /// The buffer's index in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of a stage: its name and dependency edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMeta {
    /// Stage name (unique within the pipeline by convention).
    pub name: &'static str,
    /// Stages that must retire before this one is enqueued.
    pub deps: Vec<u32>,
}

/// Static description of a buffer: its name and producing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufMeta {
    /// Buffer name.
    pub name: &'static str,
    /// The stage whose retirement publishes this buffer.
    pub producer: u32,
}

/// One event in a pipeline run, in executor order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedEvent {
    /// Stage became runnable (all deps retired). Exactly once per stage.
    Enqueued { stage: u32 },
    /// Stage body was called for the first time. Exactly once per stage.
    Started { stage: u32 },
    /// Stage reported [`crate::StageStatus::Done`]. Exactly once per stage.
    Retired { stage: u32 },
    /// Buffer contents became final (recorded when its producer retires).
    BufPublish { stage: u32, buf: u32 },
    /// A stage consumed a buffer's contents.
    BufRead { stage: u32, buf: u32 },
    /// Free-form, checker-visible breadcrumb from a stage body.
    Note {
        /// Emitting stage.
        stage: u32,
        /// Note kind (e.g. `"combine"`, `"posted"`).
        tag: &'static str,
        /// Payload (e.g. a peer rank).
        value: u64,
    },
}

impl SchedEvent {
    /// The stage this event concerns.
    pub fn stage(&self) -> u32 {
        match *self {
            SchedEvent::Enqueued { stage }
            | SchedEvent::Started { stage }
            | SchedEvent::Retired { stage }
            | SchedEvent::BufPublish { stage, .. }
            | SchedEvent::BufRead { stage, .. }
            | SchedEvent::Note { stage, .. } => stage,
        }
    }
}

/// The full record of one pipeline run: static shape plus event log.
///
/// This is what the analyzer's pass-5 schedule contract consumes; it is
/// deliberately plain data so checks replay it without re-running
/// anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedTrace {
    /// Pipeline name.
    pub pipeline: &'static str,
    /// Stages in creation order.
    pub stages: Vec<StageMeta>,
    /// Buffers in creation order.
    pub buffers: Vec<BufMeta>,
    /// Events in executor order.
    pub events: Vec<SchedEvent>,
}

impl SchedTrace {
    /// All `Note` values with tag `tag`, in event order.
    pub fn notes(&self, tag: &str) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Note { tag: t, value, .. } if *t == tag => Some(*value),
                _ => None,
            })
            .collect()
    }

    /// Index of the stage named `name`, if present.
    pub fn stage_named(&self, name: &str) -> Option<u32> {
        self.stages
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as u32)
    }
}
