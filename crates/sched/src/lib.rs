//! `alya-sched` — a small deterministic task-stage scheduler.
//!
//! The paper's single-GPU result is about eliminating dead time *inside*
//! the kernel (RSPR: immediate scatter, no spilled intermediates). At the
//! multi-rank level the analogous dead time is the halo exchange the
//! distributed driver would otherwise run back-to-back with assembly.
//! This crate provides the scheduling substrate both overlap consumers
//! share:
//!
//! * [`Pipeline`] — a handful of named stages with **typed dependencies**
//!   (a stage only names stages created before it, so the graph is a DAG
//!   by construction). Stage bodies are cooperative: each call does a
//!   bounded chunk of work and reports [`StageStatus::Progress`],
//!   [`StageStatus::Idle`] or [`StageStatus::Done`]. The executor sweeps
//!   stages **in creation order** on a single thread, which keeps every
//!   interleaving decision deterministic and auditable — concurrency
//!   lives in the rank threads *around* pipelines, never inside one.
//! * [`DoubleBuffer`] — a depth-2 versioned channel for handing batches
//!   between a producer thread and a consumer thread (the bench
//!   harness's pipelined trace replay), with publish/take timeouts so a
//!   wedged side surfaces as an error instead of a hang.
//! * [`Watchdog`] / [`Stall`] — if no stage makes progress for the
//!   configured window, [`Pipeline::run`] returns a [`Stall`] naming the
//!   unretired stages instead of spinning forever. The audit binary's
//!   `--seed-violation overlap-stall` mode exists to prove this fires.
//! * [`SchedTrace`] — every run records an event log (enqueue / start /
//!   retire per stage, buffer publish/read edges, free-form notes) that
//!   the analyzer's pass-5 schedule contract replays structurally.
//!
//! No external dependencies, no unsafe code.

#![forbid(unsafe_code)]

mod buffer;
mod stage;
mod trace;

pub use buffer::{BufferError, DoubleBuffer};
pub use stage::{Pipeline, StageCtx, StageStatus, Stall, Watchdog};
pub use trace::{BufId, BufMeta, SchedEvent, SchedTrace, StageId, StageMeta};
