//! Depth-2 versioned channel between a producer and a consumer thread.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a [`DoubleBuffer`] operation did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// The peer side did not keep up within the timeout.
    Stalled,
    /// The channel was closed and no batches remain.
    Closed,
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::Stalled => write!(f, "double buffer stalled: peer did not keep up"),
            BufferError::Closed => write!(f, "double buffer closed"),
        }
    }
}

impl std::error::Error for BufferError {}

struct Slots<T> {
    queue: VecDeque<(u64, T)>,
    next_version: u64,
    closed: bool,
}

/// A bounded (depth 2) versioned hand-off between exactly one producer
/// and one consumer thread.
///
/// Depth 2 is the point of the exercise: the producer can fill batch
/// `k+1` while the consumer replays batch `k` — more depth would only
/// hide latency the bench is trying to measure. Every batch carries a
/// monotonically increasing version so the consumer can assert it never
/// observes a gap or reorder.
pub struct DoubleBuffer<T> {
    slots: Mutex<Slots<T>>,
    ready: Condvar,
    space: Condvar,
}

impl<T> Default for DoubleBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DoubleBuffer<T> {
    /// Capacity of the hand-off: one in-flight batch plus one being
    /// produced.
    pub const DEPTH: usize = 2;

    /// New empty buffer.
    pub fn new() -> Self {
        Self {
            slots: Mutex::new(Slots {
                queue: VecDeque::with_capacity(Self::DEPTH),
                next_version: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Publishes one batch, blocking up to `timeout` for a free slot.
    /// Returns the batch's version.
    pub fn publish(&self, value: T, timeout: Duration) -> Result<u64, BufferError> {
        let mut slots = self.slots.lock().unwrap();
        while slots.queue.len() >= Self::DEPTH {
            if slots.closed {
                return Err(BufferError::Closed);
            }
            let (guard, wait) = self.space.wait_timeout(slots, timeout).unwrap();
            slots = guard;
            if wait.timed_out() && slots.queue.len() >= Self::DEPTH {
                return Err(BufferError::Stalled);
            }
        }
        if slots.closed {
            return Err(BufferError::Closed);
        }
        let version = slots.next_version;
        slots.next_version += 1;
        slots.queue.push_back((version, value));
        self.ready.notify_one();
        Ok(version)
    }

    /// Takes the oldest published batch, blocking up to `timeout`.
    /// Returns `(version, batch)`; versions are consecutive from 0.
    // alya:cold: blocking consumer side of the inter-stage handoff — runs
    // at batch granularity and parks by design; it shares the name `take`
    // with `Option::take` in hot code but never sits in an assembly loop.
    pub fn take(&self, timeout: Duration) -> Result<(u64, T), BufferError> {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if let Some(item) = slots.queue.pop_front() {
                self.space.notify_one();
                return Ok(item);
            }
            if slots.closed {
                return Err(BufferError::Closed);
            }
            let (guard, wait) = self.ready.wait_timeout(slots, timeout).unwrap();
            slots = guard;
            if wait.timed_out() && slots.queue.is_empty() {
                return if slots.closed {
                    Err(BufferError::Closed)
                } else {
                    Err(BufferError::Stalled)
                };
            }
        }
    }

    /// Marks the stream finished. Pending batches stay takeable; after
    /// they drain, `take` reports [`BufferError::Closed`].
    pub fn close(&self) {
        let mut slots = self.slots.lock().unwrap();
        slots.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn versions_are_consecutive_and_fifo_across_threads() {
        let buf: DoubleBuffer<Vec<u32>> = DoubleBuffer::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for k in 0..16u32 {
                    let v = buf.publish(vec![k, k + 100], T).unwrap();
                    assert_eq!(v, u64::from(k));
                }
                buf.close();
            });
            for k in 0..16u64 {
                let (v, batch) = buf.take(T).unwrap();
                assert_eq!(v, k);
                assert_eq!(batch[0] as u64, k);
            }
            assert_eq!(buf.take(T), Err(BufferError::Closed));
        });
    }

    #[test]
    fn publisher_blocks_at_depth_two_and_stalls_without_a_consumer() {
        let buf: DoubleBuffer<u32> = DoubleBuffer::new();
        let short = Duration::from_millis(30);
        assert_eq!(buf.publish(0, short), Ok(0));
        assert_eq!(buf.publish(1, short), Ok(1));
        assert_eq!(buf.publish(2, short), Err(BufferError::Stalled));
        // Draining one slot unblocks exactly one publish.
        assert_eq!(buf.take(short).unwrap().0, 0);
        assert_eq!(buf.publish(2, short), Ok(2));
    }

    #[test]
    fn take_on_a_silent_buffer_stalls_then_reports_closed_after_close() {
        let buf: DoubleBuffer<u32> = DoubleBuffer::new();
        let short = Duration::from_millis(30);
        assert_eq!(buf.take(short), Err(BufferError::Stalled));
        buf.close();
        assert_eq!(buf.take(short), Err(BufferError::Closed));
    }
}
